"""Program 1: the sequential Threat Analysis program.

Faithful to the paper's structure -- for every threat, for every
weapon, a time-stepped feasibility scan producing interception
intervals appended to one shared output array with one shared counter.
Pairs whose ground-track distance already rules out interception are
screened out before the scan (the benchmark program's efficiency
screen); this is exact and is the source of per-threat work variance.
The per-pair scan is vectorised over the time grid (a simulation
resolution, not an algorithm change), and the structural counts needed
by the workload extractor are recorded as the run proceeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.c3i.threat.model import (
    Interval,
    pair_intervals,
    precheck_in_range,
    threat_positions,
)
from repro.c3i.threat.scenarios import Scenario


@dataclass
class ThreatAnalysisResult:
    """Output and structural statistics of one scenario run."""

    scenario: int
    intervals: list[Interval] = field(default_factory=list)
    #: structural counts driving the workload model
    n_pairs_scanned: int = 0
    n_pairs_skipped: int = 0
    n_steps_total: int = 0
    n_trajectory_points: int = 0
    #: per-threat step counts (chunk imbalance comes from these)
    steps_per_threat: list[int] = field(default_factory=list)
    #: per-threat interval counts
    intervals_per_threat: list[int] = field(default_factory=list)

    @property
    def n_intervals(self) -> int:
        return len(self.intervals)

    @property
    def n_pairs(self) -> int:
        return self.n_pairs_scanned + self.n_pairs_skipped


def run_sequential(scenario: Scenario) -> ThreatAnalysisResult:
    """Execute Program 1 on one scenario."""
    result = ThreatAnalysisResult(scenario=scenario.index)
    num_intervals = 0  # the shared counter of Program 1
    for t_idx, threat in enumerate(scenario.threats):
        times, positions = threat_positions(threat, scenario.n_steps)
        result.n_trajectory_points += scenario.n_steps
        threat_steps = 0
        threat_intervals = 0
        for w_idx, weapon in enumerate(scenario.weapons):
            if not precheck_in_range(threat, weapon):
                result.n_pairs_skipped += 1
                continue
            found = pair_intervals(times, positions, weapon, t_idx, w_idx)
            # Program 1 appends at intervals[num_intervals++]
            for iv in found:
                result.intervals.append(iv)
                num_intervals += 1
                threat_intervals += 1
            result.n_pairs_scanned += 1
            result.n_steps_total += scenario.n_steps
            threat_steps += scenario.n_steps
        result.steps_per_threat.append(threat_steps)
        result.intervals_per_threat.append(threat_intervals)
    assert num_intervals == len(result.intervals)
    return result


def run_benchmark_sequential(scenarios: list[Scenario]
                             ) -> list[ThreatAnalysisResult]:
    """All five scenarios, as the benchmark measures them (total time)."""
    return [run_sequential(sc) for sc in scenarios]
