"""Table 8: sequential Terrain Masking on all four platforms (memory
bound: the Tera/Alpha gap shrinks to ~6x)."""

from _support import run_and_report


def bench_table8(benchmark, data):
    run_and_report(benchmark, data, "table8")
