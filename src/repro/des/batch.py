"""Vectorized batch execution of homogeneous thread cohorts.

The DES path simulates every thread of a parallel region as its own
generator process; each fair-share reallocation is an O(n) Python scan
and each completion a heap event.  For *cohorts* -- threads whose
programs are structurally identical (same item sequence, no cross-
thread synchronization except the region barrier and per-item critical
sections) -- the same timeline can be replayed with flat per-thread
state and no processes, events, or callbacks at all:

* A batch server mirrors one
  :class:`~repro.des.resources.FairShareServer` with at most one job
  per thread slot, advancing remaining work lazily (only when the
  server is touched, like the DES server's flush/wakeup chunking) and
  caching its next completion time.  Small cohorts use
  :class:`ScalarBatchServer`, which reproduces the DES allocation
  arithmetic verbatim in Python; large cohorts use
  :class:`BatchServer`, which holds remaining work in numpy arrays so
  a reallocation costs a few vector operations instead of an O(n)
  interpreted scan.  The completion rule (batch every job within
  ``1e-9`` relative of the minimum remaining work) is the DES server's
  rule in both.

* :class:`CohortEngine` owns the region's servers, sleep timers and
  locks and drives per-thread *segment lists* -- a precompiled form of
  the thread programs -- through them, mirroring the DES event order:
  at each event time every completion is processed before any lock
  handoff wakes a waiter, and completions are processed in job-arrival
  order, matching the FIFO insertion order of ``FairShareServer._jobs``.

On top of the event-stepped loop sit three *closed-form* layers (all
disabled together by ``REPRO_FORCE_CLOSED_FORM=0``):

* **Class compression** -- threads whose compiled programs are
  *exactly* identical (same segments, same home server) stay in
  perfect lockstep under the batch arithmetic, so one weighted entity
  replays all of them.  Server jobs carry the weight: the fair share
  divides by the member count, served work scales by it, and a
  weighted lock acquire enqueues all members back to back with the
  per-arrival depth statistics the DES ``Resource`` would record.

* **Convoy-drain replication** -- when a run of identical members is
  queued on a lock and the environment is steady (no other completions
  or timers), one member's critical-section pass is measured
  event-stepped and the following members are replayed arithmetically:
  the grant times form ``t0 + arange(k) * delta`` and every server's
  remaining-work/busy/served state advances by ``k`` times the
  measured per-pass delta.  One watch measures a pass; any event that
  interleaves marks it foreign and the engine falls back to stepping.

* **Single-class regions** -- a region whose threads collapse to one
  class and whose program is serve/sleep segments plus at most one
  trailing critical section is scheduled entirely in closed form by
  :meth:`CohortEngine._run_single_class`: water-filled fair-share
  spans for the lockstep prefix, then a serialized convoy whose
  completion-time array is ``t1 + arange(1, n+1) * delta``, with the
  lock-wait statistics (``waits``, ``wait_time``, depth histogram)
  computed arithmetically.

* **Work-queue regions** -- a two-server pull-from-queue region
  (:meth:`CohortEngine._run_queue`) exploits that between completion
  events every worker's service rate is piecewise-constant.  A server
  whose largest per-job cap fits under ``capacity / n_workers`` is
  *never contended*: the fair share can never drop below the cap, so
  the DES arithmetic always yields ``rate == cap`` and each of its
  jobs is a fixed-duration span computed in closed form
  (``demand / cap``, the ``serve_alone`` arithmetic) -- one arrival
  timer per segment, sequenced at its simulated start so simultaneous
  completions stay in the stepped engine's submission order.  Only
  the contended server -- the shared bus, whose rate genuinely
  changes with membership -- keeps the event-stepped batch-server
  arithmetic, bit-identical to the stepped path.  Busy time for
  folded servers is the union length of their recorded spans; served
  work accumulates per span.  Folding shifts completion times by
  ulps (exact spans instead of the batch server's incremental
  accrual), which every timeline tolerance absorbs but an integer
  lock counter cannot -- an ulp can flip an exact release/acquire
  tie -- so lock-taking regions event-step *both* servers and the
  solver keeps only its leaner control flow.

Equivalence with the DES path is *numerical*, not bit-for-bit: the
vectorized allocation follows the same formulas but groups float
operations differently (e.g. one ``capacity/n`` division instead of a
sequential water-fill chain, or ``k * delta`` instead of ``k`` chained
additions), so event times can differ by a few ulps.  Those
differences are absorbed by the completion-batching tolerance the DES
server itself applies; end-to-end simulated seconds agree to well
within 1e-9 relative (asserted for every registry experiment by
``repro bench --verify``).
"""

from __future__ import annotations

import os
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Optional, Sequence

import numpy as np

from repro.des.errors import DesError

#: completion tolerance -- must match ``repro.des.resources._EPS``
_EPS = 1e-9
_INF = float("inf")

#: cohorts up to this many *entities* (classes, after compression) run
#: on the interpreted scalar server; beyond it the numpy server's fixed
#: per-operation overhead is amortized over enough slots to win
SCALAR_MAX_SLOTS = 96

#: Environment escape hatch mirroring ``REPRO_NO_COHORT``: set to "0"
#: to disable the closed-form layers (class compression, convoy-drain
#: replication, single-class regions) and event-step every thread
#: individually inside the cohort engine.
FORCE_CLOSED_FORM_ENV = "REPRO_FORCE_CLOSED_FORM"


def closed_form_enabled() -> bool:
    """Whether the engine's closed-form layers are enabled (default yes)."""
    return os.environ.get(FORCE_CLOSED_FORM_ENV, "") != "0"


# ----------------------------------------------------------------------
# segment opcodes (a compiled thread program is a list of tuples whose
# first element is one of these)
# ----------------------------------------------------------------------
SRV = 0     #: ``(SRV, server_id, demand, cap)`` -- one fair-share job
PAR = 1     #: ``(PAR, ((server_id, demand, cap), ...))`` -- jobs started
#:             together on *distinct* servers, joined like ``AllOf``
SLEEP = 2   #: ``(SLEEP, seconds)`` -- a plain timeout
ACQ = 3     #: ``(ACQ, lock_name)`` -- FIFO lock acquire
REL = 4     #: ``(REL, lock_name)`` -- lock release (hand off to waiter)

#: a segment's ``server_id`` may be None: "this thread's home server"
#: (the MTA pins each thread to one processor's issue server).


def serve_alone(server, demand: float, cap: float, t: float) -> float:
    """Closed form for a single job alone on an idle fair-share server.

    Mirrors what submit/allocate/wakeup compute for ``n_active == 1``
    bit-for-bit (``capacity / 1 == capacity``), credits the server's
    busy-time and served-work statistics, and returns the completion
    time.  ``server`` is a live :class:`FairShareServer`.
    """
    rate = cap if cap <= server.capacity else server.capacity
    dt = demand / rate
    server.busy_time += dt
    server.total_served += rate * dt
    return t + dt


def convoy_schedule(start: float, n: int, delta: float) -> np.ndarray:
    """Completion times of ``n`` serialized identical critical sections.

    The closed form of a lock convoy: pass ``i`` (1-based) holds the
    lock for ``delta`` and completes at ``start + i * delta``.
    """
    return start + np.arange(1, n + 1, dtype=np.float64) * delta


def span_union_length(spans: Sequence[float]) -> float:
    """Total length of the union of ``[start, end, start, end, ...]``.

    The work-queue solver computes each uncontended-server job as a
    closed-form span; the server's busy time is the measure of the
    union of those spans (the event-stepped engine accumulates the
    same quantity as per-event ``dt`` while the server is non-empty).
    Spans may overlap and arrive in any start order.
    """
    if not spans:
        return 0.0
    a = np.asarray(spans, dtype=np.float64).reshape(-1, 2)
    order = np.argsort(a[:, 0], kind="stable")
    starts = a[order, 0]
    cover = np.maximum.accumulate(a[order, 1])
    gaps = starts[1:] - cover[:-1]
    total = float(cover[-1] - starts[0])
    pos = gaps[gaps > 0.0]
    if pos.size:
        total -= float(pos.sum())
    return total


class ScalarBatchServer:
    """Interpreted mirror of one fair-share server for a small cohort.

    Jobs live in a dict keyed by thread slot (insertion-ordered, like
    ``FairShareServer._jobs``); the allocation, advance and completion
    arithmetic is the DES server's, operation for operation.  A job
    may carry a *weight* -- identical lockstep members folded into one
    entry -- which scales the fair-share divisor and the served-work
    accounting but leaves every per-member float identical.

    Two standing optimizations, both exact:

    * a **uniform-cap lane**: while every live cap is identical the
      per-job rate is one shared scalar, the flush is O(1) (plus the
      incremental minimum tracked in ``_m``), and the advance skips
      per-job rate lookups;
    * an **indexed finish-time frontier**: the fused advance scan in
      :meth:`finish` tracks the two smallest remaining works, so when
      only the minimum job completes (the common case) the collection
      pass over all slots is skipped entirely -- bit-identical to the
      full scan, which still runs whenever the batching tolerance
      could group more than one job.
    """

    __slots__ = ("capacity", "n", "due", "busy_time", "total_served",
                 "_jobs", "_last", "_dirty", "_urate", "_cap0",
                 "_capsok", "_m")

    def __init__(self, capacity: float, n_slots: int, start: float):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        #: slot -> [remaining, ecap, arrival_seq, rate, weight]
        self._jobs: dict[int, list] = {}
        self.n = 0               # live members (sum of weights)
        self.due = _INF          # absolute next-completion time
        self.busy_time = 0.0
        self.total_served = 0.0
        self._last = start
        self._dirty = False
        self._urate = 0.0        # shared rate; 0 = heterogeneous lane
        self._cap0: Optional[float] = None  # first cap since last empty
        self._capsok = True      # every live cap equals _cap0
        self._m: Optional[float] = None  # min remaining at _last

    @property
    def has_pending(self) -> bool:
        return False

    def add(self, slot: int, demand: float, cap: Optional[float],
            seq: int, now: float, weight: int = 1) -> None:
        if now != self._last:
            self._advance_to(now)
        ecap = cap if cap is not None else _INF
        self._jobs[slot] = [demand, ecap, seq, 0.0, weight]
        self.n += weight
        if self._cap0 is None:
            self._cap0 = ecap
        elif ecap != self._cap0:
            self._capsok = False
        if self._m is not None and demand < self._m:
            self._m = demand
        self._dirty = True

    def sync(self, now: float) -> None:
        """Advance lazily-stored remaining work to ``now``."""
        self._advance_to(now)

    def _advance_to(self, now: float) -> None:
        dt = now - self._last
        self._last = now
        jobs = self._jobs
        if dt <= 0 or not jobs:
            return
        r = self._urate
        if r:
            rdt = r * dt
            for job in jobs.values():
                job[0] -= rdt
            self.total_served += rdt * self.n
            if self._m is not None:
                self._m -= rdt
        else:
            served_total = 0.0
            for job in jobs.values():
                served = job[3] * dt
                job[0] -= served
                served_total += served * job[4]
            self.total_served += served_total
            self._m = None
        self.busy_time += dt

    def finish(self, now: float) -> list[tuple[int, int]]:
        """Completed ``(arrival_seq, slot)`` pairs at time ``now``."""
        jobs = self._jobs
        # advance inlined: finish runs once per completion event; the
        # same fused scan tracks the two smallest remaining works (the
        # finish-time frontier) so the common single-completion case
        # never rescans the slots
        dt = now - self._last
        self._last = now
        m = _INF
        m2 = _INF
        slot_m = -1
        seq_m = -1
        if dt > 0:
            r = self._urate
            if r:
                rdt = r * dt
                self.total_served += rdt * self.n
                for slot, job in jobs.items():
                    v = job[0] - rdt
                    job[0] = v
                    if v < m:
                        m2 = m
                        m = v
                        slot_m = slot
                        seq_m = job[2]
                    elif v < m2:
                        m2 = v
            else:
                served_total = 0.0
                for slot, job in jobs.items():
                    served = job[3] * dt
                    v = job[0] - served
                    job[0] = v
                    served_total += served * job[4]
                    if v < m:
                        m2 = m
                        m = v
                        slot_m = slot
                        seq_m = job[2]
                    elif v < m2:
                        m2 = v
                self.total_served += served_total
            self.busy_time += dt
        else:
            for slot, job in jobs.items():
                v = job[0]
                if v < m:
                    m2 = m
                    m = v
                    slot_m = slot
                    seq_m = job[2]
                elif v < m2:
                    m2 = v
        threshold = m * (1.0 + _EPS)
        if threshold < _EPS:
            threshold = _EPS
        self._dirty = True
        if m2 > threshold:
            # frontier fast path: only the minimum job is inside the
            # batching tolerance
            job = jobs.pop(slot_m)
            self.n -= job[4]
            if not jobs:
                self._cap0 = None
                self._capsok = True
                self._m = None
            else:
                self._m = m2
            return [(seq_m, slot_m)]
        out = []
        mk = _INF
        for slot, job in jobs.items():
            if job[0] <= threshold:
                out.append((job[2], slot))
            elif job[0] < mk:
                mk = job[0]
        for _sq, slot in out:
            self.n -= jobs.pop(slot)[4]
        if not jobs:
            self._cap0 = None
            self._capsok = True
            self._m = None
        else:
            self._m = mk
        return out

    def flush(self, now: float) -> None:
        """Recompute rates and the next completion time if stale."""
        if not self._dirty:
            return
        self._dirty = False
        jobs = self._jobs
        if not jobs:
            self.due = _INF
            self._cap0 = None
            self._capsok = True
            self._urate = 0.0
            self._m = None
            return
        capacity = self.capacity
        if self._capsok:
            # uniform-cap lane: one shared rate, O(1) given the
            # incrementally-maintained minimum
            cap0 = self._cap0
            share = capacity / self.n
            rate = cap0 if cap0 <= share else share
            self._urate = rate
            m = self._m
            if m is None:
                m = _INF
                for job in jobs.values():
                    if job[0] < m:
                        m = job[0]
                self._m = m
            delay = m / rate if rate > 0 else _INF
            if delay < 0.0:
                delay = 0.0
            self.due = self._last + delay
            return
        self._urate = 0.0
        self._m = None
        groups: dict[float, list] = {}
        for job in jobs.values():
            grp = groups.get(job[1])
            if grp is None:
                groups[job[1]] = [job]
            else:
                grp.append(job)
        left = capacity
        n_left = self.n
        delay = _INF
        for ecap in sorted(groups):
            for job in groups[ecap]:
                share = left / n_left
                rate = ecap if ecap <= share else share
                job[3] = rate
                w = job[4]
                left -= rate * w
                n_left -= w
                if rate > 0:
                    d = job[0] / rate
                    if d < delay:
                        delay = d
        if delay < 0.0:
            delay = 0.0
        self.due = self._last + delay

    # -- convoy-drain replication hooks --------------------------------
    def drain_state(self) -> tuple[dict[int, float], float, float]:
        """Per-slot remaining work plus accumulators, at ``_last``."""
        return ({slot: job[0] for slot, job in self._jobs.items()},
                self.busy_time, self.total_served)

    def drain_apply(self, k: int, decs: dict[int, float],
                    busy_dec: float, served_dec: float,
                    t_end: float) -> None:
        """Replay ``k`` measured critical-section passes arithmetically."""
        jobs = self._jobs
        for slot, dec in decs.items():
            jobs[slot][0] -= k * dec
        self.busy_time += k * busy_dec
        self.total_served += k * served_dec
        self._last = t_end
        self._m = None
        self._dirty = True


def _water_fill(caps: np.ndarray, capacity: float,
                weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Water-filling allocation over heterogeneous per-job caps.

    Same fill order as ``FairShareServer._allocate``: distinct caps
    ascending.  A whole group is either capped (each job gets exactly
    its cap) or share-limited; in the share-limited regime every
    remaining job receives the equal split of the leftover capacity,
    which matches the DES sequential chain up to float rounding.
    ``weights`` (member multiplicities) scale the divisor and the
    capacity consumed by capped groups.
    """
    order = np.argsort(caps, kind="stable")
    sorted_caps = caps[order]
    rates = np.empty_like(caps)
    left = capacity
    if weights is None:
        wsorted = None
        n_left = caps.size
    else:
        wsorted = weights[order]
        n_left = int(wsorted.sum())
    uniq, counts = np.unique(sorted_caps, return_counts=True)
    start = 0
    for c, k in zip(uniq, counts):
        share = left / n_left
        if c <= share:
            k = int(k)
            rates[order[start:start + k]] = c
            nmem = k if wsorted is None else int(wsorted[start:start + k].sum())
            left -= c * nmem
            n_left -= nmem
            start += k
        else:
            rates[order[start:]] = share
            break
    return rates


class BatchServer:
    """Numpy mirror of one fair-share server for a large cohort.

    Slots are thread ids; a thread has at most one job on a given
    server at a time (the thread programs the machines generate always
    block on a submission before issuing the next one to the same
    server).  Submissions are buffered and applied vectorized at the
    next :meth:`flush` -- all adds between flushes happen at the same
    event time, so deferring them changes nothing.  Jobs carry member
    weights exactly like :class:`ScalarBatchServer`.

    When every active job gets the same rate (uniform caps, or all
    share-limited -- by far the common regimes) the server runs a
    scalar-rate lane that advances remaining work with one vector
    subtraction per event *and keeps the arrays sorted by remaining
    work*: under one shared rate the ordering is invariant, so the
    completion batch is a prefix of the sorted arrays -- a sorted
    finish-time frontier found by binary search and removed by
    slicing, instead of a full-array compare/compress per event.
    """

    __slots__ = ("capacity", "n", "due", "busy_time", "total_served",
                 "_slots", "_rem", "_caps", "_seq", "_w", "_rates",
                 "_rate", "_mincap", "_last", "_dirty", "_pend",
                 "_wlive", "_sorted")

    def __init__(self, capacity: float, n_slots: int, start: float):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self.n = 0
        self.due = _INF
        self.busy_time = 0.0
        self.total_served = 0.0
        # compact, membership-aligned arrays (only live jobs)
        self._slots: Optional[np.ndarray] = None
        self._rem: Optional[np.ndarray] = None
        self._caps: Optional[np.ndarray] = None
        self._seq: Optional[np.ndarray] = None
        self._w: Optional[np.ndarray] = None
        self._rates: Optional[np.ndarray] = None   # heterogeneous lane
        self._rate = 0.0                           # scalar lane
        self._mincap = _INF     # lower bound on every cap ever submitted
        self._last = start
        self._dirty = False
        self._pend: list[tuple[int, float, float, int, int]] = []
        self._wlive = 0         # live members already merged into arrays
        self._sorted = False    # arrays ascending by remaining work

    @property
    def has_pending(self) -> bool:
        return bool(self._pend)

    def add(self, slot: int, demand: float, cap: Optional[float],
            seq: int, now: float, weight: int = 1) -> None:
        # `now` is always the engine's current event time; the buffered
        # submission takes effect at the flush closing this event.
        c = cap if cap is not None else _INF
        if c < self._mincap:
            self._mincap = c
        self._pend.append((slot, demand, c, seq, weight))
        self.n += weight
        self._dirty = True

    def sync(self, now: float) -> None:
        """Advance lazily-stored remaining work to ``now``."""
        self._advance_to(now)

    def _advance_to(self, now: float) -> None:
        dt = now - self._last
        self._last = now
        rem = self._rem
        if dt <= 0 or rem is None or rem.size == 0:
            return
        rate = self._rate
        if rate:
            rem -= rate * dt
            self.total_served += rate * dt * self._wlive
        else:
            served = self._rates * dt
            rem -= served
            self.total_served += float((served * self._w).sum())
        self.busy_time += dt

    def finish(self, now: float) -> list[tuple[int, int]]:
        """Completed ``(arrival_seq, slot)`` pairs at time ``now``.

        Applies the DES completion batching rule: every job whose
        remaining work is within 1e-9 relative of the minimum (floored
        at 1e-9 absolute) finishes together.
        """
        # advance inlined: finish is called once per completion event
        dt = now - self._last
        self._last = now
        rem = self._rem
        if dt > 0:
            rate = self._rate
            if rate:
                rem -= rate * dt
                self.total_served += rate * dt * self._wlive
            else:
                served = self._rates * dt
                rem -= served
                self.total_served += float((served * self._w).sum())
            self.busy_time += dt
        self._dirty = True
        if self._sorted:
            # sorted finish-time frontier: the batch is a prefix of
            # the remaining-work order, found by binary search
            threshold = float(rem[0]) * (1.0 + _EPS)
            if threshold < _EPS:
                threshold = _EPS
            k = int(np.searchsorted(rem, threshold, side="right"))
            out = list(zip(self._seq[:k].tolist(),
                           self._slots[:k].tolist()))
            w_out = int(self._w[:k].sum())
            self._slots = self._slots[k:]
            self._rem = rem[k:]
            if self._caps is not None:
                self._caps = self._caps[k:]
            self._seq = self._seq[k:]
            self._w = self._w[k:]
            self.n -= w_out
            self._wlive -= w_out
            return out
        threshold = float(rem.min()) * (1.0 + _EPS)
        if threshold < _EPS:
            threshold = _EPS
        mask = rem <= threshold
        out = list(zip(self._seq[mask].tolist(),
                       self._slots[mask].tolist()))
        w_out = int(self._w[mask].sum())
        keep = ~mask
        self._slots = self._slots[keep]
        self._rem = rem[keep]
        if self._caps is not None:
            self._caps = self._caps[keep]
        self._seq = self._seq[keep]
        self._w = self._w[keep]
        self.n -= w_out
        self._wlive -= w_out
        return out

    def flush(self, now: float) -> None:
        """Apply buffered submissions and recompute rates and the next
        completion time if stale."""
        if not self._dirty:
            return
        self._dirty = False
        self._advance_to(now)
        pend = self._pend
        if pend:
            slots = np.array([p[0] for p in pend], dtype=np.int64)
            dem = np.array([p[1] for p in pend])
            # an entirely uncapped server (e.g. the network) never
            # materializes a caps array at all
            caps = (np.array([p[2] for p in pend])
                    if self._mincap < _INF else None)
            seqs = np.array([p[3] for p in pend], dtype=np.int64)
            ws = np.array([p[4] for p in pend], dtype=np.int64)
            self._wlive += int(ws.sum())
            pend.clear()
            self._sorted = False
            if self._rem is None or self._rem.size == 0:
                self._slots, self._rem = slots, dem
                self._caps, self._seq, self._w = caps, seqs, ws
            else:
                if caps is not None:
                    old = (self._caps if self._caps is not None
                           else np.full(self._rem.size, _INF))
                    self._caps = np.concatenate((old, caps))
                self._slots = np.concatenate((self._slots, slots))
                self._rem = np.concatenate((self._rem, dem))
                self._seq = np.concatenate((self._seq, seqs))
                self._w = np.concatenate((self._w, ws))
        rem = self._rem
        k = 0 if rem is None else rem.size
        if k == 0:
            self.due = _INF
            self._slots = self._rem = self._caps = self._seq = None
            self._w = self._rates = None
            self._rate = 0.0
            self._wlive = 0
            self._sorted = False
            return
        capacity = self.capacity
        share = capacity / self.n
        if self._mincap >= share:
            # every job is share-limited: equal split, which is what
            # the FairShareServer water-fill computes sequentially
            self._rate = share
            self._rates = None
        else:
            caps = self._caps
            cmin = float(caps.min())
            if cmin >= share:
                self._rate = share
                self._rates = None
            else:
                cmax = float(caps.max())
                if cmin == cmax:
                    # uniform caps below the fair share: everyone capped
                    self._rate = cmin
                    self._rates = None
                elif float((caps * self._w).sum()) <= capacity:
                    # no job is share-limited: everyone runs at its cap
                    self._rate = 0.0
                    self._rates = caps
                else:
                    self._rate = 0.0
                    self._rates = _water_fill(caps, capacity, self._w)
        if self._rate:
            if not self._sorted:
                order = np.argsort(rem, kind="stable")
                self._slots = self._slots[order]
                self._rem = rem = rem[order]
                if self._caps is not None:
                    self._caps = self._caps[order]
                self._seq = self._seq[order]
                self._w = self._w[order]
                self._sorted = True
            delay = float(rem[0]) / self._rate
        else:
            self._sorted = False
            delay = float((rem / self._rates).min())
        if delay < 0.0:
            delay = 0.0
        self.due = self._last + delay

    # -- convoy-drain replication hooks --------------------------------
    def drain_state(self) -> tuple[dict[int, float], float, float]:
        """Per-slot remaining work plus accumulators, at ``_last``."""
        jobs: dict[int, float] = {}
        if self._rem is not None:
            for slot, r in zip(self._slots.tolist(), self._rem.tolist()):
                jobs[slot] = r
        return jobs, self.busy_time, self.total_served

    def drain_apply(self, k: int, decs: dict[int, float],
                    busy_dec: float, served_dec: float,
                    t_end: float) -> None:
        """Replay ``k`` measured critical-section passes arithmetically."""
        if decs and self._rem is not None:
            index = {s: i for i, s in enumerate(self._slots.tolist())}
            for slot, dec in decs.items():
                self._rem[index[slot]] -= k * dec
        self.busy_time += k * busy_dec
        self.total_served += k * served_dec
        self._last = t_end
        self._sorted = False
        self._dirty = True


def make_server(capacity: float, n_slots: int, start: float):
    """The batch-server implementation appropriate for a cohort size."""
    if n_slots <= SCALAR_MAX_SLOTS:
        return ScalarBatchServer(capacity, n_slots, start)
    return BatchServer(capacity, n_slots, start)


class _Thread:
    __slots__ = ("segs", "idx", "own", "outstanding", "weight",
                 "armed_lock", "armed_idx")

    def __init__(self, segs: list, own: int, weight: int = 1):
        self.segs = segs
        self.idx = 0
        self.own = own          # home server id (None segments resolve here)
        self.outstanding = 0    # unfinished parts of the current segment
        self.weight = weight    # lockstep members this entity represents
        self.armed_lock = None  # lock held but not yet contended-split
        self.armed_idx = 0


class _LockState:
    __slots__ = ("holder", "queue", "qlen", "waits", "wait_time",
                 "max_depth", "hist")

    def __init__(self) -> None:
        self.holder: Optional[int] = None
        #: entries [cid, resume_idx, count, t_enqueue, parked]; one
        #: entry covers `count` identical members queued back to back
        self.queue: deque[list] = deque()
        self.qlen = 0           # waiting members across all entries
        self.waits = 0
        self.wait_time = 0.0
        # convoy statistics -- the same formula Resource applies: depth
        # seen by each contended acquire, max + power-of-two histogram
        self.max_depth = 0
        self.hist: dict[int, int] = {}


class _DrainWatch:
    """One critical-section pass being measured for replication."""

    __slots__ = ("lock_name", "tid", "segs", "idx", "t_grant", "snaps",
                 "foreign")

    def __init__(self, lock_name, tid, segs, idx, t_grant, snaps):
        self.lock_name = lock_name
        self.tid = tid          # the measured holder
        self.segs = segs        # class program identity
        self.idx = idx          # resume index of the queued siblings
        self.t_grant = t_grant
        self.snaps = snaps      # per-server drain_state() at grant
        self.foreign = False    # an unrelated event interleaved


class CohortEngine:
    """Replays one homogeneous parallel region without DES processes.

    Parameters
    ----------
    start_time:
        Absolute simulation time at which the region's threads start
        (after the parent has paid thread-creation costs).
    capacities:
        Aggregate capacity of each server, indexed by the ``server_id``
        the segments use.
    programs:
        One compiled segment list per thread (empty for work-queue
        workers, which pull everything from ``queue``).
    own_sids:
        Per-thread home server id (defaults to 0) resolving segments
        whose ``server_id`` is None.
    queue:
        Optional FIFO of compiled work items; a thread that exhausts
        its segments pops the next item, exactly like the DES worker
        loop over ``Store.try_get``.
    closed_form:
        Enable the closed-form layers (class compression, convoy-drain
        replication, single-class regions).  ``None`` reads the
        ``REPRO_FORCE_CLOSED_FORM`` environment escape hatch.
    """

    def __init__(self, start_time: float, capacities: Sequence[float],
                 programs: Sequence[list],
                 own_sids: Optional[Sequence[int]] = None,
                 queue: Optional[deque] = None,
                 closed_form: Optional[bool] = None):
        if closed_form is None:
            closed_form = closed_form_enabled()
        self.closed_form = closed_form
        n = len(programs)
        self.n_members = n
        self.now = float(start_time)
        self.queue = queue
        threads: list[_Thread] = []
        if closed_form and queue is None and n > 1:
            # class compression: identical (program, home-server)
            # threads stay in perfect lockstep under the batch
            # arithmetic, so one weighted entity replays all of them
            groups: dict = {}
            for i, segs in enumerate(programs):
                own = own_sids[i] if own_sids is not None else 0
                key = (own, tuple(segs))
                th = groups.get(key)
                if th is None:
                    th = _Thread(list(segs), own)
                    groups[key] = th
                    threads.append(th)
                else:
                    th.weight += 1
        else:
            threads = [
                _Thread(list(segs),
                        own_sids[i] if own_sids is not None else 0)
                for i, segs in enumerate(programs)
            ]
        self.threads = threads
        self.servers = [make_server(c, len(threads), self.now)
                        for c in capacities]
        self.timers: list[tuple[float, int, int]] = []
        self.locks: dict[str, _LockState] = {}
        self.n_done = 0
        self._seq = 0
        self._grants: deque[int] = deque()
        #: server ids receiving submissions since the last flush point;
        #: lets the many-server event loop flush only what changed
        self._touched: list[int] = []
        self._watch: Optional[_DrainWatch] = None
        self._drain: Optional[tuple] = None
        self._tail_ok: dict[tuple[int, int], bool] = {}
        #: per-member completion times, in completion order
        self.done_times: list[float] = []
        #: engine-choice accounting threaded into ``RunResult.stats``
        self.stats = {"members": n, "classes": len(threads),
                      "closed_form": 0, "drained_grants": 0,
                      "stepped_grants": 0, "events": 0,
                      "queue_solver": 0}

    # ------------------------------------------------------------------
    def run(self) -> float:
        """Drive the region to completion; returns its absolute end time."""
        if self.closed_form and self.n_members == 1:
            # a lone thread (e.g. a one-worker work queue) is entirely
            # serial: every segment runs alone, closed form
            self.stats["closed_form"] = 1
            return self._run_single_member()
        if (self.closed_form and self.queue is None
                and len(self.threads) == 1):
            end = self._run_single_class()
            if end is not None:
                self.stats["closed_form"] = 1
                return end
        if self.closed_form and self.queue is not None:
            plan = self._queue_plan()
            if plan is not None:
                return self._run_queue(plan)
        # threads start in creation order (DES bootstrap order)
        for tid in range(len(self.threads)):
            self._advance_thread(tid)
        self._drain_grants()
        servers = self.servers
        for s in servers:
            if s._dirty:
                s.flush(self.now)
        # a flushed server's `due` is authoritative (inf when idle), so
        # the event loops below never need to consult `n`
        if len(servers) == 2:
            return self._run_two(self.n_members)
        return self._run_many(self.n_members)

    # ------------------------------------------------------------------
    def _run_single_member(self) -> float:
        """Closed-form replay of a one-thread region.

        With a single member every server holds at most one job, so
        each segment is a lone submission -- the exact ``serve_alone``
        arithmetic -- locks are always free (double-acquire is the
        deadlock the event loop would starve on), and a work queue
        drains item by item with no contention.
        """
        th = self.threads[0]
        servers = self.servers
        own = th.own
        t = self.now
        q = self.queue
        segs = th.segs
        while True:
            for seg in segs:
                op = seg[0]
                if op == SRV:
                    _op, sid, demand, cap = seg
                    if demand > 0:
                        s = servers[own if sid is None else sid]
                        t = serve_alone(
                            s, demand,
                            cap if cap is not None else s.capacity, t)
                elif op == PAR:
                    end = t
                    for sid, demand, cap in seg[1]:
                        if demand > 0:
                            s = servers[own if sid is None else sid]
                            e = serve_alone(
                                s, demand,
                                cap if cap is not None else s.capacity, t)
                            if e > end:
                                end = e
                    t = end
                elif op == SLEEP:
                    if seg[1] > 0:
                        t += seg[1]
                elif op == ACQ:
                    lk = self._lock(seg[1])
                    if lk.holder is not None:
                        raise DesError("cohort region deadlocked")
                    lk.holder = 0
                elif op == REL:
                    self._lock(seg[1]).holder = None
                else:  # pragma: no cover - compilers emit known opcodes
                    raise DesError(f"unknown cohort segment {seg!r}")
            if q:
                segs = q.popleft()
            else:
                break
        self.now = t
        self.n_done = 1
        self.done_times = [t]
        return t

    # ------------------------------------------------------------------
    def _run_single_class(self) -> Optional[float]:
        """Closed-form replay of a single-class region, or None.

        Eligible shape: leading serve/sleep segments (the lockstep
        span) followed by at most one trailing critical section whose
        body is serve/sleep only and whose REL is the final segment
        (the convoy span).  Anything else returns None and the region
        event-steps.
        """
        th = self.threads[0]
        segs = th.segs
        pre = segs
        hold = None
        lock_name = None
        for i, seg in enumerate(segs):
            op = seg[0]
            if op == ACQ:
                if not segs or segs[-1][0] != REL or segs[-1][1] != seg[1]:
                    return None
                for inner in segs[i + 1:-1]:
                    if inner[0] in (ACQ, REL):
                        return None
                pre = segs[:i]
                hold = segs[i + 1:-1]
                lock_name = seg[1]
                break
            if op == REL:
                return None
        n = th.weight
        servers = self.servers
        own = th.own

        def walk(seg_list, n_share, mult, t):
            # one pass over serve/sleep segments with every member
            # receiving min(cap, capacity / n_share); credits busy and
            # served statistics `mult` times (serialized passes don't
            # overlap).  Returns None on a stalled zero-rate job.
            for seg in seg_list:
                op = seg[0]
                if op == SRV:
                    _op, sid, demand, cap = seg
                    if demand <= 0:
                        continue
                    s = servers[own if sid is None else sid]
                    share = s.capacity / n_share
                    c = cap if cap is not None else _INF
                    rate = c if c <= share else share
                    if rate <= 0:
                        return None
                    dt = demand / rate
                    s.busy_time += dt * mult
                    s.total_served += rate * dt * n_share * mult
                    t += dt
                elif op == PAR:
                    end = t
                    for sid, demand, cap in seg[1]:
                        if demand <= 0:
                            continue
                        s = servers[own if sid is None else sid]
                        share = s.capacity / n_share
                        c = cap if cap is not None else _INF
                        rate = c if c <= share else share
                        if rate <= 0:
                            return None
                        dt = demand / rate
                        s.busy_time += dt * mult
                        s.total_served += rate * dt * n_share * mult
                        e = t + dt
                        if e > end:
                            end = e
                    t = end
                elif op == SLEEP:
                    if seg[1] > 0:
                        t += seg[1]
                else:  # pragma: no cover - shape pre-validated
                    return None
            return t

        t1 = walk(pre, float(n), 1, self.now)
        if t1 is None:
            return None
        if hold is None:
            self.now = t1
            self.n_done = n
            self.done_times = [t1] * n
            return t1
        # the convoy: every member reaches ACQ at t1; each pass runs
        # alone (n_share == 1) and the k-th completes at t1 + k * delta
        t_one = walk(hold, 1.0, n, t1)
        if t_one is None:
            return None
        delta = t_one - t1
        lk = self._lock(lock_name)
        if delta <= 0 or n == 1:
            # a zero-length critical section is passed through
            # synchronously by every member -- no contention recorded,
            # matching the event-stepped engine and the DES lock
            end = t1 if delta <= 0 else t_one
            self.now = end
            self.n_done = n
            self.done_times = [end] * n
            return end
        times = convoy_schedule(t1, n, delta)
        lk.waits += n - 1
        lk.wait_time += delta * (n * (n - 1) / 2.0)
        if n - 1 > lk.max_depth:
            lk.max_depth = n - 1
        d = 1
        while d <= n - 1:
            hi = min(2 * d - 1, n - 1)
            lk.hist[d] = lk.hist.get(d, 0) + (hi - d + 1)
            d <<= 1
        end = float(times[-1])
        self.now = end
        self.n_done = n
        self.done_times = times.tolist()
        return end

    # ------------------------------------------------------------------
    def _queue_plan(self) -> Optional[int]:
        """Eligibility scan for the closed-form work-queue solver.

        Returns the *stepped* server id (the one whose rate genuinely
        varies with membership), ``-1`` when every server is
        uncontended, ``2`` when the region takes locks (both servers
        are then event-stepped, see below), or ``None`` when the
        region must event-step: more than two servers, PAR segments,
        mixed home servers, or two servers that can both be contended.

        A server is *uncontended* when its largest per-job cap fits
        under ``capacity / n_workers`` (float division, the exact
        comparison the batch servers make): the fair share can never
        drop below any cap, so every allocation resolves to
        ``rate == cap`` and the job's duration is closed-form.

        Folding an uncontended server replaces the batch server's
        incremental ``remaining -= rate * dt`` accrual with the exact
        ``demand / cap`` span, which shifts completion times by ulps.
        That is inside every tolerance the timeline is held to -- but
        lock statistics are *integers*, and an ulp shift can flip an
        exact tie between a release and a third party's acquire,
        changing who waits.  So any region that takes locks steps both
        servers with the real batch arithmetic (bit-identical to the
        event-stepped engine by construction) and only lock-free
        regions fold.
        """
        if len(self.servers) != 2:
            return None
        threads = self.threads
        own0 = threads[0].own
        for th in threads:
            if th.own != own0:
                return None
        maxcap = [0.0, 0.0]
        locked = False

        def scan(segs) -> bool:
            nonlocal locked
            for seg in segs:
                op = seg[0]
                if op == SRV:
                    _op, sid, demand, cap = seg
                    if demand <= 0:
                        continue
                    if sid is None:
                        sid = own0
                    c = cap if cap is not None else _INF
                    if c > maxcap[sid]:
                        maxcap[sid] = c
                elif op == ACQ:
                    locked = True
                elif op == PAR:
                    return False
                elif op not in (SLEEP, REL):
                    return False
            return True

        for segs in (th.segs for th in threads):
            if not scan(segs):
                return None
        for item in self.queue:
            if not scan(item):
                return None
        k = self.n_members
        unc = [maxcap[sid] <= self.servers[sid].capacity / k
               for sid in (0, 1)]
        if not (unc[0] or unc[1]):
            return None
        if locked:
            return 2
        if unc[0] and unc[1]:
            return -1
        return 1 if unc[0] else 0

    def _run_queue(self, stepped: int) -> float:
        """Closed-form/bus-coupled replay of a work-queue region.

        Jobs on folded (uncontended) servers run at exactly their
        cap, so each segment's completion time is the arithmetic
        ``demand / cap`` span -- no fair-share rebalancing, no server
        flushes.  ``stepped`` selects which servers keep the real
        batch-server arithmetic: a contended server's id (its
        fair-share rate really does change at every membership
        event), ``-1`` for none, or ``2`` for both -- the
        lock-bearing case, where folding's ulp-level timeline shifts
        could flip an exact tie and change the integer lock
        statistics (see :meth:`_queue_plan`).  Lock handling (FIFO
        grants, contention statistics) reuses the event-stepped
        formulas verbatim.

        Event ordering mirrors the stepped loop *exactly*: every
        time-consuming segment is sequenced at its simulated start
        (one arrival timer per segment, seq from the global ``_seq``
        counter), all completions at one time are processed in
        submission order, and lock grants drain after the batch like
        ``_drain_grants``.  Sequencing per segment -- rather than
        folding a run of segments into one arrival stamped at its
        scheduling event -- is what keeps simultaneous completions
        (exact ties on the demand grid, e.g. a lock release and a
        third party's acquire at the same instant) ordered identically
        to the stepped engine, so the lock statistics agree exactly,
        not just the timeline.
        """
        servers = self.servers
        threads = self.threads
        q = self.queue
        live0 = servers[0] if stepped in (0, 2) else None
        live1 = servers[1] if stepped in (1, 2) else None
        live = (live0, live1)
        arrivals: list[tuple[float, int, int]] = []
        granted: deque[int] = deque()
        #: flat [start, end, ...] per folded server, unioned at the end
        spans: tuple[list[float], list[float]] = ([], [])
        served = [0.0, 0.0]
        stats = self.stats
        now = self.now

        def advance(tid: int) -> None:
            th = threads[tid]
            segs = th.segs
            i = th.idx
            while True:
                if i >= len(segs):
                    if q:
                        segs = th.segs = q.popleft()
                        i = 0
                        continue
                    th.idx = i
                    self.n_done += 1
                    self.done_times.append(now)
                    return
                seg = segs[i]
                op = seg[0]
                if op == SRV:
                    _op, sid, demand, cap = seg
                    if demand <= 0:
                        i += 1
                        continue
                    if sid is None:
                        sid = th.own
                    s = self._seq
                    self._seq = s + 1
                    s_live = live[sid]
                    if s_live is not None:
                        s_live.add(tid, demand, cap, s, now)
                    else:
                        # uncontended: rate == cap exactly (plan
                        # checked cap <= capacity / n_workers, the
                        # worst share); completes arithmetically
                        dt = demand / cap
                        sp = spans[sid]
                        sp.append(now)
                        sp.append(now + dt)
                        served[sid] += cap * dt
                        heappush(arrivals, (now + dt, s, tid))
                    th.idx = i + 1
                    return
                elif op == SLEEP:
                    if seg[1] > 0:
                        s = self._seq
                        self._seq = s + 1
                        heappush(arrivals, (now + seg[1], s, tid))
                        th.idx = i + 1
                        return
                    i += 1
                elif op == ACQ:
                    lk = self._lock(seg[1])
                    i += 1
                    if lk.holder is None:
                        lk.holder = tid
                        continue
                    self._enqueue(lk, tid, i, 1, now, parked=True)
                    th.idx = i
                    return
                else:  # REL (plan rejected every other opcode)
                    lk = self._lock(seg[1])
                    lk.holder = None
                    if lk.queue:
                        head = lk.queue[0]
                        cid = head[0]
                        lk.wait_time += now - head[3]
                        lk.qlen -= 1
                        if head[2] == 1:
                            lk.queue.popleft()
                        else:  # pragma: no cover - entries are weight-1
                            head[2] -= 1
                        lk.holder = cid
                        threads[cid].idx = head[1]
                        granted.append(cid)
                        stats["stepped_grants"] += 1
                    i += 1

        # bootstrap in thread-creation order, like the stepped engine
        for tid in range(len(threads)):
            advance(tid)
        while granted:
            advance(granted.popleft())
        if live0 is not None and live0._dirty:
            live0.flush(now)
        if live1 is not None and live1._dirty:
            live1.flush(now)
        n = self.n_members
        events = 0
        while self.n_done < n:
            ta = arrivals[0][0] if arrivals else _INF
            d0 = live0.due if live0 is not None else _INF
            d1 = live1.due if live1 is not None else _INF
            t = d0 if d0 < d1 else d1
            if ta < t:
                t = ta
            if t == _INF:  # pragma: no cover - defensive
                raise DesError("cohort region deadlocked")
            events += 1
            self.now = now = t
            batch = live0.finish(t) if d0 <= t else []
            if d1 <= t:
                b1 = live1.finish(t)
                batch = batch + b1 if batch else b1
            while arrivals and arrivals[0][0] <= t:
                _t, sq, tid = heappop(arrivals)
                batch.append((sq, tid))
            if len(batch) > 1:
                batch.sort()
            for _sq, tid in batch:
                advance(tid)
            while granted:
                advance(granted.popleft())
            if live0 is not None and live0._dirty:
                live0.flush(t)
            if live1 is not None and live1._dirty:
                live1.flush(t)
        for sid in (0, 1):
            if live[sid] is not None:
                continue
            servers[sid].total_served += served[sid]
            servers[sid].busy_time += span_union_length(spans[sid])
        stats["events"] += events
        stats["queue_solver"] = 1
        if live0 is None and live1 is None:
            stats["closed_form"] = 1
        return self.now

    # ------------------------------------------------------------------
    def _run_two(self, n: int) -> float:
        """Event loop specialized for two servers (every conventional
        region -- cpu + bus -- and the single-processor MTA)."""
        s0, s1 = self.servers
        timers = self.timers
        threads = self.threads
        advance = self._advance_thread
        grants = self._grants
        touched = self._touched
        events = 0
        while self.n_done < n:
            del touched[:]  # two servers: the dirty flags suffice
            d0 = s0.due
            d1 = s1.due
            t = d0 if d0 < d1 else d1
            if timers and timers[0][0] < t:
                t = timers[0][0]
            if t == _INF:  # pragma: no cover - defensive
                raise DesError("cohort region deadlocked")
            events += 1
            self.now = t
            batch = s0.finish(t) if d0 <= t else []
            if d1 <= t:
                b1 = s1.finish(t)
                batch = batch + b1 if batch else b1
            while timers and timers[0][0] <= t:
                _t, sq, tid = heappop(timers)
                batch.append((sq, tid))
            if len(batch) > 1:
                # job-arrival order: the FIFO insertion order the DES
                # server iterates when succeeding a completion batch
                batch.sort()
            w_ = self._watch
            if w_ is not None:
                wtid = w_.tid
                for _sq, tid in batch:
                    if tid != wtid:
                        w_.foreign = True
                        break
            for _sq, tid in batch:
                th = threads[tid]
                o = th.outstanding - 1
                th.outstanding = o
                if o == 0:
                    advance(tid)
            if grants:
                self._drain_grants()
            if s0._dirty:
                s0.flush(t)
            if s1._dirty:
                s1.flush(t)
            if self._drain is not None:
                self._apply_drain()
        self.stats["events"] += events
        return self.now

    def _run_many(self, n: int) -> float:
        """Event loop for three or more servers.

        A lazy due-heap replaces the per-event scans over every
        server: flushing a server pushes ``(due, sid)``, entries whose
        due no longer matches the server are discarded on pop, and the
        ``_touched`` list names the only servers whose rates an event
        can have changed.  Pure control flow -- every float the
        servers compute is untouched, so the timeline is bit-identical
        to the scanning loop.
        """
        servers = self.servers
        timers = self.timers
        threads = self.threads
        advance = self._advance_thread
        grants = self._grants
        touched = self._touched
        del touched[:]  # bootstrap submissions are already flushed
        heap: list[tuple[float, int]] = [
            (s.due, i) for i, s in enumerate(servers) if s.due < _INF]
        heapify(heap)
        events = 0
        while self.n_done < n:
            while heap:
                d, i = heap[0]
                if servers[i].due == d:
                    break
                heappop(heap)
            t = heap[0][0] if heap else _INF
            if timers and timers[0][0] < t:
                t = timers[0][0]
            if t == _INF:  # pragma: no cover - defensive
                raise DesError("cohort region deadlocked")
            events += 1
            self.now = t
            due_ids: list[int] = []
            while heap and heap[0][0] <= t:
                d, i = heappop(heap)
                if servers[i].due == d and i not in due_ids:
                    due_ids.append(i)
            batch: list[tuple[int, int]] = []
            for i in due_ids:
                batch.extend(servers[i].finish(t))
            while timers and timers[0][0] <= t:
                _t, sq, tid = heappop(timers)
                batch.append((sq, tid))
            if len(batch) > 1:
                # job-arrival order: the FIFO insertion order the DES
                # server iterates when succeeding a completion batch
                batch.sort()
            w_ = self._watch
            if w_ is not None:
                wtid = w_.tid
                for _sq, tid in batch:
                    if tid != wtid:
                        w_.foreign = True
                        break
            for _sq, tid in batch:
                th = threads[tid]
                o = th.outstanding - 1
                th.outstanding = o
                if o == 0:
                    advance(tid)
            if grants:
                self._drain_grants()
            if touched:
                for i in touched:
                    s = servers[i]
                    if s._dirty:
                        s.flush(t)
                        if s.due < _INF:
                            heappush(heap, (s.due, i))
                del touched[:]
            for i in due_ids:
                s = servers[i]
                if s._dirty:
                    s.flush(t)
                    if s.due < _INF:
                        heappush(heap, (s.due, i))
            if self._drain is not None:
                self._apply_drain()
                # the drain flushed whatever it changed; reseed
                heap = [(s.due, i) for i, s in enumerate(servers)
                        if s.due < _INF]
                heapify(heap)
                del touched[:]
        self.stats["events"] += events
        return self.now

    # ------------------------------------------------------------------
    def total_lock_waits(self) -> int:
        return sum(lk.waits for lk in self.locks.values())

    def total_lock_wait_time(self) -> float:
        return sum(lk.wait_time for lk in self.locks.values())

    # ------------------------------------------------------------------
    def _advance_thread(self, tid: int) -> None:
        """Run a thread forward until it blocks or finishes.

        Zero-demand submissions, free lock acquires and releases are
        processed synchronously -- they advance no simulated time and
        the threads of a cohort are interchangeable, so the DES
        event-queue interleaving they would get cannot change the
        region timeline.
        """
        th = self.threads[tid]
        segs = th.segs
        i = th.idx
        servers = self.servers
        now = self.now
        seq = self._seq
        while True:
            if i >= len(segs):
                q = self.queue
                if q:
                    segs = th.segs = q.popleft()
                    i = 0
                    continue
                th.idx = i
                self._seq = seq
                self.n_done += th.weight
                dts = self.done_times
                for _ in range(th.weight):
                    dts.append(now)
                return
            seg = segs[i]
            i += 1
            op = seg[0]
            if op == SRV:
                _op, sid, demand, cap = seg
                if demand > 0:
                    if sid is None:
                        sid = th.own
                    if th.armed_lock is not None and th.weight > 1:
                        self._split_armed(th, tid, now)
                    servers[sid].add(tid, demand, cap, seq, now, th.weight)
                    self._touched.append(sid)
                    seq += 1
                    th.outstanding = 1
                    th.idx = i
                    self._seq = seq
                    return
            elif op == PAR:
                k = 0
                for sid, demand, cap in seg[1]:
                    if demand > 0:
                        if sid is None:
                            sid = th.own
                        if k == 0 and th.armed_lock is not None \
                                and th.weight > 1:
                            self._split_armed(th, tid, now)
                        servers[sid].add(tid, demand, cap, seq, now,
                                         th.weight)
                        self._touched.append(sid)
                        seq += 1
                        k += 1
                if k:
                    th.outstanding = k
                    th.idx = i
                    self._seq = seq
                    return
            elif op == SLEEP:
                d = seg[1]
                if d > 0:
                    if th.armed_lock is not None and th.weight > 1:
                        self._split_armed(th, tid, now)
                    heappush(self.timers, (now + d, seq, tid))
                    self._seq = seq + 1
                    th.outstanding = 1
                    th.idx = i
                    return
            elif op == ACQ:
                lk = self._lock(seg[1])
                if lk.holder is None:
                    lk.holder = tid
                    if th.weight > 1 and th.armed_lock is None:
                        # run the whole class through optimistically;
                        # the trailing members split into the queue
                        # only if the critical section actually blocks
                        th.armed_lock = seg[1]
                        th.armed_idx = i
                else:
                    # contended: counted at request time, like Resource
                    self._enqueue(lk, tid, i, th.weight, now, parked=True)
                    th.idx = i
                    self._seq = seq
                    return
            elif op == REL:
                name = seg[1]
                lk = self._lock(name)
                if th.armed_lock == name:
                    # the whole class passed through synchronously:
                    # zero simulated time, no contention
                    th.armed_lock = None
                    lk.holder = None
                else:
                    lk.holder = None
                    w_ = self._watch
                    deferred = False
                    if w_ is not None and w_.tid == tid:
                        self._watch = None
                        if (lk.queue and not w_.foreign
                                and w_.lock_name == name
                                and now > w_.t_grant):
                            head = lk.queue[0]
                            if (head[1] == w_.idx
                                    and self.threads[head[0]].segs
                                    is w_.segs):
                                # measured pass matches the queued
                                # siblings: defer the hand-off and
                                # replicate once this event's server
                                # state settles
                                self._seq = seq
                                self._drain = (lk, now - w_.t_grant, w_)
                                self._seq = seq
                                deferred = True
                    if lk.queue and not deferred:
                        self._seq = seq
                        self._grant_next(lk, now)
                        seq = self._seq
            else:  # pragma: no cover - compilers emit known opcodes
                raise DesError(f"unknown cohort segment {seg!r}")

    # ------------------------------------------------------------------
    def _enqueue(self, lk: _LockState, cid: int, idx: int, w: int,
                 now: float, parked: bool) -> None:
        # the class's members arrive back to back, each seeing a queue
        # one deeper than the previous
        q0 = lk.qlen
        lk.waits += w
        depth = q0 + w
        if depth > lk.max_depth:
            lk.max_depth = depth
        hist = lk.hist
        for d in range(q0 + 1, depth + 1):
            bucket = 1 << (d.bit_length() - 1)
            hist[bucket] = hist.get(bucket, 0) + 1
        lk.queue.append([cid, idx, w, now, parked])
        lk.qlen += w

    def _split_armed(self, th: _Thread, tid: int, now: float) -> None:
        # the class entered its critical section optimistically as one
        # unit; the section blocks, so the trailing members queue
        # behind the leader exactly as individual threads would have
        lk = self.locks[th.armed_lock]
        self._enqueue(lk, tid, th.armed_idx, th.weight - 1, now,
                      parked=False)
        th.weight = 1
        th.armed_lock = None

    def _grant_next(self, lk: _LockState, now: float) -> int:
        """Hand the lock to the next queued member (FIFO)."""
        head = lk.queue[0]
        cid, idx, cnt, t0, parked = head
        lk.wait_time += now - t0
        lk.qlen -= 1
        if cnt == 1:
            lk.queue.popleft()
        else:
            head[2] = cnt - 1
        src = self.threads[cid]
        if parked and cnt == 1:
            # the last parked member is the waiting entity itself
            src.weight = 1
            granted = cid
        else:
            runner = _Thread(src.segs, src.own)
            runner.idx = idx
            granted = len(self.threads)
            self.threads.append(runner)
        lk.holder = granted
        self._grants.append(granted)
        self.stats["stepped_grants"] += 1
        if (self.closed_form and self.queue is None
                and self._watch is None and lk.queue):
            h = lk.queue[0]
            if h[0] == cid and h[1] == idx:
                self._arm_watch(lk, granted, src.segs, idx, now)
        return granted

    def _arm_watch(self, lk: _LockState, holder_tid: int, segs: list,
                   idx: int, now: float) -> None:
        """Start measuring the new holder's pass for replication."""
        if not self._convoy_tail_ok(segs, idx):
            return
        servers = self.servers
        for s in servers:
            if s.has_pending:
                return
        snaps = []
        for s in servers:
            s.sync(now)
            snaps.append(s.drain_state())
        name = next(k for k, v in self.locks.items() if v is lk)
        self._watch = _DrainWatch(name, holder_tid, segs, idx, now, snaps)

    def _convoy_tail_ok(self, segs: list, idx: int) -> bool:
        """Whether ``segs[idx:]`` is a pure critical-section tail:
        serve/sleep segments ending the program with a single REL."""
        key = (id(segs), idx)
        ok = self._tail_ok.get(key)
        if ok is None:
            ok = len(segs) > idx and segs[-1][0] == REL
            if ok:
                for seg in segs[idx:-1]:
                    if seg[0] == ACQ or seg[0] == REL:
                        ok = False
                        break
            self._tail_ok[key] = ok
        return ok

    def _apply_drain(self) -> None:
        """Replicate the measured critical-section pass over the queued
        identical members, bounded by the event horizon.

        Runs after the current event's flushes: every server's state
        is settled at ``self.now`` and no submissions are pending.  A
        pass takes ``delta`` seconds and decrements each live job's
        remaining work by the measured per-pass amount, so ``k``
        passes replay as one multiply-accumulate provided no job
        completes and no timer fires before ``now + k * delta``.
        """
        lk, delta, w_ = self._drain
        self._drain = None
        now = self.now
        head = lk.queue[0]
        cnt = head[2]
        k = cnt
        states = []
        for s, snap in zip(self.servers, w_.snaps):
            s.sync(now)
            cur_map, busy1, served1 = s.drain_state()
            snap_map, busy0, served0 = snap
            if len(cur_map) != len(snap_map):
                k = 0
                break
            dec_map = {}
            bad = False
            for slot, r0 in snap_map.items():
                r1 = cur_map.get(slot)
                if r1 is None:
                    bad = True
                    break
                dec = r0 - r1
                if dec > 0.0:
                    # stay two full passes clear of this job's
                    # completion so the batching tolerance can never
                    # group it differently than stepping would
                    kj = int(r1 / dec) - 2
                    if kj < k:
                        k = kj
                    dec_map[slot] = dec
                elif dec < 0.0:
                    bad = True
                    break
            if bad:
                k = 0
                break
            states.append((s, dec_map, busy1 - busy0, served1 - served0))
        timers = self.timers
        if k > 0 and timers:
            kt = int((timers[0][0] - now) / delta) - 1
            if kt < k:
                k = kt
        if k > 0:
            t_end = now + k * delta
            for s, dec_map, busy_d, served_d in states:
                s.drain_apply(k, dec_map, busy_d, served_d, t_end)
            head[2] = cnt - k
            lk.qlen -= k
            t0 = head[3]
            lk.wait_time += k * (now - t0) + delta * (k * (k - 1) / 2.0)
            self.n_done += k
            self.done_times.extend(
                (now + delta * np.arange(1, k + 1)).tolist())
            self.stats["drained_grants"] += k
            if head[2] == 0:
                lk.queue.popleft()
            self.now = now = t_end
        if lk.queue:
            self._grant_next(lk, now)
            self._drain_grants()
        for s in self.servers:
            if s._dirty:
                s.flush(now)

    def _drain_grants(self) -> None:
        g = self._grants
        while g:
            self._advance_thread(g.popleft())

    def _lock(self, name: str) -> _LockState:
        lk = self.locks.get(name)
        if lk is None:
            lk = self.locks[name] = _LockState()
        return lk
