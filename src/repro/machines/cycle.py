"""Cycle-level in-order CPU model for the conventional machines.

The micro-fidelity companion to :class:`~repro.machines.machine.
ConventionalMachine` (as :mod:`repro.mta.system` is to
:class:`~repro.mta.machine.MtaMachine`): executes explicit instruction
traces through a real set-associative cache with a fixed miss penalty.
Unit tests cross-validate the macro model's compute/traffic split
against this simulator on the boundary workloads (in-cache compute,
streaming sweeps, random access), pinning the whole-benchmark results
to per-reference behaviour.

The model is deliberately an idealized in-order core -- one instruction
per ``op_cycles`` plus a full ``miss_penalty`` stall per cache miss --
matching the macro model's assumption that these 1990s CPUs overlap
little of their miss latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.machines.cache import SetAssociativeCache
from repro.machines.spec import MachineSpec

#: instruction kinds understood by the core model
CORE_KINDS = ("ialu", "falu", "load", "store", "branch", "sync")


@dataclass(frozen=True)
class CoreInstruction:
    """One instruction of a trace."""

    kind: str
    addr: int = 0

    def __post_init__(self) -> None:
        if self.kind not in CORE_KINDS:
            raise ValueError(f"unknown instruction kind {self.kind!r}")
        if self.addr < 0:
            raise ValueError("negative address")

    @property
    def is_memory(self) -> bool:
        return self.kind in ("load", "store", "sync")


@dataclass(frozen=True)
class CoreStats:
    """Outcome of one trace execution."""

    cycles: float
    instructions: int
    mem_refs: int
    cache_hits: int
    cache_misses: int
    stall_cycles: float

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def miss_rate(self) -> float:
        return (self.cache_misses / self.mem_refs
                if self.mem_refs else 0.0)


class InOrderCore:
    """An in-order scalar CPU with one cache level."""

    def __init__(self, spec: MachineSpec,
                 cache: Optional[SetAssociativeCache] = None,
                 latency_factor: float = 1.0):
        if latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1")
        self.spec = spec
        self.cache = cache if cache is not None else SetAssociativeCache(
            capacity_bytes=int(spec.cache.capacity_bytes),
            line_bytes=spec.cache.line_bytes,
            assoc=spec.cache.assoc)
        #: memory-latency inflation (fault injection: a degraded bus or
        #: DRAM path serves misses slower); 1.0 = healthy
        self.latency_factor = float(latency_factor)

    @property
    def miss_penalty(self) -> float:
        """Full miss penalty in core cycles (inflated under faults)."""
        return (self.spec.mem.miss_latency_s * self.spec.core.clock_hz
                * self.latency_factor)

    def inflate_latency(self, factor: float) -> None:
        """Multiply the miss penalty by ``factor`` from now on."""
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        self.latency_factor *= factor

    def run(self, trace: Iterable[CoreInstruction]) -> CoreStats:
        """Execute a trace; returns cycle-level statistics."""
        op_cycles = self.spec.core.op_cycles
        cycles = 0.0
        stall = 0.0
        n = 0
        mem = 0
        hits0, misses0 = self.cache.hits, self.cache.misses
        for ins in trace:
            n += 1
            cycles += op_cycles.get(ins.kind, 1.0)
            if ins.is_memory:
                mem += 1
                if not self.cache.access(ins.addr):
                    cycles += self.miss_penalty
                    stall += self.miss_penalty
        return CoreStats(
            cycles=cycles,
            instructions=n,
            mem_refs=mem,
            cache_hits=self.cache.hits - hits0,
            cache_misses=self.cache.misses - misses0,
            stall_cycles=stall,
        )

    def seconds(self, stats: CoreStats) -> float:
        return stats.cycles / self.spec.core.clock_hz


# ----------------------------------------------------------------------
# trace generators for cross-validation and micro-benchmarks
# ----------------------------------------------------------------------

def compute_kernel(n: int, falu_ratio: float = 0.5
                   ) -> list[CoreInstruction]:
    """Pure-ALU trace: no memory references at all."""
    out = []
    for i in range(n):
        out.append(CoreInstruction(
            "falu" if (i % 100) < falu_ratio * 100 else "ialu"))
    return out


def streaming_kernel(n_refs: int, stride: int = 8, base: int = 0,
                     alu_per_ref: int = 2) -> list[CoreInstruction]:
    """Unit-stride sweep: one load every ``alu_per_ref`` ALU ops."""
    out: list[CoreInstruction] = []
    for i in range(n_refs):
        out.append(CoreInstruction("load", addr=base + i * stride))
        out.extend(CoreInstruction("ialu") for _ in range(alu_per_ref))
    return out


def resident_kernel(n_refs: int, footprint_bytes: int, stride: int = 8,
                    base: int = 0) -> list[CoreInstruction]:
    """Repeated sweeps over a fixed footprint (cache-resident reuse)."""
    out: list[CoreInstruction] = []
    per_pass = max(1, footprint_bytes // stride)
    for i in range(n_refs):
        addr = base + (i % per_pass) * stride
        out.append(CoreInstruction("load", addr=addr))
        out.append(CoreInstruction("ialu"))
    return out


def random_kernel(n_refs: int, span_bytes: int, seed: int = 7,
                  base: int = 0) -> list[CoreInstruction]:
    """Scattered single-word accesses across ``span_bytes``."""
    import numpy as np
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, max(1, span_bytes // 8), size=n_refs) * 8
    return [CoreInstruction("load", addr=base + int(a)) for a in addrs]
