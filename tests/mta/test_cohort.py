"""Cohort fast path vs pure DES on the MTA machine model.

Exercises the MTA-specific compilation: ``AllOf(issue, network)``
pairs become PAR segments, threads are pinned round-robin to per-
processor issue servers, and full/empty synchronization costs ride on
the acquiring stream's processor.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload import (
    JobBuilder,
    OpCounts,
    ThreadProgramBuilder,
    make_phase,
)

from tests.parity import assert_equivalent
from tests.parity import run_both_mta as run_both


@st.composite
def mta_jobs(draw):
    n_threads = draw(st.integers(min_value=1, max_value=12))
    n_items = draw(st.integers(min_value=1, max_value=3))
    with_lock = draw(st.booleans())
    kind = draw(st.sampled_from(["os", "sw", "hw"]))
    threads = []
    for i in range(n_threads):
        b = ThreadProgramBuilder(f"t{i}")
        for k in range(n_items):
            ops = OpCounts(
                falu=draw(st.floats(min_value=1e3, max_value=2e6)),
                load=draw(st.floats(min_value=0.0, max_value=8e5)),
                store=draw(st.floats(min_value=0.0, max_value=2e5)),
            )
            b.compute(f"c{k}", ops)
            if with_lock:
                b.critical("acc", f"crit{k}",
                           OpCounts(store=draw(st.floats(min_value=8,
                                                         max_value=2e3)),
                                    sync=2.0))
        threads.append(b.build())
    return (JobBuilder("prop")
            .serial("setup", OpCounts(ialu=2e4))
            .parallel(threads, thread_kind=kind)
            .build())


@pytest.mark.slow
@settings(max_examples=25, deadline=None)
@given(mta_jobs(), st.integers(min_value=1, max_value=4))
def test_property_cohort_matches_des(job, n_proc):
    des, coh = run_both(job, n_proc=n_proc)
    assert_equivalent(des, coh)
    assert coh.stats["cohort_regions"] == 1.0
    assert coh.stats["des_regions"] == 0.0


@pytest.mark.slow
@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=1, max_value=5),
       st.integers(min_value=1, max_value=10))
def test_property_work_queue_matches_des(n_threads, n_items):
    items = [
        ThreadProgramBuilder(f"item{i}")
        .compute("c", OpCounts(falu=1e5 * (i + 1), load=3e4))
        .build_work_item()
        for i in range(n_items)
    ]
    job = JobBuilder("wq").work_queue(items, n_threads).build()
    des, coh = run_both(job)
    assert_equivalent(des, coh)
    assert coh.stats["cohort_regions"] == 1.0


def test_fine_grained_phase_in_region_routes_to_des():
    # parallelism > 1 inside a region spreads issue demand across all
    # processors; the cohort compiler leaves that to the DES path
    phase = make_phase("fg", OpCounts(falu=4e6), parallelism=16.0)
    th = [ThreadProgramBuilder(f"t{i}").phase(phase).build()
          for i in range(4)]
    job = JobBuilder("fg").parallel(th).build()
    des, coh = run_both(job)
    assert coh.seconds == des.seconds
    assert coh.stats["des_regions"] == 1.0
    assert coh.stats["cohort_regions"] == 0.0


def test_fine_grained_serial_phase_uses_closed_form():
    # serial fine-grained phases (the wavefront inner loops) stay on
    # the closed form, which must match DES bit for bit
    job = (JobBuilder("serial-fg")
           .serial("ring", OpCounts(falu=3e6, load=1e6), parallelism=64.0)
           .serial("fixup", OpCounts(ialu=2e4))
           .build())
    des, coh = run_both(job, n_proc=4)
    assert coh.seconds == des.seconds
    assert coh.stats["cohort_serial_steps"] == 2.0


def test_unbalanced_threads_across_processors():
    # 5 threads on 2 processors: uneven pinning (3 + 2) exercises the
    # per-processor issue servers disagreeing on membership counts
    threads = [
        ThreadProgramBuilder(f"t{i}")
        .compute("c", OpCounts(falu=1e6 + 2e5 * i, load=2e5))
        .build()
        for i in range(5)
    ]
    job = JobBuilder("odd").parallel(threads).build()
    des, coh = run_both(job, n_proc=2)
    assert_equivalent(des, coh)
