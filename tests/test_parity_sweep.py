"""Registry-wide engine-parity sweep.

Every experiment the registry can produce is swept at smoke scale:
each of its jobs runs under pure DES and under the cohort fast path on
both machine families, and the pair must satisfy the parity contract
in ``tests/parity.py``.  This is the contract the chaos CI gate relies
on -- the fault injector splits jobs and re-runs segments under
whichever engine is active, so any job the registry can emit must
agree across engines.

Jobs shared between experiments (the registry collapses identical
builders) are paired once and memoized by job name.
"""

import pytest

from repro.analysis.targets import experiment_jobs
from repro.harness import EXPERIMENT_IDS, BenchmarkData

from tests.parity import assert_equivalent, run_both_conventional, run_both_mta

pytestmark = pytest.mark.slow

SCALES = dict(threat_scale=0.01, terrain_scale=0.03)

_pair_cache = {}


@pytest.fixture(scope="module")
def data():
    return BenchmarkData(**SCALES)


def _pairs(job):
    if job.name not in _pair_cache:
        _pair_cache[job.name] = (run_both_mta(job),
                                 run_both_conventional(job))
    return _pair_cache[job.name]


@pytest.mark.parametrize("eid", sorted(EXPERIMENT_IDS))
def test_experiment_parity_under_both_engines(eid, data):
    jobs = experiment_jobs(eid, data)
    for name, job in jobs.items():
        (mta_des, mta_coh), (conv_des, conv_coh) = _pairs(job)
        try:
            assert_equivalent(mta_des, mta_coh)
            assert_equivalent(conv_des, conv_coh)
        except AssertionError as exc:
            raise AssertionError(f"{eid}/{name}: {exc}") from exc
