"""Simulation-as-a-service: the asyncio job server and load harness.

``repro serve`` exposes the simulation harness as a long-running
network service (newline-delimited JSON over TCP; see
:mod:`repro.service.protocol` for the wire format and the rationale),
with request dedupe against the content-addressed result cache,
in-flight request coalescing, cohort batching through the cell-granular
parallel scheduler, and run-store persistence of every session.
``repro load`` drives it with seeded factorial load tables and
publishes ``BENCH_service.json``.
"""

from repro.service.batcher import CellBatcher
from repro.service.protocol import ProtocolError
from repro.service.server import ReproService

__all__ = ["CellBatcher", "ProtocolError", "ReproService"]
