"""Table 5: multithreaded Threat Analysis on the dual-processor Tera
MTA (32x over its own sequential run; 1.8x on two processors)."""

from _support import run_and_report


def bench_table5(benchmark, data):
    run_and_report(benchmark, data, "table5")
