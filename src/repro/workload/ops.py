"""Abstract machine operations and operation-count vectors."""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields

#: Machine word size in bytes (all four platforms in the study are
#: 64-bit-word machines for our purposes; the MTA natively so).
WORD_BYTES = 8


class OpClass(enum.Enum):
    """The operation vocabulary shared by every machine model."""

    IALU = "ialu"      #: integer ALU op (add, compare, index arithmetic)
    FALU = "falu"      #: floating-point op (add/mul/div lumped together)
    LOAD = "load"      #: memory read of one word
    STORE = "store"    #: memory write of one word
    BRANCH = "branch"  #: control transfer
    SYNC = "sync"      #: synchronized memory op (full/empty, atomic, lock)


class AccessMode(enum.Enum):
    """How a phase touches a shared array (see :class:`SharedAccess`)."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        return self is AccessMode.WRITE


@dataclass(frozen=True)
class SharedAccess:
    """One phase's footprint on a *shared* array, as a location range.

    ``array`` names the shared object (thread-private storage such as
    Program 4's per-worker ``temp`` is deliberately not annotated --
    these records exist for the race detector in
    :mod:`repro.analysis`, which reasons about cross-thread conflicts).

    ``lo``/``hi`` bound the element range touched, inclusive.  ``None``
    on both means the subscripts are opaque at the workload level (e.g.
    ``intervals[chunk][num_intervals[chunk]]``): the access potentially
    covers the whole array, and only a compiler dependence fact
    (:mod:`repro.analysis.facts`) can prove instances independent.
    """

    array: str
    mode: AccessMode
    lo: float | None = None
    hi: float | None = None

    def __post_init__(self) -> None:
        if (self.lo is None) != (self.hi is None):
            raise ValueError("lo and hi must both be set or both be None")
        if self.lo is not None and self.lo > self.hi:
            raise ValueError(f"empty range [{self.lo}, {self.hi}]")

    @property
    def bounded(self) -> bool:
        """Whether the element range is known."""
        return self.lo is not None

    def overlaps(self, other: "SharedAccess") -> bool:
        """Whether the two accesses can touch a common element."""
        if self.array != other.array:
            return False
        if self.lo is None or other.lo is None:
            return True  # opaque extent: assume the whole array
        return self.lo <= other.hi and other.lo <= self.hi

    def span(self) -> str:
        """Human-readable location, e.g. ``intervals[0:249]``."""
        if self.lo is None:
            return f"{self.array}[*]"
        return f"{self.array}[{self.lo:g}:{self.hi:g}]"


def read_of(array: str, lo: float | None = None,
            hi: float | None = None) -> SharedAccess:
    return SharedAccess(array, AccessMode.READ, lo, hi)


def write_of(array: str, lo: float | None = None,
             hi: float | None = None) -> SharedAccess:
    return SharedAccess(array, AccessMode.WRITE, lo, hi)


@dataclass(frozen=True)
class OpCounts:
    """A vector of operation counts.

    Counts are floats so they can be scaled (e.g. extrapolating an
    instrumented reduced-size run to paper-size inputs).
    """

    ialu: float = 0.0
    falu: float = 0.0
    load: float = 0.0
    store: float = 0.0
    branch: float = 0.0
    sync: float = 0.0

    def __post_init__(self) -> None:
        # hot constructor: field list spelled out (dataclasses.fields()
        # re-resolves the registry on every call)
        if (self.ialu < 0 or self.falu < 0 or self.load < 0
                or self.store < 0 or self.branch < 0 or self.sync < 0):
            for name in _FIELD_NAMES:
                v = getattr(self, name)
                if v < 0:
                    raise ValueError(f"negative op count {name}={v}")

    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Total instructions issued."""
        return (self.ialu + self.falu + self.load + self.store
                + self.branch + self.sync)

    @property
    def mem_ops(self) -> float:
        """Operations that touch memory."""
        return self.load + self.store + self.sync

    @property
    def mem_bytes(self) -> float:
        """Bytes referenced (word-granularity accesses)."""
        return self.mem_ops * WORD_BYTES

    @property
    def mem_fraction(self) -> float:
        """Fraction of instructions that reference memory."""
        t = self.total
        return self.mem_ops / t if t > 0 else 0.0

    # ------------------------------------------------------------------
    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(self.ialu + other.ialu, self.falu + other.falu,
                        self.load + other.load, self.store + other.store,
                        self.branch + other.branch, self.sync + other.sync)

    def __mul__(self, k: float) -> "OpCounts":
        if k < 0:
            raise ValueError("cannot scale op counts by a negative factor")
        return OpCounts(self.ialu * k, self.falu * k, self.load * k,
                        self.store * k, self.branch * k, self.sync * k)

    __rmul__ = __mul__

    def replace(self, **kwargs: float) -> "OpCounts":
        vals = {name: getattr(self, name) for name in _FIELD_NAMES}
        vals.update(kwargs)
        return OpCounts(**vals)

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in _FIELD_NAMES}

    @staticmethod
    def from_dict(d: dict[str, float]) -> "OpCounts":
        return OpCounts(**d)

    def weighted_cycles(self, weights: dict[str, float]) -> float:
        """Dot product with a per-op-class cycle-cost table."""
        return sum(getattr(self, name) * w for name, w in weights.items())


_FIELD_NAMES = tuple(f.name for f in fields(OpCounts))
