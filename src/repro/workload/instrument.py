"""Operation counters for instrumenting the real benchmark kernels.

The C3I algorithms in :mod:`repro.c3i` do real computation; as they run
they tick an :class:`OpCounter`, which is later converted to
:class:`~repro.workload.ops.OpCounts` for the machine models.  Counting
is kept out of inner loops by ticking per structural event (per time
step, per ring point) with a per-event op recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workload.ops import AccessMode, OpCounts, SharedAccess


@dataclass
class OpCounter:
    """Accumulates abstract operation counts during a kernel run."""

    ialu: float = 0.0
    falu: float = 0.0
    load: float = 0.0
    store: float = 0.0
    branch: float = 0.0
    sync: float = 0.0
    #: free-form structural event counts (time steps, ring points, ...)
    events: dict[str, float] = field(default_factory=dict)
    #: shared-array location ranges touched, keyed (array, mode)
    touched: dict[tuple[str, AccessMode], tuple[float, float]] = field(
        default_factory=dict)

    def tick(self, recipe: OpCounts, times: float = 1.0) -> None:
        """Add ``times`` repetitions of a per-event op recipe."""
        self.ialu += recipe.ialu * times
        self.falu += recipe.falu * times
        self.load += recipe.load * times
        self.store += recipe.store * times
        self.branch += recipe.branch * times
        self.sync += recipe.sync * times

    def add(self, **counts: float) -> None:
        for name, v in counts.items():
            if name in ("ialu", "falu", "load", "store", "branch", "sync"):
                setattr(self, name, getattr(self, name) + v)
            else:
                raise AttributeError(f"unknown op class {name!r}")

    def event(self, name: str, times: float = 1.0) -> None:
        self.events[name] = self.events.get(name, 0.0) + times

    def touch(self, array: str, mode: AccessMode,
              lo: float, hi: float | None = None) -> None:
        """Record that the run touched ``array[lo:hi]`` (inclusive).

        Repeated touches of the same (array, mode) widen the recorded
        range to the union hull, so per-element instrumentation stays
        O(1) in memory.
        """
        if hi is None:
            hi = lo
        key = (array, mode)
        prev = self.touched.get(key)
        if prev is not None:
            lo, hi = min(prev[0], lo), max(prev[1], hi)
        self.touched[key] = (lo, hi)

    def accesses(self) -> tuple[SharedAccess, ...]:
        """The recorded shared accesses as Phase-ready records."""
        return tuple(
            SharedAccess(array, mode, lo, hi)
            for (array, mode), (lo, hi) in sorted(
                self.touched.items(),
                key=lambda kv: (kv[0][0], kv[0][1].value)))

    def to_ops(self) -> OpCounts:
        return OpCounts(ialu=self.ialu, falu=self.falu, load=self.load,
                        store=self.store, branch=self.branch, sync=self.sync)

    def merge(self, other: "OpCounter") -> None:
        self.tick(other.to_ops())
        for name, v in other.events.items():
            self.event(name, v)
        for (array, mode), (lo, hi) in other.touched.items():
            self.touch(array, mode, lo, hi)
