"""The chaos runner and ``repro chaos`` CLI: schedule determinism,
engine-independent payloads, monotone degradation."""

import json

import pytest

from repro.__main__ import main
from repro.faults.chaos import SCHEMA, chaos_report, render_report
from repro.harness import BenchmarkData

SCALES = dict(threat_scale=0.01, terrain_scale=0.03)


@pytest.fixture(scope="module")
def data():
    return BenchmarkData(**SCALES)


def test_chaos_report_payload_shape(data):
    payload = chaos_report(["ablation-issue"], data, seed=4)
    assert payload["schema"] == SCHEMA
    assert payload["engine"] in ("des", "cohort")
    assert payload["seed"] == 4
    assert len(payload["experiments"]) == 1
    jobs = payload["experiments"][0]["jobs"]
    assert len(jobs) == 2          # one job x two machine archetypes
    for e in jobs:
        assert e["ok"]
        assert e["faulted_seconds"] >= e["healthy_seconds"]
        assert e["schedule"]
        assert e["stats"]["faults_injected"] == float(len(e["applied"]))
        # the full plan is realized in the schedule even where a kind
        # does not apply to the machine
        assert len(e["schedule"]) == 5


def test_chaos_payload_engine_independent(data, monkeypatch):
    """Byte-identical payloads (minus the engine tag) under DES and
    cohort -- the CI chaos gate in miniature."""
    monkeypatch.delenv("REPRO_NO_COHORT", raising=False)
    cohort = chaos_report(["ablation-issue"], data, seed=9)
    monkeypatch.setenv("REPRO_NO_COHORT", "1")
    des = chaos_report(["ablation-issue"], data, seed=9)
    assert cohort.pop("engine") == "cohort"
    assert des.pop("engine") == "des"
    assert json.dumps(cohort, sort_keys=True) == \
        json.dumps(des, sort_keys=True)


def test_chaos_schedule_seed_sensitivity(data):
    a = chaos_report(["ablation-issue"], data, seed=1)
    b = chaos_report(["ablation-issue"], data, seed=2)
    sched_a = a["experiments"][0]["jobs"][0]["schedule"]
    sched_b = b["experiments"][0]["jobs"][0]["schedule"]
    assert sched_a != sched_b


def test_chaos_handles_jobless_experiments(data):
    payload = chaos_report(["autopar"], data)
    assert payload["experiments"][0]["jobs"] == []
    assert "no simulated jobs" in render_report(payload)


def test_chaos_cli_json(tmp_path, capsys):
    out = tmp_path / "chaos.json"
    status = main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                   "chaos", "ablation-issue", "--seed", "2",
                   "--faults", "streams:0.5:0.9",
                   "--json", str(out)])
    assert status == 0
    stdout = capsys.readouterr().out
    assert "chaos report" in stdout
    payload = json.loads(out.read_text())
    assert payload["schema"] == SCHEMA
    assert payload["plan"]["faults"] == [
        {"kind": "streams", "when": 0.5, "severity": 0.9}]


def test_chaos_cli_rejects_bad_input(capsys):
    assert main(["chaos"]) == 2
    assert main(["chaos", "not-an-experiment"]) == 2
    assert main(["chaos", "table5", "--faults", "bogus-kind"]) == 2
