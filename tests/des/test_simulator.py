"""Unit tests for the DES event loop and process model."""

import pytest

from repro.des import (
    AllOf,
    AnyOf,
    DesError,
    Interrupt,
    Simulator,
    SimulationDeadlock,
)


def test_empty_simulation_runs_to_exhaustion():
    sim = Simulator()
    assert sim.run() is None
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(2.5)
        yield sim.timeout(1.5)

    sim.process(body(sim))
    sim.run()
    assert sim.now == 4.0


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def body(sim):
        got.append((yield sim.timeout(1, value="hello")))

    sim.process(body(sim))
    sim.run()
    assert got == ["hello"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_process_return_value_is_event_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3)
        return 42

    p = sim.process(child(sim))
    sim.run()
    assert p.triggered and p.ok
    assert p.value == 42


def test_fork_join():
    sim = Simulator()

    def child(sim, d):
        yield sim.timeout(d)
        return d

    def parent(sim):
        a = sim.process(child(sim, 5))
        b = sim.process(child(sim, 3))
        ra = yield a
        rb = yield b
        return ra + rb

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == 8
    assert sim.now == 5


def test_join_already_finished_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        return "done"

    def parent(sim):
        c = sim.process(child(sim))
        yield sim.timeout(10)
        got = yield c  # c finished long ago
        return got

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "done"
    assert sim.now == 10


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(100)

    sim.process(body(sim))
    sim.run(until=40)
    assert sim.now == 40


def test_run_until_event_returns_its_value():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(7)
        return "v"

    p = sim.process(body(sim))
    assert sim.run(until=p) == "v"
    assert sim.now == 7


def test_run_until_event_that_never_fires_deadlocks():
    sim = Simulator()
    ev = sim.event()

    def body(sim):
        yield sim.timeout(1)

    sim.process(body(sim))
    with pytest.raises(SimulationDeadlock):
        sim.run(until=ev)


def test_run_until_past_time_rejected():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(10)

    sim.process(body(sim))
    sim.run(until=5)
    with pytest.raises(ValueError):
        sim.run(until=1)


def test_deterministic_tie_break_by_creation_order():
    sim = Simulator()
    order = []

    def body(sim, tag):
        yield sim.timeout(1)
        order.append(tag)

    for tag in "abcd":
        sim.process(body(sim, tag))
    sim.run()
    assert order == list("abcd")


def test_yield_non_event_raises_inside_process():
    sim = Simulator()

    def body(sim):
        yield 17  # not an event

    p = sim.process(body(sim))
    with pytest.raises(DesError):
        sim.run()
    assert p.triggered and not p.ok


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def body(sim):
        yield sim.timeout(1)
        raise RuntimeError("boom")

    sim.process(body(sim))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_exception_handled_by_joiner_is_defused():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        raise RuntimeError("child failed")

    def parent(sim):
        c = sim.process(child(sim))
        try:
            yield c
        except RuntimeError:
            return "handled"
        return "not handled"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "handled"


def test_manual_event_succeed():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(sim):
        got.append((yield ev))

    def firer(sim):
        yield sim.timeout(4)
        ev.succeed("fired")

    sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert got == ["fired"]
    assert sim.now == 4


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(DesError):
        ev.succeed(2)


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_allof_waits_for_all():
    sim = Simulator()

    def child(sim, d):
        yield sim.timeout(d)
        return d

    def parent(sim):
        ps = [sim.process(child(sim, d)) for d in (2, 5, 3)]
        results = yield AllOf(sim, ps)
        return sorted(results.values())

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == [2, 3, 5]
    assert sim.now == 5


def test_anyof_fires_on_first():
    sim = Simulator()

    def child(sim, d):
        yield sim.timeout(d)
        return d

    def parent(sim):
        ps = [sim.process(child(sim, d)) for d in (9, 4, 7)]
        results = yield AnyOf(sim, ps)
        return list(results.values())

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == [4]


def test_allof_empty_fires_immediately():
    sim = Simulator()

    def parent(sim):
        results = yield AllOf(sim, [])
        return results

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == {}
    assert sim.now == 0


def test_allof_propagates_failure():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise ValueError("nope")

    def ok(sim):
        yield sim.timeout(5)

    def parent(sim):
        ps = [sim.process(bad(sim)), sim.process(ok(sim))]
        try:
            yield AllOf(sim, ps)
        except ValueError:
            return "caught"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "caught"


def test_interrupt_delivers_cause():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as i:
            return ("interrupted", i.cause, sim.now)

    def interrupter(sim, victim):
        yield sim.timeout(10)
        victim.interrupt(cause="wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert victim.value == ("interrupted", "wake up", 10)


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(DesError):
        p.interrupt()


def test_step_on_empty_heap_raises():
    sim = Simulator()
    with pytest.raises(SimulationDeadlock):
        sim.step()


def test_run_all_reports_unfinished_process():
    sim = Simulator()
    never = sim.event()

    def stuck(sim):
        yield never

    p = sim.process(stuck(sim))
    with pytest.raises(SimulationDeadlock):
        sim.run_all(p)


def test_active_process_visible_during_step():
    sim = Simulator()
    seen = []

    def body(sim):
        seen.append(sim.active_process)
        yield sim.timeout(1)

    p = sim.process(body(sim))
    sim.run()
    assert seen == [p]
    assert sim.active_process is None


def test_clock_is_monotonic_across_many_processes():
    sim = Simulator()
    times = []

    def body(sim, delays):
        for d in delays:
            yield sim.timeout(d)
            times.append(sim.now)

    sim.process(body(sim, [3, 1, 4]))
    sim.process(body(sim, [1, 5]))
    sim.process(body(sim, [2, 2, 2]))
    sim.run()
    assert times == sorted(times)
