"""Closed-form vs event-stepped cohort engine equivalence.

The closed-form layers (class compression, convoy-drain replication,
single-class regions) are an arithmetic shortcut, not a model change:
for any region the engine accepts, running with the layers on must
reproduce the event-stepped timeline -- completion order, completion
times, lock-wait statistics, server busy/served accounting -- to
1e-12 relative.  Random convoy shapes drive both configurations of
the same :class:`CohortEngine` and compare everything the machine
models consume.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

import repro.des.batch as batch
from repro.des.batch import (
    ACQ,
    REL,
    SLEEP,
    SRV,
    CohortEngine,
    FORCE_CLOSED_FORM_ENV,
    ScalarBatchServer,
    closed_form_enabled,
    convoy_schedule,
)

RTOL = 1e-12


def close(a: float, b: float) -> bool:
    return abs(a - b) <= RTOL * max(abs(a), abs(b), 1e-12)


# ----------------------------------------------------------------------
# random convoy shapes
# ----------------------------------------------------------------------

@st.composite
def convoy_cases(draw):
    """A region of weighted thread classes contending on one lock.

    Classes share the pre-phase (so lock arrivals keep the engines'
    common FIFO order) and differ in critical-section length; weights
    cover the compressed-entity paths (armed passthrough, splits,
    parked resumes, drain replication) and k > 1 covers class
    boundaries falling back to stepped grants.

    Generated classes are contiguous and pairwise distinct: within the
    engines' exactness envelope, simultaneous lock arrivals keep their
    thread order only when identical members are adjacent (class
    compression enqueues a class's members back to back; members of
    one class are interchangeable, so only cross-class adjacency
    matters).  Hold times are drawn unique so no two classes collapse
    into one.
    """
    k = draw(st.integers(min_value=1, max_value=3))
    weights = draw(st.lists(st.integers(min_value=1, max_value=40),
                            min_size=k, max_size=k))
    pre = draw(st.floats(min_value=0.0, max_value=50.0))
    pre_cap = draw(st.one_of(st.none(),
                             st.floats(min_value=0.5, max_value=20.0)))
    holds = draw(st.lists(st.floats(min_value=1e-3, max_value=10.0),
                          min_size=k, max_size=k, unique=True))
    hold_sleep = draw(st.floats(min_value=0.0, max_value=2.0))
    capacity = draw(st.floats(min_value=1.0, max_value=100.0))
    programs = []
    for i in range(k):
        prog = []
        if pre > 0:
            prog.append((SRV, 0, pre, pre_cap))
        prog.append((ACQ, "L"))
        prog.append((SRV, 0, holds[i], None))
        if hold_sleep > 0:
            prog.append((SLEEP, hold_sleep))
        prog.append((REL, "L"))
        programs.extend([list(prog)] * weights[i])
    return programs, capacity


def run_engine(programs, capacity, closed_form):
    eng = CohortEngine(0.0, [capacity],
                       [list(p) for p in programs],
                       closed_form=closed_form)
    end = eng.run()
    return eng, end


def assert_engines_agree(programs, capacity):
    fast, end_f = run_engine(programs, capacity, closed_form=True)
    slow, end_s = run_engine(programs, capacity, closed_form=False)
    assert close(end_f, end_s), (end_f, end_s)
    assert len(fast.done_times) == len(slow.done_times)
    for tf, ts in zip(fast.done_times, slow.done_times):
        assert close(tf, ts), (tf, ts)
    # accumulated quantities (busy/served/wait) are sums of dt values
    # the event-stepped engine rounds at the absolute-time magnitude,
    # so their float error scales with the timeline, not with the sum
    scale = max(abs(end_s), 1.0)
    assert fast.locks.keys() == slow.locks.keys()
    for name, lf in fast.locks.items():
        ls = slow.locks[name]
        assert lf.waits == ls.waits
        assert lf.max_depth == ls.max_depth
        assert lf.hist == ls.hist
        assert abs(lf.wait_time - ls.wait_time) \
            <= RTOL * max(abs(ls.wait_time), scale)
    for sf, ss in zip(fast.servers, slow.servers):
        assert abs(sf.busy_time - ss.busy_time) \
            <= RTOL * max(abs(ss.busy_time), scale)
        assert abs(sf.total_served - ss.total_served) \
            <= RTOL * max(abs(ss.total_served), scale)
    return fast, slow


@settings(max_examples=60, deadline=None)
@given(convoy_cases())
def test_closed_form_matches_event_stepped_scalar(case):
    programs, capacity = case
    assert_engines_agree(programs, capacity)


@settings(max_examples=40, deadline=None)
@given(convoy_cases())
def test_closed_form_matches_event_stepped_vector(case):
    # force every server onto the numpy BatchServer
    programs, capacity = case
    saved = batch.SCALAR_MAX_SLOTS
    batch.SCALAR_MAX_SLOTS = 0
    try:
        assert_engines_agree(programs, capacity)
    finally:
        batch.SCALAR_MAX_SLOTS = saved


# ----------------------------------------------------------------------
# dispatch accounting
# ----------------------------------------------------------------------

def test_single_class_region_goes_closed_form():
    prog = [(SRV, 0, 5.0, None), (ACQ, "L"), (SRV, 0, 1.0, None),
            (REL, "L")]
    fast, _ = run_engine([list(prog)] * 32, 10.0, closed_form=True)
    assert fast.stats["closed_form"] == 1
    assert fast.stats["classes"] == 1
    assert fast.stats["events"] == 0
    assert_engines_agree([list(prog)] * 32, 10.0)


def test_multi_class_convoy_uses_drain_replication():
    def prog(hold):
        return [(SRV, 0, 5.0, None), (ACQ, "L"), (SRV, 0, hold, None),
                (REL, "L")]

    programs = [list(prog(1.0))] * 30 + [list(prog(2.0))] * 30
    fast, _ = run_engine(programs, 10.0, closed_form=True)
    assert fast.stats["closed_form"] == 0
    assert fast.stats["classes"] == 2
    assert fast.stats["drained_grants"] > 0
    # replication replaces most per-grant events
    assert fast.stats["drained_grants"] > fast.stats["stepped_grants"]
    assert_engines_agree(programs, 10.0)


def test_event_stepped_engine_reports_no_closed_form():
    prog = [(SRV, 0, 5.0, None)]
    slow, _ = run_engine([list(prog)] * 8, 10.0, closed_form=False)
    assert slow.stats["classes"] == 8
    assert slow.stats["closed_form"] == 0
    assert slow.stats["drained_grants"] == 0


def test_force_closed_form_env_gate(monkeypatch):
    monkeypatch.delenv(FORCE_CLOSED_FORM_ENV, raising=False)
    assert closed_form_enabled()
    monkeypatch.setenv(FORCE_CLOSED_FORM_ENV, "0")
    assert not closed_form_enabled()
    eng = CohortEngine(0.0, [10.0], [[(SRV, 0, 1.0, None)]] * 4)
    assert not eng.closed_form
    assert eng.stats["classes"] == 4
    monkeypatch.setenv(FORCE_CLOSED_FORM_ENV, "1")
    assert closed_form_enabled()
    eng = CohortEngine(0.0, [10.0], [[(SRV, 0, 1.0, None)]] * 4)
    assert eng.closed_form
    assert eng.stats["classes"] == 1


def test_convoy_schedule_closed_form():
    times = convoy_schedule(10.0, 4, 0.5)
    assert times.tolist() == [10.5, 11.0, 11.5, 12.0]


# ----------------------------------------------------------------------
# scalar finish-time frontier (satellite: indexed early exit)
# ----------------------------------------------------------------------

def test_scalar_frontier_still_batches_near_ties():
    # two jobs within the 1e-9 completion tolerance must finish
    # together even though the frontier fast path exists
    srv = ScalarBatchServer(10.0, 3, 0.0)
    srv.add(0, 1.0, None, 0, 0.0)
    srv.add(1, 1.0 * (1 + 5e-10), None, 1, 0.0)
    srv.add(2, 2.0, None, 2, 0.0)
    srv.flush(0.0)
    done = sorted(s for _q, s in srv.finish(srv.due))
    assert done == [0, 1]
    srv.flush(srv._last)
    done = [s for _q, s in srv.finish(srv.due)]
    assert done == [2]
    assert srv.n == 0


def test_scalar_frontier_single_completion_path():
    srv = ScalarBatchServer(10.0, 4, 0.0)
    for slot, d in enumerate([1.0, 2.0, 3.0, 4.0]):
        srv.add(slot, d, None, slot, 0.0)
    order = []
    srv.flush(0.0)
    while srv.n:
        done = srv.finish(srv.due)
        assert len(done) == 1
        order.append(done[0][1])
        srv.flush(srv._last)
    assert order == [0, 1, 2, 3]


def test_closed_form_default_is_on():
    assert os.environ.get(FORCE_CLOSED_FORM_ENV, "") != "0"
