"""Cohort fast path for :class:`~repro.mta.MtaMachine`.

The MTA macro model maps every thread to one processor's issue server
plus the shared network server.  For homogeneous regions whose phases
carry no internal parallelism (one stream per thread), the per-slice
``AllOf(issue, network)`` pattern compiles to :data:`~repro.des.batch.PAR`
segments and the whole region replays on a :class:`CohortEngine`:
one :class:`~repro.des.batch.BatchServer` per processor (heterogeneous
per-stream caps, water-filled) and one for the network (uncapped
equal-share).

Serial steps -- including the fine-grained phases with
``parallelism > 1`` that spread issue demand over every processor --
are closed-form: each slice ends at the max of the issue and network
completion times, the exact arithmetic of the DES event chain.

Work-queue regions with fine-grained phases and heterogeneous
parallel regions fall back to the DES path.
"""

from __future__ import annotations

from collections import deque
from typing import Union

from repro.des.batch import (
    ACQ,
    PAR,
    REL,
    SLEEP,
    SRV,
    CohortEngine,
    serve_alone,
)
from repro.obs.metrics import lock_summary_from_engine
from repro.workload.cohort import region_cohort_signature, region_phases
from repro.workload.phase import Phase
from repro.workload.task import Critical, ParallelRegion, WorkQueueRegion

__all__ = ["region_eligible", "run_serial_phase", "run_region"]


def region_eligible(step: Union[ParallelRegion, WorkQueueRegion]) -> bool:
    """Whether the MTA cohort engine can replay this region exactly.

    Fine-grained phases (``parallelism > 1``) spread their issue
    demand across all processors with a per-phase cap; inside a region
    that shape is left to the DES path.
    """
    if isinstance(step, ParallelRegion):
        if region_cohort_signature(step) is None:
            return False
    elif not isinstance(step, WorkQueueRegion):
        return False
    return all(p.parallelism <= 1 for p in region_phases(step))


def run_serial_phase(machine, phase: Phase, t: float, issue,
                     network) -> float:
    """Closed form of ``MtaMachine._run_phase`` for the control thread.

    Mirrors the DES event chain bit-for-bit: per slice, the issue and
    network submissions run concurrently on otherwise-idle servers and
    the slice ends at the later completion.
    """
    spec = machine.spec
    ops = phase.ops
    words = ops.mem_ops
    instr = max(ops.total / spec.ops_per_instruction, words)
    if instr <= 0 and phase.serial_cycles <= 0:
        return t
    memf = words / instr if instr > 0 else 0.0
    stream_rate = spec.stream_issue_rate(memf)
    p = phase.parallelism
    slices = machine.slices_per_phase
    clock = spec.clock_hz
    net_cap = network.capacity

    if p <= 1:
        # one stream on the control thread's processor (proc 0)
        srv = issue[0]
        cap = stream_rate
        per_slice_instr = instr / slices
        per_slice_words = words / slices
        for _ in range(slices):
            end = t
            if per_slice_instr > 0:
                e = serve_alone(srv, per_slice_instr, cap, t)
                if e > end:
                    end = e
            if per_slice_words > 0:
                e = serve_alone(network, per_slice_words, net_cap, t)
                if e > end:
                    end = e
            t = end
    else:
        # fine-grained phase: spread over all processors
        n_proc = spec.n_processors
        per_proc_streams = min(p / n_proc, spec.streams_per_processor)
        cap = per_proc_streams * stream_rate
        per_slice_instr = instr / (slices * n_proc)
        per_slice_words = words / slices
        for _ in range(slices):
            end = t
            if per_slice_instr > 0:
                # identical demand and cap on every processor: all
                # complete at the same instant
                for q in range(n_proc):
                    e = serve_alone(issue[q], per_slice_instr, cap, t)
                if e > end:
                    end = e
            if per_slice_words > 0:
                e = serve_alone(network, per_slice_words, net_cap, t)
                if e > end:
                    end = e
            t = end

    if phase.serial_cycles > 0:
        t = t + phase.serial_cycles / clock
    return t


def run_region(machine, step: Union[ParallelRegion, WorkQueueRegion],
               t: float, issue, network) -> tuple[float, dict, dict]:
    """Execute an eligible region; returns (end, lock_summary, stats),
    the summary being the dict shape of
    :func:`repro.obs.metrics.lock_summary_from_engine` and ``stats``
    the engine's per-region choice accounting."""
    spec = machine.spec
    costs = spec.costs_for(step.thread_kind)
    # parent-side creation: a single stream issuing at pipeline rate
    create = costs.create_cycles * step.n_threads
    if create > 0:
        t = serve_alone(issue[0], create, spec.clock_hz, t)

    n_proc = spec.n_processors
    net_sid = n_proc
    sync = costs.sync_cycles
    sync_cap = spec.stream_issue_rate(1.0)

    queue = None
    if isinstance(step, ParallelRegion):
        programs = [
            _compile_items(machine, th.items, sync, sync_cap, net_sid)
            for th in step.threads
        ]
        n_threads = step.n_threads
    else:
        # synchronized queue pop: one full/empty access per item, paid
        # on the popping worker's processor
        prefix = [(SRV, None, sync, sync_cap)] if sync > 0 else []
        queue = deque(
            _compile_items(machine, item.items, sync, sync_cap, net_sid,
                           prefix=prefix)
            for item in step.items
        )
        n_threads = step.n_threads
        programs = [[] for _ in range(n_threads)]

    own = [i % n_proc for i in range(n_threads)]
    capacities = [spec.clock_hz] * n_proc + [network.capacity]
    eng = CohortEngine(t, capacities, programs, own_sids=own, queue=queue)
    end = eng.run()
    for q in range(n_proc):
        issue[q].busy_time += eng.servers[q].busy_time
        issue[q].total_served += eng.servers[q].total_served
    network.busy_time += eng.servers[net_sid].busy_time
    network.total_served += eng.servers[net_sid].total_served
    return end, lock_summary_from_engine(eng), eng.stats


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def _compile_items(machine, items, sync, sync_cap, net_sid,
                   prefix=None) -> list:
    segs = list(prefix) if prefix else []
    for item in items:
        if isinstance(item, Critical):
            segs.append((ACQ, item.lock))
            if sync > 0:
                # full/empty-bit acquisition: one synchronized access
                segs.append((SRV, None, sync, sync_cap))
            _compile_phase(machine, item.phase, segs, net_sid)
            segs.append((REL, item.lock))
        else:
            _compile_phase(machine, item.phase, segs, net_sid)
    return segs


def _compile_phase(machine, phase: Phase, segs: list, net_sid) -> None:
    spec = machine.spec
    ops = phase.ops
    words = ops.mem_ops
    instr = max(ops.total / spec.ops_per_instruction, words)
    if instr <= 0 and phase.serial_cycles <= 0:
        return
    memf = words / instr if instr > 0 else 0.0
    cap = spec.stream_issue_rate(memf)
    slices = machine.slices_per_phase
    per_slice_instr = instr / slices
    per_slice_words = words / slices
    parts = []
    if per_slice_instr > 0:
        parts.append((None, per_slice_instr, cap))
    if per_slice_words > 0:
        parts.append((net_sid, per_slice_words, None))
    if parts:
        # every slice is the same immutable segment
        segs.extend([(PAR, tuple(parts))] * slices)
    if phase.serial_cycles > 0:
        segs.append((SLEEP, phase.serial_cycles / spec.clock_hz))
