"""Correctness tests for the Terrain Masking outputs."""

from __future__ import annotations

import numpy as np

from repro.c3i.terrain.blocked import BlockedResult
from repro.c3i.terrain.finegrained import FineGrainedTerrainResult
from repro.c3i.terrain.scenarios import TerrainScenario
from repro.c3i.terrain.sequential import TerrainMaskingResult


class ValidationError(AssertionError):
    """A parallel variant disagreed with the reference output."""


def check_masking(scenario: TerrainScenario,
                  masking: np.ndarray) -> None:
    """Structural invariants of a masking array."""
    n = scenario.grid_n
    if masking.shape != (n, n):
        raise ValidationError(f"masking shape {masking.shape} != {(n, n)}")
    finite = np.isfinite(masking)
    # wherever constrained, the safe altitude is at or above the terrain
    if not (masking[finite] >= scenario.terrain[finite] - 1e-9).all():
        raise ValidationError("masking below terrain")
    # every threat's own cell is maximally constrained (grazing)
    for t in scenario.threats:
        if masking[t.x, t.y] > scenario.terrain[t.x, t.y] + 1e-9:
            raise ValidationError("threat cell not fully masked")
    # at least some of the grid is unconstrained (regions cover <= ~5%
    # each, 60 threats cannot blanket everything at full scale)
    if finite.all():
        raise ValidationError("no unconstrained cells at all")


def check_blocked(reference: TerrainMaskingResult,
                  blocked: BlockedResult) -> None:
    """Blocked output must be bit-identical (min is order-free)."""
    if not np.array_equal(reference.masking, blocked.masking):
        diff = np.sum(reference.masking != blocked.masking)
        raise ValidationError(f"blocked masking differs in {diff} cells")


def check_finegrained(reference: TerrainMaskingResult,
                      fine: FineGrainedTerrainResult) -> None:
    """Fine-grained output must be bit-identical."""
    if not np.array_equal(reference.masking, fine.masking):
        diff = np.sum(reference.masking != fine.masking)
        raise ValidationError(f"fine-grained masking differs in {diff} cells")
