"""Table 6: Threat Analysis vs chunk count on the Tera MTA -- the
'hundreds of threads required' result: time halves with each chunk
doubling until the issue slots saturate around 128 chunks."""

from _support import run_and_report


def bench_table6(benchmark, data):
    run_and_report(benchmark, data, "table6")
