"""Property-based tests for the DES kernel (hypothesis).

Invariants: work conservation in the fair-share server, capacity
ceilings, FIFO fairness of resources, determinism of whole simulations.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.des import FairShareServer, Resource, SimLock, Simulator


job_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),   # arrival offset
        st.floats(min_value=0.1, max_value=100.0),  # demand
        st.one_of(st.none(),
                  st.floats(min_value=0.1, max_value=10.0)),  # cap
    ),
    min_size=1, max_size=25,
)


def run_fairshare(jobs, capacity, default_cap=None):
    sim = Simulator()
    srv = FairShareServer(sim, capacity=capacity,
                          per_customer_cap=default_cap)
    done = {}

    def proc(sim, idx, start, demand, cap):
        if start:
            yield sim.timeout(start)
        start_t = sim.now
        yield srv.submit(demand, cap=cap)
        done[idx] = (start_t, sim.now, demand, cap)

    for i, (start, demand, cap) in enumerate(jobs):
        sim.process(proc(sim, i, start, demand, cap))
    sim.run()
    return sim, srv, done


@settings(max_examples=60, deadline=None)
@given(job_lists, st.floats(min_value=0.5, max_value=20.0))
def test_fairshare_conserves_work(jobs, capacity):
    _sim, srv, done = run_fairshare(jobs, capacity)
    assert len(done) == len(jobs)  # everything completes
    total_demand = sum(d for _s, d, _c in jobs)
    assert srv.total_served == pytest.approx(total_demand, rel=1e-6)


@settings(max_examples=60, deadline=None)
@given(job_lists, st.floats(min_value=0.5, max_value=20.0))
def test_fairshare_never_exceeds_capacity(jobs, capacity):
    sim, srv, _done = run_fairshare(jobs, capacity)
    # served work can never exceed capacity x elapsed busy time
    assert srv.total_served <= capacity * sim.now * (1 + 1e-9) + 1e-9


@settings(max_examples=60, deadline=None)
@given(job_lists, st.floats(min_value=0.5, max_value=20.0))
def test_fairshare_respects_per_job_caps(jobs, capacity):
    _sim, _srv, done = run_fairshare(jobs, capacity)
    for start_t, end_t, demand, cap in done.values():
        elapsed = end_t - start_t
        best_rate = min(capacity, cap) if cap is not None else capacity
        # a job can never finish faster than its own rate ceiling
        assert elapsed >= demand / best_rate - 1e-6


@settings(max_examples=40, deadline=None)
@given(job_lists, st.floats(min_value=0.5, max_value=20.0))
def test_fairshare_deterministic(jobs, capacity):
    sim1, _s1, done1 = run_fairshare(jobs, capacity)
    sim2, _s2, done2 = run_fairshare(jobs, capacity)
    assert sim1.now == sim2.now
    assert done1 == done2


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=10.0),
                min_size=2, max_size=12),
       st.integers(min_value=1, max_value=4))
def test_resource_serves_in_fifo_order(holds, capacity):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    grant_order = []

    def user(sim, idx, hold):
        with res.request() as req:
            yield req
            grant_order.append(idx)
            yield sim.timeout(hold)

    for i, h in enumerate(holds):
        sim.process(user(sim, i, h))
    sim.run()
    assert grant_order == sorted(grant_order)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.1, max_value=5.0),
                min_size=1, max_size=10))
def test_lock_serializes_total_time(holds):
    """Total elapsed >= sum of critical-section lengths."""
    sim = Simulator()
    lock = SimLock(sim)

    def user(sim, hold):
        grant = yield lock.acquire()
        yield sim.timeout(hold)
        lock.release(grant)

    for h in holds:
        sim.process(user(sim, h))
    sim.run()
    assert sim.now == pytest.approx(sum(holds), rel=1e-9)
