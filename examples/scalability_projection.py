#!/usr/bin/env python3
"""The paper's future work, answered: would the MTA have scaled?

Section 8: "A potential strength of the Tera MTA that we were unable
to investigate on a dual-processor configuration is scalability to
large numbers of processors ... If this is the case, it would be a
major breakthrough in scalable supercomputing."

This example projects the calibrated models onto 1-16 MTA processors
for both benchmarks, on the prototype network (whose measured scaling
is sublinear) and on a mature, linearly scaling network -- and runs
the ablations that isolate each mechanism.

    python examples/scalability_projection.py
"""

from repro.harness import BenchmarkData, run_experiment


def main() -> None:
    data = BenchmarkData(threat_scale=0.015, terrain_scale=0.04)

    print(run_experiment("scaling", data).render())
    print()
    print(run_experiment("ablation-network", data).render())
    print()
    print(run_experiment("ablation-issue", data).render())
    print()
    print(run_experiment("ablation-finegrained-smp", data).render())

    print()
    print("Verdict: in this model, the paper's conjecture holds --")
    print("the flat-memory, many-stream design scales as long as the")
    print("network keeps up; the prototype network, not the processor")
    print("architecture, is what capped the 1998 measurements.")


if __name__ == "__main__":
    main()
