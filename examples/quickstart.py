#!/usr/bin/env python3
"""Quickstart: reproduce one headline result of the paper in ~5 seconds.

Runs Table 5 -- multithreaded Threat Analysis on the dual-processor
Tera MTA -- end to end: synthetic scenarios, the real benchmark kernel,
workload extraction, and the MTA performance simulation; then prints
the reproduced table next to the paper's numbers.

    python examples/quickstart.py
"""

from repro.harness import BenchmarkData, run_experiment


def main() -> None:
    # Small kernels: the workload extractor extrapolates exactly to the
    # paper's 1000-threat scenarios.
    data = BenchmarkData(threat_scale=0.015, terrain_scale=0.04)

    print("Reproducing Table 5 of Brunett et al. (SC'98)...\n")
    result = run_experiment("table5", data)
    print(result.render())

    print()
    print("And the chunk sweep behind it (Table 6):\n")
    print(run_experiment("table6", data).render())

    print()
    print("Every other table/figure is available the same way:")
    from repro.harness import list_experiments
    print(" ", ", ".join(list_experiments()))


if __name__ == "__main__":
    main()
