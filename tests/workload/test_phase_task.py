"""Unit tests for Phase, MemoryProfile, ThreadProgram, Job."""

import pytest

from repro.workload import (
    AccessPattern,
    Compute,
    Critical,
    Job,
    JobBuilder,
    MemoryProfile,
    OpCounts,
    ParallelRegion,
    Phase,
    SerialStep,
    ThreadProgram,
    ThreadProgramBuilder,
    WorkItem,
    WorkQueueRegion,
    make_phase,
    single_thread_job,
)


# ----------------------------------------------------------------------
# Phase / MemoryProfile
# ----------------------------------------------------------------------

def test_memory_profile_validation():
    with pytest.raises(ValueError):
        MemoryProfile(unique_bytes=-1)
    with pytest.raises(ValueError):
        MemoryProfile(shared_fraction=1.5)


def test_phase_validation():
    with pytest.raises(ValueError):
        make_phase("p", OpCounts(), parallelism=0.5)
    with pytest.raises(ValueError):
        make_phase("p", OpCounts(), serial_cycles=-1)


def test_phase_scaled():
    p = make_phase("p", OpCounts(ialu=100, load=50), unique_bytes=1024,
                   serial_cycles=10)
    q = p.scaled(2.0)
    assert q.ops.ialu == 200 and q.ops.load == 100
    assert q.serial_cycles == 20
    assert q.memory.unique_bytes == 1024  # footprint unchanged


def test_phase_split_conserves_ops():
    p = make_phase("p", OpCounts(ialu=100, load=40), parallelism=8)
    parts = p.split(4)
    assert len(parts) == 4
    total = sum((q.ops for q in parts), OpCounts())
    assert total.ialu == pytest.approx(100)
    assert total.load == pytest.approx(40)
    assert all(q.parallelism == 2 for q in parts)


def test_phase_split_invalid():
    p = make_phase("p", OpCounts(ialu=1))
    with pytest.raises(ValueError):
        p.split(0)


# ----------------------------------------------------------------------
# ThreadProgram / regions / Job
# ----------------------------------------------------------------------

def test_thread_program_totals():
    tp = (ThreadProgramBuilder("t")
          .compute("a", OpCounts(ialu=10))
          .critical("lock", "b", OpCounts(store=5, sync=2))
          .build())
    assert tp.total_ops.ialu == 10
    assert tp.total_ops.store == 5
    assert len(tp.phases) == 2
    assert isinstance(tp.items[0], Compute)
    assert isinstance(tp.items[1], Critical)
    assert tp.items[1].lock == "lock"


def test_thread_program_rejects_bad_items():
    with pytest.raises(TypeError):
        ThreadProgram("t", ("not an item",))


def test_parallel_region_validation():
    tp = ThreadProgram("t", ())
    with pytest.raises(ValueError):
        ParallelRegion(())
    with pytest.raises(ValueError):
        ParallelRegion((tp,), thread_kind="fiber")
    assert ParallelRegion((tp, tp)).n_threads == 2


def test_work_queue_region_validation():
    wi = WorkItem("w", ())
    with pytest.raises(ValueError):
        WorkQueueRegion((wi,), n_threads=0)
    with pytest.raises(ValueError):
        WorkQueueRegion((wi,), n_threads=1, thread_kind="magic")


def test_job_total_ops_across_step_kinds():
    serial = make_phase("s", OpCounts(ialu=100))
    tp = (ThreadProgramBuilder("t")
          .compute("c", OpCounts(ialu=10)).build())
    wi = (ThreadProgramBuilder("w")
          .compute("c", OpCounts(falu=7)).build_work_item())
    job = (JobBuilder("job")
           .serial_phase(serial)
           .parallel([tp, tp])
           .work_queue([wi, wi, wi], n_threads=2)
           .build())
    total = job.total_ops
    assert total.ialu == 100 + 2 * 10
    assert total.falu == 3 * 7
    assert job.max_parallel_threads == 2


def test_job_rejects_bad_steps():
    with pytest.raises(TypeError):
        Job("j", ("nope",))


def test_single_thread_job():
    phases = [make_phase("a", OpCounts(ialu=1)),
              make_phase("b", OpCounts(falu=2))]
    job = single_thread_job("seq", phases)
    assert all(isinstance(s, SerialStep) for s in job.steps)
    assert job.max_parallel_threads == 1
    assert job.total_ops.total == 3


def test_access_pattern_enum_members():
    assert {p.value for p in AccessPattern} == {
        "sequential", "strided", "random"}
