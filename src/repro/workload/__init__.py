"""Abstract multithreaded-program representation.

A benchmark run is described *architecture-independently* as a
:class:`~repro.workload.task.Job`: an alternating sequence of serial
steps and parallel regions.  Each thread in a region is a
:class:`~repro.workload.task.ThreadProgram` -- a list of compute phases
and lock-protected critical sections.  Each
:class:`~repro.workload.phase.Phase` carries an operation mix
(:class:`~repro.workload.ops.OpCounts`), a memory-locality descriptor
(:class:`~repro.workload.phase.MemoryProfile`) and an *internal
parallelism* (how many concurrent strands a machine supporting
fine-grained threading could extract from it).

Machine models in :mod:`repro.machines` and :mod:`repro.mta` consume
this representation and produce simulated execution times; the C3I
benchmark kernels in :mod:`repro.c3i` produce it from instrumented
runs of the real algorithms.
"""

from repro.workload.ops import (
    AccessMode,
    OpClass,
    OpCounts,
    SharedAccess,
    WORD_BYTES,
    read_of,
    write_of,
)
from repro.workload.phase import AccessPattern, MemoryProfile, Phase
from repro.workload.task import (
    Compute,
    Critical,
    Job,
    ParallelRegion,
    SerialStep,
    ThreadProgram,
    WorkItem,
    WorkQueueRegion,
)
from repro.workload.builder import (
    JobBuilder,
    ThreadProgramBuilder,
    make_phase,
    single_thread_job,
)
from repro.workload.cohort import (
    NO_COHORT_ENV,
    cohort_enabled,
    item_signature,
    program_signature,
    region_cohort_signature,
)
from repro.workload.instrument import OpCounter
from repro.workload.describe import (describe_job, job_summary,
                                     step_label)

__all__ = [
    "AccessMode",
    "AccessPattern",
    "Compute",
    "Critical",
    "Job",
    "JobBuilder",
    "MemoryProfile",
    "NO_COHORT_ENV",
    "OpClass",
    "OpCounter",
    "OpCounts",
    "ParallelRegion",
    "Phase",
    "SerialStep",
    "SharedAccess",
    "ThreadProgram",
    "ThreadProgramBuilder",
    "WORD_BYTES",
    "WorkItem",
    "WorkQueueRegion",
    "cohort_enabled",
    "describe_job",
    "item_signature",
    "job_summary",
    "make_phase",
    "program_signature",
    "read_of",
    "region_cohort_signature",
    "single_thread_job",
    "step_label",
    "write_of",
]
