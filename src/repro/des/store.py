"""FIFO item stores -- the DES equivalent of a work queue."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.des.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.simulator import Simulator


class Store:
    """An unbounded (or bounded) FIFO store of items.

    ``put(item)`` returns an event that fires when the item has been
    accepted; ``get()`` returns an event that fires with the next item.
    Used to model dynamic work distribution (e.g. the Terrain Masking
    threads pulling "next unprocessed threat" from a shared queue).
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None,
                 name: str = "store"):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: list[object] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Event, object]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def n_waiting_getters(self) -> int:
        return len(self._getters)

    def put(self, item: object) -> Event:
        ev = Event(self.sim)
        if self._getters:
            self._getters.pop(0).succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.pop(0))
            if self._putters:
                pev, pitem = self._putters.pop(0)
                self._items.append(pitem)
                pev.succeed(None)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, object]:
        """Non-blocking get: (True, item) or (False, None)."""
        if self._items:
            item = self._items.pop(0)
            if self._putters:
                pev, pitem = self._putters.pop(0)
                self._items.append(pitem)
                pev.succeed(None)
            return True, item
        return False, None
