"""Caltech Sthreads: structured multithreading over OS threads.

The paper's Pentium Pro ports used the Sthreads library [Thornley,
Chandy, Ishii 1998] -- a thin, structured layer over Win32 threads.
This model reproduces its API shape (create/join, locks) on the DES,
with OS-thread costs: creation costs tens of thousands of cycles and
lock operations hundreds, so the idioms that are free on the Tera MTA
are visibly expensive here.

Programs are DES process generators, as with
:class:`~repro.mta.runtime.TeraRuntime`::

    rt = SthreadsRuntime(PPRO_SMP_4)

    def worker(rt, wid):
        yield rt.compute_cycles(1_000_000)
        with (yield rt.locked(lock)) as _:
            ...

    threads = [rt.create(worker, i) for i in range(4)]
    rt.join_all(threads)
    rt.run()
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.des import AllOf, Event, Process, SimLock, Simulator
from repro.machines.spec import MachineSpec


class SthreadLock:
    """A mutex with OS-level synchronization costs."""

    def __init__(self, runtime: "SthreadsRuntime", name: str = "lock"):
        self._rt = runtime
        self._lock = SimLock(runtime.sim, name=name)

    def acquire(self):
        """Process-style acquire: ``grant = yield from lock.acquire()``."""
        grant = yield self._lock.acquire()
        yield self._rt.compute_cycles(self._rt.sync_cycles)
        return grant

    def release(self, grant) -> None:
        self._lock.release(grant)

    @property
    def locked(self) -> bool:
        return self._lock.locked

    @property
    def total_wait_time(self) -> float:
        return self._lock.total_wait_time


class Sthread:
    """Handle to a created thread (joinable)."""

    def __init__(self, process: Process):
        self._process = process

    @property
    def is_done(self) -> bool:
        return self._process.triggered

    def result(self) -> object:
        return self._process.value


class SthreadsRuntime:
    """Structured coarse-grained threading with OS-thread costs."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self.sim = Simulator()
        self._cycle_s = 1.0 / spec.core.clock_hz
        costs = spec.costs_for("os")
        self.create_cycles = costs.create_cycles
        self.sync_cycles = costs.sync_cycles
        self._threads: list[Process] = []

    # ------------------------------------------------------------------
    def compute_cycles(self, n: float) -> Event:
        """Simulated busy work of ``n`` cycles on one CPU.

        (This simple runtime does not model CPU contention -- use the
        full :class:`~repro.machines.machine.ConventionalMachine` for
        that; Sthreads programs here demonstrate API semantics and
        thread-cost magnitudes.)
        """
        return self.sim.timeout(n * self._cycle_s)

    @property
    def now_cycles(self) -> float:
        return self.sim.now / self._cycle_s

    # ------------------------------------------------------------------
    def create(self, body: Callable[..., Generator], *args: object,
               name: Optional[str] = None) -> Sthread:
        """Create an OS thread: pays the (large) creation cost."""
        def wrapper():
            yield self.compute_cycles(self.create_cycles)
            result = yield from body(self, *args)
            return result

        p = self.sim.process(wrapper(), name=name or body.__name__)
        self._threads.append(p)
        return Sthread(p)

    def join(self, thread: Sthread) -> Event:
        """An event firing when the thread finishes (+ sync cost)."""
        return thread._process

    def join_all(self, threads: list[Sthread]) -> Event:
        return AllOf(self.sim, [t._process for t in threads])

    def lock(self, name: str = "lock") -> SthreadLock:
        return SthreadLock(self, name=name)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float | Event] = None) -> float:
        """Run the simulation; returns elapsed cycles."""
        self.sim.run(until)
        for p in self._threads:
            if p.triggered and not p.ok:
                p.value  # re-raise
        return self.now_cycles
