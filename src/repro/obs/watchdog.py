"""Post-mortem deadlock diagnosis.

Called by :meth:`Simulator._deadlock` when the event heap drains with
live waiters (or the stall watchdog trips).  Walks the simulator's
process registry to name every blocked thread and what it waits on,
builds the wait-for graph -- thread A waits on a resource held by
thread B -- from :class:`~repro.des.resources.Request` owner
back-pointers, and reports the first cycle found.

Two canonical shapes:

* **ABBA**: two threads each hold one lock and want the other's.  The
  resource wait-for edges close a cycle, which the diagnostic prints
  as ``a -> b -> a``.
* **Missing barrier party**: threads blocked on a barrier that will
  never fill.  No cycle exists; the diagnostic still names each
  blocked thread and the barrier (via
  :class:`~repro.des.events.WaitEvent`), which is what a user needs to
  spot the miscounted party.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.des.errors import DeadlockDiagnostic
from repro.des.events import AllOf, AnyOf, Event
from repro.des.process import Process
from repro.des.resources import Request
from repro.obs.trace import describe_event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.simulator import Simulator


def diagnose_deadlock(sim: "Simulator",
                      headline: str) -> DeadlockDiagnostic:
    """Build (not raise) the diagnostic for a stuck simulation."""
    waiters = [p for p in sim.processes
               if not p.triggered and p._waiting_on is not None]
    blocked = tuple((p.name, describe_event(p._waiting_on))
                    for p in waiters)
    cycle = _find_cycle(waiters)

    lines = [headline]
    if blocked:
        lines.append(f"{len(blocked)} thread(s) still blocked:")
        for name, desc in blocked:
            lines.append(f"  - {name}: waiting on {desc}")
    if cycle:
        lines.append("wait-for cycle: " + " -> ".join(cycle + (cycle[0],)))
    return DeadlockDiagnostic("\n".join(lines), blocked=blocked,
                              cycle=cycle)


# ----------------------------------------------------------------------
def _edges(process: Process) -> list[Process]:
    """Live processes that must act before ``process`` can resume."""
    out: list[Process] = []
    _collect(process._waiting_on, out)
    return [p for p in out if not p.triggered]


def _collect(ev: object, out: list[Process]) -> None:
    if isinstance(ev, Request):
        for req in ev.resource._users:
            if req.owner is not None:
                out.append(req.owner)
    elif isinstance(ev, Process):
        out.append(ev)
    elif isinstance(ev, (AllOf, AnyOf)):
        for sub in ev.events:
            if isinstance(sub, Event) and not sub.triggered:
                _collect(sub, out)


def _find_cycle(waiters: list[Process]) -> tuple[str, ...]:
    """First wait-for cycle among the blocked processes (names, in
    order), or an empty tuple.  Iterative colored DFS."""
    graph = {id(p): (p, _edges(p)) for p in waiters}
    color: dict[int, int] = {}          # 1 = on stack, 2 = done
    for start in graph:
        if start in color:
            continue
        stack: list[tuple[int, int]] = [(start, 0)]
        path: list[int] = []
        while stack:
            node, i = stack.pop()
            if i == 0:
                color[node] = 1
                path.append(node)
            entry = graph.get(node)
            succs = entry[1] if entry is not None else []
            advanced = False
            while i < len(succs):
                nxt = id(succs[i])
                i += 1
                c = color.get(nxt)
                if c == 1:
                    # back edge: the cycle is path from nxt onward
                    k = path.index(nxt)
                    return tuple(graph[n][0].name for n in path[k:])
                if c is None and nxt in graph:
                    stack.append((node, i))
                    stack.append((nxt, 0))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                path.pop()
    return ()
