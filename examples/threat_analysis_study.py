#!/usr/bin/env python3
"""The full Threat Analysis study (Section 5 of the paper).

1. Generates the five synthetic input scenarios and runs the real
   sequential benchmark program (Program 1).
2. Runs the manually parallelized variants -- chunked (Program 2) and
   the fine-grained sync-variable alternative -- and validates them
   against the sequential reference, including the nondeterministic
   output ordering the paper warns about.
3. Reproduces Tables 2-7 and Figures 1-2 on the simulated platforms.

    python examples/threat_analysis_study.py
"""

from repro.c3i import threat as TH
from repro.harness import BenchmarkData, render_speedup_figure, run_experiment
from repro.harness.calibration import PAPER_TABLE3, PAPER_TABLE4


def study_the_programs() -> None:
    print("=" * 72)
    print("Part 1: the benchmark programs")
    print("=" * 72)
    scenario = TH.make_scenario(0, scale=0.03)
    print(f"scenario 0: {scenario.n_threats} threats, "
          f"{scenario.n_weapons} weapons, {scenario.n_steps} time steps "
          f"per pair (reduced scale; full scale is 1000 threats)")

    reference = TH.run_sequential(scenario)
    print(f"sequential (Program 1): {reference.n_intervals} interception "
          f"intervals from {reference.n_pairs_scanned} scanned pairs "
          f"({reference.n_pairs_skipped} screened out)")

    chunked = TH.run_chunked(scenario, n_chunks=16)
    TH.check_chunked(reference, chunked)
    print(f"chunked (Program 2, 16 chunks): identical output; chunk "
          f"imbalance max/mean = {chunked.imbalance:.2f}")

    fine = TH.run_finegrained(scenario, schedule_seed=42)
    TH.check_finegrained(reference, fine)
    print(f"fine-grained sync-variable variant: same interval set, "
          f"order differs from sequential: {fine.order_differs} "
          f"(the nondeterminacy the paper flags), "
          f"{fine.n_sync_ops} full/empty counter operations")


def study_the_performance() -> None:
    print()
    print("=" * 72)
    print("Part 2: performance on the four platforms")
    print("=" * 72)
    data = BenchmarkData(threat_scale=0.02, terrain_scale=0.04)

    for eid in ("table2", "table3", "table4", "table5", "table6",
                "table7"):
        print()
        print(run_experiment(eid, data).render())

    t3 = run_experiment("table3", data)
    procs = [1, 2, 3, 4]
    base = t3.row("1 processors").simulated
    print()
    print(render_speedup_figure(
        "Figure 1: Threat Analysis speedup on 4-CPU Pentium Pro",
        procs,
        [base / t3.row(f"{n} processors").simulated for n in procs],
        [PAPER_TABLE3[1] / PAPER_TABLE3[n] for n in procs]))

    t4 = run_experiment("table4", data)
    procs = list(range(1, 17))
    base = t4.row("1 processors").simulated
    print()
    print(render_speedup_figure(
        "Figure 2: Threat Analysis speedup on 16-CPU Exemplar",
        procs,
        [base / t4.row(f"{n} processors").simulated for n in procs],
        [PAPER_TABLE4[1] / PAPER_TABLE4[n] for n in procs]))


if __name__ == "__main__":
    study_the_programs()
    study_the_performance()
