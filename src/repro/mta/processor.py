"""Cycle-level MTA processor: issue arbitration across streams."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mta.stream import Stream


@dataclass
class CycleProcessor:
    """One MTA processor at cycle fidelity.

    The processor issues at most one instruction per cycle, drawn from
    whichever resident stream is ready (the hardware switches streams
    every cycle at no cost).  ``next_free`` is the next cycle with a
    free issue slot.
    """

    pid: int
    max_streams: int
    streams: list[Stream] = field(default_factory=list)
    next_free: float = 0.0
    issued: int = 0

    def add_stream(self, stream: Stream) -> None:
        if len(self.streams) >= self.max_streams:
            raise ValueError(
                f"processor {self.pid}: all {self.max_streams} hardware "
                f"streams are occupied")
        self.streams.append(stream)

    def take_slot(self, ready_cycle: float) -> float:
        """Allocate the earliest issue slot at or after ``ready_cycle``."""
        slot = max(ready_cycle, self.next_free)
        self.next_free = slot + 1.0
        self.issued += 1
        return slot

    def utilization(self, cycles: float) -> float:
        """Fraction of issue slots used over ``cycles`` cycles."""
        return self.issued / cycles if cycles > 0 else 0.0

    @property
    def done(self) -> bool:
        return all(s.done for s in self.streams)
