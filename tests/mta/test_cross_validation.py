"""Cross-validation: the macro MTA model against the cycle-accurate
simulator on kernels small enough to run both ways.

The macro model's issue machinery (per-stream interval, aggregate
saturation) must reproduce the cycle simulator's throughput within a
few percent -- this pins the whole-benchmark results to the
micro-architecture.
"""

import pytest

from repro.mta import MtaMachine, MtaSpec, MtaSystem, alu_kernel
from repro.workload import (
    JobBuilder,
    OpCounts,
    ThreadProgramBuilder,
    make_phase,
    single_thread_job,
)


def macro_seconds(spec, n_ops_total, n_threads):
    """Time for pure-ALU work split over n_threads on the macro model."""
    phase = make_phase("w", OpCounts(ialu=n_ops_total))
    if n_threads == 1:
        job = single_thread_job("j", [phase])
    else:
        threads = [ThreadProgramBuilder(f"t{i}").phase(p).build()
                   for i, p in enumerate(phase.split(n_threads))]
        job = JobBuilder("j").parallel(threads, thread_kind="hw").build()
    return MtaMachine(spec).run(job).seconds


def cycle_seconds(spec, n_instr_total, n_threads):
    """The same workload on the cycle-accurate simulator."""
    sys = MtaSystem(spec)
    per = n_instr_total // n_threads
    for _ in range(n_threads):
        sys.add_stream(alu_kernel(per))
    stats = sys.run()
    assert stats.completed
    return stats.cycles / spec.clock_hz


@pytest.mark.parametrize("n_threads", [1, 2, 8, 21, 64])
def test_macro_matches_cycle_level_alu_throughput(n_threads):
    spec = MtaSpec(n_processors=1)
    n_instr = 2100 * n_threads  # keep cycle sim cheap
    n_ops = n_instr * spec.ops_per_instruction
    t_macro = macro_seconds(spec, n_ops, n_threads)
    t_cycle = cycle_seconds(spec, n_instr, n_threads)
    assert t_macro == pytest.approx(t_cycle, rel=0.06), (
        f"{n_threads} threads: macro {t_macro:.2e} vs "
        f"cycle {t_cycle:.2e}")


def test_macro_matches_cycle_level_saturation_point():
    """Both models saturate the processor at ~21 ALU streams."""
    spec = MtaSpec(n_processors=1)

    def macro_rate(n):
        t = macro_seconds(spec, 21_000 * spec.ops_per_instruction, n)
        return 21_000 / t / spec.clock_hz  # instr per cycle

    def cycle_rate(n):
        sys = MtaSystem(spec)
        for _ in range(n):
            sys.add_stream(alu_kernel(1000))
        stats = sys.run()
        return stats.total_issued / stats.cycles

    for n in (10, 21, 42):
        assert macro_rate(n) == pytest.approx(cycle_rate(n), rel=0.08)


def test_both_models_agree_single_stream_is_1_over_21():
    spec = MtaSpec(n_processors=1)
    t_macro = macro_seconds(spec, 2100 * spec.ops_per_instruction, 1)
    expected = 2100 * 21 / spec.clock_hz
    assert t_macro == pytest.approx(expected, rel=0.02)
    t_cycle = cycle_seconds(spec, 2100, 1)
    assert t_cycle == pytest.approx(expected, rel=0.02)
