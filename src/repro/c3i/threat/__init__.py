"""Threat Analysis: interception windows for ballistic threats.

Problem (paper, Section 5): given the trajectories of incoming ballistic
threats and the locations/capabilities of interceptor weapons, compute,
for each (threat, weapon) pair, the time intervals over which the threat
can be intercepted.  The time-stepped trajectory simulation is the
computational core; a pair can yield zero, one or more intervals
(a ballistic arc can pass through a weapon's engagement envelope twice).
"""

from repro.c3i.threat.model import (
    Interval,
    Threat,
    Weapon,
    feasible_mask,
    threat_positions,
)
from repro.c3i.threat.scenarios import (
    FULL_SCALE,
    Scenario,
    benchmark_scenarios,
    make_scenario,
)
from repro.c3i.threat.sequential import ThreatAnalysisResult, run_sequential
from repro.c3i.threat.chunked import ChunkedResult, run_chunked
from repro.c3i.threat.finegrained import FineGrainedResult, run_finegrained
from repro.c3i.threat.validate import (
    check_chunked,
    check_finegrained,
    check_intervals,
)
from repro.c3i.threat.workload import (
    chunked_benchmark_job,
    finegrained_benchmark_job,
    sequential_benchmark_job,
)

__all__ = [
    "ChunkedResult",
    "FULL_SCALE",
    "FineGrainedResult",
    "Interval",
    "Scenario",
    "Threat",
    "ThreatAnalysisResult",
    "Weapon",
    "benchmark_scenarios",
    "check_chunked",
    "check_finegrained",
    "check_intervals",
    "chunked_benchmark_job",
    "feasible_mask",
    "finegrained_benchmark_job",
    "make_scenario",
    "run_chunked",
    "run_finegrained",
    "run_sequential",
    "sequential_benchmark_job",
    "threat_positions",
]
