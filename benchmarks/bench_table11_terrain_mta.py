"""Table 11: fine-grained Terrain Masking on the dual-processor Tera
MTA (inner-loop parallelism; network-bound 1.4x two-processor
speedup)."""

from _support import run_and_report


def bench_table11(benchmark, data):
    run_and_report(benchmark, data, "table11")
