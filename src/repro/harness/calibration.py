"""Calibration constants: the paper's measured values and how the
model constants were fitted to them.

**What is calibrated and what is emergent.**  The reproduction has two
kinds of numbers:

* *Calibrated constants* -- a small set of per-machine and per-workload
  scalars fitted so the **sequential** baselines land on the paper's
  Tables 2 and 8, namely:

  - the per-op cycle costs of each conventional CPU
    (``repro/machines/catalog.py``), fitted to the three conventional
    sequential times of each benchmark;
  - each machine's sustained memory bandwidth and effective miss
    latency (same file), fitted to the memory-bound Terrain Masking
    sequential times and the bus-saturation levels;
  - the benchmark op recipes (``repro/c3i/*/workload.py``): per-event
    op mixes whose *ratios* (memory fraction, float fraction) encode
    the compute-bound/memory-bound character of each program, and
    whose absolute sizes set total work (full-scale ``n_steps`` for
    Threat Analysis, the grid size and LOS per-cell cost for Terrain
    Masking);
  - the MTA parameters (``repro/mta/spec.py``): the 21-cycle issue
    interval and 128 streams are the machine's published architecture;
    the lookahead depth (5), loaded memory latency (135 cycles), LIW
    packing (3 ops/instruction) and prototype network throughput
    (0.45 words/cycle/processor, scaling as P^0.54) are fitted to the
    MTA rows of Tables 2/5/8/11.

* *Emergent results* -- everything else: every speedup curve, the bus
  saturation of Terrain Masking on both SMPs, the chunk-count sweep of
  Table 6, the 1.8x vs 1.4x two-processor MTA speedups (compute-bound
  issue scaling vs network-bound sublinear scaling), the failure of
  automatic parallelization, and the cross-machine equivalences
  ("one MTA processor ~ four Exemplar processors").  No per-table
  constants exist; a change to any machine model moves all of its
  tables together.

**Key derivations.**

* MTA sequential slowdown: one stream issues one instruction per
  21-cycle pipeline pass; unhidden memory latency adds
  ``mem_per_instr * max(0, 135 - 5*21)= ~0.35 * 30`` cycles for Threat
  Analysis, giving ~31.5 cycles/instruction -- the paper's 32x gap
  between sequential and saturated multithreaded execution.
* LIW packing: with 3 ops per 64-bit instruction word and one memory
  slot per word, instructions = max(ops/3, memory ops); Terrain
  Masking's ~37% memory ops make it one-reference-per-instruction,
  which is why its MTA runs are network-bound.
* Prototype network: Threat Analysis at saturation demands ~0.35
  words/cycle/processor (< 0.45: issue-bound at 1 processor; the
  aggregate demand of two processors then exceeds the sublinearly
  scaled network, capping the speedup at ~1.8).  Terrain Masking
  demands ~1.0 (network-bound everywhere; speedup = the network
  scaling factor, 2^0.54 ~ 1.45).
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# The paper's measured values, table by table (seconds unless noted).
# ----------------------------------------------------------------------

#: Table 2 -- sequential Threat Analysis.
PAPER_TABLE2 = {"Alpha": 187.0, "Pentium Pro": 458.0, "Exemplar": 343.0,
                "Tera": 2584.0}

#: Table 3 -- multithreaded Threat Analysis on the quad Pentium Pro.
PAPER_TABLE3 = {"sequential": 458.0, 1: 466.0, 2: 233.0, 3: 157.0,
                4: 117.0}

#: Table 4 -- multithreaded Threat Analysis on the 16-CPU Exemplar.
PAPER_TABLE4 = {"sequential": 343.0, 1: 343.0, 2: 172.0, 3: 115.0, 4: 87.0,
                5: 69.0, 6: 58.0, 7: 50.0, 8: 43.0, 9: 39.0, 10: 35.0,
                11: 32.0, 12: 29.0, 13: 27.0, 14: 26.0, 15: 24.0, 16: 22.0}

#: Table 5 -- multithreaded Threat Analysis on the Tera MTA (256 chunks).
PAPER_TABLE5 = {1: 82.0, 2: 46.0}

#: Table 6 -- Threat Analysis on the dual-processor MTA vs chunk count.
PAPER_TABLE6 = {8: 386.0, 16: 197.0, 32: 104.0, 64: 61.0, 128: 46.0,
                256: 46.0}

#: Table 8 -- sequential Terrain Masking.
PAPER_TABLE8 = {"Alpha": 158.0, "Pentium Pro": 197.0, "Exemplar": 228.0,
                "Tera": 978.0}

#: Table 9 -- multithreaded Terrain Masking on the quad Pentium Pro.
PAPER_TABLE9 = {"sequential": 197.0, 1: 172.0, 2: 97.0, 3: 74.0, 4: 65.0}

#: Table 10 -- multithreaded Terrain Masking on the 16-CPU Exemplar.
PAPER_TABLE10 = {"sequential": 228.0, 1: 228.0, 2: 102.0, 3: 90.0, 4: 59.0,
                 5: 62.0, 6: 43.0, 7: 51.0, 8: 37.0, 9: 49.0, 10: 34.0,
                 11: 41.0, 12: 34.0, 13: 32.0, 14: 40.0, 15: 41.0, 16: 37.0}

#: Table 11 -- fine-grained Terrain Masking on the Tera MTA.
PAPER_TABLE11 = {1: 48.0, 2: 34.0}

#: Section 7 micro-claims.
PAPER_MICRO = {
    "single_stream_issue_interval_cycles": 21.0,
    "single_stream_utilization": 1.0 / 21.0,
    "streams_for_full_utilization": 80.0,
    "hw_thread_create_cycles": 2.0,
    "sw_thread_create_cycles_lo": 50.0,
    "sw_thread_create_cycles_hi": 100.0,
    "sync_cycles": 1.0,
    "os_thread_create_cycles_lo": 10_000.0,
    "os_thread_create_cycles_hi": 500_000.0,
}

#: Default kernel scales used by the harness (see the workload modules
#: for the exact extrapolation; both are work-exact).
DEFAULT_THREAT_SCALE = 0.02
DEFAULT_TERRAIN_SCALE = 0.05
