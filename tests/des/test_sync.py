"""Unit tests for locks, semaphores, barriers and full/empty cells."""

import pytest

from repro.des import (
    DesError,
    FullEmptyCell,
    SimBarrier,
    SimLock,
    SimSemaphore,
    Simulator,
    Store,
)


# ----------------------------------------------------------------------
# SimLock
# ----------------------------------------------------------------------

def test_lock_mutual_exclusion():
    sim = Simulator()
    lock = SimLock(sim)
    inside = []
    max_inside = []

    def worker(sim, tag):
        grant = yield lock.acquire()
        inside.append(tag)
        max_inside.append(len(inside))
        yield sim.timeout(2)
        inside.remove(tag)
        lock.release(grant)

    for tag in range(5):
        sim.process(worker(sim, tag))
    sim.run()
    assert max(max_inside) == 1
    assert sim.now == 10  # fully serialized


def test_lock_wait_statistics():
    sim = Simulator()
    lock = SimLock(sim)

    def worker(sim):
        grant = yield lock.acquire()
        yield sim.timeout(3)
        lock.release(grant)

    for _ in range(3):
        sim.process(worker(sim))
    sim.run()
    assert lock.total_waits == 2
    assert lock.total_wait_time == pytest.approx(3 + 6)


def test_lock_state_flags():
    sim = Simulator()
    lock = SimLock(sim)
    assert not lock.locked

    def holder(sim):
        grant = yield lock.acquire()
        yield sim.timeout(5)
        lock.release(grant)

    sim.process(holder(sim))
    sim.run(until=1)
    assert lock.locked
    sim.run()
    assert not lock.locked


# ----------------------------------------------------------------------
# SimSemaphore
# ----------------------------------------------------------------------

def test_semaphore_counts():
    sim = Simulator()
    sem = SimSemaphore(sim, value=2)
    active = []
    peak = []

    def worker(sim, tag):
        yield sem.acquire()
        active.append(tag)
        peak.append(len(active))
        yield sim.timeout(1)
        active.remove(tag)
        sem.release()

    for tag in range(6):
        sim.process(worker(sim, tag))
    sim.run()
    assert max(peak) == 2
    assert sim.now == 3


def test_semaphore_release_without_waiters_increments():
    sim = Simulator()
    sem = SimSemaphore(sim, value=0)
    sem.release()
    assert sem.value == 1


def test_semaphore_negative_initial_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        SimSemaphore(sim, value=-1)


def test_semaphore_release_skips_triggered_waiter():
    """Regression: release() used to hand the permit to the waiter at
    the head of the queue even if its wait event had already been
    triggered elsewhere (timeout race / cancellation), raising
    "already triggered" and losing the permit."""
    sim = Simulator()
    sem = SimSemaphore(sim, value=0)
    order = []

    def waiter(sim, tag):
        yield sem.acquire()
        order.append((tag, sim.now))

    sim.process(waiter(sim, "a"))
    sim.process(waiter(sim, "b"))

    def releaser(sim):
        yield sim.timeout(1)
        # cancel "a"'s wait out from under the semaphore: its queued
        # event fires without a permit being granted
        sem._waiters[0].succeed(None)
        yield sim.timeout(1)
        sem.release()

    sim.process(releaser(sim))
    sim.run()
    # "a" woke from the cancellation at t=1; the real permit must go
    # to "b", the first still-pending waiter, not explode on "a"
    assert sorted(order) == [("a", 1), ("b", 2)]
    assert sem.value == 0


def test_semaphore_release_keeps_permit_when_all_waiters_cancelled():
    sim = Simulator()
    sem = SimSemaphore(sim, value=0)

    def waiter(sim):
        yield sem.acquire()

    sim.process(waiter(sim))
    sim.run()
    sem._waiters[0].succeed(None)   # cancelled, never given a permit
    sim.run()
    sem.release()
    assert sem.value == 1           # permit preserved, not lost
    assert not sem._waiters


# ----------------------------------------------------------------------
# SimBarrier
# ----------------------------------------------------------------------

def test_barrier_releases_all_at_once():
    sim = Simulator()
    bar = SimBarrier(sim, parties=3)
    release_times = []

    def worker(sim, delay):
        yield sim.timeout(delay)
        yield bar.wait()
        release_times.append(sim.now)

    for d in (1, 5, 9):
        sim.process(worker(sim, d))
    sim.run()
    assert release_times == [9, 9, 9]
    assert bar.generations == 1


def test_barrier_is_reusable():
    sim = Simulator()
    bar = SimBarrier(sim, parties=2)
    log = []

    def worker(sim, tag, delays):
        for d in delays:
            yield sim.timeout(d)
            gen = yield bar.wait()
            log.append((tag, gen, sim.now))

    sim.process(worker(sim, "a", [1, 1]))
    sim.process(worker(sim, "b", [3, 3]))
    sim.run()
    gens = sorted(set(g for _t, g, _n in log))
    assert gens == [1, 2]
    assert [t for _tag, _g, t in log] == [3, 3, 6, 6]


def test_barrier_invalid_parties():
    sim = Simulator()
    with pytest.raises(ValueError):
        SimBarrier(sim, parties=0)


# ----------------------------------------------------------------------
# FullEmptyCell
# ----------------------------------------------------------------------

def test_cell_write_then_read():
    sim = Simulator()
    cell = FullEmptyCell(sim)
    got = []

    def producer(sim):
        yield sim.timeout(3)
        yield cell.write_ef("payload")

    def consumer(sim):
        got.append((yield cell.read_fe()))
        got.append(sim.now)

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == ["payload", 3]
    assert not cell.is_full


def test_cell_read_blocks_until_full():
    sim = Simulator()
    cell = FullEmptyCell(sim)

    def consumer(sim):
        v = yield cell.read_fe()
        return (v, sim.now)

    def producer(sim):
        yield sim.timeout(10)
        yield cell.write_ef(99)

    c = sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert c.value == (99, 10)
    assert cell.total_blocked_reads == 1


def test_cell_write_blocks_until_empty():
    sim = Simulator()
    cell = FullEmptyCell(sim, value=1, full=True)

    def writer(sim):
        yield cell.write_ef(2)
        return sim.now

    def reader(sim):
        yield sim.timeout(5)
        v = yield cell.read_fe()
        return v

    w = sim.process(writer(sim))
    r = sim.process(reader(sim))
    sim.run()
    assert r.value == 1          # reader got the original value
    assert w.value == 5          # writer unblocked by the read
    assert cell.peek() == 2      # then stored its own
    assert cell.is_full
    assert cell.total_blocked_writes == 1


def test_cell_producer_consumer_pipeline():
    """Classic MTA idiom: full/empty cell as a 1-deep channel."""
    sim = Simulator()
    cell = FullEmptyCell(sim)
    received = []

    def producer(sim):
        for i in range(5):
            yield cell.write_ef(i)

    def consumer(sim):
        for _ in range(5):
            received.append((yield cell.read_fe()))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_cell_read_ff_leaves_full():
    sim = Simulator()
    cell = FullEmptyCell(sim)
    got = []

    def reader(sim, tag):
        v = yield cell.read_ff()
        got.append((tag, v))

    def writer(sim):
        yield sim.timeout(2)
        yield cell.write_ef("x")

    sim.process(reader(sim, "a"))
    sim.process(writer(sim))
    sim.run()
    assert got == [("a", "x")]
    assert cell.is_full  # ff read did not empty the cell


def test_cell_write_ff_overwrites():
    sim = Simulator()
    cell = FullEmptyCell(sim, value="old", full=True)

    def body(sim):
        yield cell.write_ff("new")

    sim.process(body(sim))
    sim.run()
    assert cell.peek() == "new"
    assert cell.is_full


def test_cell_reset_empty():
    sim = Simulator()
    cell = FullEmptyCell(sim, value=1, full=True)
    cell.reset_empty()
    assert not cell.is_full


def test_cell_reset_with_waiters_rejected():
    sim = Simulator()
    cell = FullEmptyCell(sim)

    def reader(sim):
        yield cell.read_fe()

    sim.process(reader(sim))
    sim.run()
    with pytest.raises(DesError):
        cell.reset_empty()


def test_cell_as_atomic_counter():
    """int_fetch_add idiom: read_fe / write_ef around an increment is
    atomic even with many contending threads."""
    sim = Simulator()
    cell = FullEmptyCell(sim, value=0, full=True)

    def incrementer(sim, times):
        for _ in range(times):
            v = yield cell.read_fe()
            # interleave with other work: atomicity must still hold
            yield sim.timeout(0.1)
            yield cell.write_ef(v + 1)

    procs = [sim.process(incrementer(sim, 10)) for _ in range(7)]
    sim.run_all(*procs)
    assert cell.peek() == 70


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------

def test_store_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim):
        for i in range(4):
            yield store.put(i)
            yield sim.timeout(1)

    def consumer(sim):
        for _ in range(4):
            got.append((yield store.get()))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == [0, 1, 2, 3]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer(sim):
        v = yield store.get()
        return (v, sim.now)

    def producer(sim):
        yield sim.timeout(6)
        yield store.put("item")

    c = sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert c.value == ("item", 6)


def test_store_bounded_put_blocks():
    sim = Simulator()
    store = Store(sim, capacity=1)

    def producer(sim):
        yield store.put("a")
        yield store.put("b")  # blocks until "a" is taken
        return sim.now

    def consumer(sim):
        yield sim.timeout(8)
        yield store.get()

    p = sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert p.value == 8


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None

    def body(sim):
        yield store.put("x")

    sim.process(body(sim))
    sim.run()
    ok, item = store.try_get()
    assert ok and item == "x"


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_semaphore_release_skips_cancelled_middle_waiter():
    """A cancellation in the *middle* of the queue must not shadow the
    live waiters behind it: each release walks past triggered events
    and grants the first still-pending one."""
    sim = Simulator()
    sem = SimSemaphore(sim, value=0)
    order = []

    def waiter(sim, tag):
        yield sem.acquire()
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(waiter(sim, tag))
    sim.run()
    sem._waiters[1].succeed(None)   # cancel "b" mid-queue
    sim.run()
    sem.release()
    sem.release()
    sim.run()
    assert order == ["b", "a", "c"]  # b woke from the cancellation
    assert sem.value == 0
    assert not sem._waiters


def test_barrier_wait_returns_generation_number():
    sim = Simulator()
    bar = SimBarrier(sim, parties=2)
    gens = []

    def worker(sim):
        for _ in range(2):
            gen = yield bar.wait()
            gens.append(gen)

    sim.process(worker(sim))
    sim.process(worker(sim))
    sim.run()
    assert sorted(gens) == [1, 1, 2, 2]
    assert bar.generations == 2


def test_barrier_reuse_across_phases_staggered():
    """The same barrier separates three phases; each generation fires
    when its slowest party arrives, and no party from the next phase
    leaks into the current generation."""
    sim = Simulator()
    bar = SimBarrier(sim, parties=2)
    crossings = []

    def worker(sim, tag, delays):
        for phase, d in enumerate(delays):
            yield sim.timeout(d)
            yield bar.wait()
            crossings.append((phase, tag, sim.now))

    sim.process(worker(sim, "fast", (1, 1, 1)))
    sim.process(worker(sim, "slow", (4, 4, 4)))
    sim.run()
    assert bar.generations == 3
    # every phase crossing happens at the slow party's arrival time
    assert [(p, t) for p, _tag, t in sorted(crossings)] == [
        (0, 4), (0, 4), (1, 8), (1, 8), (2, 12), (2, 12)]
    assert bar.n_waiting == 0
