"""Factorial sweep definitions: expansion goldens and execution.

The expansion fingerprint is the reproducibility anchor for sweeps the
way result-store keys are for cells: the golden values below pin the
grids, the recipe grammar and the expansion order all at once.  A
failure here means every archived sweep manifest changed meaning --
bump deliberately, never casually.
"""

import dataclasses

import pytest

from repro.c3i import sweeps as sw
from repro.harness.runner import default_data

SCALES = dict(threat_scale=0.01, terrain_scale=0.03)

#: name -> (cell count, expansion fingerprint)
GOLDEN = {
    "smoke": (12, "d0d9e8d63446fb04b2c4052c84d7134d"
                  "87aa4d141e89feaacb1e5166ef9edd97"),
    "ci": (144, "9c1e2c7906b819cdf92b99a0b1e21f26"
                "cc714381270257ba2d1eca24fa73295d"),
    "full": (1152, "f10a0b3f391f11a9cabf2b3b612e9e57"
                   "6638777b452c53000f6bb369081ee91d"),
}


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "tb-cache"))
    default_data.cache_clear()


# ----------------------------------------------------------------------
# expansion
# ----------------------------------------------------------------------

def test_catalog_and_golden_fingerprints():
    assert set(sw.SWEEPS) == set(GOLDEN)
    for name, (n_cells, fingerprint) in GOLDEN.items():
        sweep = sw.get_sweep(name)
        assert sweep.n_cells == n_cells
        assert len(sw.expand_payloads(sweep)) == n_cells
        assert sw.expansion_fingerprint(sweep) == fingerprint


def test_size_floors_of_the_acceptance_criteria():
    assert sw.get_sweep("ci").n_cells >= 100
    assert sw.get_sweep("full").n_cells >= 1000


def test_expansion_is_deterministic():
    for sweep in sw.SWEEPS.values():
        assert sw.expand_payloads(sweep) == sw.expand_payloads(sweep)


def test_every_payload_validates_through_the_protocol():
    # the same validation path a service `sweep` request takes
    for sweep in sw.SWEEPS.values():
        cells = sw.expand_cells(sweep, **SCALES)
        assert len(cells) == sweep.n_cells
        for cell in cells:
            assert cell["key"]
            assert cell["job_recipe"].startswith("tb-")
            assert cell["kind"] in ("mta", "conventional")


def test_machine_families_pick_their_thread_kind():
    for payload in sw.expand_payloads(sw.get_sweep("full")):
        family = payload["machine"].partition(":")[0]
        kind = payload["workload"].rsplit("-", 1)[1]
        assert kind == ("hw" if family in ("mta", "cmt") else "os"), \
            payload


def test_manifest_carries_the_grid_and_the_cells():
    sweep = sw.get_sweep("smoke")
    manifest = sw.expansion_manifest(sweep)
    assert manifest["schema"] == sw.SCHEMA
    assert manifest["fingerprint"] == GOLDEN["smoke"][1]
    assert manifest["n_cells"] == len(manifest["cells"]) == 12
    assert manifest["factors"] == sweep.factors()


def test_get_sweep_unknown_raises_keyerror():
    with pytest.raises(KeyError, match="unknown sweep"):
        sw.get_sweep("nope")


def test_sweepdef_rejects_bad_grids():
    base = sw.get_sweep("smoke")
    with pytest.raises(ValueError, match="unknown topology"):
        dataclasses.replace(base, topologies=("spiral",))
    with pytest.raises(ValueError, match="empty factor"):
        dataclasses.replace(base, widths=())


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

def test_run_sweep_smoke_then_cached_rerun(capsys):
    first = sw.run_sweep("smoke", **SCALES)
    assert (first.n_cells, first.n_unique) == (12, 12)
    assert first.n_computed == 12 and first.n_cached == 0
    assert first.fingerprint == GOLDEN["smoke"][1]

    second = sw.run_sweep("smoke", **SCALES)
    assert second.n_computed == 0 and second.n_cached == 12
    assert second.fingerprint == first.fingerprint
    assert "12 cached" in capsys.readouterr().out


def test_run_sweep_verify_smoke_is_clean():
    outcome = sw.run_sweep("smoke", verify=True, **SCALES)
    assert outcome.verify_checked == 12
    assert outcome.verify_failures == []


def test_run_sweep_streams_records():
    seen = []
    sw.run_sweep("smoke", on_record=seen.append, **SCALES)
    assert len(seen) == 12
    assert all(rec["job"].startswith("tb-") for rec in seen)


@pytest.mark.slow
def test_full_sweep_runs_and_lands_in_the_run_index():
    """The >=1000-cell acceptance path: `repro sweep full -j 2` runs
    every cell and the run index answers factor-substring queries
    (topology, width, grain) over the results."""
    from repro.__main__ import main
    from repro.harness import index

    status = main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                   "sweep", "full", "-j", "2"])
    assert status == 0

    conn = index.connect()
    try:
        sweep_cells = index.query_cells(conn, cell="tb-")
        assert len(sweep_cells) == sw.get_sweep("full").n_cells
        by_topology = index.query_cells(conn, cell="tb-mesh")
        assert by_topology
        assert all("tb-mesh" in r["cell"] for r in by_topology)
        by_width = index.query_cells(conn, cell="-w8-")
        assert by_width
        assert all("-w8-" in r["cell"] for r in by_width)
        by_grain = index.query_cells(conn, cell="-g2-")
        assert len(by_grain) == sw.get_sweep("full").n_cells // 2
        assert all(r["seconds"] > 0 for r in sweep_cells)
    finally:
        conn.close()
