"""Tests for the programming-system layer (Sthreads, pragmas, costs)."""

import pytest

from repro.machines import PPRO_SMP_4
from repro.threads import (
    COST_TABLE,
    SthreadsRuntime,
    chunked_loop_job,
    cost_ratio,
    parallel_region,
    work_queue_job,
)
from repro.threads.costs import render_cost_table
from repro.workload import Compute, Critical, OpCounts, make_phase


# ----------------------------------------------------------------------
# SthreadsRuntime
# ----------------------------------------------------------------------

def test_sthread_creation_pays_os_cost():
    rt = SthreadsRuntime(PPRO_SMP_4)

    def body(rt):
        yield rt.compute_cycles(0)
        return rt.now_cycles

    t = rt.create(body)
    rt.run()
    assert t.result() == pytest.approx(rt.create_cycles, rel=1e-6)
    assert rt.create_cycles >= 10_000


def test_sthread_join_all():
    rt = SthreadsRuntime(PPRO_SMP_4)
    finished = []

    def body(rt, n):
        yield rt.compute_cycles(n * 1000)
        finished.append(n)
        return n

    def main(rt):
        threads = [rt.create(body, n) for n in (3, 1, 2)]
        yield rt.join_all(threads)
        return sorted(t.result() for t in threads)

    m = rt.create(main)
    rt.run()
    assert m.result() == [1, 2, 3]
    assert sorted(finished) == [1, 2, 3]


def test_sthread_lock_mutual_exclusion_and_cost():
    rt = SthreadsRuntime(PPRO_SMP_4)
    lock = rt.lock()
    inside = []

    def body(rt, tag):
        grant = yield from lock.acquire()
        inside.append(tag)
        assert len(inside) == 1
        yield rt.compute_cycles(10_000)
        inside.remove(tag)
        lock.release(grant)

    for tag in range(3):
        rt.create(body, tag)
    elapsed = rt.run()
    # serialized critical sections + creation + sync costs
    assert elapsed >= 3 * 10_000
    assert lock.total_wait_time > 0


def test_sthread_failure_propagates():
    rt = SthreadsRuntime(PPRO_SMP_4)

    def bad(rt):
        yield rt.compute_cycles(1)
        raise ValueError("thread died")

    rt.create(bad)
    with pytest.raises(ValueError, match="thread died"):
        rt.run()


# ----------------------------------------------------------------------
# pragma helpers
# ----------------------------------------------------------------------

def phases_for(n, cycles=100.0):
    return [[make_phase(f"it{i}", OpCounts(ialu=cycles))] for i in range(n)]


def test_parallel_region_one_thread_per_iteration():
    region = parallel_region(phases_for(5), thread_kind="hw")
    assert region.n_threads == 5
    assert region.thread_kind == "hw"
    assert region.threads[2].items[0].phase.name == "it2"


def test_parallel_region_empty_rejected():
    with pytest.raises(ValueError):
        parallel_region([])


def test_chunked_loop_block_distribution():
    region = chunked_loop_job(phases_for(10), n_chunks=3)
    sizes = [len(t.items) for t in region.threads]
    assert sum(sizes) == 10
    assert sizes == [3, 3, 4]  # [0,3), [3,6), [6,10) per the formula


def test_chunked_loop_formula_matches_program2():
    """first = (c*n)/k, last = ((c+1)*n)/k - 1 -- every iteration is
    covered exactly once, for any n, k."""
    for n in (7, 16, 1000):
        for k in (1, 3, 8, 16):
            region = chunked_loop_job(phases_for(n), n_chunks=k)
            names = [it.phase.name for t in region.threads
                     for it in t.items]
            assert sorted(names) == sorted(f"it{i}" for i in range(n))


def test_chunked_more_chunks_than_iterations():
    region = chunked_loop_job(phases_for(3), n_chunks=8)
    assert region.n_threads == 8
    total = sum(len(t.items) for t in region.threads)
    assert total == 3


def test_chunked_validation():
    with pytest.raises(ValueError):
        chunked_loop_job([], n_chunks=2)
    with pytest.raises(ValueError):
        chunked_loop_job(phases_for(3), n_chunks=0)


def test_work_queue_job_normalizes_phases_and_items():
    p = make_phase("w", OpCounts(ialu=10))
    crit = Critical("L", p)
    region = work_queue_job([[p], [crit, p]], n_threads=2)
    assert len(region.items) == 2
    assert isinstance(region.items[0].items[0], Compute)
    assert isinstance(region.items[1].items[0], Critical)
    assert region.n_threads == 2


# ----------------------------------------------------------------------
# cost table
# ----------------------------------------------------------------------

def test_cost_table_magnitudes_match_section7():
    conventional = [c for c in COST_TABLE if "Tera" not in c.platform]
    tera = [c for c in COST_TABLE if "Tera" in c.platform]
    for c in conventional:
        assert 10_000 <= c.create_cycles <= 500_000
        assert 100 <= c.sync_cycles <= 5_000
    for c in tera:
        assert c.create_cycles <= 100
        assert c.sync_cycles == 1


def test_cost_ratio_is_orders_of_magnitude():
    assert cost_ratio("create_cycles") > 1_000
    assert cost_ratio("sync_cycles") > 100


def test_render_cost_table():
    text = render_cost_table()
    assert "Tera MTA" in text
    assert "Pentium Pro" in text
    assert "create" in text
