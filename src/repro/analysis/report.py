"""Finding records and the schema-versioned race report."""

from __future__ import annotations

from dataclasses import dataclass

#: Version tag stamped on every JSON report; bump on shape changes.
RACE_REPORT_SCHEMA = "repro-race-report/v1"

#: The hazard vocabulary.  Static classes come from the job walk in
#: :mod:`repro.analysis.hb`; dynamic classes from the live
#: :class:`~repro.analysis.monitor.SyncMonitor`.
HAZARD_CLASSES = (
    "data-race",        # conflicting concurrent accesses, no common lock
    "lock-discipline",  # same location reached under inconsistent locksets
    "write-to-full",    # producer overwrote / stuck writing a full cell
    "read-from-empty",  # consumer stuck reading a never-filled cell
    "barrier-mismatch", # barrier generation short of its party count
    "deadlock",         # the program cannot finish at all
)


@dataclass(frozen=True)
class Finding:
    """One detected hazard.

    ``units`` names the threads / work items / sync objects involved
    (representatives -- ``detail`` carries the full count when a whole
    cohort conflicts).
    """

    hazard: str
    job: str
    region: str
    location: str
    units: tuple[str, ...]
    detail: str = ""

    def __post_init__(self) -> None:
        if self.hazard not in HAZARD_CLASSES:
            raise ValueError(f"unknown hazard class {self.hazard!r}")
        object.__setattr__(self, "units", tuple(self.units))

    @property
    def key(self) -> tuple:
        """Canonical identity, used for sorting and engine parity."""
        return (self.job, self.region, self.hazard, self.location,
                self.units)

    def as_dict(self) -> dict:
        return {
            "hazard": self.hazard,
            "job": self.job,
            "region": self.region,
            "location": self.location,
            "units": list(self.units),
            "detail": self.detail,
        }

    def render(self) -> str:
        where = f"{self.job} / {self.region}" if self.job else self.region
        who = ", ".join(self.units)
        tail = f"  ({self.detail})" if self.detail else ""
        return f"[{self.hazard}] {where}: {self.location} by {who}{tail}"


@dataclass(frozen=True)
class JobReport:
    """The verdict for one job under one engine."""

    job: str
    engine: str
    findings: tuple[Finding, ...]
    suppressed: int = 0  #: candidate pairs cleared by dependence facts

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "job": self.job,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": self.suppressed,
        }


def report_to_dict(experiment_reports: dict[str, list[JobReport]],
                   engine: str,
                   dynamic_findings: tuple[Finding, ...] = ()) -> dict:
    """The full ``repro race`` payload, JSON-ready and stably ordered.

    Everything except the top-level ``engine`` tag must be identical
    whichever engine produced it -- CI diffs the two payloads.
    """
    experiments = {}
    clean = True
    for eid in sorted(experiment_reports):
        jobs = [jr.as_dict() for jr in
                sorted(experiment_reports[eid], key=lambda jr: jr.job)]
        experiments[eid] = {
            "jobs": jobs,
            "clean": all(not j["findings"] for j in jobs),
        }
        clean = clean and experiments[eid]["clean"]
    payload: dict = {
        "schema": RACE_REPORT_SCHEMA,
        "engine": engine,
        "clean": clean and not dynamic_findings,
        "experiments": experiments,
    }
    if dynamic_findings:
        payload["dynamic_findings"] = [
            f.as_dict() for f in sorted(dynamic_findings,
                                        key=lambda f: f.key)]
    return payload


def render_report(experiment_reports: dict[str, list[JobReport]],
                  engine: str) -> str:
    """Human-readable summary of a registry race run."""
    lines = [f"race detector ({engine} engine)"]
    total = 0
    for eid in sorted(experiment_reports):
        reports = experiment_reports[eid]
        findings = [f for jr in reports for f in jr.findings]
        suppressed = sum(jr.suppressed for jr in reports)
        total += len(findings)
        jobs = len(reports)
        note = f", {suppressed} suppressed by dependence facts" \
            if suppressed else ""
        verdict = "clean" if not findings else \
            f"{len(findings)} finding(s)"
        lines.append(f"  {eid:24s} {jobs} job(s): {verdict}{note}")
        for f in findings:
            lines.append(f"    {f.render()}")
    lines.append(f"total findings: {total}")
    return "\n".join(lines)
