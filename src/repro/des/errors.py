"""Exception types used by the DES kernel."""

from __future__ import annotations


class DesError(Exception):
    """Base class for all simulation-kernel errors."""


class SimulationDeadlock(DesError):
    """Raised by :meth:`Simulator.run` when processes remain blocked but
    no events are scheduled -- i.e. the simulation can never advance."""


class Interrupt(DesError):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever value the interrupter
    supplied, so the interrupted process can decide how to react.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause
