"""Performance simulators for the conventional platforms of the paper.

A :class:`~repro.machines.machine.ConventionalMachine` executes a
:class:`~repro.workload.Job` on a DES model of a cache-based
shared-memory multiprocessor:

* each CPU is a share of a processor pool (threads never exceed one
  CPU's issue rate; the pool never exceeds ``n_cpus``);
* each phase's cache-miss traffic -- derived from its footprint and
  access pattern by :mod:`repro.machines.locality` -- contends for a
  shared memory bus with finite bandwidth and a per-CPU cap set by the
  miss latency (an in-order CPU keeps only one miss outstanding);
* locks are DES mutexes with the platform's synchronization cost;
* thread creation pays the platform's (expensive) OS-thread cost.

The three platforms of the paper are in
:mod:`repro.machines.catalog`: ``ALPHASTATION_500`` (1x500 MHz),
``PPRO_SMP_4`` (4x200 MHz), ``EXEMPLAR_16`` (16x180 MHz).  The catalog
also carries the modern chip-multithreaded family, ``CMT_T3_4`` (the
512-strand SPARC T3-4 derived in :mod:`repro.cmt.spec`), which runs on
the same conventional-machine contracts.

:mod:`repro.machines.cache` additionally provides a trace-level
set-associative cache simulator used by the unit tests and
micro-benchmarks to validate the macro locality model.
"""

from repro.machines.spec import (
    CacheSpec,
    CoreSpec,
    MachineSpec,
    MemSpec,
    ThreadCosts,
)
from repro.machines.cache import SetAssociativeCache
from repro.machines.cycle import (
    CoreInstruction,
    CoreStats,
    InOrderCore,
    compute_kernel,
    random_kernel,
    resident_kernel,
    streaming_kernel,
)
from repro.machines.locality import miss_traffic_bytes
from repro.machines.machine import ConventionalMachine, RunResult
from repro.machines.catalog import (
    ALPHASTATION_500,
    EXEMPLAR_16,
    PPRO_SMP_4,
    cmt,
    exemplar,
    get_machine_spec,
    ppro,
)


def __getattr__(name: str) -> object:
    # CMT_T3_4 resolves through the catalog's lazy loader (see
    # repro.machines.catalog: repro.cmt.spec imports this package, so
    # an eager re-export here would be circular).
    if name == "CMT_T3_4":
        from repro.machines import catalog
        return catalog.CMT_T3_4
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ALPHASTATION_500",
    "CMT_T3_4",
    "CacheSpec",
    "ConventionalMachine",
    "CoreInstruction",
    "CoreSpec",
    "CoreStats",
    "InOrderCore",
    "compute_kernel",
    "random_kernel",
    "resident_kernel",
    "streaming_kernel",
    "EXEMPLAR_16",
    "MachineSpec",
    "MemSpec",
    "PPRO_SMP_4",
    "RunResult",
    "SetAssociativeCache",
    "ThreadCosts",
    "cmt",
    "exemplar",
    "get_machine_spec",
    "miss_traffic_bytes",
    "ppro",
]
