"""Tera MTA system parameters.

The numbers trace to Section 2 of the paper and the MTA-1 literature:

* 255 MHz clock, up to 256 processors (the SDSC prototype had 2);
* 128 hardware streams per processor, 1-cycle stream switching;
* a single stream can issue at most one instruction per pipeline pass
  -- 21 cycles -- which is the paper's "one instruction every 21
  cycles, roughly 5% utilization" figure;
* each instruction is a LIW bundle (memory + arithmetic + control
  slots); ``ops_per_instruction`` is the effective packing our abstract
  op counts assume the Tera compiler achieves on these loop kernels;
* no caches: every reference crosses the network to one of the 64-way
  interleaved memory units; ``mem_latency_cycles`` is the average
  loaded round trip, of which a stream's explicit-dependence lookahead
  can cover ``lookahead * 21`` cycles before the issue slot stalls;
* the prototype network ("development status", the paper's repeated
  caveat for its sub-ideal 2-processor speedups) delivers
  ``network_words_per_cycle`` per processor at 1 processor and scales
  as ``P ** network_scaling_exponent``;
* thread costs from Section 2: compiler-created hardware streams cost
  2 cycles, programmer-created software threads 50-100 (we use 75),
  synchronization 1 cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.machines.spec import ThreadCosts


@dataclass(frozen=True)
class MtaSpec:
    """A Tera MTA configuration."""

    name: str = "Tera MTA"
    n_processors: int = 2
    clock_hz: float = 255e6
    streams_per_processor: int = 128
    issue_interval_cycles: float = 21.0
    lookahead: int = 5
    mem_latency_cycles: float = 135.0
    ops_per_instruction: float = 3.0
    network_words_per_cycle: float = 0.45
    network_scaling_exponent: float = 0.54
    #: installed physical memory (Table 1: the SDSC prototype had 2 GB)
    memory_bytes: float = 2.0 * 1024 ** 3
    thread_costs: dict[str, ThreadCosts] = field(default_factory=lambda: {
        "hw": ThreadCosts(create_cycles=2.0, sync_cycles=1.0),
        "sw": ThreadCosts(create_cycles=75.0, sync_cycles=1.0),
        # an "os"-kind region on the MTA still maps to software threads
        "os": ThreadCosts(create_cycles=100.0, sync_cycles=1.0),
    })

    def __post_init__(self) -> None:
        if self.n_processors < 1 or self.n_processors > 256:
            raise ValueError("the MTA supports 1..256 processors")
        if self.streams_per_processor < 1:
            raise ValueError("streams_per_processor must be >= 1")
        if self.issue_interval_cycles < 1:
            raise ValueError("issue_interval_cycles must be >= 1")
        if self.lookahead < 0:
            raise ValueError("lookahead must be >= 0")
        if self.ops_per_instruction <= 0:
            raise ValueError("ops_per_instruction must be positive")
        if self.network_words_per_cycle <= 0:
            raise ValueError("network_words_per_cycle must be positive")

    # ------------------------------------------------------------------
    @property
    def visible_stall_cycles(self) -> float:
        """Memory latency a *single* stream cannot hide.

        The lookahead field lets a stream keep ``lookahead`` instructions
        in flight, covering ``lookahead * issue_interval`` cycles of a
        reference's latency; the rest stalls the stream (but not the
        processor -- other streams fill the slots).
        """
        return max(0.0, self.mem_latency_cycles
                   - self.lookahead * self.issue_interval_cycles)

    def stream_interval_cycles(self, mem_fraction: float) -> float:
        """Mean cycles between issues of one stream executing a mix in
        which ``mem_fraction`` of instructions reference memory."""
        if not 0.0 <= mem_fraction <= 1.0:
            raise ValueError("mem_fraction must be in [0, 1]")
        return (self.issue_interval_cycles
                + mem_fraction * self.visible_stall_cycles)

    def stream_issue_rate(self, mem_fraction: float = 0.0) -> float:
        """One stream's instruction rate (instructions per second)."""
        return self.clock_hz / self.stream_interval_cycles(mem_fraction)

    def network_capacity_words_per_s(self, n_processors: int | None = None
                                     ) -> float:
        """Aggregate memory-reference throughput of the network."""
        p = self.n_processors if n_processors is None else n_processors
        if p < 1:
            raise ValueError("n_processors must be >= 1")
        return (self.network_words_per_cycle * self.clock_hz
                * p ** self.network_scaling_exponent)

    def with_processors(self, n: int) -> "MtaSpec":
        return replace(self, n_processors=n, name=f"{self.name}[{n}p]")

    def costs_for(self, kind: str) -> ThreadCosts:
        if kind not in self.thread_costs:
            raise KeyError(f"{self.name}: no thread cost table for {kind!r}")
        return self.thread_costs[kind]


#: The dual-processor prototype installed at SDSC.
MTA_2 = MtaSpec(name="Tera MTA (SDSC prototype)", n_processors=2)


def mta(n_processors: int) -> MtaSpec:
    """An MTA with ``n_processors`` processors (prototype parameters)."""
    return MTA_2.with_processors(n_processors)
