"""Parallel experiment execution.

The registry's experiments are independent of each other (they share
only the read-only :class:`BenchmarkData` kernels and the persistent
result cache), so ``python -m repro all`` / ``report`` can fan them out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker
process builds its own ``BenchmarkData`` (the kernels are cheap; the
simulations are not) and shares simulation results with every other
worker through the on-disk cache, so even a cold parallel run does not
duplicate the expensive work that experiments have in common.

``run_experiments`` also collects a per-experiment profile (wall time
and cache hit/miss counts) for the CLI's ``--profile`` flag.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.harness import store
from repro.harness.experiment import ExperimentResult
from repro.harness.registry import EXPERIMENT_IDS, run_experiment
from repro.harness.runner import BenchmarkData, default_data


@dataclass(frozen=True)
class ExperimentProfile:
    """Cost accounting for one experiment run."""

    experiment_id: str
    wall_seconds: float
    cache_hits: int
    cache_misses: int
    #: one record per simulation the experiment consulted
    #: (``BenchmarkData.metrics_log`` entries: kind/machine/job/
    #: seconds/stats) -- the raw material of ``repro all --metrics``
    metrics: tuple[dict, ...] = ()


def _run_one(experiment_id: str, threat_scale: float,
             terrain_scale: float) -> tuple[ExperimentResult,
                                            ExperimentProfile]:
    """Worker body: run one experiment and account for it.

    Top-level (picklable) for ProcessPoolExecutor.  ``default_data`` is
    lru-cached per process, so a worker reuses its kernels across every
    experiment it is handed.  Hit/miss attribution uses
    :func:`repro.harness.store.cache_scope`, which counts the lookups
    made in this call's context exactly -- unlike snapshot deltas of
    the process-cumulative counters, it stays correct even if runs
    ever interleave within one process.
    """
    data = default_data(threat_scale, terrain_scale)
    n0 = len(data.metrics_log)
    t0 = time.perf_counter()
    with store.cache_scope() as sc:
        result = run_experiment(experiment_id, data)
    wall = time.perf_counter() - t0
    return result, ExperimentProfile(
        experiment_id=experiment_id, wall_seconds=wall,
        cache_hits=sc.hits, cache_misses=sc.misses,
        metrics=tuple(data.metrics_log[n0:]))


def run_experiments(
    experiment_ids: Optional[Iterable[str]] = None,
    *,
    threat_scale: float,
    terrain_scale: float,
    jobs: Optional[int] = None,
    data: Optional[BenchmarkData] = None,
) -> tuple[dict[str, ExperimentResult], list[ExperimentProfile]]:
    """Run experiments, in parallel when ``jobs > 1``.

    Results come back keyed by id in the requested order regardless of
    completion order.  ``jobs=None`` uses the CPU count; ``jobs=1``
    runs serially in-process (sharing ``data`` when given, so tests and
    the single-core path pay no pickling or re-kerneling cost).
    """
    ids: Sequence[str] = tuple(experiment_ids or EXPERIMENT_IDS)
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(ids)))

    if jobs == 1:
        if data is None:
            data = default_data(threat_scale, terrain_scale)
        results: dict[str, ExperimentResult] = {}
        profiles: list[ExperimentProfile] = []
        for eid in ids:
            n0 = len(data.metrics_log)
            t0 = time.perf_counter()
            with store.cache_scope() as sc:
                results[eid] = run_experiment(eid, data)
            wall = time.perf_counter() - t0
            profiles.append(ExperimentProfile(
                experiment_id=eid, wall_seconds=wall,
                cache_hits=sc.hits, cache_misses=sc.misses,
                metrics=tuple(data.metrics_log[n0:])))
        return results, profiles

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {eid: pool.submit(_run_one, eid, threat_scale,
                                    terrain_scale)
                   for eid in ids}
        pairs = {eid: fut.result() for eid, fut in futures.items()}
    return ({eid: pairs[eid][0] for eid in ids},
            [pairs[eid][1] for eid in ids])


def metrics_rollup(profile: ExperimentProfile) -> dict:
    """Aggregate one experiment's simulation records into totals."""
    totals = {
        "sim_runs": 0,
        "simulated_seconds": 0.0,
        "cohort_regions": 0.0,
        "des_regions": 0.0,
        "region_wall_seconds": 0.0,
        "serial_wall_seconds": 0.0,
        "lock_wait_seconds": 0.0,
        "lock_convoy_max": 0.0,
    }
    for rec in profile.metrics:
        stats = rec.get("stats") or {}
        totals["sim_runs"] += 1
        totals["simulated_seconds"] += float(rec.get("seconds", 0.0))
        totals["cohort_regions"] += stats.get("cohort_regions", 0.0)
        totals["des_regions"] += stats.get("des_regions", 0.0)
        totals["region_wall_seconds"] += stats.get(
            "region_wall_seconds", 0.0)
        totals["serial_wall_seconds"] += stats.get(
            "serial_wall_seconds", 0.0)
        totals["lock_wait_seconds"] += stats.get("lock_wait_time", 0.0)
        convoy = stats.get("lock_convoy_max", 0.0)
        if convoy > totals["lock_convoy_max"]:
            totals["lock_convoy_max"] = convoy
    return totals


def metrics_to_dict(profiles: list[ExperimentProfile]) -> dict:
    """Machine-readable ``--metrics-json`` payload (for CI)."""
    return {
        "schema": 1,
        "experiments": [
            {"experiment_id": p.experiment_id,
             "rollup": metrics_rollup(p),
             "runs": list(p.metrics)}
            for p in profiles
        ],
    }


def render_metrics(profiles: list[ExperimentProfile]) -> str:
    """The ``--metrics`` table: per-experiment simulation rollups."""
    lines = [
        f"{'experiment':<26} {'sims':>5} {'sim-sec':>10} "
        f"{'regions c/d':>12} {'region-wall':>12} {'lock-wait':>10} "
        f"{'convoy':>7}",
        "-" * 88,
    ]
    for p in profiles:
        t = metrics_rollup(p)
        regions = (f"{t['cohort_regions']:.0f}/"
                   f"{t['des_regions']:.0f}")
        lines.append(
            f"{p.experiment_id:<26} {t['sim_runs']:>5d} "
            f"{t['simulated_seconds']:>10.3f} {regions:>12} "
            f"{t['region_wall_seconds']:>12.3f} "
            f"{t['lock_wait_seconds']:>10.3f} "
            f"{t['lock_convoy_max']:>7.0f}")
    return "\n".join(lines)


def render_profile(profiles: list[ExperimentProfile]) -> str:
    """The ``--profile`` table (per-experiment wall + cache traffic)."""
    lines = [
        f"{'experiment':<26} {'wall (s)':>9} {'cache hits':>11} "
        f"{'misses':>7}",
        "-" * 56,
    ]
    for p in profiles:
        lines.append(f"{p.experiment_id:<26} {p.wall_seconds:>9.2f} "
                     f"{p.cache_hits:>11d} {p.cache_misses:>7d}")
    lines.append("-" * 56)
    lines.append(
        f"{'total':<26} {sum(p.wall_seconds for p in profiles):>9.2f} "
        f"{sum(p.cache_hits for p in profiles):>11d} "
        f"{sum(p.cache_misses for p in profiles):>7d}")
    return "\n".join(lines)
