"""Section 7 micro-claims, from the cycle-accurate MTA simulator:
one instruction per 21 cycles per stream, ~80 streams to saturate a
processor on load-use code, and the thread-cost table."""

import pytest

pytestmark = pytest.mark.slow  # cycle-accurate / full-sweep benches

from _support import run_and_report

from repro.threads.costs import render_cost_table


def bench_micro_claims(benchmark, data):
    run_and_report(benchmark, data, "micro")
    print()
    print(render_cost_table())
