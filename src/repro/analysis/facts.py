"""Dependence facts: compiler-proven iteration independence.

The workload layer sometimes cannot bound an access -- Program 2
writes ``intervals[chunk][num_intervals[chunk]]``, whose element
extent depends on runtime counter values, so the job annotation is an
opaque whole-array write.  Pairwise, those writes look like a race.

The compiler IR knows better: the leading ``chunk`` subscript is
affine in the parallel loop variable, and the dependence tests of
:mod:`repro.compiler.dependence` prove distinct iterations touch
distinct elements.  This module extracts, per parallel loop, the set
of arrays **every** write of which separates iterations that way, and
the detector uses them to clear opaque-extent conflicts between
different iterations (= different threads) of that loop.

Only subscript separation is reused; call-purity obstacles (which bar
*automatic* parallelization of the same loops) are the programmer's
asserted responsibility under the pragma, exactly as in the paper.
"""

from __future__ import annotations

from functools import lru_cache

from repro.compiler.dependence import (
    DependenceKind,
    analyze_loop,
    collect_accesses,
)
from repro.compiler.loopir import ForLoop, Program


def _parallel_loops(program: Program) -> list[ForLoop]:
    """The pragma-annotated loops of a program (top level is enough
    for Programs 2 and 4)."""
    return [s for s in program.body
            if isinstance(s, ForLoop) and s.pragma_parallel]


def loop_independent_arrays(loop: ForLoop) -> frozenset[str]:
    """Arrays written in ``loop`` whose subscripts provably separate
    iterations (no ARRAY or ASSUMED dependence recorded on them)."""
    written = {w.array for w in collect_accesses(loop.body).array_writes}
    dependent = {
        d.variable for d in analyze_loop(loop)
        if d.kind in (DependenceKind.ARRAY, DependenceKind.ASSUMED)
    }
    return frozenset(written - dependent)


@lru_cache(maxsize=None)
def _program_facts(family: str) -> frozenset[str]:
    from repro.compiler.programs import (
        terrain_blocked_ir,
        threat_chunked_ir,
    )

    program = {
        "threat-chunked": threat_chunked_ir,
        "terrain-blocked": terrain_blocked_ir,
    }[family](with_pragma=True)
    out: frozenset[str] = frozenset()
    for loop in _parallel_loops(program):
        out = out | loop_independent_arrays(loop)
    return out


def facts_for_job(job_name: str) -> frozenset[str]:
    """Iteration-independent arrays for the job's program family.

    Job names encode their source program (``threat-chunked-16``,
    ``terrain-blocked-8t``, ...); families without an IR counterpart
    get no facts and rely purely on explicit access ranges and locks.
    """
    for family in ("threat-chunked", "terrain-blocked"):
        if job_name.startswith(family):
            return _program_facts(family)
    return frozenset()
