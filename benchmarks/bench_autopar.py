"""Sections 5-6: the automatic parallelizing compilers find no
practical parallelism in either sequential program, and parallelize
the restructured programs only at their explicit pragmas."""

from _support import run_and_report

from repro.compiler import parallelize, render_feedback, threat_sequential_ir


def bench_autopar(benchmark, data):
    run_and_report(benchmark, data, "autopar")
    print()
    print(render_feedback(parallelize(threat_sequential_ir())))
