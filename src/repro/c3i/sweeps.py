"""Declarative factorial sweep definitions over taskbench workloads.

A :class:`SweepDef` names a topology x size x machine x seed grid; its
expansion is a deterministic, sorted factorial product of
service-protocol ``CELL`` payloads, validated and keyed by
:func:`repro.service.protocol.cell_from_payload` -- the same code path
a ``sweep`` service request takes, which is what makes `repro sweep`
and the served sweep byte-identical per cell by construction.  The
expanded cells run through :func:`repro.harness.parallel.run_cells`
(content-addressed dedupe, largest-first draining, ``-j`` pools) and
land in the run store, where ``repro runs query --cell`` finds them by
the factor substrings baked into every recipe name
(``tb-<topo>-w<W>-d<D>-g<G>-s<S>-<kind>``).

This is how the registry scales from ~dozens of hand-listed cells to
thousands: dozens of lines of grid definition, not thousands of lines
of cells (muBench-style; ROADMAP item 3).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Optional

from repro.harness import store
from repro.taskbench import TOPOLOGIES, recipe_name
from repro.taskbench.generator import TaskGraphParams

SCHEMA = "repro-sweep/v1"

#: thread kind per machine family: hardware contexts where the family
#: has them (MTA streams, T3-4 strands), OS threads on the SMPs.
_KIND_FOR_FAMILY = {"mta": "hw", "cmt": "hw"}


@dataclass(frozen=True)
class SweepDef:
    """One named factorial grid."""

    name: str
    description: str
    topologies: tuple[str, ...]
    widths: tuple[int, ...]
    depths: tuple[int, ...]
    grains: tuple[int, ...] = (1,)
    seeds: tuple[int, ...] = (0,)
    #: protocol machine ids (``family[:n]``, see parse_machine)
    machines: tuple[str, ...] = ("mta:1",)

    def __post_init__(self) -> None:
        for topo in self.topologies:
            if topo not in TOPOLOGIES:
                raise ValueError(f"unknown topology {topo!r}")
        if not (self.topologies and self.widths and self.depths
                and self.grains and self.seeds and self.machines):
            raise ValueError(f"sweep {self.name!r} has an empty factor")

    @property
    def n_cells(self) -> int:
        return (len(self.topologies) * len(self.widths) * len(self.depths)
                * len(self.grains) * len(self.seeds) * len(self.machines))

    def factors(self) -> dict:
        """The grid as a JSON-able document (manifest material)."""
        return {
            "topologies": list(self.topologies),
            "widths": list(self.widths),
            "depths": list(self.depths),
            "grains": list(self.grains),
            "seeds": list(self.seeds),
            "machines": list(self.machines),
        }


def _kind_for(machine: str) -> str:
    family = machine.partition(":")[0].strip().lower()
    return _KIND_FOR_FAMILY.get(family, "os")


def expand_payloads(sweep: SweepDef) -> list[dict]:
    """The sweep's cells as protocol ``CELL`` payloads, in the
    deterministic sorted-factorial order (machine varies fastest)."""
    out = []
    for topo, width, depth, grain, seed, machine in product(
            sweep.topologies, sweep.widths, sweep.depths, sweep.grains,
            sweep.seeds, sweep.machines):
        params = TaskGraphParams(topo, width, depth, grain, seed)
        out.append({
            "machine": machine,
            "workload": recipe_name(params, _kind_for(machine)),
        })
    return out


def expansion_fingerprint(sweep: SweepDef) -> str:
    """Content fingerprint of the expansion (the golden-test anchor).

    Covers the payload list only -- machine ids and recipe names --
    not engine arithmetic, so it is stable across recalibrations and
    model-epoch bumps; it changes exactly when the grid or the
    expansion order does.
    """
    return store.fingerprint({"schema": SCHEMA, "sweep": sweep.name,
                              "cells": expand_payloads(sweep)})


def expand_cells(sweep: SweepDef, *, threat_scale: float,
                 terrain_scale: float) -> list[dict]:
    """Expand into engine cell descriptors (validated, keyed)."""
    from repro.service.protocol import cell_from_payload

    return [cell_from_payload(p, threat_scale=threat_scale,
                              terrain_scale=terrain_scale)
            for p in expand_payloads(sweep)]


# ----------------------------------------------------------------------
# the named sweeps
# ----------------------------------------------------------------------

SWEEPS: dict[str, SweepDef] = {
    sweep.name: sweep for sweep in (
        SweepDef(
            name="smoke",
            description="a dozen tiny cells; service-parity fixture",
            topologies=("stencil", "mesh"),
            widths=(4,),
            depths=(2, 3),
            machines=("mta:1", "cmt:16", "exemplar:2"),
        ),
        SweepDef(
            name="ci",
            description="the CI grid: >=100 small cells under a "
                        "wall-clock budget",
            topologies=TOPOLOGIES,
            widths=(4, 8, 16),
            depths=(2, 4),
            seeds=(0, 1),
            machines=("mta:1", "cmt:32", "exemplar:4"),
        ),
        SweepDef(
            name="full",
            description="the >=1000-cell factorial grid of the "
                        "acceptance criteria",
            topologies=TOPOLOGIES,
            widths=(2, 4, 8),
            depths=(2, 3, 4),
            grains=(1, 2),
            seeds=(0, 1, 2, 3),
            machines=("mta:1", "mta:2", "cmt:64", "exemplar:8"),
        ),
    )
}


def get_sweep(name: str) -> SweepDef:
    if name not in SWEEPS:
        raise KeyError(f"unknown sweep {name!r}; known: {sorted(SWEEPS)}")
    return SWEEPS[name]


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

@dataclass
class SweepOutcome:
    """What one ``run_sweep`` invocation did (the report payload)."""

    sweep: str
    fingerprint: str
    n_cells: int
    n_unique: int
    n_cached: int
    n_computed: int
    verify_checked: int = 0
    verify_failures: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    def payload(self, sweep: SweepDef) -> dict:
        return {
            "schema": SCHEMA,
            "sweep": self.sweep,
            "description": sweep.description,
            "factors": sweep.factors(),
            "fingerprint": self.fingerprint,
            "n_cells": self.n_cells,
            "n_unique": self.n_unique,
            "n_cached": self.n_cached,
            "n_computed": self.n_computed,
            "verify_checked": self.verify_checked,
            "verify_failures": list(self.verify_failures),
            "wall_seconds": round(self.wall_seconds, 3),
        }


def expansion_manifest(sweep: SweepDef) -> dict:
    """The JSON manifest of an expansion (the CI artifact)."""
    return {
        "schema": SCHEMA,
        "sweep": sweep.name,
        "description": sweep.description,
        "factors": sweep.factors(),
        "fingerprint": expansion_fingerprint(sweep),
        "n_cells": sweep.n_cells,
        "cells": expand_payloads(sweep),
    }


def _verify_cell(cell: dict) -> Optional[str]:
    """Run one cell's job on both engines directly (cache bypassed);
    returns a description of the parity violation, or None."""
    from repro.harness.runner import BenchmarkData
    from repro.machines.machine import ConventionalMachine
    from repro.mta.machine import MtaMachine

    data = BenchmarkData(threat_scale=cell["threat_scale"],
                         terrain_scale=cell["terrain_scale"],
                         seed_offset=cell["seed_offset"])
    job = data.job_from_recipe(cell["job_recipe"])
    if cell["kind"] == "mta":
        des = MtaMachine(cell["spec"],
                         slices_per_phase=cell["slices_per_phase"],
                         use_cohort=False).run(job)
        coh = MtaMachine(cell["spec"],
                         slices_per_phase=cell["slices_per_phase"],
                         use_cohort=True).run(job)
    else:
        efg = cell["exploit_fine_grained"]
        des = ConventionalMachine(
            cell["spec"], slices_per_phase=cell["slices_per_phase"],
            exploit_fine_grained=efg, use_cohort=False).run(job)
        coh = ConventionalMachine(
            cell["spec"], slices_per_phase=cell["slices_per_phase"],
            exploit_fine_grained=efg, use_cohort=True).run(job)
    tol = 1e-9 * max(abs(des.seconds), abs(coh.seconds))
    if abs(des.seconds - coh.seconds) > tol:
        return (f"{cell['unit']} on {des.machine}: DES {des.seconds!r} "
                f"!= cohort {coh.seconds!r}")
    return None


def run_sweep(name: str, *, threat_scale: float, terrain_scale: float,
              jobs: int = 1, verify: bool = False,
              on_record: Optional[Callable[[dict], None]] = None,
              out=None) -> SweepOutcome:
    """Expand and execute one named sweep.

    Returns the :class:`SweepOutcome`; ``n_computed`` counts cells that
    actually reached an engine (a cached re-run reports 0 -- the CI
    dedupe assertion).  ``verify`` additionally runs every unique
    (machine, workload) pair on both engines directly, recording parity
    violations.
    """
    from repro.harness.parallel import run_cells

    out = out if out is not None else sys.stdout
    sweep = get_sweep(name)
    t0 = time.perf_counter()
    cells = expand_cells(sweep, threat_scale=threat_scale,
                         terrain_scale=terrain_scale)
    fingerprint = expansion_fingerprint(sweep)
    unique = {c["key"]: c for c in cells}
    cache = store.active_cache()
    n_cached = sum(1 for key in unique
                   if cache is not None and cache.get(key) is not None)
    print(f"sweep {name}: {len(cells)} cells ({len(unique)} unique, "
          f"{n_cached} cached), fingerprint {fingerprint[:16]}",
          file=out)
    records = run_cells(cells, threat_scale=threat_scale,
                        terrain_scale=terrain_scale, jobs=jobs,
                        on_record=on_record)
    outcome = SweepOutcome(
        sweep=name, fingerprint=fingerprint, n_cells=len(cells),
        n_unique=len(unique), n_cached=n_cached,
        n_computed=len(unique) - n_cached)
    if verify:
        # one parity check per unique (machine, workload) pair; the
        # seed_offset/scale factors are covered by the key dedupe above
        seen: set = set()
        for cell in unique.values():
            pair = (cell["spec"].name, cell["job_recipe"],
                    cell["slices_per_phase"], cell["exploit_fine_grained"])
            if pair in seen:
                continue
            seen.add(pair)
            failure = _verify_cell(cell)
            outcome.verify_checked += 1
            if failure is not None:
                outcome.verify_failures.append(failure)
                print(f"sweep {name}: PARITY VIOLATION {failure}",
                      file=out)
    outcome.wall_seconds = time.perf_counter() - t0
    n_rec = len(records)
    verdict = ""
    if verify:
        verdict = (f", verified {outcome.verify_checked} pairs "
                   f"({len(outcome.verify_failures)} violations)")
    print(f"sweep {name}: {n_rec} records, {outcome.n_computed} "
          f"computed, {outcome.n_cached} cached{verdict} "
          f"in {outcome.wall_seconds:.1f}s", file=out)
    return outcome
