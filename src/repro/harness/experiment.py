"""Experiment result containers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Row:
    """One row of a reproduced table: paper value vs simulated value."""

    label: str
    paper: Optional[float]
    simulated: float
    unit: str = "s"

    @property
    def ratio(self) -> Optional[float]:
        if self.paper is None or self.paper == 0:
            return None
        return self.simulated / self.paper

    @property
    def error_pct(self) -> Optional[float]:
        r = self.ratio
        return None if r is None else (r - 1.0) * 100.0


@dataclass(frozen=True)
class ShapeCheck:
    """One reproduction criterion (a property of the *shape*)."""

    description: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.description}{suffix}"


@dataclass(frozen=True)
class ExperimentResult:
    """A reproduced table/figure with its shape checks."""

    experiment_id: str
    title: str
    rows: tuple[Row, ...]
    checks: tuple[ShapeCheck, ...] = ()
    notes: str = ""

    def all_checks_pass(self) -> bool:
        return all(c.passed for c in self.checks)

    def row(self, label: str) -> Row:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(f"{self.experiment_id}: no row {label!r}")

    def render(self) -> str:
        from repro.harness.tables import render_comparison_table
        out = [f"{self.experiment_id}: {self.title}",
               "=" * (len(self.experiment_id) + len(self.title) + 2),
               render_comparison_table(self.rows)]
        if self.checks:
            out.append("")
            out.append("shape checks:")
            out.extend(f"  {c}" for c in self.checks)
        if self.notes:
            out.append("")
            out.append(self.notes)
        return "\n".join(out)
