"""Ablation studies and the paper's future-work projections.

The paper's analysis attributes each result to a specific mechanism.
These experiments remove or vary one mechanism at a time and check that
the result moves the way the paper's reasoning predicts:

* ``scaling``           -- the paper's future work: project both
  benchmarks onto MTA configurations with more processors (the authors
  had only two) and onto a *mature* (linearly scaling) network.
* ``ablation-finegrained-smp`` -- run the MTA-style fine-grained
  Terrain Masking on the Exemplar, paying OS/software thread costs:
  the paper's claim that inner-loop parallelism is practical only on
  the MTA.
* ``ablation-network``  -- vary the prototype network's scaling
  exponent: the sub-ideal 1.4x/1.8x two-processor speedups are the
  network's fault, exactly as the paper conjectures ("may be a result
  of the development status of the current Tera MTA network").
* ``ablation-issue``    -- vary the 21-cycle pipeline pass: the MTA's
  terrible sequential speed is the issue interval's fault; a
  hypothetical 1-cycle-issue MTA would run sequential code like a
  conventional processor.
* ``ablation-cache``    -- shrink/grow the conventional caches under
  Threat Analysis: the near-ideal SMP scaling depends on the threads
  running in cache.
"""

from __future__ import annotations

import dataclasses

from repro.harness.experiment import ExperimentResult, Row, ShapeCheck
from repro.harness.runner import BenchmarkData
from repro.machines import exemplar
from repro.machines.spec import CacheSpec
from repro.mta import mta


def _check(desc: str, passed: bool, detail: str = "") -> ShapeCheck:
    return ShapeCheck(description=desc, passed=bool(passed), detail=detail)


# ----------------------------------------------------------------------
# future work: multiprocessor scaling projection
# ----------------------------------------------------------------------

def scaling(data: BenchmarkData) -> ExperimentResult:
    """Project both benchmarks onto larger MTA configurations.

    The paper: "A potential strength of the Tera MTA that we were
    unable to investigate on a dual-processor configuration is
    scalability to large numbers of processors ... It is possible that
    the Tera model ... may be effective in overcoming this obstacle."
    """
    threat_job = data.threat_chunked_job(1024, thread_kind="hw")
    terrain_job = data.terrain_finegrained_job()
    rows = []
    proto = {"threat": {}, "terrain": {}}
    mature = {"threat": {}, "terrain": {}}
    for p in (1, 2, 4, 8, 16):
        m_spec = dataclasses.replace(mta(p), network_scaling_exponent=1.0)
        proto["threat"][p] = data.run_mta_spec(mta(p), threat_job)
        proto["terrain"][p] = data.run_mta_spec(mta(p), terrain_job)
        mature["threat"][p] = data.run_mta_spec(m_spec, threat_job)
        mature["terrain"][p] = data.run_mta_spec(m_spec, terrain_job)
        rows.append(Row(f"Threat, {p}p (prototype net)", None,
                        proto["threat"][p]))
        rows.append(Row(f"Threat, {p}p (mature net)", None,
                        mature["threat"][p]))
        rows.append(Row(f"Terrain, {p}p (prototype net)", None,
                        proto["terrain"][p]))
        rows.append(Row(f"Terrain, {p}p (mature net)", None,
                        mature["terrain"][p]))

    def s16(d):
        return d[1] / d[16]

    checks = (
        _check("extrapolating the prototype network to 16 processors "
               "traps BOTH benchmarks well below ideal (<= 8x)",
               s16(proto["threat"]) <= 8.0
               and s16(proto["terrain"]) <= 8.0,
               f"threat {s16(proto['threat']):.1f}x, "
               f"terrain {s16(proto['terrain']):.1f}x"),
        _check("a mature (linear) network restores compute-bound "
               "Threat Analysis to near-ideal scaling (>= 12x at 16p)",
               s16(mature["threat"]) >= 12.0,
               f"{s16(mature['threat']):.1f}x"),
        _check("a mature network roughly doubles Terrain Masking's "
               "16-processor speedup -- the paper's conjectured "
               "breakthrough, bounded by its serial output pass",
               s16(mature["terrain"]) >= 1.8 * s16(proto["terrain"]),
               f"{s16(mature['terrain']):.1f}x vs "
               f"{s16(proto['terrain']):.1f}x"),
    )
    return ExperimentResult(
        "scaling", "Future work: MTA multiprocessor scaling projection",
        tuple(rows), checks,
        notes="No paper values exist (the prototype had 2 processors); "
              "this projects the calibrated models forward.  The "
              "verdict: the network, not the processors, decides "
              "whether the MTA model scales.")


# ----------------------------------------------------------------------
# fine-grained parallelism on a conventional machine
# ----------------------------------------------------------------------

def finegrained_smp(data: BenchmarkData) -> ExperimentResult:
    """Fine-grained Terrain Masking on the Exemplar vs on the MTA.

    The paper: "algorithms based on fine-grained multithreading of
    inner loops are practical on the Tera MTA that are not practical on
    our conventional multiprocessor platforms" -- because creating a
    software thread costs tens of thousands of cycles there and the
    inner loops are short.
    """
    job = data.terrain_finegrained_job()
    mta_1p = data.run_mta(1, job)
    ex16 = data.run_conventional(exemplar(16), job)
    ex16_fg = data.run_conventional(exemplar(16), job,
                                    exploit_fine_grained=True)
    coarse_ex16 = data.exemplar(16, data.terrain_blocked_job(16))
    rows = (
        Row("MTA 1p, fine-grained", 48.0, mta_1p),
        Row("Exemplar 16p, fine-grained ignored (1 CPU used)", None,
            ex16),
        Row("Exemplar 16p, fine-grained with sw-thread costs", None,
            ex16_fg),
        Row("Exemplar 16p, coarse-grained (the practical choice)", 37.0,
            coarse_ex16),
    )
    checks = (
        _check("paying thread-creation per strand makes fine-grained "
               "on the SMP slower than its own coarse-grained version",
               ex16_fg > 1.5 * coarse_ex16,
               f"{ex16_fg:.0f}s vs {coarse_ex16:.0f}s"),
        _check("one MTA processor beats sixteen Exemplar CPUs *on the "
               "fine-grained program*", mta_1p < ex16_fg,
               f"{mta_1p:.0f}s vs {ex16_fg:.0f}s"),
    )
    return ExperimentResult(
        "ablation-finegrained-smp",
        "Fine-grained inner-loop parallelism on a conventional SMP",
        rows, checks)


# ----------------------------------------------------------------------
# network development status
# ----------------------------------------------------------------------

def network(data: BenchmarkData) -> ExperimentResult:
    """Two-processor speedups vs the network scaling exponent."""
    threat_job = data.threat_chunked_job(256, thread_kind="hw")
    terrain_job = data.terrain_finegrained_job()
    rows = []
    speedups = {}
    for expo in (0.40, 0.54, 0.80, 1.00):
        spec1 = dataclasses.replace(mta(1), network_scaling_exponent=expo)
        spec2 = dataclasses.replace(mta(2), network_scaling_exponent=expo)
        st = (data.run_mta_spec(spec1, threat_job)
              / data.run_mta_spec(spec2, threat_job))
        sm = (data.run_mta_spec(spec1, terrain_job)
              / data.run_mta_spec(spec2, terrain_job))
        speedups[expo] = (st, sm)
        rows.append(Row(f"Threat 2p speedup, exponent {expo:.2f}",
                        1.78 if expo == 0.54 else None, st, unit="x"))
        rows.append(Row(f"Terrain 2p speedup, exponent {expo:.2f}",
                        1.41 if expo == 0.54 else None, sm, unit="x"))
    checks = (
        _check("the memory-bound program tracks the network exponent "
               "(speedup ~ 2^exponent, minus its serial output pass)",
               abs(speedups[0.54][1] - 2 ** 0.54) < 0.15
               and speedups[0.40][1] < speedups[0.54][1]
               < speedups[0.80][1] < speedups[1.0][1],
               f"exp 0.54 -> {speedups[0.54][1]:.2f} "
               f"(2^0.54 = {2**0.54:.2f})"),
        _check("the compute-bound program is hurt less by a weak "
               "network", all(st >= sm for st, sm in speedups.values())),
        _check("a mature network would deliver near-2x on both "
               "programs", speedups[1.0][0] > 1.85
               and speedups[1.0][1] > 1.8,
               f"threat {speedups[1.0][0]:.2f}, "
               f"terrain {speedups[1.0][1]:.2f}"),
    )
    return ExperimentResult(
        "ablation-network",
        "Two-processor speedup vs network development status",
        tuple(rows), checks,
        notes="The paper attributes its sub-ideal 1.8x/1.4x speedups to "
              "'the development status of the current Tera MTA "
              "network'; the exponent is that status as a knob.")


# ----------------------------------------------------------------------
# the sync-variable alternative for Threat Analysis (Section 5)
# ----------------------------------------------------------------------

def threat_alternative(data: BenchmarkData) -> ExperimentResult:
    """Threat Analysis parallelized with fine-grained synchronization
    variables instead of chunking.

    Section 5: one thread per threat, all appending to a single shared
    intervals array through a full/empty-guarded counter.  "It is
    interesting that this alternative approach is viable for the Tera
    MTA, but not for our conventional coarse-grained multiprocessor
    platforms" -- on the MTA the 1-cycle sync makes the shared counter
    nearly free; on an SMP 1000 OS threads and a hot lock are a
    disaster.
    """
    from repro.c3i import threat as TH
    # the real thing: one thread per threat, no coalescing
    fg_job = TH.finegrained_benchmark_job(
        data.threat_scenarios, data.threat_sequential, max_threads=None)
    ch_job = data.threat_chunked_job(256, thread_kind="hw")
    mta_fg1 = data.run_mta(1, fg_job)
    mta_fg2 = data.run_mta(2, fg_job)
    mta_ch1 = data.run_mta(1, ch_job)
    ex_fg = data.run_conventional(exemplar(16), fg_job)
    ex_ch = data.exemplar(16, data.threat_chunked_job(16))
    mta_overhead = mta_fg1 / mta_ch1 - 1.0
    ex_overhead = ex_fg / ex_ch - 1.0
    rows = (
        Row("MTA 1p, sync-variable version", None, mta_fg1),
        Row("MTA 2p, sync-variable version", None, mta_fg2),
        Row("MTA 1p, chunked version (Table 5)", 82.0, mta_ch1),
        Row("Exemplar 16p, sync-variable version", None, ex_fg),
        Row("Exemplar 16p, chunked version (Table 4)", 22.0, ex_ch),
        Row("MTA overhead vs its chunked version", None,
            mta_overhead * 100.0, unit="%"),
        Row("Exemplar overhead vs its chunked version", None,
            ex_overhead * 100.0, unit="%"),
    )
    checks = (
        _check("on the MTA, 5000 threads + a full/empty counter cost "
               "essentially nothing over chunking (< 3% overhead)",
               mta_overhead < 0.03, f"{mta_overhead:+.1%}"),
        _check("on the Exemplar, 5000 OS threads + lock-word "
               "synchronization carry real overhead (> 8%)",
               ex_overhead > 0.08, f"{ex_overhead:+.1%}"),
        _check("the overhead gap between the platforms is an order of "
               "magnitude or more",
               ex_overhead > 10 * max(mta_overhead, 1e-4),
               f"{ex_overhead:.3f} vs {mta_overhead:.3f}"),
    )
    return ExperimentResult(
        "threat-alternative",
        "Fine-grained sync-variable Threat Analysis (Section 5's "
        "alternative)", rows, checks,
        notes="The drawback the paper notes -- nondeterministic output "
              "ordering -- is exercised by the kernel itself: see "
              "repro.c3i.threat.finegrained and its tests.")


# ----------------------------------------------------------------------
# the 21-cycle issue interval
# ----------------------------------------------------------------------

def issue_interval(data: BenchmarkData) -> ExperimentResult:
    """What would fix the MTA's sequential performance?

    Two mechanisms make a lone stream slow: the 21-cycle pipeline pass
    between its instructions, and the unhidden memory latency (no
    caches; the lookahead window covers only part of each reference's
    round trip).  This ablation removes them one at a time.  The
    lookahead's *cycle coverage* is held constant when the issue
    interval shrinks (lookahead slots x interval = 105 cycles), so the
    knobs are independent.
    """
    job = data.threat_sequential_job()
    base = mta(1)
    coverage = base.lookahead * base.issue_interval_cycles

    def time_for(interval: float, latency: float) -> float:
        spec = dataclasses.replace(
            base, issue_interval_cycles=interval,
            lookahead=max(0, int(round(coverage / interval))),
            mem_latency_cycles=latency)
        return data.run_mta_spec(spec, job)

    t_real = time_for(21.0, base.mem_latency_cycles)
    t_fast_issue = time_for(1.0, base.mem_latency_cycles)
    t_hidden = time_for(21.0, coverage)   # latency fully covered
    t_both = time_for(1.0, coverage)
    alpha = data.alpha(job)
    rows = (
        Row("real MTA (21-cycle issue, unhidden latency)", 2584.0,
            t_real),
        Row("1-cycle issue, latency still unhidden", None, t_fast_issue),
        Row("21-cycle issue, latency hidden (cache-like)", None,
            t_hidden),
        Row("1-cycle issue + latency hidden", None, t_both),
        Row("sequential Threat on the Alpha (reference)", 187.0, alpha),
    )
    checks = (
        _check("shrinking the issue interval alone helps ~3x but the "
               "uncached memory latency still dominates",
               2.0 < t_real / t_fast_issue < 5.0
               and t_fast_issue > 2.0 * alpha,
               f"{t_real:.0f} -> {t_fast_issue:.0f}s vs "
               f"Alpha {alpha:.0f}s"),
        _check("hiding latency alone still leaves the 21-cycle pipe",
               t_hidden > 5.0 * alpha, f"{t_hidden:.0f}s"),
        _check("removing BOTH puts the MTA in the conventional "
               "league -- sequential slowness needs the pipe *and* the "
               "missing caches", t_both < 1.2 * alpha,
               f"{t_both:.0f}s vs Alpha {alpha:.0f}s"),
    )
    return ExperimentResult(
        "ablation-issue",
        "Sequential MTA performance: issue interval vs unhidden latency",
        rows, checks,
        notes="The paper: 'The Tera MTA would be a much more appealing "
              "platform if it could ... provide reasonable performance "
              "for single-threaded programs.'")


# ----------------------------------------------------------------------
# seed robustness: the shapes cannot depend on one lucky data draw
# ----------------------------------------------------------------------

def seed_robustness(data: BenchmarkData) -> ExperimentResult:
    """Re-run the headline shapes in alternative synthetic-input
    universes.

    The reproduction substitutes synthetic scenarios for the
    unavailable C3IPBS data, so every shape claim must be stable under
    the generator's randomness: this re-draws all ten scenarios with
    different seeds and re-measures the key speedups.
    """
    universes = [data.with_seed_offset(k) for k in (0, 1, 2)]
    rows = []
    threat_speedups = []
    terrain_speedups = []
    smp_speedups = []
    for u in universes:
        tj = u.threat_chunked_job(256, thread_kind="hw")
        t1, t2 = u.run_mta(1, tj), u.run_mta(2, tj)
        fj = u.terrain_finegrained_job()
        m1, m2 = u.run_mta(1, fj), u.run_mta(2, fj)
        e1 = u.exemplar(1, u.terrain_blocked_job(1))
        e16 = u.exemplar(16, u.terrain_blocked_job(16))
        threat_speedups.append(t1 / t2)
        terrain_speedups.append(m1 / m2)
        smp_speedups.append(e1 / e16)
        tag = f"universe {u.seed_offset}"
        rows.append(Row(f"{tag}: Threat MTA 2p speedup",
                        1.78 if u.seed_offset == 0 else None,
                        t1 / t2, unit="x"))
        rows.append(Row(f"{tag}: Terrain MTA 2p speedup",
                        1.41 if u.seed_offset == 0 else None,
                        m1 / m2, unit="x"))
        rows.append(Row(f"{tag}: Terrain Exemplar 16p speedup",
                        6.16 if u.seed_offset == 0 else None,
                        e1 / e16, unit="x"))

    def spread(vals):
        return (max(vals) - min(vals)) / min(vals)

    checks = (
        _check("Threat MTA 2p speedup stable across universes (< 8% "
               "spread)", spread(threat_speedups) < 0.08,
               f"{[f'{v:.2f}' for v in threat_speedups]}"),
        _check("Terrain MTA 2p speedup stable across universes (< 8% "
               "spread)", spread(terrain_speedups) < 0.08,
               f"{[f'{v:.2f}' for v in terrain_speedups]}"),
        _check("Terrain Exemplar saturation stable across universes "
               "(< 20% spread)", spread(smp_speedups) < 0.20,
               f"{[f'{v:.2f}' for v in smp_speedups]}"),
    )
    return ExperimentResult(
        "seed-robustness",
        "Shape stability across synthetic-input universes",
        tuple(rows), checks)


# ----------------------------------------------------------------------
# why Program 4 cannot feed the MTA: temp-array memory
# ----------------------------------------------------------------------

def temp_memory(data: BenchmarkData) -> ExperimentResult:
    """The storage wall that forces the fine-grained Terrain Masking
    variant on the MTA.

    Section 6: the coarse-grained program "requires too much memory on
    the Tera MTA.  Efficient utilization of the Tera MTA requires a
    large number of threads and each thread requires its own temp
    array."
    """
    from repro.c3i.terrain import blocked_memory_footprint
    from repro.machines import EXEMPLAR_16
    from repro.mta import MTA_2

    scenario = data.terrain_scenarios[0]
    GB = 1024.0 ** 3
    fp16 = blocked_memory_footprint(scenario, 16)
    fp500 = blocked_memory_footprint(scenario, 500)
    rows = (
        Row("Program 4 footprint, 16 threads (GB)", None, fp16 / GB,
            unit="x"),
        Row("Program 4 footprint, 500 threads (GB)", None, fp500 / GB,
            unit="x"),
        Row("Exemplar memory (GB)", 4.0, EXEMPLAR_16.memory_bytes / GB,
            unit="x"),
        Row("Tera MTA memory (GB)", 2.0, MTA_2.memory_bytes / GB,
            unit="x"),
    )
    checks = (
        _check("sixteen threads (the Exemplar's need) fit comfortably",
               fp16 < 0.5 * EXEMPLAR_16.memory_bytes,
               f"{fp16/GB:.2f} GB"),
        _check("hundreds of threads (the MTA's need) do NOT fit -- the "
               "reason the MTA runs the fine-grained variant",
               fp500 > MTA_2.memory_bytes,
               f"{fp500/GB:.2f} GB vs 2 GB"),
    )
    return ExperimentResult(
        "ablation-temp-memory",
        "Program 4's per-thread temp storage vs machine memory",
        rows, checks)


# ----------------------------------------------------------------------
# cache size under Threat Analysis
# ----------------------------------------------------------------------

def cache_size(data: BenchmarkData) -> ExperimentResult:
    """Exemplar Threat Analysis scaling vs cache size.

    The near-ideal SMP speedups exist because "the threads are
    completely independent and execute mostly within cache"; with a
    cache too small for the threat tables the program turns
    memory-bound and the scaling degrades.
    """
    job16 = data.threat_chunked_job(16)
    job1 = data.threat_chunked_job(1)
    rows = []
    speedups = {}
    for kb in (8, 64, 1024):
        cache = CacheSpec(capacity_bytes=kb * 1024.0, line_bytes=64,
                          assoc=4)
        s1 = dataclasses.replace(exemplar(1), cache=cache)
        s16 = dataclasses.replace(exemplar(16), cache=cache)
        t1 = data.run_conventional(s1, job1)
        t16 = data.run_conventional(s16, job16)
        speedups[kb] = t1 / t16
        rows.append(Row(f"Exemplar 16p speedup, {kb} KB cache", None,
                        t1 / t16, unit="x"))
    checks = (
        _check("with the real cache the scaling is near-ideal",
               speedups[1024] >= 14.0, f"{speedups[1024]:.1f}x"),
        _check("a cache too small for the threat tables degrades the "
               "scaling", speedups[8] < speedups[1024] - 1.5,
               f"8KB {speedups[8]:.1f}x vs 1MB {speedups[1024]:.1f}x"),
    )
    return ExperimentResult(
        "ablation-cache",
        "Threat Analysis SMP scaling vs cache size",
        tuple(rows), checks)
