"""The simulation service's wire protocol (``repro-service/v1``).

**Design choice (DESIGN.md section 14):** the service speaks
*newline-delimited JSON over TCP*, not HTTP/ASGI.  The repo's hard
dependency set is numpy + the stdlib; an ASGI app needs a server
(uvicorn et al.) the container may not have, while ``asyncio``'s
stream API gives the same request/streaming-response shape with zero
dependencies, trivially scriptable clients (``nc``, a 10-line asyncio
coroutine) and no framing ambiguity -- one JSON object per ``\\n``
-terminated line, UTF-8, in both directions.

Client -> server ops::

    {"op": "hello"}
    {"op": "simulate", "id": "r1", "cells": [CELL, ...],
     "threat_scale": 0.02, "terrain_scale": 0.05}   # scales optional
    {"op": "sweep", "id": "r2", "experiments": ["table3"] | "all"}
    {"op": "sweep", "id": "r3", "sweep": "ci"}   # named factorial sweep
    {"op": "stats"}
    {"op": "shutdown"}

where ``CELL`` names one simulation::

    {"machine": "mta:2",            # see parse_machine
     "workload": "th-job-ch-4-os",  # a job recipe, see validate_recipe
     "seed_offset": 0,              # optional, default 0
     "slices_per_phase": 8,         # optional, machine-kind default
     "exploit_fine_grained": false, # optional, conventional only
     "faults": "streams:0.5:0.8",   # optional fault plan (chaos spec)
     "fault_seed": 3}               # optional, default 0

Server -> client, one line each::

    {"type": "hello", ...}          # capabilities
    {"type": "cell", "id": ..., "cell": {...record...}}  # streamed
    {"type": "done", "id": ..., "n_cells": N, ...counters...}
    {"type": "error", "id": ..., "error": "..."}
    {"type": "stats", "stats": {...}}
    {"type": "bye"}

A healthy cell's result *record* is identical in shape (and, by the
shared content-addressed key, in value) to one line of a ``repro all``
run directory's ``cells.jsonl``: ``key``/``kind``/``machine``/``job``/
``seconds``/``seed_offset``/``stats``.

Validation happens here, before anything reaches the engine: an
unknown machine or workload, a malformed fault spec or a non-object
payload rejects the *request* with a single ``error`` line; the
connection stays usable.
"""

from __future__ import annotations

import json
from typing import Optional

from repro import taskbench
from repro.faults.plan import FaultPlan
from repro.harness import store
from repro.machines import cmt, exemplar, ppro
from repro.machines.catalog import ALPHASTATION_500
from repro.mta import mta

SCHEMA = "repro-service/v1"

#: request-level byte budget: one line must stay parseable in memory
MAX_LINE_BYTES = 4 * 1024 * 1024

#: machine families the service accepts (``family[:n]``)
MACHINE_FAMILIES = {
    "alpha": (None, 1, 1),        # fixed single-CPU workstation
    "ppro": (ppro, 1, 4),
    "exemplar": (exemplar, 1, 16),
    "mta": (mta, 1, 256),
    "cmt": (cmt, 1, 512),         # SPARC T3-4 strands (conventional kind)
}

#: exact job-recipe names (parameterized forms documented below)
FIXED_RECIPES = ("th-job-seq", "th-job-fg", "te-job-seq", "te-job-fg")

#: simulated-thread kinds accepted in parameterized recipes
THREAD_KINDS = ("os", "sw")

#: sanity cap on chunk/thread counts in parameterized recipes
MAX_RECIPE_N = 1 << 16


class ProtocolError(ValueError):
    """A request failed validation; the message goes back verbatim."""


def parse_machine(text: str):
    """``family[:n]`` -> ``(kind, spec)``.

    ``kind`` is the engine dispatch tag (``"mta"`` or
    ``"conventional"``); ``spec`` the machine-spec dataclass.  Families:
    ``alpha`` (the AlphaStation, always 1 CPU), ``ppro[:1..4]``,
    ``exemplar[:1..16]`` (default: full machine), ``mta[:n]``
    (default 1 processor) and ``cmt[:1..512]`` (T3-4 strands, default
    the full machine; conventional kind).
    """
    if not isinstance(text, str) or not text.strip():
        raise ProtocolError(f"bad machine id {text!r}: expected "
                            f"family[:n], families "
                            f"{sorted(MACHINE_FAMILIES)}")
    family, _, tail = text.strip().lower().partition(":")
    if family not in MACHINE_FAMILIES:
        raise ProtocolError(
            f"unknown machine family {family!r}; known: "
            f"{sorted(MACHINE_FAMILIES)}")
    factory, lo, hi = MACHINE_FAMILIES[family]
    if factory is None:
        if tail not in ("", "1"):
            raise ProtocolError(
                f"machine {family!r} has exactly 1 CPU, got {text!r}")
        return "conventional", ALPHASTATION_500
    if tail == "":
        n = {"ppro": 4, "exemplar": 16, "mta": 1, "cmt": 512}[family]
    else:
        try:
            n = int(tail)
        except ValueError:
            raise ProtocolError(
                f"bad machine id {text!r}: {tail!r} is not an "
                f"integer") from None
    if not lo <= n <= hi:
        raise ProtocolError(
            f"machine {family!r} supports {lo}..{hi} processors, "
            f"got {n}")
    kind = "mta" if family == "mta" else "conventional"
    return kind, factory(n)


def validate_recipe(key) -> str:
    """Check a workload id names a rebuildable job recipe.

    Accepted: the fixed recipes, ``th-job-ch-<n>-<os|sw>`` (Threat
    Analysis chunked into ``n`` simulated threads),
    ``te-job-bl-<n>-<os|sw>`` (Terrain Masking blocked over ``n``) and
    ``tb-<topo>-w<W>-d<D>-g<G>-s<S>-<os|sw|hw>`` (a generated
    taskbench graph; see :mod:`repro.taskbench`).  Mirrors
    :meth:`repro.harness.runner.BenchmarkData.job_from_recipe`
    without building anything.
    """
    known = (f"one of {', '.join(FIXED_RECIPES)}, "
             f"th-job-ch-<n>-<os|sw>, te-job-bl-<n>-<os|sw>, "
             f"tb-<topo>-w<W>-d<D>-g<G>-s<S>-<os|sw|hw>")
    if not isinstance(key, str):
        raise ProtocolError(f"bad workload id {key!r}: expected {known}")
    if key in FIXED_RECIPES:
        return key
    if key.startswith("tb-"):
        try:
            taskbench.parse_recipe(key)  # bounds-checks without building
        except KeyError as exc:
            raise ProtocolError(str(exc.args[0])) from None
        return key
    for prefix in ("th-job-ch-", "te-job-bl-"):
        if key.startswith(prefix):
            tail = key[len(prefix):]
            n_text, _, kind = tail.rpartition("-")
            if kind not in THREAD_KINDS or not n_text.isdigit():
                break
            n = int(n_text)
            if not 1 <= n <= MAX_RECIPE_N:
                raise ProtocolError(
                    f"bad workload id {key!r}: thread/chunk count "
                    f"must be 1..{MAX_RECIPE_N}")
            return key
    raise ProtocolError(f"unknown workload {key!r}; expected {known}")


def cell_from_payload(payload, *, threat_scale: float,
                      terrain_scale: float) -> dict:
    """Validate one request ``CELL`` into an engine cell descriptor.

    The descriptor carries everything
    :func:`repro.harness.parallel.run_cells` (or the faulted-run path)
    needs, plus the content-addressed ``key`` the batcher dedupes on.
    For a healthy cell the key is computed with *exactly* the payload
    and arithmetic of ``BenchmarkData._sim_key``, so a served result is
    the same cache entry -- and therefore byte-identical to -- the cell
    a ``repro all`` run would produce; a faulted cell's key additionally
    folds in the fault plan (faulted runs bypass the result cache, the
    key only coalesces identical in-flight requests).
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"cell must be an object, got "
                            f"{type(payload).__name__}")
    unknown = set(payload) - {"machine", "workload", "seed_offset",
                              "slices_per_phase",
                              "exploit_fine_grained", "faults",
                              "fault_seed"}
    if unknown:
        raise ProtocolError(f"unknown cell fields {sorted(unknown)}")
    kind, spec = parse_machine(payload.get("machine"))
    recipe = validate_recipe(payload.get("workload"))
    seed_offset = payload.get("seed_offset", 0)
    if not isinstance(seed_offset, int) or isinstance(seed_offset, bool):
        raise ProtocolError(
            f"seed_offset must be an integer, got {seed_offset!r}")
    slices = payload.get("slices_per_phase")
    if slices is None:
        slices = 8 if kind == "mta" else 16
    if not isinstance(slices, int) or isinstance(slices, bool) \
            or slices < 1:
        raise ProtocolError(
            f"slices_per_phase must be a positive integer, got "
            f"{slices!r}")
    efg = payload.get("exploit_fine_grained", False)
    if not isinstance(efg, bool):
        raise ProtocolError(
            f"exploit_fine_grained must be a boolean, got {efg!r}")
    if efg and kind == "mta":
        raise ProtocolError(
            "exploit_fine_grained applies to conventional machines "
            "only")

    key_payload = {"kind": kind, "spec": spec,
                   "slices_per_phase": slices,
                   "job": "recipe:" + recipe}
    if kind == "conventional":
        key_payload["exploit_fine_grained"] = efg
    key = sim_cell_key(key_payload, threat_scale=threat_scale,
                       terrain_scale=terrain_scale,
                       seed_offset=seed_offset)

    cell = {
        "key": key,
        "kind": kind,
        "spec": spec,
        "job_recipe": recipe,
        "slices_per_phase": slices,
        "exploit_fine_grained": efg,
        "seed_offset": seed_offset,
        "unit": f"cell:{recipe}@{seed_offset}",
        "weight": cell_weight(recipe, spec),
        "threat_scale": threat_scale,
        "terrain_scale": terrain_scale,
    }

    faults = payload.get("faults")
    if faults is not None:
        fault_seed = payload.get("fault_seed", 0)
        if not isinstance(fault_seed, int) \
                or isinstance(fault_seed, bool):
            raise ProtocolError(
                f"fault_seed must be an integer, got {fault_seed!r}")
        try:
            plan = FaultPlan.parse(faults, seed=fault_seed)
        except ValueError as exc:
            raise ProtocolError(f"bad fault plan: {exc}") from None
        cell["faults"] = faults
        cell["fault_seed"] = fault_seed
        cell["fault_plan"] = plan
        # a faulted run is keyed apart from (and never cached as) the
        # healthy cell
        cell["key"] = store.fingerprint(
            {"healthy_key": key, "faults": plan.to_payload()})
    return cell


def sim_cell_key(key_payload: dict, *, threat_scale: float,
                 terrain_scale: float, seed_offset: int) -> str:
    """The content-addressed cache key of one simulation cell.

    Must stay arithmetic-identical to ``BenchmarkData._sim_key`` --
    the byte-identity of served results with ``repro all`` rests on
    it, and ``tests/service/test_protocol.py`` pins the equality.
    """
    return store.fingerprint(dict(
        key_payload, epoch=store.model_epoch(),
        threat_scale=threat_scale, terrain_scale=terrain_scale,
        seed_offset=seed_offset))


def cell_weight(recipe: str, spec) -> int:
    """Largest-first ordering weight (mirrors the parallel planner)."""
    from repro.harness.parallel import _cell_weight

    return _cell_weight(recipe, spec)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------

def encode(message: dict) -> bytes:
    """One protocol line: compact JSON + newline, UTF-8."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes) -> dict:
    """Parse one request line; raises :class:`ProtocolError` on junk."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"malformed request line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def _sweep_names() -> list[str]:
    """Named factorial sweeps the ``sweep`` op accepts (lazy import:
    the sweep registry sits above the harness)."""
    from repro.c3i.sweeps import SWEEPS

    return sorted(SWEEPS)


def hello_payload(*, threat_scale: float, terrain_scale: float,
                  jobs: int) -> dict:
    """The ``hello`` response body (service capabilities)."""
    import repro

    return {
        "type": "hello",
        "schema": SCHEMA,
        "version": getattr(repro, "__version__", ""),
        "model_epoch": store.model_epoch(),
        "threat_scale": threat_scale,
        "terrain_scale": terrain_scale,
        "jobs": jobs,
        "machines": ["alpha", "ppro:1..4", "exemplar:1..16",
                     "mta:1..256", "cmt:1..512"],
        "workloads": list(FIXED_RECIPES) + [
            "th-job-ch-<n>-<os|sw>", "te-job-bl-<n>-<os|sw>",
            "tb-<topo>-w<W>-d<D>-g<G>-s<S>-<os|sw|hw>"],
        "sweeps": _sweep_names(),
        "ops": ["hello", "simulate", "sweep", "stats", "shutdown"],
    }


def record_response(request_id, record: dict,
                    schedule: Optional[list] = None) -> dict:
    """One streamed per-cell result line."""
    from repro.harness.rundir import cell_id

    body = dict(record)
    body.setdefault("cell", cell_id(record.get("machine", ""),
                                    record.get("job", "")))
    if schedule is not None:
        body["fault_schedule"] = schedule
    return {"type": "cell", "id": request_id, "cell": body}
