"""Tests for workload description utilities."""

from repro.c3i import threat as TH
from repro.workload import (
    JobBuilder,
    OpCounts,
    ThreadProgramBuilder,
    describe_job,
    job_summary,
    make_phase,
    single_thread_job,
)


def test_describe_serial_job():
    p = make_phase("scan", OpCounts(ialu=1e6, load=1e5),
                   unique_bytes=64 * 1024, parallelism=8,
                   serial_cycles=500.0)
    text = describe_job(single_thread_job("seq", [p]))
    assert "job 'seq'" in text
    assert "serial 'scan'" in text
    assert "parallelism 8" in text
    assert "serial cycles" in text
    assert "64 KB" in text


def test_describe_parallel_region_imbalance():
    threads = [
        ThreadProgramBuilder(f"t{i}")
        .compute("w", OpCounts(ialu=1e5 * (i + 1)))
        .build()
        for i in range(4)
    ]
    job = JobBuilder("par").parallel(threads, thread_kind="hw").build()
    text = describe_job(job)
    assert "4 hw-threads" in text
    assert "imbalance 1.60" in text  # max 4e5 / mean 2.5e5


def test_describe_work_queue_counts_criticals():
    item = (ThreadProgramBuilder("i")
            .compute("a", OpCounts(ialu=10))
            .critical("L", "b", OpCounts(store=1, sync=2))
            .build_work_item())
    job = JobBuilder("q").work_queue([item, item], n_threads=2).build()
    text = describe_job(job)
    assert "2 items" in text
    assert "2 critical sections" in text


def test_job_summary_matches_totals():
    scs = TH.benchmark_scenarios(scale=0.01)
    seq = [TH.run_sequential(s) for s in scs]
    job = TH.chunked_benchmark_job(scs, seq, 16)
    summary = job_summary(job)
    assert summary["max_parallel_threads"] == 16
    assert summary["total_ops"] == job.total_ops.total
    assert 0 < summary["mem_fraction"] < 1
