"""Parallel-loop pragmas as job transformers.

The Exemplar's shared-memory programming pragmas and the Tera's
``#pragma multithreaded`` both turn an annotated loop into a parallel
region.  These helpers perform the same transformation on workload
descriptions: given the loop's per-iteration phases, they build the
:class:`~repro.workload.Job` regions that the machine models execute.
The C3I multithreaded program variants are assembled with them.
"""

from __future__ import annotations

from typing import Sequence

from repro.workload.phase import Phase
from repro.workload.task import (
    Compute,
    ParallelRegion,
    ThreadProgram,
    WorkItem,
    WorkQueueRegion,
)


def parallel_region(iteration_phases: Sequence[Sequence[Phase]],
                    thread_kind: str = "os",
                    name: str = "iter") -> ParallelRegion:
    """One thread per iteration, each running its list of phases.

    ``iteration_phases[i]`` is the phase list of iteration ``i``.
    """
    if not iteration_phases:
        raise ValueError("parallel region needs at least one iteration")
    threads = [
        ThreadProgram(f"{name}-{i}",
                      tuple(Compute(p) for p in phases))
        for i, phases in enumerate(iteration_phases)
    ]
    return ParallelRegion(tuple(threads), thread_kind=thread_kind)


def chunked_loop_job(iteration_phases: Sequence[Sequence[Phase]],
                     n_chunks: int,
                     thread_kind: str = "os",
                     name: str = "chunk") -> ParallelRegion:
    """Block-distribute iterations over ``n_chunks`` threads.

    Chunk ``c`` gets iterations ``[c*n/k, (c+1)*n/k)`` -- the same
    formula as Program 2 (``first_threat``/``last_threat``).
    """
    n = len(iteration_phases)
    if n == 0:
        raise ValueError("cannot chunk an empty loop")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    threads = []
    for c in range(n_chunks):
        first = (c * n) // n_chunks
        last = ((c + 1) * n) // n_chunks
        items = tuple(
            Compute(p)
            for i in range(first, last)
            for p in iteration_phases[i]
        )
        threads.append(ThreadProgram(f"{name}-{c}", items))
    # chunks can be empty when n_chunks > n; keep them (they model the
    # idle threads the runtime still creates)
    return ParallelRegion(tuple(threads), thread_kind=thread_kind)


def work_queue_job(item_phases: Sequence[Sequence[object]],
                   n_threads: int,
                   thread_kind: str = "os",
                   name: str = "item") -> WorkQueueRegion:
    """Dynamic scheduling: ``n_threads`` workers pull iterations from a
    queue (Program 4's "while (unprocessed threats)").

    Each entry of ``item_phases`` is a list of thread items
    (:class:`~repro.workload.task.Compute` /
    :class:`~repro.workload.task.Critical`) or bare phases.
    """
    items = []
    for i, entries in enumerate(item_phases):
        normalized = tuple(
            e if not isinstance(e, Phase) else Compute(e)
            for e in entries
        )
        items.append(WorkItem(f"{name}-{i}", normalized))
    return WorkQueueRegion(tuple(items), n_threads=n_threads,
                           thread_kind=thread_kind)
