"""Tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.harness.report import generate

pytestmark = pytest.mark.slow  # full pipeline, every experiment


@pytest.fixture(scope="module")
def report_text():
    return generate(threat_scale=0.01, terrain_scale=0.025)


def test_report_contains_every_table(report_text):
    for t in range(2, 13):
        assert f"## table{t}" in report_text
    assert "## autopar" in report_text
    assert "## micro" in report_text


def test_report_figures_attached_to_tables(report_text):
    assert "table3 / Figure 1" in report_text
    assert "table10 / Figure 4" in report_text


def test_report_summarizes_checks(report_text):
    # 'N/N shape checks pass' with N == total check boxes
    import re
    m = re.search(r"\*\*(\d+)/(\d+) shape checks pass", report_text)
    assert m, "summary line missing"
    boxes = report_text.count("- [x]") + report_text.count("- [ ]")
    assert int(m.group(2)) == boxes
    assert int(m.group(1)) >= int(m.group(2)) - 2  # near-total pass


def test_report_is_markdown_table_formatted(report_text):
    assert "| row | paper | simulated | error |" in report_text
    assert "|---|" in report_text
