"""The dependence analyzer against a gallery of classic loop patterns.

These are the kernels a downstream user of the compiler model would
try: stencils, transposes, histograms, reductions, triangular loops.
Each test documents what the model should conclude and why -- useful
both as regression coverage and as executable documentation of the
analyzer's strength and (deliberate) conservatism.
"""


from repro.compiler import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Const,
    DependenceKind,
    ForLoop,
    IfStmt,
    Program,
    VarRef,
    analyze_loop,
    parallelize,
)


def v(name):
    return VarRef(name)


def loop(var, body, lower=Const(0), upper=None, pragma=False):
    return ForLoop(var=var, lower=lower,
                   upper=upper if upper is not None else v("n"),
                   body=tuple(body), pragma_parallel=pragma)


# ----------------------------------------------------------------------
# DOALL patterns the analyzer must accept
# ----------------------------------------------------------------------

def test_vector_add_parallelizes():
    l = loop("i", [Assign(ArrayRef("c", (v("i"),)),
                          BinOp("+", ArrayRef("a", (v("i"),)),
                                ArrayRef("b", (v("i"),))))])
    assert analyze_loop(l) == []


def test_saxpy_with_invariant_scalar_parallelizes():
    # y[i] = a*x[i] + y[i]: 'a' is read-only
    l = loop("i", [Assign(
        ArrayRef("y", (v("i"),)),
        BinOp("+", BinOp("*", v("a"), ArrayRef("x", (v("i"),))),
              ArrayRef("y", (v("i"),))))])
    assert analyze_loop(l) == []


def test_outer_loop_of_matmul_parallelizes():
    # for i: for j: for k: c[i][j] += a[i][k]*b[k][j]
    inner_k = loop("k", [Assign(
        ArrayRef("c", (v("i"), v("j"))),
        BinOp("+", ArrayRef("c", (v("i"), v("j"))),
              BinOp("*", ArrayRef("a", (v("i"), v("k"))),
                    ArrayRef("b", (v("k"), v("j"))))))],
        upper=v("n"))
    inner_j = loop("j", [inner_k])
    outer = loop("i", [inner_j])
    # dim 0 of the only written array is 'i': iterations are disjoint
    assert analyze_loop(outer) == []


def test_independent_shift_parallelizes():
    # b[i] = a[i+1]: reading a different array is never a dependence
    l = loop("i", [Assign(ArrayRef("b", (v("i"),)),
                          ArrayRef("a", (BinOp("+", v("i"), Const(1)),)))])
    assert analyze_loop(l) == []


def test_guarded_assignment_parallelizes():
    # if (a[i] > 0) b[i] = a[i]
    l = loop("i", [IfStmt(
        BinOp(">", ArrayRef("a", (v("i"),)), Const(0)),
        (Assign(ArrayRef("b", (v("i"),)), ArrayRef("a", (v("i"),))),))])
    assert analyze_loop(l) == []


# ----------------------------------------------------------------------
# sequential patterns the analyzer must reject
# ----------------------------------------------------------------------

def test_prefix_sum_rejected():
    # a[i] = a[i-1] + b[i]: the classic loop-carried recurrence
    l = loop("i", [Assign(
        ArrayRef("a", (v("i"),)),
        BinOp("+", ArrayRef("a", (BinOp("-", v("i"), Const(1)),)),
              ArrayRef("b", (v("i"),))))],
        lower=Const(1))
    deps = analyze_loop(l)
    assert any(d.kind == DependenceKind.ARRAY for d in deps)


def test_stencil_in_place_rejected():
    # a[i] = (a[i-1] + a[i+1]) / 2 -- in-place Jacobi is carried
    l = loop("i", [Assign(
        ArrayRef("a", (v("i"),)),
        BinOp("/", BinOp("+",
                         ArrayRef("a", (BinOp("-", v("i"), Const(1)),)),
                         ArrayRef("a", (BinOp("+", v("i"), Const(1)),))),
              Const(2)))],
        lower=Const(1))
    deps = analyze_loop(l)
    assert deps


def test_out_of_place_stencil_parallelizes():
    # b[i] = (a[i-1] + a[i+1]) / 2 -- the fix: double buffering
    l = loop("i", [Assign(
        ArrayRef("b", (v("i"),)),
        BinOp("/", BinOp("+",
                         ArrayRef("a", (BinOp("-", v("i"), Const(1)),)),
                         ArrayRef("a", (BinOp("+", v("i"), Const(1)),))),
              Const(2)))],
        lower=Const(1))
    assert analyze_loop(l) == []


def test_histogram_rejected():
    # h[bin[i]] += 1: indirect subscript defeats the analysis
    l = loop("i", [Assign(
        ArrayRef("h", (ArrayRef("bin", (v("i"),)),)),
        BinOp("+", ArrayRef("h", (ArrayRef("bin", (v("i"),)),)),
              Const(1)))])
    deps = analyze_loop(l)
    assert any(d.kind == DependenceKind.ASSUMED for d in deps)


def test_scalar_max_reduction_rejected():
    # best = max(best, a[i]) as if + assignment
    l = loop("i", [IfStmt(
        BinOp(">", ArrayRef("a", (v("i"),)), v("best")),
        (Assign(v("best"), ArrayRef("a", (v("i"),))),))])
    deps = analyze_loop(l)
    assert any(d.kind == DependenceKind.SCALAR and d.variable == "best"
               for d in deps)


def test_linked_list_walk_rejected():
    # p = next(p): both a call and a carried scalar
    l = loop("i", [Assign(v("p"), Call("next_node", (v("p"),)))])
    deps = analyze_loop(l)
    kinds = {d.kind for d in deps}
    assert DependenceKind.CALL in kinds
    assert DependenceKind.SCALAR in kinds


def test_triangular_write_pattern():
    # for i: for j in 0..i: a[j] = i -- inner range grows with i;
    # the same a[j] cells are rewritten across iterations
    inner = ForLoop(var="j", lower=Const(0), upper=v("i"),
                    body=(Assign(ArrayRef("a", (v("j"),)), v("i")),))
    outer = loop("i", [inner])
    assert analyze_loop(outer)


def test_transpose_blocked_by_symmetry():
    # a[i][j] = a[j][i] inside for i / for j: the analyzer cannot
    # prove i != j ordering safety -> conservative rejection
    inner = loop("j", [Assign(ArrayRef("a", (v("i"), v("j"))),
                              ArrayRef("a", (v("j"), v("i"))))])
    outer = loop("i", [inner])
    deps = analyze_loop(outer)
    assert deps


# ----------------------------------------------------------------------
# whole-program behaviour
# ----------------------------------------------------------------------

def test_program_with_mixed_loops():
    init = loop("i", [Assign(ArrayRef("a", (v("i"),)), Const(0))])
    scan = loop("i", [Assign(
        ArrayRef("a", (v("i"),)),
        BinOp("+", ArrayRef("a", (BinOp("-", v("i"), Const(1)),)),
              Const(1)))], lower=Const(1))
    prog = Program("mixed", ("n", "a"), (init, scan))
    result = parallelize(prog)
    assert result.n_loops == 2
    assert result.n_auto_parallelized == 1  # init yes, scan no


def test_pragma_overrides_even_a_provable_dependence():
    """The pragma is the programmer's assertion; the compiler obeys --
    which is why the paper stresses the nondeterminacy risk."""
    scan = loop("i", [Assign(
        ArrayRef("a", (v("i"),)),
        ArrayRef("a", (BinOp("-", v("i"), Const(1)),)))],
        lower=Const(1), pragma=True)
    result = parallelize(Program("forced", ("n", "a"), (scan,)))
    assert result.n_parallelized == 1
    assert result.reports[0].by_pragma
