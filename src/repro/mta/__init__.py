"""The Tera MTA simulator -- the paper's subject system.

Two fidelity levels:

* :class:`~repro.mta.machine.MtaMachine` -- macro performance model
  executing :class:`~repro.workload.Job` descriptions on DES servers:
  per-processor instruction-issue slots (each hardware stream capped at
  one instruction per 21-cycle pipeline pass, the processor at one per
  cycle) and a prototype-status memory network whose aggregate
  bandwidth scales sublinearly with processors.  All of the paper's MTA
  tables run through this model.

* :class:`~repro.mta.system.MtaSystem` -- a cycle-accurate
  micro-simulator (streams, issue arbitration, interleaved memory banks
  with full/empty bits, lookahead-limited memory concurrency) used by
  the unit tests and the Section 7 micro-claims benchmark: one
  instruction per 21 cycles per stream, tens-of-streams saturation
  curves, 1-cycle synchronization.

:mod:`~repro.mta.runtime` provides the programming-system surface
(parallel-loop pragmas, futures, sync variables) that the C3I
benchmark variants and the examples are written against.
"""

from repro.mta.spec import MTA_2, MtaSpec, mta
from repro.mta.machine import MtaMachine, MtaRunResult
from repro.mta.stream import Instruction, Stream
from repro.mta.processor import CycleProcessor
from repro.mta.memory import InterleavedMemory
from repro.mta.system import (
    CycleStats,
    MtaSystem,
    alu_kernel,
    dependent_load_kernel,
    independent_load_kernel,
    load_use_kernel,
)
from repro.mta.runtime import Future, SyncVariable, TeraRuntime
from repro.mta.idioms import (
    AtomicCounter,
    BoundedBuffer,
    ReductionTree,
    fork_join_map,
)

__all__ = [
    "AtomicCounter",
    "BoundedBuffer",
    "CycleProcessor",
    "CycleStats",
    "Future",
    "Instruction",
    "InterleavedMemory",
    "MTA_2",
    "MtaMachine",
    "MtaRunResult",
    "MtaSpec",
    "MtaSystem",
    "ReductionTree",
    "Stream",
    "SyncVariable",
    "TeraRuntime",
    "alu_kernel",
    "dependent_load_kernel",
    "fork_join_map",
    "independent_load_kernel",
    "load_use_kernel",
    "mta",
]
