"""A modern CMT descendant of the MTA: the 512-thread SPARC T3-4.

The third machine family, modeled on the Oracle/Sun SPARC T3-4
characterization (PAPERS.md, arXiv 1106.2992): 4 sockets x 16 cores x
8 hardware strands = 512 threads at 1.65 GHz, each core an 8-way
barrel pipeline (two execution pipes, so ~2 of 8 strands issue per
cycle), per-core L1, a 6 MB shared L2 per socket, and an on-chip
crossbar to memory.  It retells the paper's stream-saturation story at
a different design point: like the MTA it hides latency with hardware
thread contexts, but the contexts live *on top of a cache hierarchy*
and strand creation, while far cheaper than an OS thread, is not the
MTA's 2-cycle stream allocation.

The model deliberately reuses the conventional-machine contracts
(:mod:`repro.machines.spec` / the cohort compiler) unchanged -- a
:class:`CmtSpec` *derives* a plain :class:`MachineSpec`:

* one model CPU per **strand**, clocked at the per-strand effective
  issue rate (``1.65 GHz / strands_per_core``).  The fair-share CPU
  pool then has aggregate capacity ``512 x strand_rate = 64 cores x
  1.65 GHz`` -- the chip's real issue capacity -- while capping any
  single thread at one strand's rate, which is exactly the barrel
  pipeline's behaviour (one thread alone cannot use a whole core);
* op costs are in *strand* cycles and sit near 1.0 -- the barrel
  pipeline hides intra-thread dependence stalls the way the MTA's
  21-cycle instruction wheel does;
* the cache is the socket L2s aggregated (the per-core L1s are folded
  into the effective hit cost), the memory system a crossbar with
  high aggregate bandwidth and DRAM-class latency;
* the thread-cost table gets an explicit ``"hw"`` row (parking and
  waking a strand): ~500 strand cycles, between the MTA's 2-cycle
  streams and the SMPs' 80-100k-cycle OS threads, which is what makes
  the cross-machine sanity ordering (MTA saturates, CMT absorbs, SMP
  convoys) come out of the model rather than being asserted into it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machines.spec import (
    CacheSpec,
    CoreSpec,
    MachineSpec,
    MemSpec,
    ThreadCosts,
)

MB = 1024.0 * 1024.0

#: Effective cycles per op class, in *strand* cycles.  The S3 core is
#: single-issue per strand and the barrel rotation hides most intra-
#: thread latency, so the costs sit near 1; ``sync`` is an on-chip CAS
#: (~200 ns), far cheaper than the SMPs' bus-locked 400-600 core
#: cycles but far above the MTA's 1-cycle full/empty bits.
_T3_OPS = {"ialu": 1.0, "falu": 1.4, "load": 1.1, "store": 1.1,
           "branch": 1.3, "sync": 40.0}

#: Thread costs in strand cycles.  "hw" is strand park/wake (the MTA
#: analog of stream allocation); "sw" a user-level task pool; "os" a
#: Solaris LWP.
_T3_COSTS = {
    "hw": ThreadCosts(create_cycles=500.0, sync_cycles=60.0),
    "sw": ThreadCosts(create_cycles=5_000.0, sync_cycles=120.0),
    "os": ThreadCosts(create_cycles=20_000.0, sync_cycles=200.0),
}


@dataclass(frozen=True)
class CmtSpec:
    """Structural description of a chip-multithreaded machine."""

    name: str = "SPARC T3-4"
    sockets: int = 4
    cores_per_socket: int = 16
    strands_per_core: int = 8
    clock_hz: float = 1.65e9
    op_cycles: dict[str, float] = field(
        default_factory=lambda: dict(_T3_OPS))
    #: shared L2 per socket (the per-core L1s fold into hit_cycles)
    l2_bytes_per_socket: float = 6.0 * MB
    line_bytes: int = 64
    l2_hit_cycles: float = 4.0
    l2_assoc: int = 16
    #: aggregate crossbar/DRAM bandwidth and loaded miss latency
    mem_bandwidth_bytes_per_s: float = 60e9
    miss_latency_s: float = 180e-9
    thread_costs: dict[str, ThreadCosts] = field(
        default_factory=lambda: dict(_T3_COSTS))
    memory_bytes: float = 256.0 * 1024**3

    def __post_init__(self) -> None:
        if min(self.sockets, self.cores_per_socket,
               self.strands_per_core) < 1:
            raise ValueError("sockets/cores/strands must all be >= 1")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")

    @property
    def n_strands(self) -> int:
        """Total hardware thread contexts (the model's CPU count)."""
        return self.sockets * self.cores_per_socket * self.strands_per_core

    @property
    def strand_hz(self) -> float:
        """One strand's effective issue rate on the barrel pipeline."""
        return self.clock_hz / self.strands_per_core

    def machine_spec(self) -> MachineSpec:
        """Derive the plain conventional-machine spec (see module doc)."""
        return MachineSpec(
            name=self.name,
            n_cpus=self.n_strands,
            core=CoreSpec(clock_hz=self.strand_hz,
                          op_cycles=dict(self.op_cycles)),
            cache=CacheSpec(
                capacity_bytes=self.sockets * self.l2_bytes_per_socket,
                line_bytes=self.line_bytes,
                assoc=self.l2_assoc,
                hit_cycles=self.l2_hit_cycles),
            mem=MemSpec(
                bandwidth_bytes_per_s=self.mem_bandwidth_bytes_per_s,
                miss_latency_s=self.miss_latency_s),
            thread_costs=dict(self.thread_costs),
            memory_bytes=self.memory_bytes,
        )


#: The reference machine of arXiv 1106.2992.
SPARC_T3_4 = CmtSpec()

#: Its derived conventional-contract spec (512 strand-CPUs).
CMT_T3_4 = SPARC_T3_4.machine_spec()


def cmt(n_strands: int) -> MachineSpec:
    """The T3-4 restricted to ``n_strands`` hardware strands (1..512)."""
    if not 1 <= n_strands <= SPARC_T3_4.n_strands:
        raise ValueError(
            f"the T3-4 has 1..{SPARC_T3_4.n_strands} strands")
    if n_strands == SPARC_T3_4.n_strands:
        return CMT_T3_4
    return CMT_T3_4.with_cpus(n_strands)
