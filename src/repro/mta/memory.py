"""Interleaved memory with full/empty bits (cycle-level model).

The MTA's memory is flat -- no caches -- and 64-way interleaved by
word.  Each word carries a full/empty tag; synchronized accesses that
find the wrong state are retried by the memory hardware.  The model:

* a request occupies its bank for one cycle (bank conflicts queue);
* the loaded round trip (injection + bank + return network) is
  ``latency_cycles``;
* ``sync_load`` waits-until-full then reads-and-sets-empty;
  ``sync_store`` waits-until-empty then writes-and-sets-full; blocked
  requests retry every ``retry_interval_cycles`` (consuming a bank slot
  per retry, as the real hardware's forwarding/retry logic does);
* plain ``load``/``store`` ignore the tag (and ``store`` sets full, the
  normal data-initialisation convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass
class _Word:
    value: object = 0
    full: bool = False


@dataclass(frozen=True)
class MemRequest:
    """One memory reference in flight."""

    kind: str
    addr: int
    value: object = None
    #: called as callback(completion_cycle, loaded_value)
    on_complete: Optional[Callable[[float, object], None]] = None


class InterleavedMemory:
    """Banked memory with full/empty semantics and retry."""

    def __init__(self, n_banks: int = 64, latency_cycles: float = 140.0,
                 retry_interval_cycles: float = 8.0):
        if n_banks < 1:
            raise ValueError("n_banks must be >= 1")
        if latency_cycles < 1:
            raise ValueError("latency_cycles must be >= 1")
        if retry_interval_cycles < 1:
            raise ValueError("retry_interval_cycles must be >= 1")
        self.n_banks = n_banks
        self.latency_cycles = latency_cycles
        self.retry_interval_cycles = retry_interval_cycles
        self._words: dict[int, _Word] = {}
        self._bank_free: list[float] = [0.0] * n_banks
        #: bank -> service cycles per request (default 1.0); raised by
        #: :meth:`inject_hotspot` to model a degraded/contended bank
        self._bank_service: dict[int, float] = {}
        # statistics
        self.requests = 0
        self.retries = 0
        self.bank_conflict_cycles = 0.0
        self.hotspot_extra_cycles = 0.0

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def inject_hotspot(self, bank: int, service_cycles: float) -> None:
        """Degrade ``bank``: every request occupies it for
        ``service_cycles`` instead of 1 (hot-spotting / partial bank
        failure).  Conflicts behind the slow bank queue up exactly as
        behind a busy healthy bank."""
        if not 0 <= bank < self.n_banks:
            raise ValueError(f"bank {bank} out of range")
        if service_cycles < 1.0:
            raise ValueError("service_cycles must be >= 1")
        self._bank_service[bank] = float(service_cycles)

    def clear_hotspots(self) -> None:
        self._bank_service.clear()

    def force_empty(self, addrs) -> int:
        """Set the full/empty tag of every address in ``addrs`` to
        empty (fault injection: lost producer).  Synchronized loads on
        those words stall in hardware retry until some store fills
        them.  Returns the number of words flipped full->empty."""
        flipped = 0
        for addr in addrs:
            w = self.word(addr)
            if w.full:
                flipped += 1
            w.full = False
        return flipped

    # ------------------------------------------------------------------
    def word(self, addr: int) -> _Word:
        if addr < 0:
            raise ValueError("negative address")
        w = self._words.get(addr)
        if w is None:
            w = _Word()
            self._words[addr] = w
        return w

    def peek(self, addr: int) -> object:
        return self.word(addr).value

    def is_full(self, addr: int) -> bool:
        return self.word(addr).full

    def poke(self, addr: int, value: object, full: bool = True) -> None:
        """Debug/initialisation write, no timing."""
        w = self.word(addr)
        w.value = value
        w.full = full

    # ------------------------------------------------------------------
    def _bank_of(self, addr: int) -> int:
        return addr % self.n_banks

    def _claim_bank(self, addr: int, cycle: float) -> float:
        """Serialise on the bank; returns the service cycle."""
        b = self._bank_of(addr)
        service = max(cycle, self._bank_free[b])
        self.bank_conflict_cycles += service - cycle
        occupancy = self._bank_service.get(b, 1.0)
        self.hotspot_extra_cycles += occupancy - 1.0
        self._bank_free[b] = service + occupancy
        return service

    def issue(self, req: MemRequest, cycle: float) -> Optional[float]:
        """Issue a request at ``cycle``.

        Returns the completion cycle if it can be determined now, or
        ``None`` if the request blocked on a full/empty tag -- in that
        case the eventual completion is delivered via ``on_complete``
        after hardware retries succeed.  (For uniformity the completion
        callback is invoked in both cases.)
        """
        self.requests += 1
        return self._attempt(req, cycle, first=True)

    def _attempt(self, req: MemRequest, cycle: float,
                 first: bool) -> Optional[float]:
        service = self._claim_bank(req.addr, cycle)
        w = self.word(req.addr)
        kind = req.kind
        if kind == "load":
            value = w.value
        elif kind == "store":
            w.value = req.value
            w.full = True
            value = None
        elif kind == "sync_load":
            if not w.full:
                return self._schedule_retry(req, service)
            value = w.value
            w.full = False
        elif kind == "sync_store":
            if w.full:
                return self._schedule_retry(req, service)
            w.value = req.value
            w.full = True
            value = None
        else:
            raise ValueError(f"not a memory op: {kind!r}")

        done = service + self.latency_cycles
        if req.on_complete is not None:
            req.on_complete(done, value)
        return done

    # Deferred retries are collected and replayed by the system driver;
    # the memory itself is passive between cycles.
    def _schedule_retry(self, req: MemRequest, service: float
                        ) -> Optional[float]:
        self.retries += 1
        self._pending_retries.append(
            (service + self.retry_interval_cycles, req))
        return None

    @property
    def _pending_retries(self) -> list[tuple[float, MemRequest]]:
        if not hasattr(self, "_retries_list"):
            self._retries_list: list[tuple[float, MemRequest]] = []
        return self._retries_list

    def drain_retries(self) -> list[tuple[float, MemRequest]]:
        """Hand pending retries to the driver (clears the list)."""
        out = self._pending_retries[:]
        self._retries_list = []
        return out

    def retry(self, req: MemRequest, cycle: float) -> Optional[float]:
        """Re-attempt a previously blocked request."""
        return self._attempt(req, cycle, first=False)
