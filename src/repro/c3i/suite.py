"""The C3I Parallel Benchmark Suite framework.

The C3IPBS defines, for each of its eight problems: a description, an
efficient sequential program, benchmark input data, and a correctness
test for the output.  This module captures that structure as a
protocol, registers the two problems the paper measures, and provides
the suite driver -- so the remaining six problems (or new ones) plug in
without touching the harness.

::

    from repro.c3i.suite import get_problem, list_problems, run_problem

    for name in list_problems():
        report = run_problem(name, scale=0.02)
        assert report.correct
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(frozen=True)
class VariantReport:
    """One program variant's execution + validation outcome."""

    name: str
    correct: bool
    kernel_seconds: float
    detail: str = ""


@dataclass(frozen=True)
class ProblemReport:
    """Outcome of running one suite problem end to end."""

    problem: str
    scale: float
    n_scenarios: int
    variants: tuple[VariantReport, ...]

    @property
    def correct(self) -> bool:
        return all(v.correct for v in self.variants)


@dataclass(frozen=True)
class SuiteProblem:
    """One C3IPBS problem: scenarios, programs, correctness test.

    * ``make_scenarios(scale, seed_offset)`` -- the benchmark inputs;
    * ``reference(scenario)`` -- the efficient sequential program;
    * ``variants`` -- named parallel programs, each
      ``fn(scenario) -> result``;
    * ``validate(scenario, reference_result, variant_name, result)`` --
      raises on any mismatch (the suite's correctness test).
    """

    name: str
    description: str
    make_scenarios: Callable[..., list]
    reference: Callable
    variants: dict[str, Callable] = field(default_factory=dict)
    validate: Optional[Callable] = None


_REGISTRY: dict[str, SuiteProblem] = {}


def register_problem(problem: SuiteProblem) -> None:
    """Add a problem to the suite (name must be unique)."""
    if problem.name in _REGISTRY:
        raise ValueError(f"problem {problem.name!r} already registered")
    _REGISTRY[problem.name] = problem


def list_problems() -> list[str]:
    return sorted(_REGISTRY)


def get_problem(name: str) -> SuiteProblem:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown problem {name!r}; registered: {list_problems()}")
    return _REGISTRY[name]


def run_problem(name: str, scale: float = 0.02, seed_offset: int = 0
                ) -> ProblemReport:
    """Run one problem: reference + every variant + correctness tests."""
    problem = get_problem(name)
    scenarios = problem.make_scenarios(scale=scale,
                                       seed_offset=seed_offset)
    t0 = time.perf_counter()
    references = [problem.reference(sc) for sc in scenarios]
    ref_seconds = time.perf_counter() - t0
    variants = [VariantReport("sequential (reference)", True,
                              ref_seconds)]
    for vname, fn in problem.variants.items():
        t0 = time.perf_counter()
        results = [fn(sc) for sc in scenarios]
        elapsed = time.perf_counter() - t0
        correct = True
        detail = ""
        if problem.validate is not None:
            try:
                for sc, ref, res in zip(scenarios, references, results):
                    problem.validate(sc, ref, vname, res)
            except AssertionError as exc:
                correct = False
                detail = str(exc)
        variants.append(VariantReport(vname, correct, elapsed, detail))
    return ProblemReport(problem=name, scale=scale,
                         n_scenarios=len(scenarios),
                         variants=tuple(variants))


# ----------------------------------------------------------------------
# register the two problems the paper measures
# ----------------------------------------------------------------------

def _register_builtin() -> None:
    from repro.c3i import terrain as TE
    from repro.c3i import threat as TH

    def threat_validate(scenario, reference, vname, result):
        TH.check_intervals(scenario, reference.intervals)
        if vname.startswith("chunked"):
            TH.check_chunked(reference, result)
        else:
            TH.check_finegrained(reference, result)

    register_problem(SuiteProblem(
        name="threat-analysis",
        description=("Time-stepped simulation of incoming ballistic "
                     "threats with computation of interception windows"),
        make_scenarios=TH.benchmark_scenarios,
        reference=TH.run_sequential,
        variants={
            "chunked (Program 2, 16 chunks)":
                lambda sc: TH.run_chunked(sc, 16),
            "chunked (Program 2, 256 chunks)":
                lambda sc: TH.run_chunked(sc, 256),
            "fine-grained sync-variable":
                lambda sc: TH.run_finegrained(sc),
        },
        validate=threat_validate,
    ))

    def terrain_validate(scenario, reference, vname, result):
        TE.check_masking(scenario, reference.masking)
        if vname.startswith("blocked"):
            TE.check_blocked(reference, result)
        else:
            TE.check_finegrained(reference, result)

    register_problem(SuiteProblem(
        name="terrain-masking",
        description=("Maximum safe flight altitude over terrain with "
                     "ground-based threats (LOS shadow propagation)"),
        make_scenarios=TE.benchmark_scenarios,
        reference=TE.run_sequential,
        variants={
            "blocked (Program 4, 4 threads)":
                lambda sc: TE.run_blocked(sc, n_threads=4),
            "blocked (Program 4, 16 threads)":
                lambda sc: TE.run_blocked(sc, n_threads=16),
            "fine-grained (Tera variant)":
                lambda sc: TE.run_finegrained(sc),
        },
        validate=terrain_validate,
    ))


_register_builtin()
