"""The detector against the real benchmark workloads and registry.

These are the promises the race CI job enforces: every registered
experiment's simulated-thread jobs are race-free, the compiler's
dependence facts (not blanket silencing) clear the opaque Program-2
writes, and both engine extractions agree on every verdict.
"""

import pytest

from repro.analysis import analyze_job, analyze_job_both
from repro.analysis.facts import facts_for_job, loop_independent_arrays
from repro.analysis.report import report_to_dict
from repro.analysis.targets import EXPERIMENT_JOBS, experiment_jobs
from repro.harness.registry import EXPERIMENT_IDS
from repro.harness.runner import BenchmarkData
from repro.workload.instrument import OpCounter
from repro.workload.ops import AccessMode


@pytest.fixture(scope="module")
def data():
    return BenchmarkData(threat_scale=0.01, terrain_scale=0.03)


def test_every_experiment_has_a_target_mapping():
    assert set(EXPERIMENT_JOBS) == set(EXPERIMENT_IDS)


def test_compiler_facts_for_program2():
    facts = facts_for_job("threat-chunked-16")
    assert facts == {"intervals", "num_intervals"}
    assert facts_for_job("threat-sequential") == frozenset()
    assert facts_for_job("terrain-finegrained") == frozenset()


def test_loop_independent_arrays_from_ir():
    from repro.compiler.programs import threat_chunked_ir
    loop = next(s for s in threat_chunked_ir(with_pragma=True).body
                if getattr(s, "pragma_parallel", False))
    assert loop_independent_arrays(loop) >= {"intervals",
                                             "num_intervals"}


def test_real_chunked_job_clean_only_because_of_facts(data):
    job = data.threat_chunked_job(8)
    report = analyze_job(job, "des")
    assert report.clean
    # C(8,2) chunk pairs x 2 opaque arrays x 5 scenarios
    assert report.suppressed == 28 * 2 * 5


def test_real_blocked_job_clean_via_block_locks(data):
    report = analyze_job(data.terrain_blocked_job(4), "des")
    assert report.clean
    assert report.suppressed == 0  # locks, not facts, clear these


def test_all_registered_experiments_clean_under_both_engines(data):
    jobs = {}
    for eid in EXPERIMENT_IDS:
        jobs.update(experiment_jobs(eid, data))
    assert len(jobs) >= 30
    for name, job in jobs.items():
        des, cohort = analyze_job_both(job)
        assert des.clean, (name, [f.render() for f in des.findings])
        assert des.findings == cohort.findings, name
        assert des.suppressed == cohort.suppressed, name


def test_report_payload_engine_independent(data):
    reports = {}
    for eid in ("table5", "table9", "autopar"):
        reports[eid] = [analyze_job(j, "des")
                        for j in experiment_jobs(eid, data).values()]
    reports_c = {}
    for eid in ("table5", "table9", "autopar"):
        reports_c[eid] = [analyze_job(j, "cohort")
                          for j in experiment_jobs(eid, data).values()]
    a = report_to_dict(reports, "des")
    b = report_to_dict(reports_c, "cohort")
    assert a.pop("engine") == "des"
    assert b.pop("engine") == "cohort"
    assert a == b
    assert a["schema"] == "repro-race-report/v1"
    assert a["clean"] is True


def test_opcounter_touch_tracks_union_hull():
    c = OpCounter()
    c.touch("a", AccessMode.WRITE, 5, 9)
    c.touch("a", AccessMode.WRITE, 0, 2)
    c.touch("a", AccessMode.READ, 1)
    accs = c.accesses()
    spans = {(a.array, a.mode, a.lo, a.hi) for a in accs}
    assert spans == {("a", AccessMode.WRITE, 0, 9),
                     ("a", AccessMode.READ, 1, 1)}

    other = OpCounter()
    other.touch("a", AccessMode.WRITE, 20, 30)
    other.touch("b", AccessMode.READ, 0, 0)
    c.merge(other)
    spans = {(a.array, a.mode, a.lo, a.hi) for a in c.accesses()}
    assert ("a", AccessMode.WRITE, 0, 30) in spans
    assert ("b", AccessMode.READ, 0, 0) in spans
