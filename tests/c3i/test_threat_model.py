"""Unit and property tests for the Threat Analysis model and kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.c3i.common import contiguous_runs
from repro.c3i.threat import (
    Interval,
    Threat,
    Weapon,
    feasible_mask,
    threat_positions,
)
from repro.c3i.threat.model import pair_intervals


def simple_threat(**kw):
    defaults = dict(launch_x=0.0, launch_y=0.0, impact_x=100.0,
                    impact_y=0.0, launch_time=0.0, impact_time=100.0,
                    apex_alt=100.0, detect_fraction=0.1)
    defaults.update(kw)
    return Threat(**defaults)


# ----------------------------------------------------------------------
# Threat
# ----------------------------------------------------------------------

def test_threat_validation():
    with pytest.raises(ValueError):
        simple_threat(impact_time=0.0)
    with pytest.raises(ValueError):
        simple_threat(apex_alt=0.0)
    with pytest.raises(ValueError):
        simple_threat(detect_fraction=1.0)


def test_threat_endpoints():
    t = simple_threat()
    assert t.position(0.0) == (0.0, 0.0, 0.0)
    x, y, alt = t.position(100.0)
    assert (x, y) == (100.0, 0.0)
    assert alt == pytest.approx(0.0)


def test_threat_apex_at_midpoint():
    t = simple_threat()
    _x, _y, alt = t.position(50.0)
    assert alt == pytest.approx(100.0)


def test_threat_detection_time():
    t = simple_threat()
    assert t.detection_time == pytest.approx(10.0)


def test_positions_grid_shape_and_bounds():
    t = simple_threat()
    times, pos = threat_positions(t, 64)
    assert times.shape == (64,)
    assert pos.shape == (64, 3)
    assert times[0] == pytest.approx(t.detection_time)
    assert times[-1] == pytest.approx(t.impact_time)
    assert (pos[:, 2] >= -1e-9).all()
    assert pos[:, 2].max() <= 100.0 + 1e-9


def test_positions_need_two_steps():
    with pytest.raises(ValueError):
        threat_positions(simple_threat(), 1)


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=1.0, max_value=1e4),
       st.floats(min_value=1.0, max_value=1e3))
def test_altitude_never_exceeds_apex(flight, apex):
    t = simple_threat(impact_time=flight, apex_alt=apex)
    _times, pos = threat_positions(t, 97)
    assert pos[:, 2].max() <= apex + 1e-6
    assert pos[:, 2].min() >= -1e-6


# ----------------------------------------------------------------------
# Weapon / feasibility
# ----------------------------------------------------------------------

def test_weapon_validation():
    with pytest.raises(ValueError):
        Weapon(x=0, y=0, slant_range=0, min_alt=0, max_alt=10)
    with pytest.raises(ValueError):
        Weapon(x=0, y=0, slant_range=10, min_alt=10, max_alt=10)


def test_feasible_mask_range_gate():
    t = simple_threat()
    times, pos = threat_positions(t, 1001)
    near = Weapon(x=50.0, y=0.0, slant_range=1e6, min_alt=0.0,
                  max_alt=1e6)
    far = Weapon(x=1e5, y=1e5, slant_range=10.0, min_alt=0.0, max_alt=1e6)
    assert feasible_mask(pos, near).all()
    assert not feasible_mask(pos, far).any()


def test_arc_through_altitude_band_gives_two_intervals():
    """The arc passes through a mid-altitude band on ascent and again
    on descent: two interception windows for one pair."""
    t = simple_threat(apex_alt=200.0)
    times, pos = threat_positions(t, 2001)
    w = Weapon(x=50.0, y=0.0, slant_range=1e6, min_alt=100.0,
               max_alt=180.0)
    ivs = pair_intervals(times, pos, w, 0, 0)
    assert len(ivs) == 2
    assert ivs[0].t_last < ivs[1].t_first


def test_zero_intervals_when_out_of_reach():
    t = simple_threat()
    times, pos = threat_positions(t, 101)
    w = Weapon(x=1e6, y=1e6, slant_range=5.0, min_alt=0.0, max_alt=10.0)
    assert pair_intervals(times, pos, w, 0, 0) == []


def test_single_interval_when_always_in_envelope():
    t = simple_threat(apex_alt=40.0)
    times, pos = threat_positions(t, 101)
    w = Weapon(x=50.0, y=0.0, slant_range=1e6, min_alt=0.0, max_alt=1e6)
    ivs = pair_intervals(times, pos, w, 3, 7)
    assert len(ivs) == 1
    assert ivs[0].threat == 3 and ivs[0].weapon == 7
    assert ivs[0].t_first == pytest.approx(t.detection_time)
    assert ivs[0].t_last == pytest.approx(t.impact_time)


def test_interval_validation():
    with pytest.raises(ValueError):
        Interval(threat=0, weapon=0, t_first=5.0, t_last=4.0)


# ----------------------------------------------------------------------
# contiguous_runs
# ----------------------------------------------------------------------

def test_contiguous_runs_basic():
    mask = np.array([0, 1, 1, 0, 1, 0, 1, 1, 1], dtype=bool)
    assert contiguous_runs(mask) == [(1, 2), (4, 4), (6, 8)]


def test_contiguous_runs_edges():
    assert contiguous_runs(np.array([], dtype=bool)) == []
    assert contiguous_runs(np.zeros(5, dtype=bool)) == []
    assert contiguous_runs(np.ones(4, dtype=bool)) == [(0, 3)]
    with pytest.raises(ValueError):
        contiguous_runs(np.zeros((2, 2), dtype=bool))


@settings(max_examples=100, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=60))
def test_contiguous_runs_reconstruct(bits):
    mask = np.array(bits, dtype=bool)
    runs = contiguous_runs(mask)
    rebuilt = np.zeros_like(mask)
    for a, b in runs:
        assert a <= b
        rebuilt[a:b + 1] = True
    assert (rebuilt == mask).all()
    # runs are disjoint, ordered, and separated by gaps
    for (a1, b1), (a2, _b2) in zip(runs, runs[1:]):
        assert b1 + 1 < a2
