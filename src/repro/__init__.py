"""repro -- reproduction of the SC'98 Tera MTA / C3IPBS evaluation.

The package implements, in pure Python + NumPy:

* :mod:`repro.des` -- a deterministic discrete-event simulation kernel;
* :mod:`repro.workload` -- an abstract representation of multithreaded
  programs (operation mixes, memory locality, critical sections);
* :mod:`repro.machines` -- performance simulators for the conventional
  platforms of the paper (AlphaStation 500, quad Pentium Pro, 16-way
  HP Exemplar);
* :mod:`repro.mta` -- a performance simulator for the Tera MTA
  (128-stream processors, flat no-cache interleaved memory, full/empty
  bits, prototype network);
* :mod:`repro.threads` -- the programming systems layered on top
  (Sthreads-style coarse threads, Exemplar/Tera parallel pragmas, Tera
  futures) with per-platform cost tables;
* :mod:`repro.compiler` -- a model of the automatic parallelizing
  compilers (loop IR, dependence analysis, canal-style feedback);
* :mod:`repro.c3i` -- the two C3I Parallel Benchmark Suite programs
  (Threat Analysis and Terrain Masking) in all the variants the paper
  measures, with synthetic scenario generators and validators;
* :mod:`repro.harness` -- the experiment registry reproducing every
  table and figure of the paper.

Quick start::

    from repro.harness import run_experiment
    result = run_experiment("table2")
    print(result.render())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
