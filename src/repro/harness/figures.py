"""ASCII rendering of the paper's speedup figures (Figures 1-4)."""

from __future__ import annotations

from typing import Optional, Sequence


def render_speedup_figure(title: str,
                          processors: Sequence[int],
                          speedups: Sequence[float],
                          paper_speedups: Optional[Sequence[float]] = None,
                          width: int = 52) -> str:
    """A horizontal-bar speedup chart: one bar per processor count.

    ``*`` marks the simulated speedup; ``|`` marks the paper's where
    given; the dotted diagonal would be ideal speedup.
    """
    if len(processors) != len(speedups):
        raise ValueError("processors and speedups must align")
    if paper_speedups is not None and len(paper_speedups) != len(speedups):
        raise ValueError("paper_speedups must align with speedups")
    max_s = max(max(speedups), max(processors),
                max(paper_speedups) if paper_speedups else 0.0)
    scale = (width - 1) / max_s
    lines = [title, "-" * len(title),
             f"{'procs':>5}  speedup  " + " " * 4 +
             f"(ideal '.', simulated '*', paper '|')"]
    for i, (p, s) in enumerate(zip(processors, speedups)):
        bar = [" "] * width
        ideal_pos = min(width - 1, int(round(p * scale)))
        bar[ideal_pos] = "."
        if paper_speedups is not None:
            paper_pos = min(width - 1, int(round(paper_speedups[i] * scale)))
            bar[paper_pos] = "|"
        sim_pos = min(width - 1, int(round(s * scale)))
        bar[sim_pos] = "*"
        lines.append(f"{p:>5}  {s:>6.2f}   {''.join(bar)}")
    return "\n".join(lines)
