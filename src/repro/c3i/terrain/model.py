"""Terrain, ground threats, and the masking-altitude computation.

**Masking model.**  A threat's sensor sits ``sensor_height`` above the
terrain at its cell.  An aircraft at altitude *a* over cell *c* is
visible when the line from the sensor to it clears every terrain cell
on the way, i.e. when its elevation angle from the sensor exceeds the
maximum elevation angle of the intervening terrain.  The maximum *safe*
(invisible) altitude over *c* is therefore the altitude of the grazing
ray over the highest intervening obstruction -- never below the local
terrain:

    mask(c) = max( terrain(c),
                   sensor_alt + tan(theta_max(c)) * dist(c) )

where ``theta_max(c)`` is the running maximum elevation angle along the
ray from the threat to *c* (exclusive).  Cells outside every threat's
region of influence are unconstrained (+inf).

**Wavefront structure.**  ``theta_max`` at a cell is derived from the
cell one ring closer to the threat along the (quantised) ray -- the
classic R2 viewshed recurrence.  Rings must be processed in order
(inner before outer) but every cell *within* a ring is independent:
exactly the inner-loop parallelism the Tera version exploits, and the
reason the paper says "the value at one point is computed from the
values at neighboring points".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np


def generate_terrain(n: int, rng: np.random.Generator,
                     relief: float = 300.0) -> np.ndarray:
    """A smooth synthetic elevation grid (n x n, float64 meters).

    Coarse random control points bilinearly upsampled plus fine noise:
    hills of realistic horizontal scale without any SciPy dependency in
    the hot path.
    """
    if n < 8:
        raise ValueError("terrain must be at least 8x8")
    coarse_n = max(4, n // 32)
    coarse = rng.random((coarse_n + 1, coarse_n + 1))
    # bilinear upsample to n x n
    xi = np.linspace(0, coarse_n, n)
    x0 = np.floor(xi).astype(int).clip(0, coarse_n - 1)
    fx = xi - x0
    rows = (coarse[x0, :] * (1 - fx)[:, None]
            + coarse[x0 + 1, :] * fx[:, None])
    cols0 = rows[:, x0] * (1 - fx)[None, :]
    cols1 = rows[:, x0 + 1] * fx[None, :]
    smooth = cols0 + cols1
    noise = rng.random((n, n)) * 0.04
    terrain = (smooth + noise) * relief
    return np.ascontiguousarray(terrain)


@dataclass(frozen=True)
class GroundThreat:
    """One ground-based threat (sensor site)."""

    x: int
    y: int
    range_cells: int
    sensor_height: float = 15.0

    def __post_init__(self) -> None:
        if self.range_cells < 1:
            raise ValueError("range_cells must be >= 1")
        if self.sensor_height < 0:
            raise ValueError("sensor_height must be >= 0")


@dataclass(frozen=True)
class RegionWindow:
    """The clipped bounding window of a threat's region of influence."""

    x0: int
    x1: int  # exclusive
    y0: int
    y1: int  # exclusive

    @property
    def shape(self) -> tuple[int, int]:
        return (self.x1 - self.x0, self.y1 - self.y0)

    @property
    def n_cells(self) -> int:
        w, h = self.shape
        return w * h

    def slices(self) -> tuple[slice, slice]:
        return slice(self.x0, self.x1), slice(self.y0, self.y1)


def region_window(threat: GroundThreat, n: int) -> RegionWindow:
    r = threat.range_cells
    return RegionWindow(
        x0=max(0, threat.x - r), x1=min(n, threat.x + r + 1),
        y0=max(0, threat.y - r), y1=min(n, threat.y + r + 1),
    )


@lru_cache(maxsize=64)
def ring_offsets(radius: int) -> tuple[tuple[np.ndarray, ...], ...]:
    """Per-ring cell offsets and their ray parents, for a disc of the
    given radius.

    Returns one entry per Chebyshev ring k = 1..radius:
    ``(dx, dy, pdx, pdy)`` arrays -- the ring's cell offsets from the
    threat and each cell's parent offsets one ring in (only offsets
    within the *Euclidean* disc of ``radius`` are included).
    """
    if radius < 1:
        raise ValueError("radius must be >= 1")
    rings = []
    r2 = radius * radius
    for k in range(1, radius + 1):
        coords = []
        for dx in range(-k, k + 1):
            for dy in range(-k, k + 1):
                if max(abs(dx), abs(dy)) != k:
                    continue
                if dx * dx + dy * dy > r2:
                    continue
                coords.append((dx, dy))
        if not coords:
            continue
        dxa = np.array([c[0] for c in coords], dtype=np.int64)
        dya = np.array([c[1] for c in coords], dtype=np.int64)
        scale = (k - 1) / k
        pdx = np.rint(dxa * scale).astype(np.int64)
        pdy = np.rint(dya * scale).astype(np.int64)
        rings.append((dxa, dya, pdx, pdy))
    return tuple(rings)


@lru_cache(maxsize=64)
def ring_geometry(radius: int) -> tuple[tuple[np.ndarray, ...], ...]:
    """Ring offsets plus the position-independent ray geometry.

    Cell and parent distances depend only on the offsets from the
    threat (``xs - threat.x == dxa`` exactly, in integer arithmetic),
    so the square roots are computed once per window radius instead of
    once per threat.  The arrays are bit-identical to what
    :func:`masking_for_threat` historically recomputed inline.
    """
    geo = []
    for dxa, dya, pdx, pdy in ring_offsets(radius):
        dist = np.sqrt(dxa ** 2.0 + dya ** 2.0)
        pdist = np.sqrt(pdx ** 2.0 + pdy ** 2.0)
        for a in (dist, pdist):
            a.setflags(write=False)
        geo.append((dxa, dya, pdx, pdy, dist, pdist))
    return tuple(geo)


@dataclass
class ThreatMaskStats:
    """Structural counts of one per-threat masking computation."""

    n_rings: int = 0
    n_ring_cells: int = 0
    ring_sizes: Optional[list[int]] = None

    def __post_init__(self) -> None:
        if self.ring_sizes is None:
            self.ring_sizes = []


def masking_for_threat(terrain: np.ndarray, threat: GroundThreat
                       ) -> tuple[RegionWindow, np.ndarray,
                                  ThreatMaskStats]:
    """Maximum safe altitude due to one threat, over its region window.

    Returns the window, an altitude array of the window's shape (+inf
    outside the threat's disc), and structural stats.  Rings are
    processed inner to outer; each ring is a vectorised gather from its
    parents -- the fine-grained-parallel loop of the Tera variant.
    """
    n = terrain.shape[0]
    if terrain.shape != (n, n):
        raise ValueError("terrain must be square")
    if not (0 <= threat.x < n and 0 <= threat.y < n):
        raise ValueError("threat must sit on the terrain")
    window = region_window(threat, n)
    sensor_alt = float(terrain[threat.x, threat.y]) + threat.sensor_height

    shape = window.shape
    alt = np.full(shape, np.inf)
    # running max elevation *tangent* per cell of the window
    acc = np.full(shape, -np.inf)
    stats = ThreatMaskStats()

    # the threat's own cell: flying over the sensor is never safe below
    # the sensor; mask is the local terrain (grazing).
    cx, cy = threat.x - window.x0, threat.y - window.y0
    alt[cx, cy] = terrain[threat.x, threat.y]
    acc[cx, cy] = -np.inf

    for dxa, dya, pdx, pdy, dist, pdist in ring_geometry(
            threat.range_cells):
        xs = threat.x + dxa
        ys = threat.y + dya
        keep = (xs >= 0) & (xs < n) & (ys >= 0) & (ys < n)
        if not keep.all():
            if not keep.any():
                continue
            xs, ys = xs[keep], ys[keep]
            pxs = threat.x + pdx[keep]
            pys = threat.y + pdy[keep]
            dist, pdist = dist[keep], pdist[keep]
        else:
            pxs = threat.x + pdx
            pys = threat.y + pdy
        # window-relative coordinates
        wx, wy = xs - window.x0, ys - window.y0
        pwx, pwy = pxs - window.x0, pys - window.y0
        # parent terrain tangent (the obstruction the parent cell adds)
        with np.errstate(divide="ignore", invalid="ignore"):
            ptan = np.where(
                pdist > 0,
                (terrain[pxs, pys] - sensor_alt) / np.maximum(pdist, 1e-12),
                -np.inf)
        theta = np.maximum(acc[pwx, pwy], ptan)
        acc[wx, wy] = theta
        shadow = sensor_alt + theta * dist
        alt[wx, wy] = np.maximum(terrain[xs, ys], shadow)
        stats.n_rings += 1
        stats.n_ring_cells += int(xs.size)
        stats.ring_sizes.append(int(xs.size))

    return window, alt, stats


#: (id(terrain), threat) -> (terrain, window, alt, stats); the terrain
#: reference both keeps the id stable and guards against id reuse
_MASK_MEMO: dict = {}
_MASK_MEMO_MAX = 4096


def masking_for_threat_cached(terrain: np.ndarray, threat: GroundThreat
                              ) -> tuple[RegionWindow, np.ndarray,
                                         ThreatMaskStats]:
    """Memoized :func:`masking_for_threat`.

    The masking computation depends only on the terrain grid and the
    threat, both immutable in practice, while every kernel variant
    (sequential, blocked at each thread count, fine-grained) recomputes
    the same per-threat altitudes.  Callers must treat the returned
    window/altitude/stats as read-only; the altitude array is marked
    non-writeable to enforce that.
    """
    key = (id(terrain), threat)
    hit = _MASK_MEMO.get(key)
    if hit is not None and hit[0] is terrain:
        return hit[1], hit[2], hit[3]
    window, alt, stats = masking_for_threat(terrain, threat)
    alt.setflags(write=False)
    if len(_MASK_MEMO) >= _MASK_MEMO_MAX:
        _MASK_MEMO.clear()
    _MASK_MEMO[key] = (terrain, window, alt, stats)
    return window, alt, stats
