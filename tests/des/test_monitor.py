"""Tests for simulation instrumentation (TimeSeries, Monitor)."""

import pytest

from repro.des import Monitor, Simulator, TimeSeries


def test_time_series_records_changes():
    sim = Simulator()
    ts = TimeSeries(sim, initial=2.0)

    def body(sim):
        yield sim.timeout(10)
        ts.record(4.0)
        yield sim.timeout(10)
        ts.add(-3.0)

    sim.process(body(sim))
    sim.run()
    assert ts.current == 1.0
    assert ts.values == [2.0, 4.0, 1.0]
    assert ts.times == [0.0, 10.0, 20.0]


def test_time_average_weighted_by_duration():
    sim = Simulator()
    ts = TimeSeries(sim, initial=0.0)

    def body(sim):
        yield sim.timeout(10)   # 0 for 10s
        ts.record(10.0)
        yield sim.timeout(10)   # 10 for 10s
        ts.record(0.0)
        yield sim.timeout(20)   # 0 for 20s

    sim.process(body(sim))
    sim.run()
    # average over [0, 40]: (0*10 + 10*10 + 0*20)/40 = 2.5
    assert ts.time_average() == pytest.approx(2.5)
    assert ts.maximum() == 10.0


def test_time_average_partial_window():
    sim = Simulator()
    ts = TimeSeries(sim, initial=4.0)

    def body(sim):
        yield sim.timeout(5)
        ts.record(0.0)
        yield sim.timeout(100)

    sim.process(body(sim))
    sim.run()
    assert ts.time_average(until=10.0) == pytest.approx(
        (4.0 * 5 + 0.0 * 5) / 10)


def test_time_average_at_time_zero():
    sim = Simulator()
    ts = TimeSeries(sim, initial=7.0)
    assert ts.time_average() == 7.0


def test_monitor_counters_and_gauges():
    sim = Simulator()
    mon = Monitor(sim)
    mon.count("events")
    mon.count("events", 4)
    g = mon.gauge("queue", initial=1.0)

    def body(sim):
        yield sim.timeout(10)
        g.add(3.0)
        yield sim.timeout(10)

    sim.process(body(sim))
    sim.run()
    snap = mon.snapshot()
    assert snap["events"] == 5
    assert snap["queue.avg"] == pytest.approx((1 * 10 + 4 * 10) / 20)
    assert snap["queue.max"] == 4.0


def test_monitor_gauge_is_memoized():
    sim = Simulator()
    mon = Monitor(sim)
    assert mon.gauge("x") is mon.gauge("x")
