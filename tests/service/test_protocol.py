"""Wire-format validation and the cell-key parity contract."""

import json

import pytest

from repro.harness.parallel import _PlanningData, _plan_one
from repro.harness.runner import BenchmarkData
from repro.service import protocol

from tests.service.conftest import SCALES


# ----------------------------------------------------------------------
# machine ids
# ----------------------------------------------------------------------

def test_parse_machine_families():
    kind, spec = protocol.parse_machine("alpha")
    assert kind == "conventional" and spec.n_cpus == 1
    kind, spec = protocol.parse_machine("ppro:3")
    assert kind == "conventional" and spec.n_cpus == 3
    kind, spec = protocol.parse_machine("exemplar")
    assert kind == "conventional" and spec.n_cpus == 16
    kind, spec = protocol.parse_machine("MTA:4")
    assert kind == "mta" and spec.n_processors == 4
    kind, spec = protocol.parse_machine("mta")
    assert spec.n_processors == 1
    kind, spec = protocol.parse_machine("cmt:64")
    assert kind == "conventional" and spec.n_cpus == 64
    kind, spec = protocol.parse_machine("cmt")
    assert spec.n_cpus == 512


@pytest.mark.parametrize("bad", [
    "", "   ", "cray", "ppro:0", "ppro:5", "exemplar:17", "mta:0",
    "mta:257", "alpha:2", "ppro:x", None, 7, "cmt:0", "cmt:513"])
def test_parse_machine_rejects(bad):
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_machine(bad)


# ----------------------------------------------------------------------
# workload ids
# ----------------------------------------------------------------------

@pytest.mark.parametrize("good", [
    "th-job-seq", "th-job-fg", "te-job-seq", "te-job-fg",
    "th-job-ch-4-os", "th-job-ch-128-sw", "te-job-bl-1-os",
    "te-job-bl-16-sw", "tb-stencil-w8-d4-g1-s0-hw",
    "tb-mesh-w64-d6-g2-s3-os", "tb-fanout-w4-d2-g1-s0-sw"])
def test_validate_recipe_accepts(good):
    assert protocol.validate_recipe(good) == good


@pytest.mark.parametrize("bad", [
    "bogus", "th-job-ch-4-hw", "th-job-ch--os", "th-job-ch-4",
    "te-job-bl-0-os", "te-job-bl-99999999-os", "th-job-ch-x-os",
    None, 3, "", "tb-spiral-w8-d4-g1-s0-hw", "tb-mesh-w0-d4-g1-s0-hw",
    "tb-mesh-w8-d4-g1-s0", "tb-mesh-w8-d4-g1-s0-user"])
def test_validate_recipe_rejects(bad):
    with pytest.raises(protocol.ProtocolError):
        protocol.validate_recipe(bad)


# ----------------------------------------------------------------------
# cells
# ----------------------------------------------------------------------

def test_cell_defaults_per_machine_kind():
    mta_cell = protocol.cell_from_payload(
        {"machine": "mta:2", "workload": "th-job-seq"}, **SCALES)
    conv_cell = protocol.cell_from_payload(
        {"machine": "exemplar:4", "workload": "th-job-seq"}, **SCALES)
    assert mta_cell["slices_per_phase"] == 8
    assert conv_cell["slices_per_phase"] == 16
    assert mta_cell["seed_offset"] == 0
    assert mta_cell["unit"] == "cell:th-job-seq@0"


@pytest.mark.parametrize("payload", [
    "not an object",
    {"machine": "mta:2"},                                  # no workload
    {"workload": "th-job-seq"},                            # no machine
    {"machine": "mta:2", "workload": "th-job-seq", "x": 1},
    {"machine": "mta:2", "workload": "th-job-seq",
     "seed_offset": "zero"},
    {"machine": "mta:2", "workload": "th-job-seq",
     "slices_per_phase": 0},
    {"machine": "mta:2", "workload": "th-job-seq",
     "exploit_fine_grained": True},                        # MTA + efg
    {"machine": "mta:2", "workload": "th-job-seq",
     "faults": "quantum-bitflip"},
    {"machine": "mta:2", "workload": "th-job-seq",
     "faults": "streams", "fault_seed": "x"},
])
def test_cell_from_payload_rejects(payload):
    with pytest.raises(protocol.ProtocolError):
        protocol.cell_from_payload(payload, **SCALES)


def test_faulted_cell_keyed_apart_from_healthy():
    healthy = protocol.cell_from_payload(
        {"machine": "mta:2", "workload": "th-job-seq"}, **SCALES)
    faulted = protocol.cell_from_payload(
        {"machine": "mta:2", "workload": "th-job-seq",
         "faults": "streams:0.5:0.8"}, **SCALES)
    assert faulted["key"] != healthy["key"]
    assert "fault_plan" in faulted and "fault_plan" not in healthy


# ----------------------------------------------------------------------
# key parity: a served cell IS the repro-all cell
# ----------------------------------------------------------------------

def test_cell_key_matches_runner_sim_key():
    data = BenchmarkData(**SCALES)
    for machine, workload, extra in (
            ("mta:2", "th-job-seq", {}),
            ("alpha", "te-job-fg", {}),
            ("exemplar:16", "te-job-bl-8-os", {}),
            ("ppro:4", "th-job-ch-4-os",
             {"exploit_fine_grained": True})):
        cell = protocol.cell_from_payload(
            dict(extra, machine=machine, workload=workload), **SCALES)
        key_payload = {"kind": cell["kind"], "spec": cell["spec"],
                       "slices_per_phase": cell["slices_per_phase"],
                       "job": "recipe:" + cell["job_recipe"]}
        if cell["kind"] == "conventional":
            key_payload["exploit_fine_grained"] = \
                cell["exploit_fine_grained"]
        assert cell["key"] == data._sim_key(key_payload), \
            (machine, workload)


def test_cell_keys_match_planner_cells():
    """Every transportable cell the registry plans is reachable --
    with an identical content-addressed key -- through the protocol."""
    planner = _PlanningData(**SCALES)
    plan = _plan_one("table3", planner)
    checked = 0
    for key, cell in plan["cells"].items():
        if cell is None:
            continue
        spec = cell["spec"]
        if hasattr(spec, "n_processors"):
            machine = f"mta:{spec.n_processors}"
        elif spec.name.startswith("AlphaStation"):
            machine = "alpha"
        elif "Exemplar" in spec.name:
            machine = f"exemplar:{spec.n_cpus}"
        else:
            machine = f"ppro:{spec.n_cpus}"
        served = protocol.cell_from_payload({
            "machine": machine, "workload": cell["job_recipe"],
            "seed_offset": cell["seed_offset"],
            "slices_per_phase": cell["slices_per_phase"],
            "exploit_fine_grained": cell["exploit_fine_grained"],
        }, **SCALES)
        assert served["key"] == key
        checked += 1
    assert checked >= 4  # table3 spans alpha/ppro/exemplar/mta


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------

def test_encode_decode_roundtrip():
    message = {"op": "simulate", "id": "r1", "cells": []}
    line = protocol.encode(message)
    assert line.endswith(b"\n") and b"\n" not in line[:-1]
    assert protocol.decode(line) == message


@pytest.mark.parametrize("junk", [
    b"not json\n", b"\xff\xfe\n", b"[1, 2]\n", b'"string"\n', b"42\n"])
def test_decode_rejects_junk(junk):
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(junk)


def test_hello_payload_shape():
    hello = protocol.hello_payload(threat_scale=0.02,
                                   terrain_scale=0.05, jobs=2)
    assert hello["schema"] == protocol.SCHEMA
    assert json.loads(json.dumps(hello)) == hello  # JSON-serializable
    assert "simulate" in hello["ops"] and "sweep" in hello["ops"]
    assert any(m.startswith("cmt:") for m in hello["machines"])
    assert any(w.startswith("tb-") for w in hello["workloads"])
    assert hello["sweeps"] == ["ci", "full", "smoke"]
