"""Advisory generation: what a helpful parallelizing compiler would say.

The paper stresses that the 1998 compilers "were unable to make any
suggestions regarding changes to the program (e.g., algorithmic
modifications or the addition of pragmas) that might expose
parallelism".  This module models the *suggestion* machinery a better
compiler could have had: for each dependence class it knows a standard
remedy, and it can also tell when no mechanical remedy exists -- which
is exactly the verdict for the paper's two programs (their fixes are
algorithmic: chunk-private output sections, block locking).

Advisories are classified:

* ``MECHANICAL`` -- a known transformation would remove the dependence
  (privatization, reduction recognition, pragma on a proven loop);
* ``RESTRUCTURING`` -- only an algorithm change can help (the paper's
  "significant modification of the underlying algorithm");
* ``INHERENT`` -- sequential by nature (time-stepped while loops).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.compiler.autopar import AutoParResult, LoopReport
from repro.compiler.dependence import Dependence, DependenceKind


class AdvisoryKind(enum.Enum):
    MECHANICAL = "mechanical"
    RESTRUCTURING = "restructuring"
    INHERENT = "inherent"


@dataclass(frozen=True)
class Advisory:
    """One suggestion attached to a loop's dependence."""

    loop_label: str
    kind: AdvisoryKind
    message: str

    def __str__(self) -> str:
        return f"{self.loop_label}: [{self.kind.value}] {self.message}"


def _advise_dependence(report: LoopReport, dep: Dependence) -> Advisory:
    label = report.label
    if dep.kind == DependenceKind.CONTROL:
        return Advisory(label, AdvisoryKind.INHERENT,
                        "time-stepped/while loop: iterations are "
                        "ordered by construction; no transformation "
                        "applies")
    if dep.kind == DependenceKind.SCALAR:
        # A read-then-written scalar is mechanically fixable only if it
        # is an induction/reduction; an index-then-increment counter
        # (num_intervals) is not -- its value *names output positions*.
        return Advisory(
            label, AdvisoryKind.RESTRUCTURING,
            f"scalar '{dep.variable}' carries a value used as an "
            f"output position; privatization changes program meaning. "
            f"Restructure: give each iteration (or chunk) a private "
            f"counter and output section (the paper's Program 2)")
    if dep.kind == DependenceKind.CALL:
        return Advisory(
            label, AdvisoryKind.RESTRUCTURING,
            f"call '{dep.variable}' has unknown side effects; "
            f"interprocedural analysis or a purity assertion would be "
            f"needed before any loop transformation")
    if dep.kind == DependenceKind.ARRAY and dep.distance is not None:
        return Advisory(
            label, AdvisoryKind.MECHANICAL,
            f"array '{dep.variable}' carries distance "
            f"{dep.distance:g}; loop skewing or pipelining could "
            f"expose wavefront parallelism")
    return Advisory(
        label, AdvisoryKind.RESTRUCTURING,
        f"accesses to '{dep.variable}' cannot be disambiguated "
        f"(opaque subscripts / overlapping regions); partition the "
        f"data and lock the partitions (the paper's Program 4) or "
        f"parallelize the inner loops on fine-grained hardware")


def generate_advisories(result: AutoParResult) -> list[Advisory]:
    """Suggestions for every non-parallelized loop of a program."""
    out: list[Advisory] = []
    for report in result.reports:
        if report.parallelized:
            continue
        for dep in report.dependences:
            out.append(_advise_dependence(report, dep))
    return out


def mechanical_fixes_exist(result: AutoParResult) -> bool:
    """Could a smarter compiler have parallelized this program without
    programmer help?  True only if *every* loop that fails has only
    MECHANICAL advisories on at least one loop level."""
    by_loop: dict[str, list[Advisory]] = {}
    for adv in generate_advisories(result):
        by_loop.setdefault(adv.loop_label, []).append(adv)
    if not by_loop:
        return False
    return any(all(a.kind == AdvisoryKind.MECHANICAL for a in advs)
               for advs in by_loop.values())


def render_advisories(result: AutoParResult) -> str:
    """Human-readable advisory report."""
    advisories = generate_advisories(result)
    lines = [f"Advisories for {result.program.name}",
             "-" * (15 + len(result.program.name))]
    if not advisories:
        lines.append("(nothing to suggest: all loops parallelized)")
        return "\n".join(lines)
    for adv in advisories:
        lines.append(f"  {adv}")
    lines.append("")
    if mechanical_fixes_exist(result):
        lines.append("verdict: a mechanical transformation could expose "
                     "parallelism here")
    else:
        lines.append("verdict: no mechanical transformation applies -- "
                     "the algorithm itself must change (the paper's "
                     "conclusion)")
    return "\n".join(lines)
