"""Deadlock detection: diagnostics must name the cycle, never hang.

Regression suite from the observability issue: the two canonical
deadlock shapes (ABBA lock ordering and a barrier that never fills)
previously surfaced as a bare "process never finished" -- or, for
same-timestamp livelocks, as a hang.
"""

import pytest

from repro.des import (
    DeadlockDiagnostic,
    SimBarrier,
    SimLock,
    SimulationDeadlock,
    Simulator,
)


# ----------------------------------------------------------------------
# ABBA: two locks taken in opposite orders
# ----------------------------------------------------------------------

def abba_sim():
    sim = Simulator()
    la = SimLock(sim, name="A")
    lb = SimLock(sim, name="B")

    def locker(sim, first, second):
        g1 = yield first.acquire()
        yield sim.timeout(1)
        g2 = yield second.acquire()      # deadlocks here
        second.release(g2)
        first.release(g1)

    p1 = sim.process(locker(sim, la, lb), name="fwd")
    p2 = sim.process(locker(sim, lb, la), name="rev")
    return sim, p1, p2


def test_abba_deadlock_raises_diagnostic_with_cycle():
    sim, p1, p2 = abba_sim()
    with pytest.raises(DeadlockDiagnostic) as exc_info:
        sim.run_all(p1, p2)
    diag = exc_info.value
    assert set(diag.cycle) == {"fwd", "rev"}
    assert {name for name, _ in diag.blocked} == {"fwd", "rev"}
    descs = dict(diag.blocked)
    assert descs["fwd"] == "resource 'B'"
    assert descs["rev"] == "resource 'A'"
    msg = str(diag)
    assert "2 thread(s) still blocked" in msg
    assert "wait-for cycle:" in msg
    assert "fwd" in msg and "rev" in msg


def test_diagnostic_is_a_simulation_deadlock():
    # callers catching the pre-existing exception keep working
    sim, p1, p2 = abba_sim()
    with pytest.raises(SimulationDeadlock):
        sim.run_all(p1, p2)


# ----------------------------------------------------------------------
# barrier that never fills (missing party)
# ----------------------------------------------------------------------

def test_barrier_missing_party_names_blocked_threads():
    sim = Simulator()
    bar = SimBarrier(sim, parties=3, name="sync-point")

    def worker(sim):
        yield bar.wait()

    procs = [sim.process(worker(sim), name=f"party{i}") for i in range(2)]
    with pytest.raises(DeadlockDiagnostic) as exc_info:
        sim.run_all(*procs)
    diag = exc_info.value
    assert diag.cycle == ()               # no wait-for cycle, just stuck
    assert {name for name, _ in diag.blocked} == {"party0", "party1"}
    assert all(desc == "barrier 'sync-point'"
               for _, desc in diag.blocked)
    assert "barrier 'sync-point'" in str(diag)


# ----------------------------------------------------------------------
# awaited event that can never fire
# ----------------------------------------------------------------------

def test_run_until_unreachable_event_diagnoses():
    sim = Simulator()
    never = sim.event()

    def waiter(sim):
        yield never

    sim.process(waiter(sim), name="stuck")
    with pytest.raises(DeadlockDiagnostic) as exc_info:
        sim.run(until=never)
    diag = exc_info.value
    assert ("stuck", "event") in diag.blocked


# ----------------------------------------------------------------------
# stall watchdog: same-timestamp livelock must terminate
# ----------------------------------------------------------------------

def test_stall_watchdog_catches_zero_delay_livelock():
    sim = Simulator(stall_limit=200)

    def spinner(sim):
        while True:
            yield sim.timeout(0)          # time never advances

    sim.process(spinner(sim), name="spin")
    with pytest.raises(DeadlockDiagnostic, match="stall watchdog"):
        sim.run()
    assert sim.now == 0.0


def test_stall_watchdog_ignores_real_progress():
    sim = Simulator(stall_limit=10)

    def worker(sim):
        for _ in range(500):               # far more events than the
            yield sim.timeout(0.01)        # limit, but time advances
        return sim.now

    p = sim.process(worker(sim))
    sim.run_all(p)
    assert p.value == pytest.approx(5.0)


def test_watched_loop_honors_until_time():
    sim = Simulator(stall_limit=50)

    def worker(sim):
        for _ in range(10):
            yield sim.timeout(1)

    sim.process(worker(sim))
    sim.run(until=3.5)
    assert sim.now == 3.5
    sim.run()
    assert sim.now == 10.0


# ----------------------------------------------------------------------
# run-level wall-clock watchdog (fake timers -- no sleeping)
# ----------------------------------------------------------------------

class FakeTimer:
    """threading.Timer stand-in driven by tests, not wall clock."""

    armed: list["FakeTimer"] = []

    def __init__(self, interval, function):
        self.interval = interval
        self.function = function
        self.cancelled = False

    def start(self):
        FakeTimer.armed.append(self)

    def cancel(self):
        self.cancelled = True

    @classmethod
    def fire(cls, interval):
        for t in cls.armed:
            if t.interval == interval and not t.cancelled:
                t.function()


@pytest.fixture(autouse=True)
def _reset_fake_timers():
    FakeTimer.armed = []
    yield
    FakeTimer.armed = []


def test_run_watchdog_warns_then_aborts():
    from repro.obs.watchdog import RunWatchdog

    events = []
    dog = RunWatchdog(soft_seconds=10, hard_seconds=60,
                      on_warn=lambda: events.append("warn"),
                      on_abort=lambda: events.append("abort"),
                      timer_factory=FakeTimer)
    dog.start()
    assert len(FakeTimer.armed) == 2
    assert not dog.warned and not dog.aborted

    FakeTimer.fire(10)
    assert dog.warned and not dog.aborted
    assert events == ["warn"]

    FakeTimer.fire(60)
    assert dog.aborted
    assert events == ["warn", "abort"]


def test_run_watchdog_cancel_disarms():
    from repro.obs.watchdog import RunWatchdog

    events = []
    with RunWatchdog(soft_seconds=10,
                     on_warn=lambda: events.append("warn"),
                     timer_factory=FakeTimer):
        pass                               # run finished in time
    FakeTimer.fire(10)                     # late fire is a no-op
    assert events == []
    assert all(t.cancelled for t in FakeTimer.armed)


def test_run_watchdog_soft_only():
    from repro.obs.watchdog import RunWatchdog

    dog = RunWatchdog(soft_seconds=5, timer_factory=FakeTimer)
    dog.start()
    assert len(FakeTimer.armed) == 1       # no hard stage armed
    dog.cancel()


def test_run_watchdog_default_abort_interrupts_main():
    from repro.obs.watchdog import RunWatchdog

    dog = RunWatchdog(soft_seconds=1, hard_seconds=2,
                      timer_factory=FakeTimer)
    dog.start()
    with pytest.raises(KeyboardInterrupt):
        FakeTimer.fire(2)
        # interrupt_main sets a pending KeyboardInterrupt for the main
        # thread; surface it deterministically.
        import time
        time.sleep(5)
    assert dog.aborted
    dog.cancel()


def test_run_watchdog_from_env_and_validation():
    from repro.obs.watchdog import RunWatchdog

    dog = RunWatchdog.from_env("30:120")
    assert dog.soft_seconds == 30.0 and dog.hard_seconds == 120.0
    soft_only = RunWatchdog.from_env("45")
    assert soft_only.hard_seconds is None

    # regression: malformed values used to be half-parsed (extra ':'
    # parts silently dropped, non-numeric parts raised a bare
    # ValueError from float()); both must fail naming the env var
    for malformed in ("30:120:500", "::", "1:2:3:4"):
        with pytest.raises(ValueError, match="REPRO_RUN_TIMEOUT_S"):
            RunWatchdog.from_env(malformed)
    for non_numeric in ("fast", "30:slow", "", ":", "30:"):
        with pytest.raises(ValueError, match="REPRO_RUN_TIMEOUT_S"):
            RunWatchdog.from_env(non_numeric)

    with pytest.raises(ValueError):
        RunWatchdog(soft_seconds=0)
    with pytest.raises(ValueError):
        RunWatchdog(soft_seconds=10, hard_seconds=5)

    dog = RunWatchdog(soft_seconds=1, timer_factory=FakeTimer)
    dog.start()
    with pytest.raises(RuntimeError):
        dog.start()                        # double start
    dog.cancel()
