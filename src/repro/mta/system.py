"""Cycle-accurate MTA system: processors + interleaved memory + driver.

This is the micro-fidelity model backing the unit tests and the
Section 7 micro-claims benchmark.  It executes real instruction lists
(:class:`~repro.mta.stream.Instruction`) with exact issue-interval,
lookahead, full/empty and bank-conflict behaviour.  Whole benchmarks
run on the macro model (:class:`~repro.mta.machine.MtaMachine`)
instead -- at paper scale they would need ~10^10 cycles here.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.mta.memory import InterleavedMemory, MemRequest
from repro.mta.processor import CycleProcessor
from repro.mta.spec import MtaSpec
from repro.mta.stream import Instruction, Stream


@dataclass(frozen=True)
class CycleStats:
    """Outcome of a cycle-level run."""

    cycles: float
    total_issued: int
    per_processor_issued: tuple[int, ...]
    per_processor_utilization: tuple[float, ...]
    memory_requests: int
    memory_retries: int
    completed: bool  # False if max_cycles hit first
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        u = self.per_processor_utilization
        return sum(u) / len(u) if u else 0.0


class MtaSystem:
    """Driver binding cycle-level processors to one shared memory."""

    def __init__(self, spec: MtaSpec,
                 memory: Optional[InterleavedMemory] = None):
        self.spec = spec
        self.memory = memory if memory is not None else InterleavedMemory(
            n_banks=64, latency_cycles=spec.mem_latency_cycles)
        self.processors = [
            CycleProcessor(pid=p, max_streams=spec.streams_per_processor)
            for p in range(spec.n_processors)
        ]
        self._streams: list[tuple[Stream, CycleProcessor]] = []
        self._next_sid = 0
        #: (cycle, processor, n) revocations to apply mid-run
        self._revocations: list[tuple[float, int, int]] = []
        self.revoked_streams = 0
        self.migrated_instructions = 0

    # ------------------------------------------------------------------
    def add_stream(self, program: list[Instruction],
                   processor: int = 0) -> Stream:
        """Load a program onto a hardware stream of ``processor``."""
        proc = self.processors[processor]
        stream = Stream(sid=self._next_sid, program=list(program))
        self._next_sid += 1
        proc.add_stream(stream)
        self._streams.append((stream, proc))
        return stream

    def schedule_revocation(self, cycle: float, processor: int,
                            n_streams: int) -> None:
        """Inject a stream-revocation fault: at ``cycle``, the runtime
        reclaims ``n_streams`` hardware streams from ``processor``.

        Revoked streams stop issuing; once their in-flight memory
        references drain, their unissued instructions migrate onto the
        oldest surviving stream of the same processor (the work is
        conserved, it just runs at lower stream-level parallelism).
        The processor always keeps at least one live stream.
        """
        if cycle < 0:
            raise ValueError("cycle must be >= 0")
        if not 0 <= processor < len(self.processors):
            raise ValueError(f"processor {processor} out of range")
        if n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        self._revocations.append((cycle, processor, n_streams))

    # ------------------------------------------------------------------
    def run(self, max_cycles: float = 10_000_000.0) -> CycleStats:
        """Run until every stream finishes (or ``max_cycles``)."""
        spec = self.spec
        mem = self.memory
        heap: list[tuple[float, int, str, object]] = []
        seq = 0

        def push(cycle: float, kind: str, payload: object) -> None:
            nonlocal seq
            heapq.heappush(heap, (cycle, seq, kind, payload))
            seq += 1

        last_activity = 0.0
        for when, pid, n in sorted(self._revocations):
            push(when, "revoke", (pid, n))
        for stream, _proc in self._streams:
            push(0.0, "check", stream)

        proc_of = {s.sid: p for s, p in self._streams}
        #: revoked streams whose residual work still awaits migration
        pending_migration: set[int] = set()

        def migrate(stream: Stream, proc: CycleProcessor,
                    cycle: float) -> None:
            """Append a drained revoked stream's residual program onto
            the oldest surviving stream of the same processor.

            This is what loses performance: the work is conserved but
            now runs at reduced stream-level parallelism, so the
            issue-interval bound bites harder."""
            residual = stream.residual_program()
            pending_migration.discard(stream.sid)
            if not residual:
                return
            target = next(s for s in proc.streams if not s.revoked)
            base = len(target.program)
            for ins in residual:
                dep = ins.depends_on
                target.program.append(Instruction(
                    kind=ins.kind, addr=ins.addr,
                    depends_on=None if dep is None else base + dep,
                    value=ins.value))
            self.migrated_instructions += len(residual)
            push(cycle, "check", target)

        def issue_memory(stream: Stream, idx: int, ins: Instruction,
                         slot: float) -> None:
            def on_complete(done: float, value: object,
                            _s=stream, _i=idx) -> None:
                _s.note_completion(_i, done, value)
                push(done, "check", _s)

            req = MemRequest(kind=ins.kind, addr=ins.addr, value=ins.value,
                             on_complete=on_complete)
            mem.issue(req, slot)
            for when, retry_req in mem.drain_retries():
                push(when, "retry", retry_req)

        while heap:
            cycle, _s, kind, payload = heapq.heappop(heap)
            if cycle > max_cycles:
                break
            if kind == "retry":
                result = mem.retry(payload, cycle)
                if result is None:
                    for when, retry_req in mem.drain_retries():
                        push(when, "retry", retry_req)
                else:
                    last_activity = max(last_activity, result)
                continue
            if kind == "revoke":
                pid, n = payload
                for s in self.processors[pid].revoke_streams(n, cycle):
                    self.revoked_streams += 1
                    if s.in_flight:
                        pending_migration.add(s.sid)
                    else:
                        migrate(s, proc_of[s.sid], cycle)
                continue

            stream: Stream = payload
            proc = proc_of[stream.sid]
            if stream.revoked:
                if stream.sid in pending_migration and not stream.in_flight:
                    migrate(stream, proc, cycle)
                continue
            ready, earliest = stream.can_issue_at(
                cycle, spec.issue_interval_cycles, spec.lookahead)
            if not ready:
                if earliest is not None and earliest > cycle:
                    push(earliest, "check", stream)
                # else: blocked on an unknown completion; a completion
                # event will re-check
                continue

            slot = proc.take_slot(cycle)
            idx = stream.note_issue(slot)
            ins = stream.program[idx]
            last_activity = max(last_activity, slot + 1.0)
            if ins.is_memory:
                issue_memory(stream, idx, ins, slot)
            if stream.next_instruction() is not None:
                push(slot + spec.issue_interval_cycles, "check", stream)

        completed = all(s.done for s, _p in self._streams)
        # elapsed cycles: until the last issue/completion
        for stream, _p in self._streams:
            for c in stream.completion.values():
                if c is not None:
                    last_activity = max(last_activity, c)
        cycles = last_activity
        return CycleStats(
            cycles=cycles,
            total_issued=sum(p.issued for p in self.processors),
            per_processor_issued=tuple(p.issued for p in self.processors),
            per_processor_utilization=tuple(
                p.utilization(cycles) for p in self.processors),
            memory_requests=mem.requests,
            memory_retries=mem.retries,
            completed=completed,
            stats={"bank_conflict_cycles": mem.bank_conflict_cycles,
                   "hotspot_extra_cycles": mem.hotspot_extra_cycles,
                   "revoked_streams": float(self.revoked_streams),
                   "migrated_instructions": float(
                       self.migrated_instructions)},
        )


# ----------------------------------------------------------------------
# Kernel generators for the micro-claims benchmarks and tests
# ----------------------------------------------------------------------

def alu_kernel(n: int) -> list[Instruction]:
    """Pure-ALU kernel: independent instructions, issue-interval bound."""
    return [Instruction("alu") for _ in range(n)]


def independent_load_kernel(n: int, stride: int = 8, base: int = 0
                            ) -> list[Instruction]:
    """Loads with no consumer: latency fully hidden by lookahead."""
    return [Instruction("load", addr=base + i * stride) for i in range(n)]


def dependent_load_kernel(n: int, stride: int = 8, base: int = 0
                          ) -> list[Instruction]:
    """Pointer-chase style: each load waits for the previous one."""
    prog: list[Instruction] = []
    for i in range(n):
        dep = i - 1 if i > 0 else None
        prog.append(Instruction("load", addr=base + i * stride,
                                depends_on=dep))
    return prog


def load_use_kernel(n_pairs: int, stride: int = 8, base: int = 0
                    ) -> list[Instruction]:
    """Alternating load / consuming-ALU pairs: the typical inner loop."""
    prog: list[Instruction] = []
    for i in range(n_pairs):
        prog.append(Instruction("load", addr=base + i * stride))
        prog.append(Instruction("alu", depends_on=len(prog) - 1))
    return prog
