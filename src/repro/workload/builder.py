"""Fluent builders for thread programs and jobs.

The C3I workload generators construct hundreds of thread programs; the
builders keep that code readable::

    prog = (ThreadProgramBuilder("chunk-3")
            .compute("scan", ops=OpCounts(ialu=1e6, load=3e5),
                     unique_bytes=64e3)
            .critical("intervals-lock", "append",
                      ops=OpCounts(store=100, sync=2))
            .build())
"""

from __future__ import annotations

from repro.workload.ops import OpCounts, SharedAccess
from repro.workload.phase import AccessPattern, MemoryProfile, Phase
from repro.workload.task import (
    Compute,
    Critical,
    Job,
    ParallelRegion,
    SerialStep,
    ThreadItem,
    ThreadProgram,
    WorkItem,
    WorkQueueRegion,
)


def make_phase(name: str, ops: OpCounts,
               unique_bytes: float = 0.0,
               pattern: AccessPattern = AccessPattern.SEQUENTIAL,
               shared_fraction: float = 0.0,
               access_bytes: float = 8.0,
               parallelism: float = 1.0,
               serial_cycles: float = 0.0,
               accesses: tuple[SharedAccess, ...] = ()) -> Phase:
    """Convenience constructor assembling a Phase and its MemoryProfile."""
    return Phase(
        name=name,
        ops=ops,
        memory=MemoryProfile(unique_bytes=unique_bytes, pattern=pattern,
                             shared_fraction=shared_fraction,
                             access_bytes=access_bytes),
        parallelism=parallelism,
        serial_cycles=serial_cycles,
        accesses=accesses,
    )


class ThreadProgramBuilder:
    """Accumulates thread items and produces a ThreadProgram."""

    def __init__(self, name: str):
        self.name = name
        self._items: list[ThreadItem] = []

    def compute(self, name: str, ops: OpCounts, **phase_kwargs: object
                ) -> "ThreadProgramBuilder":
        self._items.append(Compute(make_phase(name, ops, **phase_kwargs)))
        return self

    def phase(self, phase: Phase) -> "ThreadProgramBuilder":
        self._items.append(Compute(phase))
        return self

    def critical(self, lock: str, name: str, ops: OpCounts,
                 **phase_kwargs: object) -> "ThreadProgramBuilder":
        self._items.append(
            Critical(lock, make_phase(name, ops, **phase_kwargs)))
        return self

    def critical_phase(self, lock: str, phase: Phase
                       ) -> "ThreadProgramBuilder":
        self._items.append(Critical(lock, phase))
        return self

    def build(self) -> ThreadProgram:
        return ThreadProgram(self.name, tuple(self._items))

    def build_work_item(self) -> WorkItem:
        return WorkItem(self.name, tuple(self._items))


class JobBuilder:
    """Accumulates job steps and produces a Job."""

    def __init__(self, name: str):
        self.name = name
        self._steps: list[object] = []

    def serial(self, name: str, ops: OpCounts, **phase_kwargs: object
               ) -> "JobBuilder":
        self._steps.append(SerialStep(make_phase(name, ops, **phase_kwargs)))
        return self

    def serial_phase(self, phase: Phase) -> "JobBuilder":
        self._steps.append(SerialStep(phase))
        return self

    def parallel(self, threads: list[ThreadProgram],
                 thread_kind: str = "os") -> "JobBuilder":
        self._steps.append(ParallelRegion(tuple(threads), thread_kind))
        return self

    def work_queue(self, items: list[WorkItem], n_threads: int,
                   thread_kind: str = "os") -> "JobBuilder":
        self._steps.append(
            WorkQueueRegion(tuple(items), n_threads, thread_kind))
        return self

    def build(self) -> Job:
        return Job(self.name, tuple(self._steps))


def single_thread_job(name: str, phases: list[Phase]) -> Job:
    """A purely sequential job from a list of phases."""
    return Job(name, tuple(SerialStep(p) for p in phases))
