"""Model of the automatic parallelizing compilers.

The paper reports that on both the Exemplar and the Tera MTA the
manufacturer-supplied parallelizing compilers "were unable to identify
any practical opportunities for parallelization" of either sequential
benchmark, for two structural reasons: loop-carried dependences through
shared variables (``num_intervals``/``intervals``, the overlapping
``masking`` regions), and chains of function calls, pointer operations
and non-trivial index expressions that defeat dependence analysis.
With the manual restructuring *and* explicit parallel pragmas the
compilers do parallelize the annotated loops.

This package reproduces that behaviour mechanically:

* :mod:`~repro.compiler.loopir` -- a small loop-nest IR (for/while
  loops, affine and opaque array subscripts, scalar updates, calls);
* :mod:`~repro.compiler.dependence` -- scalar dataflow + ZIV/SIV/GCD
  array subscript tests, conservative on anything opaque;
* :mod:`~repro.compiler.autopar` -- the parallelization pass, honouring
  explicit pragmas;
* :mod:`~repro.compiler.feedback` -- canal-style per-loop feedback;
* :mod:`~repro.compiler.programs` -- IR encodings of Programs 1-4 from
  the paper.
"""

from repro.compiler.loopir import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    Const,
    ForLoop,
    IfStmt,
    Program,
    VarRef,
    WhileLoop,
)
from repro.compiler.dependence import (
    Dependence,
    DependenceKind,
    analyze_loop,
)
from repro.compiler.autopar import (
    AutoParResult,
    LoopReport,
    parallelize,
)
from repro.compiler.feedback import render_feedback
from repro.compiler.advisory import (
    Advisory,
    AdvisoryKind,
    generate_advisories,
    mechanical_fixes_exist,
    render_advisories,
)
from repro.compiler.programs import (
    terrain_blocked_ir,
    terrain_sequential_ir,
    threat_chunked_ir,
    threat_sequential_ir,
)

__all__ = [
    "Advisory",
    "AdvisoryKind",
    "ArrayRef",
    "Assign",
    "AutoParResult",
    "BinOp",
    "Call",
    "CallStmt",
    "Const",
    "Dependence",
    "DependenceKind",
    "ForLoop",
    "IfStmt",
    "LoopReport",
    "Program",
    "VarRef",
    "WhileLoop",
    "analyze_loop",
    "generate_advisories",
    "mechanical_fixes_exist",
    "parallelize",
    "render_advisories",
    "render_feedback",
    "terrain_blocked_ir",
    "terrain_sequential_ir",
    "threat_chunked_ir",
    "threat_sequential_ir",
]
