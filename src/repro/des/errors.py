"""Exception types used by the DES kernel."""

from __future__ import annotations


class DesError(Exception):
    """Base class for all simulation-kernel errors."""


class SimulationDeadlock(DesError):
    """Raised by :meth:`Simulator.run` when processes remain blocked but
    no events are scheduled -- i.e. the simulation can never advance."""


class DeadlockDiagnostic(SimulationDeadlock):
    """A :class:`SimulationDeadlock` carrying a structured diagnosis.

    Built by :mod:`repro.obs.watchdog` when the event heap drains with
    live waiters (or the stall watchdog trips).  The message names every
    blocked thread, what it is waiting on, and -- when the wait-for
    graph contains one -- the cycle of threads and held resources.

    Attributes
    ----------
    blocked:
        ``(thread_name, wait_description)`` pairs, one per live waiter.
    cycle:
        Thread names forming a wait cycle (empty when none was found,
        e.g. a barrier missing a party).
    """

    def __init__(self, message: str,
                 blocked: tuple[tuple[str, str], ...] = (),
                 cycle: tuple[str, ...] = ()):
        super().__init__(message)
        self.blocked = blocked
        self.cycle = cycle


class Interrupt(DesError):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever value the interrupter
    supplied, so the interrupted process can decide how to react.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause
