"""The fine-grained sync-variable Threat Analysis variant.

Section 5's alternative MTA parallelization: parallelize over threats
*without* chunking, sharing a single ``num_intervals`` counter and one
``intervals`` array protected by Tera synchronization variables
(full/empty increments).  No oversized array is needed, but the output
order becomes nondeterministic -- the race on the shared counter.

We execute it semantically with a deterministic pseudo-schedule: the
per-threat producers are interleaved by a seeded round-robin, which
yields a *valid* (and reproducible) instance of the nondeterministic
orders the real machine can produce.  The set of intervals is always
exactly the sequential set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.c3i.threat.model import (
    Interval,
    pair_intervals,
    precheck_in_range,
    threat_positions,
)
from repro.c3i.threat.scenarios import Scenario


@dataclass
class FineGrainedResult:
    """Shared-array output of the sync-variable variant."""

    scenario: int
    intervals: list[Interval] = field(default_factory=list)
    #: number of synchronized (full/empty) counter operations
    n_sync_ops: int = 0
    n_steps_total: int = 0
    #: True if the realized order differs from the sequential order
    order_differs: bool = False

    @property
    def n_intervals(self) -> int:
        return len(self.intervals)


def run_finegrained(scenario: Scenario, schedule_seed: int = 0
                    ) -> FineGrainedResult:
    """Execute the sync-variable variant with a seeded interleaving."""
    result = FineGrainedResult(scenario=scenario.index)

    # per-threat producers compute their intervals independently ...
    per_threat: list[list[Interval]] = []
    for t_idx, threat in enumerate(scenario.threats):
        times, positions = threat_positions(threat, scenario.n_steps)
        found: list[Interval] = []
        for w_idx, weapon in enumerate(scenario.weapons):
            if not precheck_in_range(threat, weapon):
                continue
            found.extend(
                pair_intervals(times, positions, weapon, t_idx, w_idx))
            result.n_steps_total += scenario.n_steps
        per_threat.append(found)

    # ... and race to append through the shared synchronized counter.
    rng = np.random.default_rng(schedule_seed)
    queues = [list(reversed(sec)) for sec in per_threat]
    alive = [i for i, q in enumerate(queues) if q]
    shared: list[Interval] = []
    while alive:
        pick = alive[int(rng.integers(len(alive)))]
        shared.append(queues[pick].pop())
        result.n_sync_ops += 2  # read_fe + write_ef on the counter
        if not queues[pick]:
            alive.remove(pick)

    result.intervals = shared
    sequential_order = [iv for sec in per_threat for iv in sec]
    result.order_differs = shared != sequential_order
    return result
