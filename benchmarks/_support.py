"""Helper shared by the table/figure benchmarks."""

from __future__ import annotations


def run_and_report(benchmark, data, experiment_id: str):
    """Benchmark one experiment, print its table, assert its checks."""
    from repro.harness import run_experiment

    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, data), rounds=1, iterations=1)
    print()
    print(result.render())
    failed = [str(c) for c in result.checks if not c.passed]
    assert not failed, f"{experiment_id} shape checks failed: {failed}"
    return result
