"""Synchronization primitives built on the DES kernel.

These model the *semantics* of locks/barriers/semaphores; the *cost* of
acquiring them on a particular machine (hundreds of cycles on an SMP,
one cycle on the Tera MTA) is applied by the machine models in
:mod:`repro.machines` and :mod:`repro.mta`, not here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.des.errors import DesError
from repro.des.events import Event, WaitEvent
from repro.des.resources import Request, Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.simulator import Simulator


class SimLock:
    """A mutex.  ``acquire()`` yields a grant event; ``release()`` frees it.

    Typical use inside a process::

        grant = yield lock.acquire()
        ... critical section ...
        lock.release(grant)
    """

    def __init__(self, sim: "Simulator", name: str = "lock"):
        self.sim = sim
        self.name = name
        self._res = Resource(sim, capacity=1, name=name)

    def acquire(self) -> Request:
        return self._res.request()

    def release(self, grant: Request) -> None:
        self._res.release(grant)

    @property
    def locked(self) -> bool:
        return self._res.count > 0

    @property
    def waiters(self) -> int:
        return self._res.queue_length

    @property
    def total_waits(self) -> int:
        return self._res.total_waits

    @property
    def total_wait_time(self) -> float:
        return self._res.total_wait_time

    @property
    def max_queue_depth(self) -> int:
        return self._res.max_queue_depth

    @property
    def queue_depth_hist(self) -> dict[int, int]:
        return self._res.queue_depth_hist


class SimSemaphore:
    """A counting semaphore."""

    def __init__(self, sim: "Simulator", value: int = 1,
                 name: str = "semaphore"):
        if value < 0:
            raise ValueError("initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: list[Event] = []

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        ev = WaitEvent(self.sim, "semaphore", self.name)
        if self._value > 0:
            self._value -= 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        # A queued waiter may have been triggered by someone else in the
        # meantime (timeout race, explicit cancellation): handing it the
        # permit would raise "already triggered" and, worse, lose the
        # permit.  Skip non-pending waiters until a live one is found.
        waiters = self._waiters
        while waiters:
            ev = waiters.pop(0)
            if not ev.triggered:
                ev.succeed(None)
                return
        self._value += 1


class SimBarrier:
    """A reusable barrier for a fixed number of parties.

    Each party yields ``barrier.wait()``; the events of one generation
    all fire when the last party arrives.
    """

    def __init__(self, sim: "Simulator", parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._waiting: list[Event] = []
        self.generations = 0
        m = sim.monitor
        if m is not None:
            m.register_barrier(self)

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)

    def wait(self) -> Event:
        ev = WaitEvent(self.sim, "barrier", self.name)
        self._waiting.append(ev)
        if len(self._waiting) >= self.parties:
            released, self._waiting = self._waiting, []
            self.generations += 1
            for w in released:
                w.succeed(self.generations)
        return ev


class FullEmptyCell:
    """A memory cell with a full/empty tag -- the Tera MTA's signature
    fine-grained synchronization mechanism.

    * ``read_fe()``  -- waits until full, reads, sets empty.
    * ``write_ef()`` -- waits until empty, writes, sets full.
    * ``read_ff()`` / ``write_ff()`` -- wait until full, leave full
      (ordinary sync reads / producer overwrite).

    Waiting consumes no issue slots in the hardware (the stream is
    descheduled), so the DES event model is faithful: a blocked reader
    costs nothing until the writer arrives.
    """

    def __init__(self, sim: "Simulator", value: object = None,
                 full: bool = False, name: str = "cell"):
        self.sim = sim
        self.name = name
        self._value = value
        self._full = full
        self._readers: list[Event] = []   # waiting for full
        self._writers: list[Event] = []   # waiting for empty
        self.total_blocked_reads = 0
        self.total_blocked_writes = 0
        m = sim.monitor
        if m is not None:
            m.register_cell(self)

    @property
    def is_full(self) -> bool:
        return self._full

    def peek(self) -> object:
        """Unsynchronized read (ignores the tag), for inspection."""
        return self._value

    def _become_full(self) -> None:
        self._full = True
        if self._readers:
            # Exactly one blocked reader consumes the fill (read+set-empty
            # is atomic), which may in turn release a writer.
            reader = self._readers.pop(0)
            self._full = False
            reader.succeed(self._value)
            self._become_empty_side()

    def _become_empty_side(self) -> None:
        if not self._full and self._writers:
            writer = self._writers.pop(0)
            writer.succeed(None)

    def read_fe(self) -> Event:
        """Atomically wait-until-full, read, set empty."""
        ev = WaitEvent(self.sim, "cell-read", self.name)
        if self._full:
            self._full = False
            ev.succeed(self._value)
            self._become_empty_side()
        else:
            self.total_blocked_reads += 1
            self._readers.append(ev)
        return ev

    def write_ef(self, value: object) -> Event:
        """Atomically wait-until-empty, write, set full."""
        ev = WaitEvent(self.sim, "cell-write", self.name)
        if not self._full:
            self._value = value
            ev.succeed(None)
            self._become_full()
        else:
            self.total_blocked_writes += 1
            # store value at grant time via closure
            def on_grant(_ev: Event, v: object = value) -> None:
                self._value = v
                self._become_full()
            ev.callbacks.append(on_grant)
            self._writers.append(ev)
        return ev

    def read_ff(self) -> Event:
        """Wait until full, read, leave full."""
        ev = WaitEvent(self.sim, "cell-read", self.name)
        if self._full:
            ev.succeed(self._value)
        else:
            self.total_blocked_reads += 1
            # Re-issue once the cell becomes full.  We piggyback on the
            # reader queue but must not consume the fill: emulate by
            # consuming and immediately refilling.
            def refill(got: Event) -> None:
                if got.ok:
                    self._value = got._value
                    self._become_full()
            inner = self.read_fe()
            inner.callbacks.append(refill)
            inner.callbacks.append(
                lambda got: ev.succeed(got._value) if got.ok else None)
        return ev

    def write_ff(self, value: object) -> Event:
        """Unconditional write that sets full (producer reset)."""
        ev = Event(self.sim)
        if self._full:
            # clobbering a full cell loses the unconsumed value -- the
            # classic write-to-full hazard a writeef would have blocked
            m = self.sim.monitor
            if m is not None:
                m.overwrite_full(self)
        self._value = value
        ev.succeed(None)
        if not self._full:
            self._become_full()
        return ev

    def reset_empty(self) -> None:
        """Force the tag to empty (the ``purge`` operation)."""
        if self._readers or self._writers:
            raise DesError(f"{self.name}: purge with blocked accessors")
        self._full = False
