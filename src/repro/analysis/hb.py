"""Happens-before construction and race detection over jobs.

**The model.**  A :class:`~repro.workload.task.Job` is a fork/join
program: serial steps and parallel regions are totally ordered by
implicit join barriers, so conflicting accesses in *different* steps
are always ordered and only intra-region pairs can race.  Within a
region:

* two accesses in the same thread (or the same work item) are ordered
  by program order;
* accesses in different threads of a :class:`ParallelRegion` are
  concurrent -- the region barrier is the only cross-thread edge;
* accesses in different items of a :class:`WorkQueueRegion` with more
  than one worker are concurrent: which items overlap in time depends
  on the dynamic schedule, and a sound verdict must hold for *every*
  schedule, not the one a particular simulation happened to take.
  With one worker the queue is a serial loop and nothing races.

A concurrent pair conflicts when the location ranges overlap and at
least one side writes.  Lock acquisition deliberately contributes **no**
happens-before edge (locks order critical sections differently in
different schedules); instead, a conflicting pair is cleared only by a
common member in both locksets, or by a compiler dependence fact
(:mod:`repro.analysis.facts`) when both extents are opaque.  A cleared
pair whose locksets are inconsistent -- some accesses to the location
guarded, others not or by a different lock -- is still reported as a
``lock-discipline`` hazard: that is precisely the blocked Terrain
Masking bug class (merging into a masking block under the wrong or no
block lock).

**Two extractors, one verdict.**  Access events are pulled out of a
region along the same traversals the two execution engines use: the
DES extractor walks threads exactly like
``ConventionalMachine._thread_body`` spawns them, the cohort extractor
follows the segment-program compiler
(:func:`repro.machines.cohort._compile_items` order, queue compiled
once per item).  Both must produce identical findings for every job --
``verify_engine_parity`` and the CI race job enforce it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.analysis.facts import facts_for_job
from repro.analysis.report import Finding, JobReport
from repro.workload.cohort import cohort_enabled, region_cohort_signature
from repro.workload.ops import SharedAccess
from repro.workload.task import (
    Critical,
    Job,
    ParallelRegion,
    SerialStep,
    WorkQueueRegion,
)


@dataclass(frozen=True)
class AccessEvent:
    """One shared access by one schedulable unit of a region."""

    unit: str                 #: thread / work-item name
    access: SharedAccess
    locks: frozenset[str]     #: locks held at the access


# ----------------------------------------------------------------------
# extraction: one walk per engine
# ----------------------------------------------------------------------

def _item_events(unit: str, items) -> Iterable[AccessEvent]:
    for it in items:
        locks = frozenset((it.lock,)) if isinstance(it, Critical) \
            else frozenset()
        for acc in it.phase.accesses:
            yield AccessEvent(unit, acc, locks)


def _events_des(region) -> list[AccessEvent]:
    """Mirror of the pure-DES path: one process per thread (declaration
    order), the work queue drained item by item in FIFO order."""
    events: list[AccessEvent] = []
    if isinstance(region, ParallelRegion):
        for th in region.threads:
            events.extend(_item_events(th.name, th.items))
    else:
        for item in region.items:
            events.extend(_item_events(item.name, item.items))
    return events


def _events_cohort(region) -> list[AccessEvent]:
    """Mirror of the cohort path: homogeneous regions are compiled to
    segment programs (one per thread, same compile order as
    ``machines.cohort._compile_items``); heterogeneous regions fall
    back to the DES walk exactly as the engines themselves do."""
    if isinstance(region, ParallelRegion):
        if region_cohort_signature(region) is None:
            return _events_des(region)
        events: list[AccessEvent] = []
        for th in region.threads:
            events.extend(_item_events(th.name, th.items))
        return events
    # work-queue regions always compile: each item once, queue order
    events = []
    for item in region.items:
        events.extend(_item_events(item.name, item.items))
    return events


# ----------------------------------------------------------------------
# detection
# ----------------------------------------------------------------------

def _describe(access: SharedAccess, locks: frozenset[str]) -> str:
    held = f", locks {','.join(sorted(locks))}" if locks else ""
    return f"{access.span()} ({access.mode.value}{held})"


def _rep_pair(units_a: list[str], units_b: list[str]
              ) -> tuple[str, str]:
    """A representative pair of distinct units, one from each list
    (the caller guarantees one exists)."""
    if units_a is units_b:
        other = next(u for u in units_a if u != units_a[0])
        return units_a[0], other
    if units_b[0] != units_a[0]:
        return units_a[0], units_b[0]
    if len(units_b) > 1:
        return units_a[0], units_b[1]
    return units_a[1], units_b[0]


def _region_findings(job_name: str, region_label: str, region,
                     events: list[AccessEvent],
                     facts: frozenset[str]) -> tuple[list[Finding], int]:
    """All hazards among the region's concurrent access events.

    The scan is pairwise in principle, but real regions repeat the
    same access across hundreds of threads, so events are clustered by
    ``(access, lockset)`` first and pair counts come from cluster
    sizes: cost is quadratic in *distinct* accesses, linear in
    threads.
    """
    if isinstance(region, WorkQueueRegion) and region.n_threads < 2:
        return [], 0  # one worker: the queue is a serial loop

    by_array: dict[str, dict[tuple, list[str]]] = {}
    for ev in events:
        clusters = by_array.setdefault(ev.access.array, {})
        clusters.setdefault((ev.access, ev.locks), []).append(ev.unit)

    findings: list[Finding] = []
    suppressed = 0
    for array in sorted(by_array):
        clusters = list(by_array[array].items())
        if not any(acc.mode.is_write for (acc, _), _ in clusters):
            continue  # read-only data cannot race
        pairs = 0
        example: dict[tuple[str, str], Finding] = {}
        for i, ((acc_a, lk_a), units_a) in enumerate(clusters):
            for j in range(i, len(clusters)):
                (acc_b, lk_b), units_b = clusters[j]
                if not (acc_a.mode.is_write or acc_b.mode.is_write):
                    continue
                if not acc_a.overlaps(acc_b):
                    continue
                if lk_a & lk_b:
                    continue  # mutual exclusion
                # unit pairs, minus same-unit pairs (program order)
                if j == i:
                    counts = Counter(units_a)
                    n = len(units_a)
                    npairs = n * (n - 1) // 2 - sum(
                        k * (k - 1) // 2 for k in counts.values())
                else:
                    ca, cb = Counter(units_a), Counter(units_b)
                    npairs = len(units_a) * len(units_b) - sum(
                        ca[u] * cb[u] for u in ca.keys() & cb.keys())
                if npairs == 0:
                    continue
                if (array in facts and not acc_a.bounded
                        and not acc_b.bounded):
                    # the compiler proved the subscripts separate
                    # iterations; the workload just cannot express it
                    suppressed += npairs
                    continue
                hazard = "lock-discipline" if (lk_a or lk_b) \
                    else "data-race"
                loc = acc_a.span() if acc_a.bounded else acc_b.span()
                key = (hazard, loc)
                pairs += npairs
                if key not in example:
                    example[key] = Finding(
                        hazard=hazard, job=job_name,
                        region=region_label, location=loc,
                        units=_rep_pair(units_a, units_b),
                        detail=f"{_describe(acc_a, lk_a)} vs "
                               f"{_describe(acc_b, lk_b)}")
        for key in sorted(example):
            f = example[key]
            if pairs > 1:
                f = Finding(f.hazard, f.job, f.region, f.location,
                            f.units,
                            f.detail + f"; {pairs} conflicting pair(s) "
                                       f"on {array}")
            findings.append(f)
    return findings, suppressed


def current_engine() -> str:
    """The engine the simulators would use right now (env-controlled)."""
    return "cohort" if cohort_enabled() else "des"


def analyze_job(job: Job, engine: Optional[str] = None) -> JobReport:
    """Race/hazard verdict for one job under one engine's extraction."""
    if engine is None:
        engine = current_engine()
    if engine not in ("des", "cohort"):
        raise ValueError(f"unknown engine {engine!r}")
    extract = _events_des if engine == "des" else _events_cohort
    facts = facts_for_job(job.name)
    findings: list[Finding] = []
    suppressed = 0
    for idx, step in enumerate(job.steps):
        if isinstance(step, SerialStep):
            continue  # one thread: program order covers everything
        label = f"step{idx}"
        fs, sup = _region_findings(job.name, label, step, extract(step),
                                   facts)
        findings.extend(fs)
        suppressed += sup
    findings.sort(key=lambda f: f.key)
    return JobReport(job=job.name, engine=engine,
                     findings=tuple(findings), suppressed=suppressed)


def analyze_job_both(job: Job) -> tuple[JobReport, JobReport]:
    """The job's verdict under both engine extractions."""
    return analyze_job(job, "des"), analyze_job(job, "cohort")


def verify_engine_parity(job: Job) -> JobReport:
    """Analyze under both engines and require identical verdicts."""
    des, cohort = analyze_job_both(job)
    if des.findings != cohort.findings \
            or des.suppressed != cohort.suppressed:
        raise AssertionError(
            f"engine verdicts diverge for job {job.name!r}: "
            f"des={des.findings!r} cohort={cohort.findings!r}")
    return des
