"""The ``repro chaos`` runner: fault-injected registry sweeps.

For each selected experiment the runner takes the jobs the registry
would simulate (:func:`repro.analysis.targets.experiment_jobs`), runs
each healthy and under the fault plan on the selected platform
archetypes (by default the 2-processor MTA and the 4-CPU Exemplar;
``--machines`` can add the 64-strand T3-4 CMT), and reports the
realized
fault schedule plus the degradation.  Runs bypass the persistent
result cache -- the machines are driven directly -- so the payload
depends only on (plan, seed, scales) and the engine's arithmetic; with
the stats rounded to 6 significant digits the DES and cohort payloads
are byte-identical, which CI asserts.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.faults.inject import (
    FaultedRun,
    run_faulted_conventional,
    run_faulted_mta,
)
from repro.faults.plan import FaultPlan
from repro.harness.runner import BenchmarkData
from repro.machines import cmt, exemplar
from repro.machines.machine import ConventionalMachine
from repro.mta import mta
from repro.mta.machine import MtaMachine
from repro.workload.cohort import cohort_enabled
from repro.workload.task import Job

SCHEMA = "repro-chaos-report/v1"

#: one fault of every kind, times and severities derived from the seed
DEFAULT_FAULTS = ",".join(
    ("streams", "bank-hotspot", "febit-stall", "cache-ways",
     "mem-latency"))

#: platform archetypes a chaos sweep can fault.  The default pair is
#: unchanged from the original runner (CI pins its payload bytes);
#: "cmt" adds the 64-strand T3-4 slice of the third machine family.
DEFAULT_MACHINES = ("mta", "conventional")
MACHINE_KINDS = ("mta", "conventional", "cmt")


def _sig(x: float, digits: int = 6) -> float:
    """Round to ``digits`` significant digits (payload stability: the
    engines agree to 1e-9 relative, so 6 digits are engine-proof)."""
    return float(f"{float(x):.{digits}g}")


def _round_stats(stats: dict[str, float]) -> dict[str, float]:
    """The payload's stats: the fault attribution only.

    The engines' parity contract covers ``seconds`` (1e-9 relative)
    and ``lock_wait_seconds``; the remaining run stats are scheduling
    diagnostics (server busy times, ``des_*``/``cohort_*`` region
    counters, lock queue-depth histograms) that legitimately differ
    between the DES and cohort paths and would defeat the byte-
    identical cross-engine payload check.  Full merged stats stay
    available programmatically on :class:`FaultedRun`."""
    return {k: _sig(v) for k, v in sorted(stats.items())
            if k == "faults_injected" or k.startswith("fault_")}


class _ChaosRunner:
    """Shared-job memoization across experiments (a job like the
    sequential threat benchmark appears in many tables; simulate it
    once per machine)."""

    def __init__(self, data: BenchmarkData, plan: FaultPlan):
        self.data = data
        self.plan = plan
        self.mta_spec = mta(2)
        self.specs = {"conventional": exemplar(4), "cmt": cmt(64)}
        self._healthy: dict[tuple[str, str], float] = {}
        self._faulted: dict[tuple[str, str], FaultedRun] = {}

    # ------------------------------------------------------------------
    def healthy_seconds(self, machine: str, job: Job) -> float:
        key = (machine, job.name)
        if key not in self._healthy:
            if machine == "mta":
                result = MtaMachine(self.mta_spec).run(job)
            else:
                result = ConventionalMachine(self.specs[machine]).run(job)
            self._healthy[key] = result.seconds
        return self._healthy[key]

    def faulted_run(self, machine: str, job: Job) -> FaultedRun:
        key = (machine, job.name)
        if key not in self._faulted:
            if machine == "mta":
                run = run_faulted_mta(self.mta_spec, job, self.plan)
            else:
                run = run_faulted_conventional(self.specs[machine], job,
                                               self.plan)
            self._faulted[key] = run
        return self._faulted[key]

    def job_entry(self, machine: str, job: Job) -> dict:
        healthy = self.healthy_seconds(machine, job)
        run = self.faulted_run(machine, job)
        slowdown = run.seconds / healthy if healthy > 0 else 1.0
        return {
            "job": job.name,
            "machine": run.machine,
            "schedule": [f.to_payload() for f in run.schedule],
            "applied": [f.kind for f in run.applied],
            "n_segments": run.n_segments,
            "healthy_seconds": _sig(healthy),
            "faulted_seconds": _sig(run.seconds),
            "slowdown": _sig(slowdown),
            # derating never speeds a job up; tripping this means an
            # injection bug (or a non-monotone model regression)
            "ok": run.seconds >= healthy * (1.0 - 1e-9),
            "stats": _round_stats(run.stats),
        }


def chaos_report(experiment_ids: list[str], data: BenchmarkData,
                 faults: str = DEFAULT_FAULTS,
                 seed: int = 0,
                 machines: tuple[str, ...] = DEFAULT_MACHINES) -> dict:
    """Build the chaos payload for the given experiments."""
    from repro.analysis.targets import experiment_jobs

    for machine in machines:
        if machine not in MACHINE_KINDS:
            raise ValueError(f"unknown chaos machine {machine!r}; "
                             f"known: {list(MACHINE_KINDS)}")
    plan = FaultPlan.parse(faults, seed=seed)
    runner = _ChaosRunner(data, plan)
    experiments = []
    for eid in experiment_ids:
        jobs = experiment_jobs(eid, data)   # raises KeyError on bad id
        entries = []
        for job in jobs.values():
            for machine in machines:
                entries.append(runner.job_entry(machine, job))
        experiments.append({"experiment": eid, "jobs": entries})
    return {
        "schema": SCHEMA,
        "engine": "cohort" if cohort_enabled() else "des",
        "seed": seed,
        "plan": plan.to_payload(),
        "threat_scale": data.threat_scale,
        "terrain_scale": data.terrain_scale,
        "experiments": experiments,
    }


def render_report(payload: dict) -> str:
    """Human-readable summary of a chaos payload."""
    lines = []
    plan = payload["plan"]
    kinds = ",".join(f["kind"] for f in plan["faults"])
    lines.append(f"chaos report ({payload['engine']} engine, "
                 f"seed {payload['seed']}, faults: {kinds})")
    header = (f"  {'experiment':<24} {'job':<28} {'machine':<16} "
              f"{'slowdown':>9}  faults")
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for exp in payload["experiments"]:
        if not exp["jobs"]:
            lines.append(f"  {exp['experiment']:<24} "
                         f"(no simulated jobs)")
            continue
        for e in exp["jobs"]:
            mark = "" if e["ok"] else "  <-- SPEEDUP?!"
            applied = ",".join(e["applied"]) or "-"
            lines.append(
                f"  {exp['experiment']:<24} {e['job']:<28} "
                f"{e['machine']:<16} {e['slowdown']:>8.3f}x  "
                f"{applied}{mark}")
    n_bad = sum(1 for exp in payload["experiments"]
                for e in exp["jobs"] if not e["ok"])
    n_jobs = sum(len(exp["jobs"]) for exp in payload["experiments"])
    lines.append(f"  {n_jobs} faulted runs, "
                 f"{n_bad} monotonicity violations")
    return "\n".join(lines)


def run_chaos(experiment_ids: list[str], data: BenchmarkData, *,
              run_all: bool = False, faults: str = DEFAULT_FAULTS,
              seed: int = 0, json_path: Optional[str] = None,
              machines: tuple[str, ...] = DEFAULT_MACHINES,
              run=None) -> int:
    """CLI entry point; returns the exit status.

    ``run`` is an optional :class:`repro.harness.rundir.RunWriter`:
    every faulted job becomes a queryable cell and the payload is
    stored as the run's report.
    """
    from repro.harness.registry import EXPERIMENT_IDS

    ids = list(EXPERIMENT_IDS) if run_all else list(experiment_ids)
    if not ids:
        print("chaos: give experiment ids or --all", file=sys.stderr)
        return 2
    try:
        payload = chaos_report(ids, data, faults=faults, seed=seed,
                               machines=machines)
    except (KeyError, ValueError) as exc:
        print(f"chaos: {exc.args[0]}", file=sys.stderr)
        return 2
    print(render_report(payload))
    if run is not None:
        for exp in payload["experiments"]:
            for e in exp["jobs"]:
                run.record(exp["experiment"], {
                    "kind": "chaos",
                    "machine": e["machine"],
                    "job": e["job"],
                    "seconds": e["faulted_seconds"],
                    "stats": dict(
                        e["stats"],
                        healthy_seconds=e["healthy_seconds"],
                        slowdown=e["slowdown"]),
                })
        run.write_report(payload=payload)
    if json_path is not None:
        import json

        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {json_path}")
    bad = any(not e["ok"] for exp in payload["experiments"]
              for e in exp["jobs"])
    return 1 if bad else 0
