"""Table 2: sequential Threat Analysis on all four platforms."""

from _support import run_and_report


def bench_table2(benchmark, data):
    run_and_report(benchmark, data, "table2")
