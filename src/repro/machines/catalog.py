"""The conventional platforms of the paper (Table 1), as machine specs.

The specs pair each platform's published clock/cache/bus figures with
*effective* per-op cycle costs.  The op costs are calibrated constants
(see ``repro/harness/calibration.py`` for provenance and the fitting
rationale); the structural parameters are from the hardware manuals of
the era:

* **AlphaStation 500/500** -- 500 MHz 21164A, 4-issue in-order, 96 KB
  on-chip L2 + 2 MB board cache, ~180 ns memory latency, one memory bus.
* **NeTpower Sparta** -- 4 x 200 MHz Pentium Pro, 3-issue out-of-order,
  256 KB L2 per CPU, all CPUs sharing one 66 MHz x 8 B front-side bus
  (528 MB/s peak, far less sustained).
* **HP Exemplar S-Class** -- 16 x 180 MHz PA-8000, 4-issue out-of-order,
  large (1 MB+) off-chip caches, CPUs reach memory through a
  hypernode crossbar with good aggregate bandwidth but long latency.
"""

from __future__ import annotations

from repro.machines.spec import (
    CacheSpec,
    CoreSpec,
    MachineSpec,
    MemSpec,
    ThreadCosts,
)

MB = 1024.0 * 1024.0

#: Effective cycles per op class.  These fold issue width, dependence
#: stalls and branch behaviour into a single per-class mean, calibrated
#: so that the *ratios* between the platforms' sequential benchmark
#: times match Tables 2 and 8 of the paper.  The ``sync`` entry is the
#: cost of one synchronized memory operation (atomic/lock-word access):
#: hundreds of cycles on these SMPs, per the paper's Section 7.
_ALPHA_OPS = {"ialu": 1.03, "falu": 1.72, "load": 1.49, "store": 1.49,
              "branch": 2.06, "sync": 400.0}
_PPRO_OPS = {"ialu": 0.83, "falu": 1.93, "load": 1.10, "store": 1.19,
             "branch": 1.83, "sync": 600.0}
_EXEMPLAR_OPS = {"ialu": 0.63, "falu": 1.16, "load": 0.95, "store": 1.05,
                 "branch": 1.47, "sync": 500.0}

#: OS/software thread costs on the conventional platforms, per the
#: paper's Section 7: creation tens-of-thousands to hundreds-of-
#: thousands of cycles, synchronization hundreds to thousands.
_NT_COSTS = {
    "os": ThreadCosts(create_cycles=100_000.0, sync_cycles=600.0),
    "sw": ThreadCosts(create_cycles=30_000.0, sync_cycles=400.0),
}
_UNIX_COSTS = {
    "os": ThreadCosts(create_cycles=80_000.0, sync_cycles=500.0),
    "sw": ThreadCosts(create_cycles=25_000.0, sync_cycles=400.0),
}

ALPHASTATION_500 = MachineSpec(
    name="AlphaStation 500/500",
    n_cpus=1,
    core=CoreSpec(clock_hz=500e6, op_cycles=dict(_ALPHA_OPS)),
    cache=CacheSpec(capacity_bytes=2 * MB, line_bytes=64, assoc=4,
                    hit_cycles=2.0),
    # The AS500's write-through board cache makes read-modify-write
    # sweeps expensive: the effective back-to-back miss cost is several
    # times the pin-to-pin latency (STREAM-class measurements on this
    # box sit near 100 MB/s for scale/triad).
    mem=MemSpec(bandwidth_bytes_per_s=360e6, miss_latency_s=700e-9),
    thread_costs=dict(_UNIX_COSTS),
    memory_bytes=500.0 * 1024 * 1024,   # Table 1: 500 MB
)

PPRO_SMP_4 = MachineSpec(
    name="NeTpower Sparta (4 x Pentium Pro)",
    n_cpus=4,
    core=CoreSpec(clock_hz=200e6, op_cycles=dict(_PPRO_OPS)),
    cache=CacheSpec(capacity_bytes=256 * 1024, line_bytes=32, assoc=4,
                    hit_cycles=3.0),
    # One FSB shared by all four CPUs: ~340 MB/s sustained out of the
    # 528 MB/s peak; ~170 ns loaded miss latency.
    mem=MemSpec(bandwidth_bytes_per_s=340e6, miss_latency_s=170e-9),
    thread_costs=dict(_NT_COSTS),
    memory_bytes=500.0 * 1024 * 1024,   # Table 1: 500 MB
)

EXEMPLAR_16 = MachineSpec(
    name="HP Exemplar S-Class",
    n_cpus=16,
    core=CoreSpec(clock_hz=180e6, op_cycles=dict(_EXEMPLAR_OPS)),
    cache=CacheSpec(capacity_bytes=1 * MB, line_bytes=64, assoc=4,
                    hit_cycles=2.0),
    # Hypernode crossbar: decent aggregate bandwidth but long latency
    # (ccNUMA), so one CPU's private ceiling is modest.
    mem=MemSpec(bandwidth_bytes_per_s=500e6, miss_latency_s=650e-9),
    thread_costs=dict(_UNIX_COSTS),
    memory_bytes=4.0 * 1024 ** 3,       # Table 1: 4 GB
)

_CATALOG = {
    "alpha": ALPHASTATION_500,
    "alphastation": ALPHASTATION_500,
    "ppro": PPRO_SMP_4,
    "pentiumpro": PPRO_SMP_4,
    "exemplar": EXEMPLAR_16,
}

#: The modern CMT family (not in the paper's Table 1): the SPARC T3-4
#: strand pool, derived in repro/cmt/spec.py.  Registered lazily --
#: repro.cmt.spec itself imports repro.machines.spec, so an eager
#: import here would be circular when repro.cmt is the entry point.
_CMT_ALIASES = ("cmt", "t3", "sparct34")


def _load_cmt() -> MachineSpec:
    from repro.cmt.spec import CMT_T3_4
    for alias in _CMT_ALIASES:
        _CATALOG.setdefault(alias, CMT_T3_4)
    return CMT_T3_4


def __getattr__(name: str) -> MachineSpec:
    if name == "CMT_T3_4":
        return _load_cmt()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def get_machine_spec(name: str) -> MachineSpec:
    """Look up a platform by short name (case-insensitive)."""
    key = name.strip().lower().replace(" ", "").replace("-", "")
    if key not in _CATALOG and key in _CMT_ALIASES:
        _load_cmt()
    if key not in _CATALOG:
        raise KeyError(
            f"unknown machine {name!r}; "
            f"known: {sorted(set(_CATALOG) | set(_CMT_ALIASES))}")
    return _CATALOG[key]


def cmt(n_strands: int) -> MachineSpec:
    """The SPARC T3-4 restricted to ``n_strands`` strands (1..512)."""
    from repro.cmt.spec import cmt as _cmt
    return _cmt(n_strands)


def exemplar(n_cpus: int) -> MachineSpec:
    """The Exemplar restricted to ``n_cpus`` processors (1..16)."""
    if not 1 <= n_cpus <= 16:
        raise ValueError("the paper's Exemplar has 1..16 processors")
    return EXEMPLAR_16.with_cpus(n_cpus)


def ppro(n_cpus: int) -> MachineSpec:
    """The Pentium Pro SMP restricted to ``n_cpus`` processors (1..4)."""
    if not 1 <= n_cpus <= 4:
        raise ValueError("the paper's Pentium Pro system has 1..4 CPUs")
    return PPRO_SMP_4.with_cpus(n_cpus)
