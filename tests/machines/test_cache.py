"""Unit and property tests for the trace-level cache simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machines import SetAssociativeCache


def test_construction_validation():
    with pytest.raises(ValueError):
        SetAssociativeCache(0)
    with pytest.raises(ValueError):
        SetAssociativeCache(1024, line_bytes=48)  # not a power of two
    with pytest.raises(ValueError):
        SetAssociativeCache(1024, line_bytes=64, assoc=0)
    with pytest.raises(ValueError):
        # 1024/64 = 16 lines, not divisible into sets of 5
        SetAssociativeCache(1024, line_bytes=64, assoc=5)


def test_cold_miss_then_hit():
    c = SetAssociativeCache(1024, line_bytes=64, assoc=2)
    assert not c.access(0)      # cold miss
    assert c.access(0)          # hit
    assert c.access(63)         # same line: hit
    assert not c.access(64)     # next line: miss
    assert c.hits == 2 and c.misses == 2


def test_negative_address_rejected():
    c = SetAssociativeCache(1024, line_bytes=64, assoc=2)
    with pytest.raises(ValueError):
        c.access(-1)


def test_lru_eviction_within_set():
    # direct-mapped-ish: 2 sets, assoc 2, line 64 -> capacity 256
    c = SetAssociativeCache(256, line_bytes=64, assoc=2)
    # lines 0, 2, 4 all map to set 0 (line % 2 == 0)
    c.access(0 * 64)
    c.access(2 * 64)
    c.access(4 * 64)   # evicts line 0 (LRU)
    assert not c.access(0 * 64)   # line 0 was evicted: miss
    assert c.access(4 * 64)       # line 4 still resident


def test_lru_touch_order_respected():
    c = SetAssociativeCache(256, line_bytes=64, assoc=2)
    c.access(0 * 64)
    c.access(2 * 64)
    c.access(0 * 64)   # touch line 0: line 2 is now LRU
    c.access(4 * 64)   # evicts line 2
    assert c.access(0 * 64)
    assert not c.access(2 * 64)


def test_streaming_misses_once_per_line():
    c = SetAssociativeCache(64 * 1024, line_bytes=64, assoc=4)
    n_bytes = 32 * 1024
    misses = c.access_range(0, n_bytes, stride=8)
    assert misses == n_bytes // 64


def test_in_cache_reuse_is_free_after_warmup():
    c = SetAssociativeCache(64 * 1024, line_bytes=64, assoc=4)
    footprint = 16 * 1024
    first = c.access_range(0, footprint, stride=8)
    second = c.access_range(0, footprint, stride=8)
    assert first == footprint // 64
    assert second == 0


def test_oversized_working_set_thrashes():
    c = SetAssociativeCache(4 * 1024, line_bytes=64, assoc=4)
    footprint = 64 * 1024  # 16x the cache
    c.access_range(0, footprint, stride=8)
    c.reset_stats()
    misses = c.access_range(0, footprint, stride=8)
    # sequential sweep over 16x cache: every line misses again
    assert misses == footprint // 64


def test_random_pattern_fetches_full_line_per_access():
    c = SetAssociativeCache(4 * 1024, line_bytes=64, assoc=4)
    # widely scattered single-word accesses, footprint >> cache
    import random
    rng = random.Random(42)
    addrs = [rng.randrange(0, 1 << 24) & ~7 for _ in range(2000)]
    for a in addrs:
        c.access(a)
    assert c.miss_rate > 0.95


def test_stride_equal_to_line_misses_every_access():
    c = SetAssociativeCache(4 * 1024, line_bytes=64, assoc=4)
    misses = c.access_range(0, 64 * 1024, stride=64)
    assert misses == 1024


def test_miss_traffic_bytes_property():
    c = SetAssociativeCache(1024, line_bytes=64, assoc=2)
    c.access_range(0, 2048, stride=64)
    assert c.miss_traffic_bytes == c.misses * 64


def test_flush_and_reset():
    c = SetAssociativeCache(1024, line_bytes=64, assoc=2)
    c.access(0)
    c.flush()
    assert c.accesses == 0
    assert not c.access(0)  # cold again after flush


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                min_size=1, max_size=300))
def test_hits_plus_misses_equals_accesses(addrs):
    c = SetAssociativeCache(8 * 1024, line_bytes=64, assoc=2)
    for a in addrs:
        c.access(a)
    assert c.hits + c.misses == len(addrs)
    assert 0.0 <= c.miss_rate <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16),
                min_size=1, max_size=200))
def test_immediate_rereference_always_hits(addrs):
    c = SetAssociativeCache(8 * 1024, line_bytes=64, assoc=2)
    for a in addrs:
        c.access(a)
        assert c.access(a)  # the line was just installed
