#!/usr/bin/env python3
"""The full Terrain Masking study (Section 6 of the paper).

1. Generates a synthetic terrain + threat laydown and runs the
   sequential program (Program 3).
2. Runs the coarse-grained block-locked variant (Program 4) and the
   fine-grained Tera variant; validates both bit-exactly against the
   reference (min-merging is order-free).
3. Reproduces Tables 8-12 and Figures 3-4.

    python examples/terrain_masking_study.py
"""

import numpy as np

from repro.c3i import terrain as TE
from repro.harness import BenchmarkData, render_speedup_figure, run_experiment
from repro.harness.calibration import PAPER_TABLE9, PAPER_TABLE10


def study_the_programs() -> None:
    print("=" * 72)
    print("Part 1: the benchmark programs")
    print("=" * 72)
    scenario = TE.make_scenario(0, scale=0.05)
    n = scenario.grid_n
    print(f"scenario 0: {n}x{n} terrain, {scenario.n_threats} ground "
          f"threats (reduced scale; full scale is "
          f"{TE.FULL_SCALE.grid_n}x{TE.FULL_SCALE.grid_n})")

    reference = TE.run_sequential(scenario)
    TE.check_masking(scenario, reference.masking)
    covered = np.isfinite(reference.masking).mean()
    print(f"sequential (Program 3): {covered:.0%} of the terrain is "
          f"constrained by at least one threat; "
          f"{reference.n_rings_total} wavefront rings "
          f"(mean width {reference.mean_ring_width:.0f} cells)")

    blocked = TE.run_blocked(scenario, n_threads=4, num_blocks=10)
    TE.check_blocked(reference, blocked)
    print(f"coarse-grained (Program 4, 10x10 blocks): bit-identical "
          f"output; {blocked.n_lock_acquisitions} block-lock "
          f"acquisitions, most contended block shared by "
          f"{blocked.max_block_sharing} threats")

    fine = TE.run_finegrained(scenario)
    TE.check_finegrained(reference, fine)
    print(f"fine-grained (Tera variant): bit-identical output; "
          f"ring-level parallelism up to {fine.max_ring_width} strands")


def study_the_performance() -> None:
    print()
    print("=" * 72)
    print("Part 2: performance on the four platforms")
    print("=" * 72)
    data = BenchmarkData(threat_scale=0.015, terrain_scale=0.05)

    for eid in ("table8", "table9", "table10", "table11", "table12"):
        print()
        print(run_experiment(eid, data).render())

    t9 = run_experiment("table9", data)
    procs = [1, 2, 3, 4]
    seq = t9.row("sequential").simulated
    print()
    print(render_speedup_figure(
        "Figure 3: Terrain Masking speedup on 4-CPU Pentium Pro",
        procs,
        [seq / t9.row(f"{n} processors").simulated for n in procs],
        [PAPER_TABLE9["sequential"] / PAPER_TABLE9[n] for n in procs]))

    t10 = run_experiment("table10", data)
    procs = list(range(1, 17))
    seq = t10.row("sequential").simulated
    print()
    print(render_speedup_figure(
        "Figure 4: Terrain Masking speedup on 16-CPU Exemplar",
        procs,
        [seq / t10.row(f"{n} processors").simulated for n in procs],
        [PAPER_TABLE10["sequential"] / PAPER_TABLE10[n] for n in procs]))


if __name__ == "__main__":
    study_the_programs()
    study_the_performance()
