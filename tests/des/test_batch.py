"""Unit and property tests for the cohort batch engine.

The contract under test: the batch servers and :class:`CohortEngine`
reproduce, job for job, the timeline the slice-interleaved DES path
computes with one generator process per thread.  Scalar and vector
server implementations must agree with each other (and with a live
``FairShareServer``) to within the DES completion tolerance.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.des import DesError, FairShareServer, Simulator
from repro.des.batch import (
    ACQ,
    PAR,
    REL,
    SLEEP,
    SRV,
    BatchServer,
    CohortEngine,
    ScalarBatchServer,
    _water_fill,
    serve_alone,
)

from tests.parity import REL_TOL, rel_err  # noqa: E402


# ----------------------------------------------------------------------
# serve_alone / serve_batch against the live DES server
# ----------------------------------------------------------------------

def test_serve_alone_matches_lone_des_submission():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=100.0)
    done = {}

    def body(sim):
        ev = srv.submit(730.0, cap=40.0)
        yield ev
        done["t"] = sim.now

    sim.process(body(sim))
    sim.run()

    mirror = FairShareServer(Simulator(), capacity=100.0)
    end = serve_alone(mirror, 730.0, 40.0, 0.0)
    assert end == done["t"]
    assert mirror.busy_time == srv.busy_time
    assert mirror.total_served == srv.total_served


def test_serve_batch_equals_individual_submits():
    demands = [100.0, 250.0, 60.0, 100.0]

    def run(batched: bool):
        sim = Simulator()
        srv = FairShareServer(sim, capacity=50.0)
        ends = {}

        def waiter(sim, i, ev):
            yield ev
            ends[i] = sim.now

        def submitter(sim):
            if batched:
                events = srv.serve_batch(demands, cap=30.0)
            else:
                events = [srv.submit(d, cap=30.0) for d in demands]
            for i, ev in enumerate(events):
                sim.process(waiter(sim, i, ev))
            return
            yield  # pragma: no cover - generator marker

        sim.process(submitter(sim))
        sim.run()
        return ends, srv.busy_time, srv.total_served

    ends_a, busy_a, served_a = run(batched=False)
    ends_b, busy_b, served_b = run(batched=True)
    assert ends_a == ends_b
    assert busy_a == busy_b
    assert served_a == served_b


def test_serve_batch_zero_demand_completes_immediately():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)
    events = srv.serve_batch([0.0, 5.0])
    assert events[0].triggered
    assert not events[1].triggered


def test_serve_batch_rejects_bad_input():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)
    with pytest.raises(ValueError):
        srv.serve_batch([1.0], cap=0.0)
    with pytest.raises(ValueError):
        srv.serve_batch([-1.0])


# ----------------------------------------------------------------------
# scalar vs vector batch server consistency
# ----------------------------------------------------------------------

def drain(server, jobs, start=0.0):
    """Push ``jobs = [(demand, cap), ...]`` at ``start`` and drain.

    Returns the ordered completion events as ``(time, sorted slots)``.
    """
    for slot, (demand, cap) in enumerate(jobs):
        server.add(slot, demand, cap, slot, start)
    server.flush(start)
    out = []
    while server.n:
        t = server.due
        assert t < math.inf
        done = server.finish(t)
        server.flush(t)
        out.append((t, sorted(s for _q, s in done)))
    return out


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=1e-3, max_value=1e6),
            st.one_of(st.none(),
                      st.floats(min_value=1e-2, max_value=1e4)),
        ),
        min_size=1, max_size=12),
    st.floats(min_value=1e-1, max_value=1e3),
)
def test_scalar_and_vector_servers_agree(jobs, capacity):
    scalar = ScalarBatchServer(capacity, len(jobs), 0.0)
    vector = BatchServer(capacity, len(jobs), 0.0)
    ev_s = drain(scalar, jobs)
    ev_v = drain(vector, jobs)
    # same completion groups at the same (tolerance-batched) times
    assert len(ev_s) == len(ev_v)
    for (ts, group_s), (tv, group_v) in zip(ev_s, ev_v):
        assert rel_err(ts, tv) <= REL_TOL
        assert group_s == group_v
    assert rel_err(scalar.busy_time, vector.busy_time) <= REL_TOL
    assert rel_err(scalar.total_served, vector.total_served) <= REL_TOL


def test_uniform_batch_completes_together():
    srv = ScalarBatchServer(100.0, 8, 0.0)
    events = drain(srv, [(50.0, None)] * 8)
    assert len(events) == 1
    t, group = events[0]
    assert group == list(range(8))
    assert rel_err(t, 8 * 50.0 / 100.0) <= REL_TOL


def test_water_fill_matches_sequential_des_fill():
    import numpy as np

    caps = np.array([5.0, 30.0, 5.0, 100.0, 12.0])
    capacity = 60.0
    rates = _water_fill(caps, capacity)
    # DES order: ascending distinct caps, equal split of the leftover
    left, n_left = capacity, len(caps)
    expected = {}
    for idx in sorted(range(len(caps)), key=lambda i: caps[i]):
        share = left / n_left
        r = min(caps[idx], share)
        expected[idx] = r
        left -= r
        n_left -= 1
    for i, r in expected.items():
        assert rel_err(rates[i], r) <= 1e-12
    assert rates.sum() <= capacity * (1 + 1e-12)


# ----------------------------------------------------------------------
# CohortEngine semantics
# ----------------------------------------------------------------------

def test_engine_runs_identical_threads_in_parallel():
    # four identical single-segment threads on one server: all finish
    # together at demand / (capacity / 4)
    programs = [[(SRV, 0, 100.0, None)] for _ in range(4)]
    eng = CohortEngine(0.0, [200.0], programs)
    end = eng.run()
    assert rel_err(end, 100.0 / (200.0 / 4)) <= REL_TOL


def test_engine_par_segment_joins_all_parts():
    # one thread issuing to both servers; ends at the slower part
    programs = [[(PAR, ((0, 100.0, None), (1, 400.0, None)))]]
    eng = CohortEngine(0.0, [100.0, 100.0], programs)
    assert rel_err(eng.run(), 4.0) <= REL_TOL


def test_engine_sleep_and_home_server():
    programs = [[(SLEEP, 2.5), (SRV, None, 10.0, None)]]
    eng = CohortEngine(1.0, [10.0, 10.0], programs, own_sids=[1])
    assert rel_err(eng.run(), 1.0 + 2.5 + 1.0) <= REL_TOL
    assert eng.servers[0].busy_time == 0.0
    assert eng.servers[1].busy_time > 0.0


def test_engine_lock_serializes_and_counts_waits():
    # two threads racing for one lock; the critical section is 1s long
    seg = [(ACQ, "L"), (SRV, 0, 10.0, 10.0), (REL, "L")]
    eng = CohortEngine(0.0, [100.0], [list(seg), list(seg)])
    end = eng.run()
    assert rel_err(end, 2.0) <= REL_TOL
    assert eng.total_lock_waits() == 1
    assert rel_err(eng.total_lock_wait_time(), 1.0) <= REL_TOL


def test_engine_work_queue_drains_in_fifo_order():
    from collections import deque

    items = deque([(SRV, 0, 10.0, 10.0)] for _ in range(6))
    eng = CohortEngine(0.0, [100.0], [[] for _ in range(2)], queue=items)
    # 6 one-second items over 2 workers -> 3 seconds
    assert rel_err(eng.run(), 3.0) <= REL_TOL
    assert not items


def test_engine_deadlock_raises():
    # a thread that acquires twice without releasing blocks forever
    programs = [[(ACQ, "L"), (ACQ, "L"), (REL, "L")]]
    with pytest.raises(DesError):
        CohortEngine(0.0, [10.0], programs).run()


def test_engine_lock_handoff_is_fifo_by_arrival():
    """Contended releases must hand the lock to the *earliest* waiter.

    Three threads reach the lock at t=0, 0.1 and 0.2 with critical
    sections of 1, 10 and 1 seconds.  Under FIFO hand-off the waits
    are 0.9 and 10.8 (total 11.7); a LIFO hand-off would total 2.7,
    so the aggregate wait time pins the ordering.
    """
    def prog(delay, crit):
        return [(SLEEP, delay), (ACQ, "L"), (SRV, 0, crit, None),
                (REL, "L")]

    eng = CohortEngine(0.0, [1.0, 1.0],
                       [prog(0.0, 1.0), prog(0.1, 10.0),
                        prog(0.2, 1.0)])
    end = eng.run()
    assert end == pytest.approx(12.0)
    assert eng.locks["L"].waits == 2
    assert eng.total_lock_wait_time() == pytest.approx(11.7)


def test_engine_lock_handoff_matches_des_lock():
    """The same staggered-contention scenario on the DES SimLock must
    produce the identical timeline and wait accounting."""
    from repro.des import SimLock

    sim = Simulator()
    lock = SimLock(sim)

    def worker(sim, delay, crit):
        yield sim.timeout(delay)
        grant = yield lock.acquire()
        yield sim.timeout(crit)
        lock.release(grant)

    for delay, crit in ((0.0, 1.0), (0.1, 10.0), (0.2, 1.0)):
        sim.process(worker(sim, delay, crit))
    sim.run()
    assert sim.now == pytest.approx(12.0)
    assert lock.total_waits == 2
    assert lock.total_wait_time == pytest.approx(11.7)
