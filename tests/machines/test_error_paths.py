"""Error-path and edge-case coverage for the machine models."""

import pytest

from repro.des import SimulationDeadlock, Simulator
from repro.machines import ConventionalMachine, exemplar
from repro.mta import MtaMachine, mta
from repro.workload import (
    Job,
    JobBuilder,
    OpCounts,
    ThreadProgramBuilder,
    make_phase,
    single_thread_job,
)


def test_empty_job_takes_zero_time():
    job = Job("empty", ())
    assert ConventionalMachine(exemplar(4)).run(job).seconds == 0.0
    assert MtaMachine(mta(1)).run(job).seconds == 0.0


def test_zero_ops_phase_is_free():
    job = single_thread_job("z", [make_phase("p", OpCounts())])
    assert ConventionalMachine(exemplar(1)).run(job).seconds == 0.0
    assert MtaMachine(mta(1)).run(job).seconds == 0.0


def test_pure_latency_phase():
    job = single_thread_job("lat", [make_phase(
        "p", OpCounts(), serial_cycles=180e6)])
    res = ConventionalMachine(exemplar(1)).run(job)
    assert res.seconds == pytest.approx(1.0)
    res_mta = MtaMachine(mta(1)).run(job)
    assert res_mta.seconds == pytest.approx(180e6 / 255e6)


def test_single_item_work_queue():
    spec = exemplar(8)
    n_ops = 180e6
    item = (ThreadProgramBuilder("only")
            .compute("w", OpCounts(ialu=n_ops))
            .build_work_item())
    job = JobBuilder("q1").work_queue([item], n_threads=8).build()
    res = ConventionalMachine(spec).run(job)
    # one item: seven workers idle; the work runs on one CPU
    expected = n_ops * spec.core.op_cycles["ialu"] / spec.core.clock_hz
    assert res.seconds == pytest.approx(expected, rel=0.05)


def test_more_chunks_than_work_on_mta():
    # 512 threads, many empty: must not deadlock or crash
    phase = make_phase("w", OpCounts(ialu=2.55e6))
    threads = [ThreadProgramBuilder(f"t{i}").phase(p).build()
               for i, p in enumerate(phase.split(8))]
    threads += [ThreadProgramBuilder(f"empty{i}").build()
                for i in range(504)]
    job = JobBuilder("sparse").parallel(threads,
                                        thread_kind="hw").build()
    res = MtaMachine(mta(2)).run(job)
    assert res.seconds > 0


def test_huge_parallelism_caps_at_stream_count():
    spec = mta(1)
    n_instr = 2.55e6
    job = single_thread_job("wide", [make_phase(
        "p", OpCounts(ialu=n_instr * spec.ops_per_instruction),
        parallelism=1e9)])
    res = MtaMachine(spec).run(job)
    # cannot beat 1 instruction/cycle no matter the claimed width
    assert res.seconds >= n_instr / spec.clock_hz * 0.999


def test_deadlock_detection_in_raw_des():
    sim = Simulator()
    ev = sim.event()  # never fired

    def stuck(sim):
        yield ev

    p = sim.process(stuck(sim))
    with pytest.raises(SimulationDeadlock):
        sim.run_all(p)


def test_results_report_the_machine_name():
    job = single_thread_job("j", [make_phase("p", OpCounts(ialu=1e6))])
    res = ConventionalMachine(exemplar(7)).run(job)
    assert "7p" in res.machine
    res_mta = MtaMachine(mta(2)).run(job)
    assert "Tera" in res_mta.machine
