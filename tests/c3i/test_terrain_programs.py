"""Tests for the Terrain Masking program variants and scenarios."""

import numpy as np
import pytest

from repro.c3i.terrain import (
    benchmark_scenarios,
    check_blocked,
    check_finegrained,
    check_masking,
    make_scenario,
    run_blocked,
    run_finegrained,
    run_sequential,
)
from repro.c3i.terrain.blocked import block_of, blocks_overlapping
from repro.c3i.terrain.model import region_window
from repro.c3i.terrain.validate import ValidationError


SCALE = 0.04  # 128x128 grid: fast but non-trivial


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(0, scale=SCALE)


@pytest.fixture(scope="module")
def reference(scenario):
    return run_sequential(scenario)


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------

def test_scenarios_deterministic_and_distinct():
    a = make_scenario(1, scale=SCALE)
    b = make_scenario(1, scale=SCALE)
    c = make_scenario(2, scale=SCALE)
    assert np.array_equal(a.terrain, b.terrain)
    assert a.threats == b.threats
    assert not np.array_equal(a.terrain, c.terrain)


def test_five_scenarios_sixty_threats():
    """60 threats per scenario (Section 7 of the paper)."""
    scenarios = benchmark_scenarios(scale=SCALE)
    assert len(scenarios) == 5
    for sc in scenarios:
        assert sc.n_threats == 60


def test_region_at_most_5_percent(scenario):
    """'the region of influence of each threat is up to 5% of the total
    terrain' (Section 6)."""
    n = scenario.grid_n
    for t in scenario.threats:
        disc = np.pi * t.range_cells ** 2
        assert disc <= 0.055 * n * n  # small slack for rounding


def test_scale_validation():
    with pytest.raises(ValueError):
        make_scenario(0, scale=0.0)
    with pytest.raises(ValueError):
        make_scenario(0, scale=2.0)


# ----------------------------------------------------------------------
# sequential program
# ----------------------------------------------------------------------

def test_sequential_output_invariants(scenario, reference):
    check_masking(scenario, reference.masking)
    assert reference.n_rings_total > 0
    assert reference.ring_cells_total > 0
    assert len(reference.per_threat) == scenario.n_threats


def test_sequential_masking_is_min_over_threats(scenario, reference):
    """Each cell equals the min over per-threat maskings (+inf where no
    threat reaches)."""
    from repro.c3i.terrain.model import masking_for_threat
    n = scenario.grid_n
    expected = np.full((n, n), np.inf)
    for t in scenario.threats:
        window, alt, _s = masking_for_threat(scenario.terrain, t)
        sx, sy = window.slices()
        expected[sx, sy] = np.minimum(expected[sx, sy], alt)
    assert np.array_equal(expected, reference.masking)


def test_adding_threats_only_lowers_masking(scenario):
    """Monotonicity: more threats never raise the safe altitude."""
    import dataclasses
    fewer = dataclasses.replace(scenario, threats=scenario.threats[:20])
    more = dataclasses.replace(scenario, threats=scenario.threats[:40])
    m_few = run_sequential(fewer).masking
    m_more = run_sequential(more).masking
    assert (m_more <= m_few + 1e-12).all()


# ----------------------------------------------------------------------
# blocked program
# ----------------------------------------------------------------------

@pytest.mark.parametrize("n_threads,num_blocks", [(1, 10), (4, 10),
                                                  (16, 10), (4, 3)])
def test_blocked_matches_sequential(scenario, reference, n_threads,
                                    num_blocks):
    blocked = run_blocked(scenario, n_threads=n_threads,
                          num_blocks=num_blocks)
    check_blocked(reference, blocked)


def test_blocked_lock_statistics(scenario):
    res = run_blocked(scenario, n_threads=4, num_blocks=10)
    assert res.n_lock_acquisitions >= scenario.n_threats
    assert res.max_block_sharing >= 2  # regions overlap
    assert len(res.per_threat_blocks) == scenario.n_threats


def test_blocked_validation_catches_corruption(scenario, reference):
    blocked = run_blocked(scenario, n_threads=2)
    blocked.masking[0, 0] = -1.0
    with pytest.raises(ValidationError):
        check_blocked(reference, blocked)


def test_blocked_invalid_params(scenario):
    with pytest.raises(ValueError):
        run_blocked(scenario, n_threads=0)
    with pytest.raises(ValueError):
        run_blocked(scenario, n_threads=1, num_blocks=0)


def test_blocks_overlapping_tile_window(scenario):
    """Block overlap slices partition each region window exactly."""
    n = scenario.grid_n
    for t in scenario.threats[:10]:
        window = region_window(t, n)
        tiles = blocks_overlapping(window, n, 10)
        covered = np.zeros(window.shape, dtype=int)
        for _bid, (sx, sy) in tiles:
            lx = slice(sx.start - window.x0, sx.stop - window.x0)
            ly = slice(sy.start - window.y0, sy.stop - window.y0)
            covered[lx, ly] += 1
        assert (covered == 1).all()


def test_block_of_consistent_with_overlap(scenario):
    n = scenario.grid_n
    t = scenario.threats[0]
    window = region_window(t, n)
    for bid, (sx, sy) in blocks_overlapping(window, n, 10):
        assert block_of(sx.start, sy.start, n, 10) == bid
        assert block_of(sx.stop - 1, sy.stop - 1, n, 10) == bid


# ----------------------------------------------------------------------
# fine-grained program
# ----------------------------------------------------------------------

def test_finegrained_matches_sequential(scenario, reference):
    fine = run_finegrained(scenario)
    check_finegrained(reference, fine)


def test_finegrained_parallelism_profile(scenario):
    fine = run_finegrained(scenario)
    assert len(fine.ring_profile) == scenario.n_threats
    assert fine.mean_ring_width > 4  # rings are tens of cells wide
    assert fine.max_ring_width > fine.mean_ring_width


def test_finegrained_validation_catches_corruption(scenario, reference):
    fine = run_finegrained(scenario)
    fine.masking = fine.masking.copy()
    fine.masking[3, 3] = 0.0
    with pytest.raises(ValidationError):
        check_finegrained(reference, fine)
