"""Table 7: Threat Analysis cross-platform summary, including the
'one Tera processor ~ four Exemplar processors' equivalence."""

from _support import run_and_report


def bench_table7(benchmark, data):
    run_and_report(benchmark, data, "table7")
