"""Deterministic fault injection and chaos testing.

Machine-level faults derate the platform specs (stream revocation,
bank hot-spotting, full/empty stalls, cache-way loss, latency
inflation) through :mod:`repro.faults.inject`; harness-level faults
(worker crashes, cache corruption, watchdog timeouts) live in the
harness itself (:mod:`repro.harness.parallel`,
:mod:`repro.harness.store`, :mod:`repro.obs.watchdog`).  Everything is
seeded and schedule-deterministic: identical ``(plan, seed)`` yields
byte-identical fault schedules under both simulation engines.
"""

from repro.faults.inject import (
    FaultedRun,
    derate_conventional,
    derate_mta,
    run_faulted_conventional,
    run_faulted_mta,
    split_job,
)
from repro.faults.plan import (
    CONVENTIONAL_KINDS,
    FAULT_KINDS,
    MTA_KINDS,
    FaultPlan,
    FaultSpec,
    ScheduledFault,
    derive_unit,
)

__all__ = [
    "CONVENTIONAL_KINDS",
    "FAULT_KINDS",
    "MTA_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultedRun",
    "ScheduledFault",
    "derate_conventional",
    "derate_mta",
    "derive_unit",
    "run_faulted_conventional",
    "run_faulted_mta",
    "split_job",
]
