"""Metric rollups, and DES-vs-cohort metric parity (acceptance bar).

Both engines must report the *same metric fields* for a homogeneous
region, with values agreeing to 1e-9 -- otherwise "run it on the fast
path" would change what the experiment reports, not just how fast it
reports it.
"""

import pytest

from repro.des import SimLock, Simulator
from repro.machines import ConventionalMachine, exemplar
from repro.mta import MtaMachine, mta
from repro.obs.metrics import (
    MachineMetrics,
    hist_fields,
    lock_summary_from_resources,
    merge_lock_summaries,
)
from repro.obs.trace import TraceRecorder
from repro.workload import JobBuilder, OpCounts, ThreadProgramBuilder

from tests.parity import REL_TOL, rel_err  # noqa: E402

#: stats fields the observability layer adds on every machine model
OBS_FIELDS = ("lock_wait_time", "lock_convoy_max",
              "serial_wall_seconds", "region_wall_seconds")


def homogeneous_job(n_threads=6, with_lock=True, balanced=False):
    threads = []
    for i in range(n_threads):
        b = ThreadProgramBuilder(f"t{i}")
        skew = 0.0 if balanced else 0.2 * i
        b.compute("c", OpCounts(ialu=2e5 * (1 + skew), load=5e4))
        if with_lock:
            b.critical("tally", "crit", OpCounts(store=200.0, sync=2.0))
        threads.append(b.build())
    return (JobBuilder("homog")
            .serial("setup", OpCounts(ialu=5e4))
            .parallel(threads)
            .serial("teardown", OpCounts(ialu=2e4))
            .build())


# ----------------------------------------------------------------------
# engine parity
# ----------------------------------------------------------------------

def test_des_and_cohort_report_identical_metric_fields():
    job = homogeneous_job()
    des = ConventionalMachine(exemplar(4), use_cohort=False).run(job)
    coh = ConventionalMachine(exemplar(4), use_cohort=True).run(job)
    assert set(des.stats) == set(coh.stats)
    for field in OBS_FIELDS:
        assert rel_err(des.stats[field], coh.stats[field]) <= REL_TOL, \
            (field, des.stats[field], coh.stats[field])
    # convoy histograms are integer counts: exactly equal
    for key in des.stats:
        if key.startswith("lock_convoy_hist_"):
            assert des.stats[key] == coh.stats[key], key


def test_mta_engine_parity_on_homogeneous_region():
    job = homogeneous_job(n_threads=8)
    des = MtaMachine(mta(1), use_cohort=False).run(job)
    coh = MtaMachine(mta(1), use_cohort=True).run(job)
    assert set(des.stats) == set(coh.stats)
    for field in OBS_FIELDS:
        assert rel_err(des.stats[field], coh.stats[field]) <= REL_TOL, \
            (field, des.stats[field], coh.stats[field])


def test_region_walls_partition_the_run():
    job = homogeneous_job(with_lock=False)
    for use_cohort in (False, True):
        res = ConventionalMachine(
            exemplar(4), use_cohort=use_cohort).run(job)
        total = (res.stats["serial_wall_seconds"]
                 + res.stats["region_wall_seconds"])
        assert rel_err(total, res.seconds) <= 1e-9
        assert res.stats["serial_wall_seconds"] > 0
        assert res.stats["region_wall_seconds"] > 0


def test_contended_run_reports_convoy_stats():
    job = homogeneous_job(n_threads=8, balanced=True)
    for use_cohort in (False, True):
        res = ConventionalMachine(
            exemplar(2), use_cohort=use_cohort).run(job)
        assert res.stats["lock_wait_time"] > 0
        assert res.stats["lock_convoy_max"] >= 2
        hist_keys = [k for k in res.stats
                     if k.startswith("lock_convoy_hist_")]
        assert hist_keys
        # histogram counts every contended acquire exactly once
        assert sum(res.stats[k] for k in hist_keys) == \
            res.stats["lock_acquisitions"]


# ----------------------------------------------------------------------
# collector mechanics
# ----------------------------------------------------------------------

def test_machine_metrics_rollup_splits_serial_and_parallel():
    m = MachineMetrics()
    m.region("serial", "cohort", "[0] setup", 0.0, 1.5)
    m.region("parallel", "des", "[1] region", 1.5, 4.0, n_threads=8)
    m.region("serial", "cohort", "[2] teardown", 4.0, 4.25)
    roll = m.rollup()
    assert roll["serial_wall_seconds"] == pytest.approx(1.75)
    assert roll["region_wall_seconds"] == pytest.approx(2.5)


def test_machine_metrics_forwards_regions_to_tracer():
    tr = TraceRecorder()
    tr.begin_run("x")
    m = MachineMetrics(tracer=tr)
    m.region("parallel", "cohort", "[0] r", 0.0, 2.0, n_threads=4)
    (rec,) = tr.records
    assert rec[0] == "region"
    assert rec[4] == ("[0] r", "cohort", 4) and rec[5] == 2.0


def test_lock_summary_from_des_resources():
    sim = Simulator()
    lock = SimLock(sim, name="L")

    def worker(sim):
        g = yield lock.acquire()
        yield sim.timeout(1)
        lock.release(g)

    for _ in range(4):
        sim.process(worker(sim))
    sim.run()
    summary = lock_summary_from_resources([lock])
    assert summary["waits"] == 3
    assert summary["wait_time"] == pytest.approx(1 + 2 + 3)
    assert summary["convoy_max"] == 3
    # depths seen: 1, 2, 3 -> buckets 1, 2, 2
    assert summary["hist"] == {1: 1, 2: 2}


def test_merge_and_flatten_lock_summaries():
    a = {"waits": 2, "wait_time": 1.0, "convoy_max": 2, "hist": {1: 2}}
    b = {"waits": 3, "wait_time": 0.5, "convoy_max": 4,
         "hist": {1: 1, 4: 2}}
    merged = merge_lock_summaries(a, b)
    assert merged is a
    assert merged == {"waits": 5, "wait_time": 1.5, "convoy_max": 4,
                      "hist": {1: 3, 4: 2}}
    assert hist_fields(merged["hist"]) == {
        "lock_convoy_hist_1": 3.0, "lock_convoy_hist_4": 2.0}
    assert merge_lock_summaries({}, b)["waits"] == 3
