"""Spec derating, job splitting and faulted macro runs (both engines)."""

import pytest

from repro.faults import (
    FaultPlan,
    ScheduledFault,
    derate_conventional,
    derate_mta,
    run_faulted_conventional,
    run_faulted_mta,
    split_job,
)
from repro.machines import exemplar
from repro.machines.machine import ConventionalMachine
from repro.mta import MtaMachine, mta
from repro.workload import JobBuilder, OpCounts, ThreadProgramBuilder

from tests.parity import REL_TOL


def small_job(n_steps=4, name="fault-demo"):
    b = JobBuilder(name)
    for i in range(n_steps):
        b.serial(f"s{i}", OpCounts(falu=5e5, load=2e5, store=5e4))
    return b.build()


def parallel_job(name="fault-par"):
    threads = [
        ThreadProgramBuilder(f"t{t}").compute(
            "work", OpCounts(falu=4e5, load=3e5)).build()
        for t in range(8)
    ]
    return (JobBuilder(name)
            .serial("setup", OpCounts(falu=1e5))
            .parallel(threads, thread_kind="sw")
            .serial("reduce", OpCounts(falu=1e5))
            .build())


# ----------------------------------------------------------------------
# derating
# ----------------------------------------------------------------------

def test_derate_mta_streams_and_network():
    spec = mta(2)
    out = derate_mta(spec, [ScheduledFault("streams", 0, 1.0),
                            ScheduledFault("bank-hotspot", 0, 0.5)])
    assert out.streams_per_processor < spec.streams_per_processor
    assert out.network_words_per_cycle == pytest.approx(
        spec.network_words_per_cycle * 0.6)
    # inapplicable kinds are ignored
    same = derate_mta(spec, [ScheduledFault("cache-ways", 0, 1.0)])
    assert same == spec


def test_derate_mta_febit():
    spec = mta(2)
    out = derate_mta(spec, [ScheduledFault("febit-stall", 0, 0.5)])
    assert out.mem_latency_cycles == pytest.approx(
        spec.mem_latency_cycles * 2.5)
    assert out.thread_costs["sw"].sync_cycles == pytest.approx(
        spec.thread_costs["sw"].sync_cycles * 11.0)


def test_derate_conventional():
    spec = exemplar(4)
    out = derate_conventional(
        spec, [ScheduledFault("cache-ways", 0, 1.0),
               ScheduledFault("mem-latency", 0, 1.0),
               ScheduledFault("bank-hotspot", 0, 0.25)])
    assert out.cache.assoc == 1
    assert out.cache.capacity_bytes == pytest.approx(
        spec.cache.capacity_bytes / spec.cache.assoc)
    assert out.mem.miss_latency_s == pytest.approx(
        spec.mem.miss_latency_s * 4.0)
    assert out.mem.bandwidth_bytes_per_s == pytest.approx(
        spec.mem.bandwidth_bytes_per_s * 0.8)
    assert derate_conventional(
        spec, [ScheduledFault("streams", 0, 1.0)]) == spec


def test_derate_severity_monotone():
    spec = mta(2)
    mild = derate_mta(spec, [ScheduledFault("streams", 0, 0.3)])
    harsh = derate_mta(spec, [ScheduledFault("streams", 0, 0.9)])
    assert (harsh.streams_per_processor < mild.streams_per_processor
            < spec.streams_per_processor)


# ----------------------------------------------------------------------
# job splitting
# ----------------------------------------------------------------------

def test_split_job_segments_cover_steps():
    job = small_job(5)
    segs = split_job(job, [2, 4])
    assert [len(s.steps) for s in segs] == [2, 2, 1]
    flat = tuple(st for s in segs for st in s.steps)
    assert flat == job.steps


def test_split_job_noop_boundaries():
    job = small_job(3)
    assert split_job(job, [0, 3, 99]) == [job]
    assert split_job(job, []) == [job]


def test_split_preserves_simulated_time():
    """Steps are barriers: running the segments back to back on the
    same machine must reproduce the unsplit wall time exactly."""
    job = parallel_job()
    machine = MtaMachine(mta(2))
    whole = machine.run(job).seconds
    parts = sum(machine.run(s).seconds
                for s in split_job(job, [1, 2]))
    assert abs(parts - whole) <= REL_TOL * whole


# ----------------------------------------------------------------------
# faulted runs
# ----------------------------------------------------------------------

def test_faulted_run_slower_and_attributed():
    job = parallel_job()
    plan = FaultPlan.parse("streams:0.0:0.9,bank-hotspot:0.5:0.5",
                           seed=1)
    healthy = MtaMachine(mta(2)).run(job).seconds
    run = run_faulted_mta(mta(2), job, plan)
    assert run.seconds > healthy
    assert run.n_segments == 2          # hotspot lands mid-job
    assert run.stats["faults_injected"] == 2.0
    assert run.stats["fault_streams_severity"] == 0.9
    assert run.stats["fault_bank-hotspot_step"] == 1.0


def test_faulted_run_conventional():
    job = parallel_job()
    plan = FaultPlan.parse("mem-latency:0.0:1.0", seed=1)
    healthy = ConventionalMachine(exemplar(4)).run(job).seconds
    run = run_faulted_conventional(exemplar(4), job, plan)
    assert run.seconds >= healthy
    assert run.stats["faults_injected"] == 1.0


@pytest.mark.parametrize("faults", [
    "streams:0.4:0.9",
    "bank-hotspot,febit-stall",
    "streams,bank-hotspot,febit-stall,cache-ways,mem-latency",
])
def test_faulted_engine_parity(faults):
    """Identical (plan, seed): byte-identical schedules and 1e-9
    seconds agreement between the DES and cohort engines."""
    job = parallel_job()
    plan = FaultPlan.parse(faults, seed=5)
    des = run_faulted_mta(mta(2), job, plan, use_cohort=False)
    coh = run_faulted_mta(mta(2), job, plan, use_cohort=True)
    assert des.schedule == coh.schedule
    assert abs(des.seconds - coh.seconds) <= REL_TOL * des.seconds

    cdes = run_faulted_conventional(exemplar(4), job, plan,
                                    use_cohort=False)
    ccoh = run_faulted_conventional(exemplar(4), job, plan,
                                    use_cohort=True)
    assert cdes.schedule == ccoh.schedule
    assert abs(cdes.seconds - ccoh.seconds) <= REL_TOL * cdes.seconds
