"""Human-readable summaries of workload descriptions.

``describe_job`` prints what a machine model is about to execute --
step kinds, thread counts, op totals, memory character -- which is the
first thing to look at when a simulated time surprises you.
"""

from __future__ import annotations

from repro.workload.ops import OpCounts
from repro.workload.task import (
    Job,
    JobStep,
    ParallelRegion,
    SerialStep,
    WorkQueueRegion,
)


def step_label(step: JobStep, index: int) -> str:
    """A stable short label for one job step.

    Used by the observability layer to name region spans in traces and
    metrics: serial steps carry their phase name, parallel regions
    their width and thread kind.
    """
    if isinstance(step, SerialStep):
        return f"[{index}] serial '{step.phase.name}'"
    if isinstance(step, ParallelRegion):
        return (f"[{index}] parallel x{step.n_threads} "
                f"{step.thread_kind}")
    if isinstance(step, WorkQueueRegion):
        return (f"[{index}] work-queue {len(step.items)} items "
                f"x{step.n_threads} {step.thread_kind}")
    return f"[{index}] {type(step).__name__}"  # pragma: no cover


def _fmt_ops(ops: OpCounts) -> str:
    return (f"{ops.total:,.3g} ops "
            f"({ops.mem_fraction:.0%} memory, "
            f"{ops.falu / ops.total:.0%} float)" if ops.total else
            "0 ops")


def describe_job(job: Job) -> str:
    """A multi-line structural summary of a job."""
    lines = [f"job '{job.name}': {len(job.steps)} steps, "
             f"{_fmt_ops(job.total_ops)}"]
    for i, step in enumerate(job.steps):
        if isinstance(step, SerialStep):
            p = step.phase
            extra = ""
            if p.parallelism > 1:
                extra += f", parallelism {p.parallelism:.0f}"
            if p.serial_cycles:
                extra += f", {p.serial_cycles:,.0f} serial cycles"
            lines.append(
                f"  [{i}] serial '{p.name}': {_fmt_ops(p.ops)}, "
                f"footprint {p.memory.unique_bytes / 1024:,.0f} KB"
                f"{extra}")
        elif isinstance(step, ParallelRegion):
            ops = OpCounts()
            for t in step.threads:
                ops = ops + t.total_ops
            works = [t.total_ops.total for t in step.threads]
            mean = sum(works) / len(works)
            imbalance = max(works) / mean if mean else 1.0
            lines.append(
                f"  [{i}] parallel region: {step.n_threads} "
                f"{step.thread_kind}-threads, {_fmt_ops(ops)}, "
                f"imbalance {imbalance:.2f}")
        elif isinstance(step, WorkQueueRegion):
            ops = OpCounts()
            n_crit = 0
            for item in step.items:
                for it in item.items:
                    ops = ops + it.phase.ops
                    from repro.workload.task import Critical
                    if isinstance(it, Critical):
                        n_crit += 1
            lines.append(
                f"  [{i}] work queue: {len(step.items)} items on "
                f"{step.n_threads} {step.thread_kind}-threads, "
                f"{_fmt_ops(ops)}, {n_crit} critical sections")
    return "\n".join(lines)


def job_summary(job: Job) -> dict[str, float]:
    """Machine-readable totals (for assertions and dashboards)."""
    total = job.total_ops
    return {
        "steps": float(len(job.steps)),
        "total_ops": total.total,
        "mem_ops": total.mem_ops,
        "mem_fraction": total.mem_fraction,
        "max_parallel_threads": float(job.max_parallel_threads),
    }
