"""Parallel experiment execution.

The registry's experiments are independent of each other (they share
only the read-only :class:`BenchmarkData` kernels and the persistent
result cache), so ``python -m repro all`` / ``report`` can fan them out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker
process builds its own ``BenchmarkData`` (the kernels are cheap; the
simulations are not) and shares simulation results with every other
worker through the on-disk cache, so even a cold parallel run does not
duplicate the expensive work that experiments have in common.

``run_experiments`` also collects a per-experiment profile (wall time
and cache hit/miss counts) for the CLI's ``--profile`` flag.

The pool path is crash-resilient: a worker dying mid-experiment (a
real segfault/OOM kill, or an injected fault -- see
``REPRO_CHAOS_CRASH``) breaks the whole ProcessPoolExecutor, but
results that finished before the crash are salvaged, the pool is
rebuilt and only the unfinished experiments are retried, with bounded
attempts (``REPRO_RETRY_MAX``, default 3) and exponential backoff
(base ``REPRO_RETRY_BACKOFF_S``, default 0.25 s).  An experiment that
*raises* in a worker travels back as :class:`WorkerError` carrying the
full child traceback, not just the exception repr.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.harness import store
from repro.harness.experiment import ExperimentResult
from repro.harness.registry import EXPERIMENT_IDS, run_experiment
from repro.harness.runner import BenchmarkData, default_data

#: ``seed:rate[:mode]`` -- deterministically crash-fault workers.  A
#: worker handling experiment ``eid`` on attempt ``a`` dies iff
#: ``sha256(seed|eid|a|worker-crash)`` maps below ``rate``; mode
#: ``exit`` (default) kills the process (breaking the pool), ``raise``
#: raises inside the experiment instead.
CHAOS_CRASH_ENV = "REPRO_CHAOS_CRASH"

RETRY_MAX_ENV = "REPRO_RETRY_MAX"
RETRY_BACKOFF_ENV = "REPRO_RETRY_BACKOFF_S"


class WorkerError(RuntimeError):
    """An experiment failed inside a worker process.

    ProcessPoolExecutor pickles exceptions across the process boundary
    and the traceback does not survive the trip -- debugging a parallel
    run used to mean re-running serially.  Workers therefore catch
    everything, format the traceback *in the child*, and send it back
    attached to this exception.
    """

    def __init__(self, experiment_id: str, child_traceback: str):
        self.experiment_id = experiment_id
        self.child_traceback = child_traceback
        super().__init__(
            f"experiment {experiment_id!r} failed in a worker process\n"
            f"--- worker traceback ---\n{child_traceback}")

    def __reduce__(self):
        # default exception pickling replays args (the joined message)
        # into __init__, which takes two fields -- rebuild explicitly
        return (WorkerError, (self.experiment_id, self.child_traceback))


def _crash_config() -> Optional[tuple[int, float, str]]:
    raw = os.environ.get(CHAOS_CRASH_ENV, "")
    if not raw:
        return None
    parts = raw.split(":")
    if len(parts) < 2:
        raise ValueError(
            f"{CHAOS_CRASH_ENV} must be seed:rate[:mode], got {raw!r}")
    mode = parts[2] if len(parts) > 2 else "exit"
    if mode not in ("exit", "raise"):
        raise ValueError(f"unknown crash mode {mode!r}")
    return int(parts[0]), float(parts[1]), mode


def _maybe_crash(experiment_id: str, attempt: int) -> None:
    """Deterministic worker-crash injection (chaos testing)."""
    cfg = _crash_config()
    if cfg is None:
        return
    seed, rate, mode = cfg
    from repro.faults.plan import derive_unit

    if derive_unit(seed, experiment_id, attempt, "worker-crash") < rate:
        if mode == "raise":
            raise RuntimeError(
                f"injected worker fault for {experiment_id!r} "
                f"(attempt {attempt})")
        os._exit(17)  # no cleanup -- model a hard crash/OOM kill


@dataclass(frozen=True)
class ExperimentProfile:
    """Cost accounting for one experiment run."""

    experiment_id: str
    wall_seconds: float
    cache_hits: int
    cache_misses: int
    #: one record per simulation the experiment consulted
    #: (``BenchmarkData.metrics_log`` entries: kind/machine/job/
    #: seconds/stats) -- the raw material of ``repro all --metrics``
    metrics: tuple[dict, ...] = ()


def _run_one(experiment_id: str, threat_scale: float,
             terrain_scale: float, attempt: int = 0,
             started_dir: Optional[str] = None
             ) -> tuple[ExperimentResult, ExperimentProfile]:
    """Worker body: run one experiment and account for it.

    Top-level (picklable) for ProcessPoolExecutor.  ``default_data`` is
    lru-cached per process, so a worker reuses its kernels across every
    experiment it is handed.  Hit/miss attribution uses
    :func:`repro.harness.store.cache_scope`, which counts the lookups
    made in this call's context exactly -- unlike snapshot deltas of
    the process-cumulative counters, it stays correct even if runs
    ever interleave within one process.

    ``started_dir`` is the pool's start-sentinel scratch directory:
    touching ``<eid>.<attempt>`` *before* any crash can happen lets the
    parent distinguish experiments whose worker actually died from
    experiments merely poisoned by someone else's pool breakage.
    """
    try:
        if started_dir is not None:
            with open(os.path.join(
                    started_dir, f"{experiment_id}.{attempt}"), "w"):
                pass
        _maybe_crash(experiment_id, attempt)
        data = default_data(threat_scale, terrain_scale)
        n0 = len(data.metrics_log)
        t0 = time.perf_counter()
        with store.cache_scope() as sc:
            result = run_experiment(experiment_id, data)
        wall = time.perf_counter() - t0
        return result, ExperimentProfile(
            experiment_id=experiment_id, wall_seconds=wall,
            cache_hits=sc.hits, cache_misses=sc.misses,
            metrics=tuple(data.metrics_log[n0:]))
    except WorkerError:
        raise
    except BaseException:
        raise WorkerError(experiment_id, traceback.format_exc()) \
            from None


def run_experiments(
    experiment_ids: Optional[Iterable[str]] = None,
    *,
    threat_scale: float,
    terrain_scale: float,
    jobs: Optional[int] = None,
    data: Optional[BenchmarkData] = None,
) -> tuple[dict[str, ExperimentResult], list[ExperimentProfile]]:
    """Run experiments, in parallel when ``jobs > 1``.

    Results come back keyed by id in the requested order regardless of
    completion order.  ``jobs=None`` uses the CPU count; ``jobs=1``
    runs serially in-process (sharing ``data`` when given, so tests and
    the single-core path pay no pickling or re-kerneling cost).

    With ``REPRO_RUN_TIMEOUT_S=soft[:hard]`` set, a
    :class:`~repro.obs.watchdog.RunWatchdog` shadows the whole run:
    warn on stderr past ``soft`` wall-clock seconds, interrupt the run
    past ``hard``.
    """
    from contextlib import nullcontext

    from repro.obs.watchdog import RUN_TIMEOUT_ENV, RunWatchdog

    raw_timeout = os.environ.get(RUN_TIMEOUT_ENV, "")
    guard = (RunWatchdog.from_env(raw_timeout) if raw_timeout
             else nullcontext())
    with guard:
        return _run_experiments_inner(
            experiment_ids, threat_scale=threat_scale,
            terrain_scale=terrain_scale, jobs=jobs, data=data)


def _run_experiments_inner(
    experiment_ids: Optional[Iterable[str]] = None,
    *,
    threat_scale: float,
    terrain_scale: float,
    jobs: Optional[int] = None,
    data: Optional[BenchmarkData] = None,
) -> tuple[dict[str, ExperimentResult], list[ExperimentProfile]]:
    ids: Sequence[str] = tuple(experiment_ids or EXPERIMENT_IDS)
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(ids)))

    if jobs == 1:
        if data is None:
            data = default_data(threat_scale, terrain_scale)
        results: dict[str, ExperimentResult] = {}
        profiles: list[ExperimentProfile] = []
        for eid in ids:
            n0 = len(data.metrics_log)
            t0 = time.perf_counter()
            with store.cache_scope() as sc:
                results[eid] = run_experiment(eid, data)
            wall = time.perf_counter() - t0
            profiles.append(ExperimentProfile(
                experiment_id=eid, wall_seconds=wall,
                cache_hits=sc.hits, cache_misses=sc.misses,
                metrics=tuple(data.metrics_log[n0:])))
        return results, profiles

    pairs = _pool_run(ids, threat_scale, terrain_scale, jobs)
    return ({eid: pairs[eid][0] for eid in ids},
            [pairs[eid][1] for eid in ids])


def _pool_run(ids: Sequence[str], threat_scale: float,
              terrain_scale: float, jobs: int
              ) -> dict[str, tuple[ExperimentResult, ExperimentProfile]]:
    """Fan experiments over a process pool, surviving worker crashes.

    A worker that dies (``os._exit``, segfault, OOM kill) breaks the
    entire pool: every unfinished future raises
    :class:`BrokenProcessPool`.  Futures that completed *before* the
    crash still hold their results, so those are salvaged; the pool is
    rebuilt and only the failures are retried -- each experiment gets
    ``REPRO_RETRY_MAX`` attempts with exponential backoff.  The attempt
    number reaches the worker, so deterministic crash injection
    (``REPRO_CHAOS_CRASH``) can fault attempt 0 and spare the retry.

    Pool breakage poisons *every* unfinished future, including
    experiments that were still queued (or mid-run on another worker)
    when the culprit's worker died, and the executor gives no way to
    tell them apart.  Charging every poisoned future an attempt would
    let one bad experiment exhaust innocent budgets.  So workers touch
    a start sentinel before running, and after a breakage the
    experiments that had *started* the broken round (a superset
    containing the culprit, at most pool-width wide) are re-run one at
    a time: running alone, a crash identifies its experiment exactly,
    and only that experiment's attempt counter moves.  Experiments
    that never started are requeued uncharged.
    """
    import shutil
    import tempfile

    max_attempts = max(1, int(os.environ.get(RETRY_MAX_ENV, "3")))
    backoff = float(os.environ.get(RETRY_BACKOFF_ENV, "0.25"))
    done: dict[str, tuple[ExperimentResult, ExperimentProfile]] = {}
    pending: dict[str, int] = {eid: 0 for eid in ids}
    suspects: dict[str, int] = {}
    started_dir = tempfile.mkdtemp(prefix="repro-pool-")
    pool = ProcessPoolExecutor(max_workers=jobs)

    def rebuild_pool() -> None:
        nonlocal pool
        # the broken pool cannot run anything anymore
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(max_workers=jobs)

    try:
        while pending or suspects:
            # isolation phase: one suspect at a time, so a dead worker
            # names its experiment unambiguously
            while suspects:
                eid, attempt = next(iter(suspects.items()))
                fut = pool.submit(_run_one, eid, threat_scale,
                                  terrain_scale, attempt, started_dir)
                try:
                    done[eid] = fut.result()
                    del suspects[eid]
                except BrokenProcessPool as exc:
                    rebuild_pool()
                    attempt += 1
                    if attempt >= max_attempts:
                        raise WorkerError(
                            eid,
                            f"worker process died "
                            f"({max_attempts} attempts): {exc}") \
                            from exc
                    suspects[eid] = attempt
                    time.sleep(backoff * (2.0 ** (attempt - 1)))
                except Exception:
                    attempt += 1
                    if attempt >= max_attempts:
                        raise
                    suspects[eid] = attempt
                    time.sleep(backoff * (2.0 ** (attempt - 1)))
            if not pending:
                break

            # batch phase: fan everything still pending over the pool
            futures = {
                eid: pool.submit(_run_one, eid, threat_scale,
                                 terrain_scale, attempt, started_dir)
                for eid, attempt in pending.items()
            }
            retry: dict[str, int] = {}
            rebuild = False
            for eid, fut in futures.items():
                try:
                    done[eid] = fut.result()
                except BrokenProcessPool:
                    rebuild = True
                    started = os.path.exists(os.path.join(
                        started_dir, f"{eid}.{pending[eid]}"))
                    if started:
                        suspects[eid] = pending[eid]
                    else:                # collateral: requeue uncharged
                        retry[eid] = pending[eid]
                except Exception:
                    attempt = pending[eid] + 1
                    if attempt >= max_attempts:
                        raise
                    retry[eid] = attempt
                    time.sleep(backoff * (2.0 ** (attempt - 1)))
            if rebuild:
                rebuild_pool()
                if not suspects:
                    # sentinel writes failed somehow: isolate everyone
                    # poisoned rather than loop without progress
                    suspects, retry = retry, {}
            pending = retry
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
        shutil.rmtree(started_dir, ignore_errors=True)
    return done


def metrics_rollup(profile: ExperimentProfile) -> dict:
    """Aggregate one experiment's simulation records into totals."""
    totals = {
        "sim_runs": 0,
        "simulated_seconds": 0.0,
        "cohort_regions": 0.0,
        "des_regions": 0.0,
        "closed_form_regions": 0.0,
        "drained_grants": 0.0,
        "stepped_grants": 0.0,
        "region_wall_seconds": 0.0,
        "serial_wall_seconds": 0.0,
        "lock_wait_seconds": 0.0,
        "lock_convoy_max": 0.0,
    }
    for rec in profile.metrics:
        stats = rec.get("stats") or {}
        totals["sim_runs"] += 1
        totals["simulated_seconds"] += float(rec.get("seconds", 0.0))
        totals["cohort_regions"] += stats.get("cohort_regions", 0.0)
        totals["des_regions"] += stats.get("des_regions", 0.0)
        totals["closed_form_regions"] += stats.get(
            "closed_form_regions", 0.0)
        totals["drained_grants"] += stats.get(
            "cohort_drained_grants", 0.0)
        totals["stepped_grants"] += stats.get(
            "cohort_stepped_grants", 0.0)
        totals["region_wall_seconds"] += stats.get(
            "region_wall_seconds", 0.0)
        totals["serial_wall_seconds"] += stats.get(
            "serial_wall_seconds", 0.0)
        totals["lock_wait_seconds"] += stats.get("lock_wait_time", 0.0)
        convoy = stats.get("lock_convoy_max", 0.0)
        if convoy > totals["lock_convoy_max"]:
            totals["lock_convoy_max"] = convoy
    return totals


def metrics_to_dict(profiles: list[ExperimentProfile]) -> dict:
    """Machine-readable ``--metrics-json`` payload (for CI)."""
    return {
        "schema": 1,
        "experiments": [
            {"experiment_id": p.experiment_id,
             "rollup": metrics_rollup(p),
             "runs": list(p.metrics)}
            for p in profiles
        ],
    }


def render_metrics(profiles: list[ExperimentProfile]) -> str:
    """The ``--metrics`` table: per-experiment simulation rollups."""
    lines = [
        f"{'experiment':<26} {'sims':>5} {'sim-sec':>10} "
        f"{'regions c/d':>12} {'closed':>7} {'drained':>8} "
        f"{'region-wall':>12} {'lock-wait':>10} {'convoy':>7}",
        "-" * 96,
    ]
    for p in profiles:
        t = metrics_rollup(p)
        regions = (f"{t['cohort_regions']:.0f}/"
                   f"{t['des_regions']:.0f}")
        lines.append(
            f"{p.experiment_id:<26} {t['sim_runs']:>5d} "
            f"{t['simulated_seconds']:>10.3f} {regions:>12} "
            f"{t['closed_form_regions']:>7.0f} "
            f"{t['drained_grants']:>8.0f} "
            f"{t['region_wall_seconds']:>12.3f} "
            f"{t['lock_wait_seconds']:>10.3f} "
            f"{t['lock_convoy_max']:>7.0f}")
    return "\n".join(lines)


def render_profile(profiles: list[ExperimentProfile]) -> str:
    """The ``--profile`` table (per-experiment wall + cache traffic)."""
    lines = [
        f"{'experiment':<26} {'wall (s)':>9} {'cache hits':>11} "
        f"{'misses':>7}",
        "-" * 56,
    ]
    for p in profiles:
        lines.append(f"{p.experiment_id:<26} {p.wall_seconds:>9.2f} "
                     f"{p.cache_hits:>11d} {p.cache_misses:>7d}")
    lines.append("-" * 56)
    lines.append(
        f"{'total':<26} {sum(p.wall_seconds for p in profiles):>9.2f} "
        f"{sum(p.cache_hits for p in profiles):>11d} "
        f"{sum(p.cache_misses for p in profiles):>7d}")
    return "\n".join(lines)
