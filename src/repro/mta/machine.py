"""Macro performance model of the Tera MTA.

Executes :class:`~repro.workload.Job` descriptions on DES servers:

* **Issue slots.**  One fair-share server per processor with aggregate
  capacity of one instruction per cycle.  A thread executing a phase
  with memory fraction *f* is capped at ``clock / (21 + f * stall)``
  instructions per second -- one stream's best case -- so a lone thread
  crawls (the paper's 14x-slower-than-Alpha sequential runs) while
  dozens of threads saturate the processor (Table 6's chunk sweep).

* **Network.**  A single fair-share server for memory references; its
  capacity scales sublinearly with processors (prototype network).
  Memory-heavy phases hit this wall -- the reason fine-grained Terrain
  Masking speeds up only 1.4x on two processors (Table 11) while the
  compute-heavy Threat Analysis reaches 1.8x (Table 5).

* **Fine-grained phases.**  A phase with ``parallelism = p`` may occupy
  up to ``p`` streams; its issue demand spreads over *all* processors
  (the Tera runtime's virtual processors), so inner-loop parallelism
  scales past one processor without restructuring -- exactly the
  programming-model point the paper makes.

* Unhidable per-phase critical-path latency (``serial_cycles``) and
  full/empty-style lock costs (1 cycle) are also modelled.

Instruction counts come from abstract op counts divided by the LIW
packing factor (``ops_per_instruction``).

Serial steps and homogeneous single-stream regions take the vectorized
cohort fast path by default (see :mod:`repro.mta.cohort`); set
``REPRO_NO_COHORT=1`` or pass ``use_cohort=False`` to force the pure
DES path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.des import AllOf, FairShareServer, SimLock, Simulator, Store
from repro.obs.metrics import (
    MachineMetrics,
    hist_fields,
    lock_summary_from_resources,
    merge_lock_summaries,
)
from repro.obs.trace import active_tracer
from repro.workload.describe import step_label
from repro.workload.phase import Phase
from repro.workload.task import (
    Compute,
    Critical,
    Job,
    ParallelRegion,
    SerialStep,
    ThreadProgram,
    WorkQueueRegion,
)

from repro.workload.cohort import cohort_enabled

from repro.mta import cohort
from repro.mta.spec import MtaSpec


@dataclass(frozen=True)
class MtaRunResult:
    """Outcome of simulating one job on the MTA."""

    machine: str
    job: str
    seconds: float
    issue_utilization: float      # mean across processors
    network_utilization: float
    lock_wait_seconds: float
    n_threads_peak: int
    stats: dict[str, float] = field(default_factory=dict)


class MtaMachine:
    """DES performance model of the Tera MTA."""

    def __init__(self, spec: MtaSpec, slices_per_phase: int = 8,
                 use_cohort: bool | None = None):
        if slices_per_phase < 1:
            raise ValueError("slices_per_phase must be >= 1")
        self.spec = spec
        self.slices_per_phase = slices_per_phase
        self.use_cohort = (cohort_enabled() if use_cohort is None
                           else bool(use_cohort))

    # ------------------------------------------------------------------
    def run(self, job: Job) -> MtaRunResult:
        spec = self.spec
        sim = Simulator()
        tracer = active_tracer()
        metrics = MachineMetrics(tracer)
        if tracer is not None:
            tracer.begin_run(f"{spec.name}/{job.name}")
            sim.trace = tracer
        issue = [
            FairShareServer(sim, capacity=spec.clock_hz,
                            name=f"issue-p{p}")
            for p in range(spec.n_processors)
        ]
        network = FairShareServer(
            sim, capacity=spec.network_capacity_words_per_s(),
            name="network")
        locks: dict[str, SimLock] = {}
        peak = [1]
        acct = {"cohort_regions": 0, "des_regions": 0,
                "cohort_serial_steps": 0, "des_serial_steps": 0,
                "closed_form_regions": 0, "drained_grants": 0,
                "stepped_grants": 0, "engine_events": 0,
                "locks": {"waits": 0, "wait_time": 0.0, "convoy_max": 0,
                          "hist": {}}}

        main = sim.process(
            self._job_body(sim, job, issue, network, locks, peak, acct,
                           metrics),
            name=job.name)
        sim.run_all(main)
        if tracer is not None:
            tracer.end_run(sim.now)

        total = sim.now
        lock_sum = merge_lock_summaries(
            lock_summary_from_resources(locks.values()), acct["locks"])
        issue_util = (sum(s.utilization(total) for s in issue) / len(issue)
                      if total > 0 else 0.0)
        stats = {
            "network_busy_time": network.busy_time,
            "issue_busy_time_total": float(
                sum(s.busy_time for s in issue)),
            "cohort_regions": float(acct["cohort_regions"]),
            "des_regions": float(acct["des_regions"]),
            "cohort_serial_steps": float(acct["cohort_serial_steps"]),
            "des_serial_steps": float(acct["des_serial_steps"]),
            "closed_form_regions": float(acct["closed_form_regions"]),
            "cohort_drained_grants": float(acct["drained_grants"]),
            "cohort_stepped_grants": float(acct["stepped_grants"]),
            "cohort_engine_events": float(acct["engine_events"]),
            "lock_wait_time": lock_sum["wait_time"],
            "lock_convoy_max": float(lock_sum["convoy_max"]),
        }
        stats.update(metrics.rollup())
        stats.update(hist_fields(lock_sum["hist"]))
        return MtaRunResult(
            machine=spec.name,
            job=job.name,
            seconds=total,
            issue_utilization=issue_util,
            network_utilization=(network.utilization(total)
                                 if total > 0 else 0.0),
            lock_wait_seconds=lock_sum["wait_time"],
            n_threads_peak=peak[0],
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _lock(self, sim, locks, name: str) -> SimLock:
        if name not in locks:
            locks[name] = SimLock(sim, name=name)
        return locks[name]

    def _stream_cap(self, mem_fraction: float) -> float:
        """One stream's instruction-rate ceiling for a given mix."""
        return self.spec.stream_issue_rate(mem_fraction)

    def _creation(self, issue0, kind: str, n_threads: int):
        """Parent-side thread creation: a single stream issuing the
        create instructions."""
        costs = self.spec.costs_for(kind)
        cycles = costs.create_cycles * n_threads
        if cycles <= 0:
            return None
        # The cost is quoted in cycles; the creating stream retires them
        # at full pipeline rate (creation is not memory-bound).
        return issue0.submit(cycles, cap=self.spec.clock_hz)

    def _job_body(self, sim, job, issue, network, locks, peak, acct,
                  metrics):
        # ``cursor`` runs ahead of sim.now through fast-path steps; one
        # timeout folds the accumulated span back into the DES clock
        # around any step that needs real events.
        spec = self.spec
        cursor = sim.now
        for idx, step in enumerate(job.steps):
            label = step_label(step, idx)
            if isinstance(step, SerialStep):
                if self.use_cohort:
                    t0 = cursor
                    cursor = cohort.run_serial_phase(
                        self, step.phase, cursor, issue, network)
                    acct["cohort_serial_steps"] += 1
                    metrics.region("serial", "cohort", label, t0, cursor)
                    continue
                acct["des_serial_steps"] += 1
                if cursor > sim.now:
                    yield sim.timeout(cursor - sim.now)
                t0 = sim.now
                yield from self._run_phase(sim, step.phase, 0, issue,
                                           network)
                cursor = sim.now
                metrics.region("serial", "des", label, t0, cursor)
            elif isinstance(step, ParallelRegion):
                peak[0] = max(peak[0], step.n_threads)
                if self.use_cohort and cohort.region_eligible(step):
                    t0 = cursor
                    cursor, lock_sum, est = cohort.run_region(
                        self, step, cursor, issue, network)
                    acct["cohort_regions"] += 1
                    acct["closed_form_regions"] += est["closed_form"]
                    acct["drained_grants"] += est["drained_grants"]
                    acct["stepped_grants"] += est["stepped_grants"]
                    acct["engine_events"] += est["events"]
                    merge_lock_summaries(acct["locks"], lock_sum)
                    metrics.region("parallel", "cohort", label, t0,
                                   cursor, step.n_threads)
                    continue
                acct["des_regions"] += 1
                if cursor > sim.now:
                    yield sim.timeout(cursor - sim.now)
                t0 = sim.now
                ev = self._creation(issue[0], step.thread_kind,
                                    step.n_threads)
                if ev is not None:
                    yield ev
                procs = [
                    sim.process(
                        self._thread_body(sim, th, i % spec.n_processors,
                                          issue, network, locks,
                                          step.thread_kind),
                        name=th.name)
                    for i, th in enumerate(step.threads)
                ]
                yield AllOf(sim, procs)
                cursor = sim.now
                metrics.region("parallel", "des", label, t0, cursor,
                               step.n_threads)
            elif isinstance(step, WorkQueueRegion):
                peak[0] = max(peak[0], step.n_threads)
                if self.use_cohort and cohort.region_eligible(step):
                    t0 = cursor
                    cursor, lock_sum, est = cohort.run_region(
                        self, step, cursor, issue, network)
                    acct["cohort_regions"] += 1
                    acct["closed_form_regions"] += est["closed_form"]
                    acct["drained_grants"] += est["drained_grants"]
                    acct["stepped_grants"] += est["stepped_grants"]
                    acct["engine_events"] += est["events"]
                    merge_lock_summaries(acct["locks"], lock_sum)
                    metrics.region("parallel", "cohort", label, t0,
                                   cursor, step.n_threads)
                    continue
                acct["des_regions"] += 1
                if cursor > sim.now:
                    yield sim.timeout(cursor - sim.now)
                t0 = sim.now
                ev = self._creation(issue[0], step.thread_kind,
                                    step.n_threads)
                if ev is not None:
                    yield ev
                queue = Store(sim, name="work-queue")
                for item in step.items:
                    queue.put(item)
                procs = [
                    sim.process(
                        self._worker_body(sim, queue, i % spec.n_processors,
                                          issue, network, locks,
                                          step.thread_kind),
                        name=f"worker-{i}")
                    for i in range(step.n_threads)
                ]
                yield AllOf(sim, procs)
                cursor = sim.now
                metrics.region("parallel", "des", label, t0, cursor,
                               step.n_threads)
            else:  # pragma: no cover
                raise TypeError(f"unknown job step {step!r}")
        if cursor > sim.now:
            yield sim.timeout(cursor - sim.now)

    def _thread_body(self, sim, program: ThreadProgram, proc: int, issue,
                     network, locks, kind: str):
        for item in program.items:
            yield from self._run_item(sim, item, proc, issue, network,
                                      locks, kind)

    def _worker_body(self, sim, queue: Store, proc: int, issue, network,
                     locks, kind: str):
        costs = self.spec.costs_for(kind)
        while True:
            ok, item = queue.try_get()
            if not ok:
                return
            # synchronized queue pop: one full/empty access
            yield issue[proc].submit(costs.sync_cycles,
                                     cap=self._stream_cap(1.0))
            for it in item.items:
                yield from self._run_item(sim, it, proc, issue, network,
                                          locks, kind)

    def _run_item(self, sim, item, proc, issue, network, locks, kind):
        if isinstance(item, Compute):
            yield from self._run_phase(sim, item.phase, proc, issue,
                                       network)
        elif isinstance(item, Critical):
            costs = self.spec.costs_for(kind)
            lock = self._lock(sim, locks, item.lock)
            grant = yield lock.acquire()
            try:
                # full/empty-bit acquisition: one cycle
                yield issue[proc].submit(costs.sync_cycles,
                                         cap=self._stream_cap(1.0))
                yield from self._run_phase(sim, item.phase, proc, issue,
                                           network)
            finally:
                lock.release(grant)
        else:  # pragma: no cover
            raise TypeError(f"unknown thread item {item!r}")

    def _run_phase(self, sim, phase: Phase, proc: int, issue, network):
        spec = self.spec
        ops = phase.ops
        words = ops.mem_ops
        # LIW packing: up to `ops_per_instruction` ops per bundle, but a
        # bundle has a single memory slot, so the instruction count can
        # never drop below the number of memory references.
        instr = max(ops.total / spec.ops_per_instruction, words)
        if instr <= 0 and phase.serial_cycles <= 0:
            return
        memf = words / instr if instr > 0 else 0.0
        stream_rate = self._stream_cap(memf)
        p = phase.parallelism
        slices = self.slices_per_phase

        if p <= 1:
            # one stream on this thread's processor
            cap = stream_rate
            per_slice_instr = instr / slices
            per_slice_words = words / slices
            for _ in range(slices):
                events = []
                if per_slice_instr > 0:
                    events.append(issue[proc].submit(per_slice_instr,
                                                     cap=cap))
                if per_slice_words > 0:
                    events.append(network.submit(per_slice_words))
                if events:
                    yield AllOf(sim, events)
        else:
            # fine-grained phase: spread over all processors
            n_proc = spec.n_processors
            per_proc_streams = min(p / n_proc, spec.streams_per_processor)
            cap = per_proc_streams * stream_rate
            per_slice_instr = instr / (slices * n_proc)
            per_slice_words = words / slices
            for _ in range(slices):
                events = [
                    issue[q].submit(per_slice_instr, cap=cap)
                    for q in range(n_proc)
                    if per_slice_instr > 0
                ]
                if per_slice_words > 0:
                    events.append(network.submit(per_slice_words))
                if events:
                    yield AllOf(sim, events)

        if phase.serial_cycles > 0:
            yield sim.timeout(phase.serial_cycles / spec.clock_hz)
