"""Deterministic fault plans and schedules.

A :class:`FaultPlan` says *what* goes wrong (a fault kind), *when*
(a fraction of the job's step sequence) and *how badly* (a severity in
``(0, 1]``).  Fields the user leaves open are filled deterministically
from the plan seed, so ``repro chaos --faults streams --seed 7`` is
fully reproducible -- and because every derived quantity comes from
:func:`hashlib.sha256` over the plan, the seed and the job/machine
names (never from simulation state), the realized schedule is
byte-identical under the DES and cohort engines, across platforms and
across processes.

Fault kinds (see DESIGN.md section 10 for the exact derating math):

==============  =======================================================
``streams``     MTA stream revocation: the runtime reclaims a fraction
                of the 128 hardware streams per processor.
``bank-hotspot``  Memory-bank hot-spotting: effective network/bus
                bandwidth drops (MTA words-per-cycle, SMP bus bytes/s).
``febit-stall`` Full/empty-bit retry storms: memory latency and
                synchronization cost inflate on the MTA.
``cache-ways``  Cache-way failure on conventional machines: lost
                associativity and proportional capacity.
``mem-latency`` Miss-latency inflation on conventional machines (a
                degraded bus or DRAM path).
==============  =======================================================

Kinds that do not apply to a machine family (``cache-ways`` on the
cache-less MTA, ``streams`` on an SMP) are scheduled but ignored by the
derating step; the schedule payload records them so cross-engine diffs
stay trivial.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

#: the fault kinds understood by the injector
FAULT_KINDS = ("streams", "bank-hotspot", "febit-stall", "cache-ways",
               "mem-latency")

#: kinds that derate each machine family
MTA_KINDS = ("streams", "bank-hotspot", "febit-stall")
CONVENTIONAL_KINDS = ("bank-hotspot", "cache-ways", "mem-latency")


def derive_unit(*parts: object) -> float:
    """A deterministic float in ``[0, 1)`` from the given parts.

    Pure stdlib (sha256 over the ``|``-joined string forms), hence
    identical on every platform, process and engine.
    """
    text = "|".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """One requested fault: what / when / how badly.

    ``when`` is a fraction of the job's step sequence in ``[0, 1)``
    (0 = before the first step); ``severity`` is in ``(0, 1]``.
    Either may be ``None`` -- "derive it from the seed".
    """

    kind: str
    when: Optional[float] = None
    severity: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}")
        if self.when is not None and not 0.0 <= self.when < 1.0:
            raise ValueError("when must be in [0, 1)")
        if self.severity is not None and not 0.0 < self.severity <= 1.0:
            raise ValueError("severity must be in (0, 1]")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``kind[:when[:severity]]``; ``~`` leaves a field open."""
        parts = text.strip().split(":")
        if not 1 <= len(parts) <= 3:
            raise ValueError(
                f"bad fault spec {text!r}: expected kind[:when[:severity]]")

        def _field(i: int) -> Optional[float]:
            if i >= len(parts) or parts[i] in ("", "~"):
                return None
            try:
                return float(parts[i])
            except ValueError:
                raise ValueError(
                    f"bad fault spec {text!r}: {parts[i]!r} is not a "
                    f"number") from None

        return cls(kind=parts[0].strip(), when=_field(1),
                   severity=_field(2))


@dataclass(frozen=True)
class ScheduledFault:
    """A fault realized against one (job, machine) pair."""

    kind: str
    step: int          # job-step index at which the fault activates
    severity: float    # in (0, 1]

    def to_payload(self) -> dict:
        return {"kind": self.kind, "step": self.step,
                "severity": round(self.severity, 9)}


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault specs plus the seed that closes them."""

    specs: tuple[FaultSpec, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        if not self.specs:
            raise ValueError("a fault plan needs at least one fault")

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse a comma-separated list of fault specs."""
        items = [p for p in text.split(",") if p.strip()]
        if not items:
            raise ValueError("empty fault spec")
        return cls(specs=tuple(FaultSpec.parse(p) for p in items),
                   seed=seed)

    def to_payload(self) -> dict:
        """Canonical JSON-ready form (recorded into run stats)."""
        return {
            "seed": self.seed,
            "faults": [
                {"kind": s.kind, "when": s.when, "severity": s.severity}
                for s in self.specs
            ],
        }

    # ------------------------------------------------------------------
    def schedule(self, job_name: str, n_steps: int,
                 machine_name: str) -> tuple[ScheduledFault, ...]:
        """Realize the plan against one job on one machine.

        Open ``when``/``severity`` fields are filled from
        ``sha256(seed | index | kind | job | machine | field)``; the
        activation step is ``floor(when * n_steps)``.  Deterministic by
        construction -- no RNG state, no simulation feedback.
        """
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        out = []
        for i, spec in enumerate(self.specs):
            when = spec.when
            if when is None:
                when = derive_unit(self.seed, i, spec.kind, job_name,
                                   machine_name, "when")
            severity = spec.severity
            if severity is None:
                # (0, 1]: low severities are uninteresting, keep >= 0.25
                unit = derive_unit(self.seed, i, spec.kind, job_name,
                                   machine_name, "severity")
                severity = 0.25 + 0.75 * unit
            step = min(n_steps - 1, int(when * n_steps))
            out.append(ScheduledFault(kind=spec.kind, step=step,
                                      severity=severity))
        return tuple(out)
