"""The paper's future work: project both benchmarks onto MTA
configurations with 1-16 processors, on the prototype network and on a
mature (linearly scaling) one."""

import pytest

pytestmark = pytest.mark.slow  # cycle-accurate / full-sweep benches

from _support import run_and_report


def bench_scaling_projection(benchmark, data):
    run_and_report(benchmark, data, "scaling")
