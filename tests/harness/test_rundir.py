"""Tests for the durable run-artifact layer (``.repro_runs``).

The contract under test: every CLI invocation leaves a run directory
with an atomically finalized ``manifest.json``, a ``cells.jsonl``
streamed as results land, and a machine-readable ``report.json``;
concurrent runs never collide; disabling via ``REPRO_NO_RUNS`` is a
true no-op.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.harness import rundir
from repro.harness.rundir import RunWriter, cell_id, run_scope, slug


@pytest.fixture
def runs_root(tmp_path, monkeypatch):
    d = tmp_path / "runs"
    monkeypatch.setenv(rundir.RUNS_DIR_ENV, str(d))
    monkeypatch.delenv(rundir.NO_RUNS_ENV, raising=False)
    return d


def _manifest(writer: RunWriter) -> dict:
    with open(os.path.join(writer.directory, "manifest.json"),
              encoding="utf-8") as fh:
        return json.load(fh)


def _cells(writer: RunWriter) -> list[dict]:
    path = os.path.join(writer.directory, "cells.jsonl")
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


REC = {"kind": "mta", "machine": "Tera MTA[2p]",
       "job": "threat-chunked-256", "seconds": 12.5, "seed_offset": 1,
       "key": "k1", "stats": {"cohort_regions": 3.0}}


# ----------------------------------------------------------------------
# identifiers
# ----------------------------------------------------------------------

def test_slug_and_cell_id():
    assert slug("HP Exemplar S-Class[16p]") == "hp-exemplar-s-class-16p"
    assert slug("  weird--__stuff  ") == "weird-stuff"
    assert (cell_id("Tera MTA[2p]", "threat-chunked-256")
            == "tera-mta-2p/threat-chunked-256")


# ----------------------------------------------------------------------
# manifest lifecycle
# ----------------------------------------------------------------------

def test_manifest_round_trip(runs_root):
    writer = RunWriter("all", {"threat_scale": 0.01, "jobs": 2},
                       argv=["all", "-j", "2"])
    m = _manifest(writer)          # readable while still running
    assert m["status"] == "running"
    assert m["finished"] is None and m["duration_s"] is None

    writer.record("table5", dict(REC))
    writer.exit_status = 0
    writer.finish()
    m = _manifest(writer)
    assert m["schema"] == rundir.MANIFEST_SCHEMA
    assert m["run_id"] == writer.run_id
    assert m["command"] == "all"
    assert m["argv"] == ["all", "-j", "2"]
    assert m["flags"] == {"threat_scale": 0.01, "jobs": 2}
    assert m["status"] == "ok" and m["exit_status"] == 0
    assert m["finished"] is not None and m["duration_s"] >= 0
    assert m["machines"] == ["Tera MTA[2p]"]
    assert m["workloads"] == ["threat-chunked-256"]
    assert m["seed_offsets"] == [1]
    assert m["n_cells"] == 1
    assert m["engine_stats"]["sim_runs"] == 1
    assert m["engine_stats"]["cohort_regions"] == 3.0
    assert m["model_epoch"]            # non-empty hash


def test_finish_is_idempotent_and_maps_exit_status(runs_root):
    writer = RunWriter("bench")
    writer.exit_status = 1
    assert writer.finish() == writer.finish()  # same dir, once
    assert _manifest(writer)["status"] == "failed"


# ----------------------------------------------------------------------
# cells.jsonl streaming + dedupe
# ----------------------------------------------------------------------

def test_cells_stream_as_they_land_and_dedupe_on_key(runs_root):
    writer = RunWriter("all")
    writer.record("table5", dict(REC))
    # visible on disk *before* finish: an interrupted run keeps them
    (line,) = _cells(writer)
    assert line["cell"] == "tera-mta-2p/threat-chunked-256"
    assert line["seq"] == 0 and line["source"] == "table5"
    assert line["stats"] == {"cohort_regions": 3.0}

    # same cache key again (a replay re-reporting a worker's cell)
    writer.cell_sink("table6", [dict(REC)])
    assert len(_cells(writer)) == 1
    # no key = always written (bench rows, chaos entries)
    writer.record("bench", {"cell": "row-a", "kind": "bench",
                            "seconds": 1.0})
    writer.record("bench", {"cell": "row-a", "kind": "bench",
                            "seconds": 1.0})
    writer.finish()
    assert [c["seq"] for c in _cells(writer)] == [0, 1, 2]
    assert _manifest(writer)["n_cells"] == 3


# ----------------------------------------------------------------------
# report.json
# ----------------------------------------------------------------------

def test_write_report_payload_and_summary(runs_root):
    from repro.harness.experiment import ExperimentResult, Row, ShapeCheck

    result = ExperimentResult(
        "tableX", "T", rows=(Row("r", 1.0, 1.05),),
        checks=(ShapeCheck("holds", True), ShapeCheck("breaks", False)))
    writer = RunWriter("all")
    writer.write_report(results=[result], payload={"extra": 1})
    writer.finish()
    with open(os.path.join(writer.directory, "report.json"),
              encoding="utf-8") as fh:
        report = json.load(fh)
    assert report["schema"] == rundir.REPORT_SCHEMA
    assert report["run_id"] == writer.run_id
    assert report["results"][0]["experiment_id"] == "tableX"
    assert report["payload"] == {"extra": 1}
    # the manifest carries the check summary for cheap listing
    assert _manifest(writer)["report"] == {
        "experiments": 1, "checks_passed": 1, "checks_total": 2}


# ----------------------------------------------------------------------
# run_scope
# ----------------------------------------------------------------------

def test_run_scope_finalizes_on_success_and_error(runs_root):
    with run_scope("all", {"jobs": 1}) as run:
        run.exit_status = 0
    assert _manifest(run)["status"] == "ok"

    with pytest.raises(RuntimeError):
        with run_scope("all") as run:
            raise RuntimeError("boom")
    assert _manifest(run)["status"] == "error"


def test_run_scope_disabled_is_a_no_op(runs_root, monkeypatch):
    monkeypatch.setenv(rundir.NO_RUNS_ENV, "1")
    with run_scope("all") as run:
        assert run is None
    assert not runs_root.exists()


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------

def test_concurrent_writers_get_distinct_directories(runs_root):
    def make(n: int) -> str:
        writer = RunWriter("all", {"n": n})
        writer.record("t", {"cell": f"c{n}", "seconds": float(n)})
        writer.exit_status = 0
        writer.finish()
        return writer.directory

    with ThreadPoolExecutor(max_workers=8) as pool:
        dirs = list(pool.map(make, range(8)))
    assert len(set(dirs)) == 8
    for d in dirs:
        with open(os.path.join(d, "manifest.json")) as fh:
            assert json.load(fh)["status"] == "ok"


# ----------------------------------------------------------------------
# end to end through the scheduler
# ----------------------------------------------------------------------

def test_run_experiments_streams_cells_through_sink(runs_root):
    from repro.harness.parallel import run_experiments
    from repro.harness.runner import BenchmarkData

    data = BenchmarkData(threat_scale=0.01, terrain_scale=0.03)
    writer = RunWriter("all", {"jobs": 1})
    results, profiles = run_experiments(
        ["table2"], jobs=1, data=data,
        threat_scale=0.01, terrain_scale=0.03,
        cell_sink=writer.cell_sink)
    writer.exit_status = 0
    writer.finish()

    cells = _cells(writer)
    assert cells                       # table2 simulates machines
    assert all(c["source"] == "table2" for c in cells)
    assert all("/" in c["cell"] for c in cells)
    m = _manifest(writer)
    assert m["n_cells"] == len(cells)
    assert m["engine_stats"]["sim_runs"] == len(cells)
    assert m["machines"] and m["workloads"]
