"""Server behaviour: streaming, dedupe, disconnects, lifecycle."""

import asyncio
import json
import os
import signal
import subprocess
import sys

import pytest

from repro.harness.rundir import RunWriter, ensure_runs_root
from repro.service.loadgen import ServiceClient
from repro.__main__ import main

from tests.service.conftest import run_async, serve_ctx

MTA_CELL = {"machine": "mta:2", "workload": "th-job-seq"}


# ----------------------------------------------------------------------
# request validation on a live connection
# ----------------------------------------------------------------------

def test_malformed_payload_keeps_connection_usable():
    async def body():
        async with serve_ctx() as svc:
            client = await ServiceClient.connect("127.0.0.1",
                                                 svc.bound_port)
            # raw junk, a non-object, and a bad op -- each one error
            # line, none fatal to the connection
            client.writer.write(b"this is not json\n")
            await client.writer.drain()
            assert (await client.recv())["type"] == "error"
            client.writer.write(b"[1,2,3]\n")
            await client.writer.drain()
            assert (await client.recv())["type"] == "error"
            response = (await client.request({"op": "warp"}))[-1]
            assert response["type"] == "error"
            assert "unknown op" in response["error"]
            # still usable
            hello = (await client.request({"op": "hello"}))[-1]
            assert hello["type"] == "hello"
            await client.close()
            assert svc.counters.errors == 3
    run_async(body())


def test_unknown_machine_and_workload_reject_request():
    async def body():
        async with serve_ctx() as svc:
            client = await ServiceClient.connect("127.0.0.1",
                                                 svc.bound_port)
            for cells, needle in (
                    ([{"machine": "cray", "workload": "th-job-seq"}],
                     "unknown machine family"),
                    ([{"machine": "mta:2", "workload": "vortex"}],
                     "unknown workload"),
                    ([], "non-empty"),
                    ("nope", "non-empty")):
                response = (await client.request(
                    {"op": "simulate", "id": "r", "cells": cells}))[-1]
                assert response["type"] == "error"
                assert needle in response["error"]
                assert response["id"] == "r" or cells in ([], "nope")
            # a bad cell rejects the whole request before any engine
            # work: no cells were admitted
            assert svc.counters.cells == 0
            await client.close()
    run_async(body())


# ----------------------------------------------------------------------
# result streaming + dedupe
# ----------------------------------------------------------------------

def test_simulate_streams_cells_then_done():
    async def body():
        async with serve_ctx() as svc:
            client = await ServiceClient.connect("127.0.0.1",
                                                 svc.bound_port)
            lines = await client.request({
                "op": "simulate", "id": "r1",
                "cells": [MTA_CELL,
                          {"machine": "alpha",
                           "workload": "th-job-seq"}]})
            assert [ln["type"] for ln in lines] == \
                ["cell", "cell", "done"]
            done = lines[-1]
            assert done["id"] == "r1" and done["ok"]
            assert done["n_cells"] == 2 and done["n_sent"] == 2
            for ln in lines[:-1]:
                cell = ln["cell"]
                assert cell["seconds"] > 0
                assert cell["key"] and cell["stats"]
            # same request again: answered from the persistent cache
            again = await client.request({
                "op": "simulate", "id": "r2", "cells": [MTA_CELL]})
            assert [ln["type"] for ln in again] == ["cell", "done"]
            assert svc.counters.dedupe_cached == 1
            first = next(ln for ln in lines
                         if ln["cell"]["machine"].startswith("Tera"))
            assert again[0]["cell"]["seconds"] == \
                first["cell"]["seconds"]
            await client.close()
            assert svc.counters.engine_cells == 2
    run_async(body())


def test_identical_concurrent_requests_share_one_engine_run():
    """Two clients, same cell, same batch window: one engine run, two
    result streams (the in-flight dedupe contract)."""
    async def body():
        async with serve_ctx(batch_window=0.3) as svc:
            a = await ServiceClient.connect("127.0.0.1", svc.bound_port)
            b = await ServiceClient.connect("127.0.0.1", svc.bound_port)
            request = {"op": "simulate", "id": "dup", "cells": [MTA_CELL]}
            lines_a, lines_b = await asyncio.gather(
                a.request(dict(request)), b.request(dict(request)))
            for lines in (lines_a, lines_b):
                assert [ln["type"] for ln in lines] == ["cell", "done"]
            assert lines_a[0]["cell"] == lines_b[0]["cell"]
            assert svc.counters.engine_cells == 1
            assert svc.counters.dedupe_inflight == 1
            assert svc.counters.dedupe_cached == 0
            assert svc.counters.batches == 1
            await a.close()
            await b.close()
    run_async(body())


def test_disconnect_mid_stream_salvages_batch_for_others(tmp_path):
    """A subscriber vanishing must not sink the shared batch: the
    other subscriber still gets every cell, and the session's run
    directory records them."""
    async def body(run):
        async with serve_ctx(batch_window=0.3, run=run) as svc:
            cells = [
                {"machine": "mta:2", "workload": "th-job-seq"},
                {"machine": "mta:2", "workload": "te-job-seq"},
                {"machine": "alpha", "workload": "th-job-seq"},
                {"machine": "exemplar:4", "workload": "te-job-seq"},
            ]
            request = {"op": "simulate", "id": "s", "cells": cells}
            quitter = await ServiceClient.connect("127.0.0.1",
                                                  svc.bound_port)
            stayer = await ServiceClient.connect("127.0.0.1",
                                                 svc.bound_port)
            # the quitter requests and hangs up without reading a byte
            await quitter.send(dict(request))
            await quitter.close()
            lines = await stayer.request(dict(request))
            assert lines[-1]["type"] == "done" and lines[-1]["ok"]
            got = {ln["cell"]["job"] for ln in lines[:-1]}
            assert len(lines) == len(cells) + 1
            assert len(got) >= 2  # both benchmarks made it through
            # every distinct key ran exactly once despite two requests
            assert svc.counters.engine_cells == len(cells)
            assert svc.counters.dedupe_inflight == len(cells)
            await stayer.close()
    run = RunWriter("serve", {})
    run_async(body(run))
    run.exit_status = 0
    directory = run.finish()
    with open(os.path.join(directory, "cells.jsonl"),
              encoding="utf-8") as fh:
        recorded = [json.loads(line) for line in fh]
    assert len(recorded) == 4
    assert all(rec["source"] == "service" for rec in recorded)


def test_sweep_serves_registry_experiments():
    async def body():
        async with serve_ctx() as svc:
            client = await ServiceClient.connect("127.0.0.1",
                                                 svc.bound_port)
            bad = (await client.request({
                "op": "sweep", "id": "s0",
                "experiments": ["table99"]}))[-1]
            assert bad["type"] == "error"
            assert "table99" in bad["error"]
            lines = await client.request({
                "op": "sweep", "id": "s1", "experiments": ["table3"]})
            done = lines[-1]
            assert done["type"] == "done" and done["ok"]
            assert done["experiments"] == ["table3"]
            assert done["n_cells"] == len(lines) - 1 > 0
            await client.close()
    run_async(body())


# ----------------------------------------------------------------------
# startup / shutdown lifecycle
# ----------------------------------------------------------------------

def test_serve_rejects_unwritable_runs_root(tmp_path, monkeypatch,
                                            capsys):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file, not a directory")
    monkeypatch.setenv("REPRO_RUNS_DIR", str(blocker / "runs"))
    status = main(["serve", "--port", "0"])
    err = capsys.readouterr().err
    assert status == 2
    assert "REPRO_RUNS_DIR" in err


def test_ensure_runs_root_creates_and_probes(tmp_path, monkeypatch):
    root = tmp_path / "fresh" / "runs"
    monkeypatch.setenv("REPRO_RUNS_DIR", str(root))
    assert ensure_runs_root() == str(root)
    assert root.is_dir() and not any(root.iterdir())
    monkeypatch.setenv("REPRO_NO_RUNS", "1")
    assert ensure_runs_root() is None


def test_port_zero_prints_bound_port_and_sigterm_drains(tmp_path):
    """The CI contract end to end, against a real subprocess: ephemeral
    port on stdout before accepting, served requests, SIGTERM ->
    graceful drain -> exit 0."""
    env = dict(os.environ,
               PYTHONPATH="src",
               REPRO_CACHE_DIR=str(tmp_path / "cache"),
               REPRO_RUNS_DIR=str(tmp_path / "runs"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro",
         "--threat-scale", "0.01", "--terrain-scale", "0.02",
         "serve", "--port", "0", "--batch-window", "0.01"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        text=True)
    try:
        banner = proc.stdout.readline()
        assert "repro serve: listening on 127.0.0.1:" in banner
        port = int(banner.rsplit(":", 1)[1])
        assert port > 0

        async def talk():
            client = await ServiceClient.connect("127.0.0.1", port)
            lines = await client.request({
                "op": "simulate", "id": "r", "cells": [MTA_CELL]})
            assert lines[-1]["type"] == "done" and lines[-1]["ok"]
            await client.close()
        run_async(talk())
        proc.send_signal(signal.SIGTERM)
        status = proc.wait(timeout=60)
        stderr = proc.stderr.read()
        assert status == 0, stderr
        assert "drained" in stderr
        run_dirs = list((tmp_path / "runs").iterdir())
        run_dirs = [d for d in run_dirs if d.is_dir()]
        assert len(run_dirs) == 1
        manifest = json.loads(
            (run_dirs[0] / "manifest.json").read_text())
        assert manifest["command"] == "serve"
        assert manifest["status"] == "ok"
        assert manifest["n_cells"] == 1
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_shutdown_op_stops_the_server():
    async def body():
        svc_box = {}

        async def run_service():
            from tests.service.conftest import SCALES
            from repro.service.server import ReproService
            svc = ReproService(batch_window=0.01, **SCALES)
            svc_box["svc"] = svc
            await svc.start()
            await svc.serve_until_shutdown()

        server_task = asyncio.create_task(run_service())
        while "svc" not in svc_box \
                or svc_box["svc"].bound_port is None:
            await asyncio.sleep(0.01)
        client = await ServiceClient.connect(
            "127.0.0.1", svc_box["svc"].bound_port)
        bye = (await client.request({"op": "shutdown"}))[-1]
        assert bye["type"] == "bye"
        await client.close()
        await asyncio.wait_for(server_task, timeout=30)
    run_async(body())
