"""Workload extraction: Terrain Masking runs -> machine-model jobs.

Structurally (and this is what drives every Terrain Masking result in
the paper): the program is **memory-bound**.  Each threat's processing
sweeps region-sized arrays (temp, masking window, terrain window,
angle accumulators) that are far larger than any of the caches, so the
conventional machines are limited by memory bandwidth -- and more than
one op in three references memory, so the MTA is limited by its
network.  The per-cell LOS evaluation (quantised-ray interpolation and
grazing-ray candidates) dominates the op count.

Job shapes:

* sequential -- Program 3: per scenario, serial phases for the
  copy / compute / merge passes;
* blocked -- Program 4: a dynamic work queue of threats, per-item
  private temp phases and per-block lock-protected merges.  The blocked
  program *resets* its private temp instead of copying masking into it,
  which is the paper's "incidental speedup ... from swapping the roles
  of the temp and masking arrays" -- less traffic at one thread;
* fine-grained -- the Tera version: the same passes with inner-loop
  parallelism (ring width for the propagation, region rows for the
  sweeps) and the ring-ordering critical path as unhidable latency.
"""

from __future__ import annotations

from typing import Sequence

from repro.workload import (
    AccessPattern,
    Compute,
    Critical,
    Job,
    OpCounts,
    SerialStep,
    WorkItem,
    WorkQueueRegion,
    make_phase,
    read_of,
    write_of,
)

#: the benchmark's elevation grids are 16-bit integers
ELEV_BYTES = 2.0

from repro.c3i.terrain.blocked import BlockedResult
from repro.c3i.terrain.finegrained import FineGrainedTerrainResult
from repro.c3i.terrain.scenarios import TerrainScenario
from repro.c3i.terrain.sequential import TerrainMaskingResult

# ----------------------------------------------------------------------
# per-event op recipes (calibrated; see harness/calibration.py)
# ----------------------------------------------------------------------

#: initializing one cell of the masking array to +inf
OPS_PER_INIT_CELL = OpCounts(store=1.0, ialu=0.5)

#: copying one masking cell into temp (Program 3's save pass)
OPS_PER_COPY_CELL = OpCounts(load=1.0, store=1.0, ialu=1.5, branch=0.25)

#: resetting one private temp cell to +inf (Program 4's swap)
OPS_PER_RESET_CELL = OpCounts(store=1.0, ialu=1.0, branch=0.25)

#: one cell of the LOS shadow propagation: parent gathers, tangent,
#: grazing-ray interpolation, running max, safe-altitude store.
OPS_PER_RING_CELL = OpCounts(falu=60.0, ialu=35.0, load=45.0, store=14.0,
                             branch=12.0)

#: min-merging one cell back into the shared masking array
OPS_PER_MERGE_CELL = OpCounts(load=2.0, store=1.0, falu=1.0, ialu=1.5,
                              branch=0.25)

#: per-threat setup (region geometry, ring tables) -- serial-ish, small
OPS_SETUP_PER_THREAT = OpCounts(ialu=4000.0, falu=1000.0, load=2000.0,
                                store=1500.0, branch=800.0)

#: formatting/writing one covered cell of the masking output -- the
#: benchmark's output pass, inherently sequential (ordered stream)
OPS_PER_OUTPUT_CELL = OpCounts(load=0.3, store=0.2, ialu=0.8,
                               branch=0.2)

#: live arrays while processing one threat (temp, masking window,
#: terrain window, angle accumulator, altitude buffer)
LIVE_ARRAYS = 5.0

#: unhidable start/finish cost of one ring of the wavefront (cycles)
RING_START_CYCLES = 40.0


def _region_bytes(cells: float) -> float:
    return cells * ELEV_BYTES * LIVE_ARRAYS


def _avg_region_cells(result) -> float:
    n = len(getattr(result, "per_threat", None)
            or getattr(result, "per_threat_blocks", None)
            or getattr(result, "ring_profile", None) or [1])
    return result.n_region_cells_total / max(1, n)


def _init_phase(scenario: TerrainScenario, f: float,
                parallelism: float = 1.0):
    grid_cells = scenario.grid_n ** 2 * f
    return make_phase(
        f"t{scenario.index}-init", OPS_PER_INIT_CELL * grid_cells,
        unique_bytes=grid_cells * ELEV_BYTES,
        pattern=AccessPattern.SEQUENTIAL, access_bytes=ELEV_BYTES,
        parallelism=parallelism,
        accesses=(write_of("masking"),),
    )


def _covered_cells(result) -> float:
    import numpy as np
    return float(np.isfinite(result.masking).sum())


def _output_phase(scenario: TerrainScenario, result, f: float):
    cells = _covered_cells(result) * f
    return make_phase(
        f"t{scenario.index}-output", OPS_PER_OUTPUT_CELL * cells,
        unique_bytes=cells * ELEV_BYTES,
        pattern=AccessPattern.SEQUENTIAL, access_bytes=ELEV_BYTES,
        accesses=(read_of("masking"),),
    )


def _setup_phase(scenario: TerrainScenario):
    ops = OPS_SETUP_PER_THREAT * scenario.n_threats
    return make_phase(
        f"t{scenario.index}-setup", ops,
        unique_bytes=256 * 1024.0,
        pattern=AccessPattern.SEQUENTIAL,
    )


# ----------------------------------------------------------------------
# job builders
# ----------------------------------------------------------------------

def sequential_benchmark_job(
        scenarios: Sequence[TerrainScenario],
        results: Sequence[TerrainMaskingResult]) -> Job:
    """Program 3 over all five scenarios, one thread."""
    steps = []
    for scenario, result in zip(scenarios, results):
        f = scenario.extrapolation_factor
        region = _region_bytes(_avg_region_cells(result) * f)
        steps.append(SerialStep(_setup_phase(scenario)))
        steps.append(SerialStep(_init_phase(scenario, f)))
        steps.append(SerialStep(make_phase(
            f"t{scenario.index}-copy",
            OPS_PER_COPY_CELL * (result.n_region_cells_total * f),
            unique_bytes=region, pattern=AccessPattern.SEQUENTIAL,
            access_bytes=ELEV_BYTES,
            accesses=(read_of("masking"),))))
        steps.append(SerialStep(make_phase(
            f"t{scenario.index}-propagate",
            OPS_PER_RING_CELL * (result.ring_cells_total * f),
            unique_bytes=region, pattern=AccessPattern.STRIDED,
            access_bytes=ELEV_BYTES,
            accesses=(read_of("terrain"), write_of("masking")))))
        steps.append(SerialStep(make_phase(
            f"t{scenario.index}-merge",
            OPS_PER_MERGE_CELL * (result.n_region_cells_total * f),
            unique_bytes=region, pattern=AccessPattern.SEQUENTIAL,
            access_bytes=ELEV_BYTES,
            accesses=(write_of("masking"),))))
        steps.append(SerialStep(_output_phase(scenario, result, f)))
    return Job("terrain-sequential", tuple(steps))


def blocked_benchmark_job(
        scenarios: Sequence[TerrainScenario],
        results: Sequence[BlockedResult],
        thread_kind: str = "os") -> Job:
    """Program 4: dynamic threat queue, per-thread temp, block locks."""
    steps = []
    n_threads = results[0].n_threads
    for scenario, result in zip(scenarios, results):
        f = scenario.extrapolation_factor
        steps.append(SerialStep(_setup_phase(scenario)))
        steps.append(SerialStep(_init_phase(scenario, f)))
        items = []
        for t_idx, (cells, ring_cells, blocks) in enumerate(
                result.per_threat_blocks):
            region = _region_bytes(cells * f)
            # reset/propagate touch only the worker-private temp array
            # (the paper's per-thread storage), so they carry no shared
            # accesses; the merges min into the shared masking array at
            # block granularity under the per-block locks.
            work = [
                Compute(make_phase(
                    f"t{scenario.index}-th{t_idx}-reset",
                    OPS_PER_RESET_CELL * (cells * f),
                    unique_bytes=cells * f * ELEV_BYTES,
                    pattern=AccessPattern.SEQUENTIAL,
                    access_bytes=ELEV_BYTES)),
                Compute(make_phase(
                    f"t{scenario.index}-th{t_idx}-propagate",
                    OPS_PER_RING_CELL * (ring_cells * f),
                    unique_bytes=region,
                    pattern=AccessPattern.STRIDED,
                    access_bytes=ELEV_BYTES,
                    accesses=(read_of("terrain"),))),
            ]
            for bid, overlap_cells in blocks:
                work.append(Critical(
                    f"t{scenario.index}-block{bid}",
                    make_phase(
                        f"t{scenario.index}-th{t_idx}-merge-b{bid}",
                        OPS_PER_MERGE_CELL * (overlap_cells * f),
                        unique_bytes=overlap_cells * f * ELEV_BYTES * 2,
                        pattern=AccessPattern.SEQUENTIAL,
                        access_bytes=ELEV_BYTES,
                        shared_fraction=0.2,
                        accesses=(read_of("masking", bid, bid),
                                  write_of("masking", bid, bid)))))
            items.append(WorkItem(f"t{scenario.index}-threat{t_idx}",
                                  tuple(work)))
        steps.append(WorkQueueRegion(tuple(items), n_threads=n_threads,
                                     thread_kind=thread_kind))
        steps.append(SerialStep(_output_phase(scenario, result, f)))
    return Job(f"terrain-blocked-{n_threads}t", tuple(steps))


def finegrained_benchmark_job(
        scenarios: Sequence[TerrainScenario],
        results: Sequence[FineGrainedTerrainResult]) -> Job:
    """The Tera fine-grained version: threats in sequence, inner loops
    wide.  One control thread; each phase carries its parallelism."""
    steps = []
    for scenario, result in zip(scenarios, results):
        f = scenario.extrapolation_factor
        steps.append(SerialStep(_setup_phase(scenario)))
        # the Tera version parallelizes the initialization sweep too
        steps.append(SerialStep(_init_phase(
            scenario, f, parallelism=float(scenario.grid_n))))
        for t_idx, (cells, ring_sizes) in enumerate(result.ring_profile):
            region = _region_bytes(cells * f)
            n_rings = len(ring_sizes)
            ring_cells = sum(ring_sizes)
            mean_width = (ring_cells / n_rings if n_rings else 1.0)
            # ring widths scale linearly with the grid
            width = max(1.0, mean_width * f ** 0.5)
            rows = max(1.0, cells ** 0.5 * f ** 0.5)
            steps.append(SerialStep(make_phase(
                f"t{scenario.index}-th{t_idx}-copy",
                OPS_PER_COPY_CELL * (cells * f),
                unique_bytes=region,
                pattern=AccessPattern.SEQUENTIAL,
                access_bytes=ELEV_BYTES,
                parallelism=rows,
                accesses=(read_of("masking"),))))
            steps.append(SerialStep(make_phase(
                f"t{scenario.index}-th{t_idx}-propagate",
                OPS_PER_RING_CELL * (ring_cells * f),
                unique_bytes=region,
                pattern=AccessPattern.STRIDED,
                access_bytes=ELEV_BYTES,
                parallelism=width,
                serial_cycles=n_rings * f ** 0.5 * RING_START_CYCLES,
                accesses=(read_of("terrain"), write_of("masking")))))
            steps.append(SerialStep(make_phase(
                f"t{scenario.index}-th{t_idx}-merge",
                OPS_PER_MERGE_CELL * (cells * f),
                unique_bytes=region,
                pattern=AccessPattern.SEQUENTIAL,
                access_bytes=ELEV_BYTES,
                parallelism=rows,
                accesses=(write_of("masking"),))))
        steps.append(SerialStep(_output_phase(scenario, result, f)))
    return Job("terrain-finegrained", tuple(steps))


# ----------------------------------------------------------------------
# memory-capacity analysis (why Program 4 cannot feed the MTA)
# ----------------------------------------------------------------------

#: bytes of per-thread working storage per region cell in Program 4:
#: the int16 temp array plus the floating-point angle accumulator and
#: altitude buffer the LOS computation needs.
TEMP_BYTES_PER_CELL = ELEV_BYTES + 2 * 8.0


def blocked_memory_footprint(scenario: TerrainScenario,
                             n_threads: int) -> float:
    """Bytes of storage Program 4 needs at paper scale with
    ``n_threads`` worker threads.

    Section 6: "each thread requires its own temp array ... the region
    of influence of each threat is up to 5% of the total terrain.
    Therefore, this approach ... does not require excessive extra
    storage for small numbers of threads (e.g., sixteen), but may be
    impractical for large numbers of threads (e.g., hundreds)."
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    f = scenario.extrapolation_factor
    grid_cells = scenario.grid_n ** 2 * f
    # terrain + masking grids, shared
    fixed = grid_cells * ELEV_BYTES * 2.0
    # every worker holds the largest region's working set
    max_region = max(
        (2 * t.range_cells + 1) ** 2 for t in scenario.threats) * f
    return fixed + n_threads * max_region * TEMP_BYTES_PER_CELL
