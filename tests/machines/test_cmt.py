"""The CMT (SPARC T3-4) machine family: spec contract, catalog
registration and the cross-machine sanity ordering.

The ordering test is the behavioural core: on a fine-grained generated
workload the MTA's 2-cycle streams and the T3-4's ~500-cycle strand
park/wake both absorb thread creation, while the SMP's OS threads
convoy on the creating CPU -- so ``fine/coarse`` degradation must rank
MTA <= CMT << SMP, *out of the model*, not by assertion in the spec.
"""

import pytest

from repro.cmt import CMT_T3_4, CmtSpec, SPARC_T3_4, cmt
from repro.machines import get_machine_spec
from repro.machines.machine import ConventionalMachine
from repro.machines.spec import MachineSpec


def test_t3_4_structural_arithmetic():
    assert SPARC_T3_4.n_strands == 4 * 16 * 8 == 512
    assert SPARC_T3_4.strand_hz == pytest.approx(1.65e9 / 8)
    assert CMT_T3_4.n_cpus == 512
    # pool capacity: 512 strands at strand rate == 64 cores at 1.65 GHz
    assert CMT_T3_4.n_cpus * CMT_T3_4.core.clock_hz \
        == pytest.approx(64 * 1.65e9)
    assert CMT_T3_4.cache.capacity_bytes == 4 * 6 * 1024 * 1024


def test_cmt_spec_validation():
    with pytest.raises(ValueError):
        CmtSpec(sockets=0)
    with pytest.raises(ValueError):
        CmtSpec(clock_hz=0)


def test_thread_cost_table_has_an_explicit_hw_row():
    # the design point: strand park/wake sits between MTA streams
    # (2 cycles) and SMP OS threads (~1e5 cycles)
    hw = CMT_T3_4.costs_for("hw")
    os_row = CMT_T3_4.costs_for("os")
    assert 2.0 < hw.create_cycles < os_row.create_cycles
    # the SMPs have no hw row -- costs_for falls back to "os" there
    from repro.machines import EXEMPLAR_16

    assert EXEMPLAR_16.costs_for("hw") == EXEMPLAR_16.costs_for("os")


def test_cmt_slicer():
    assert cmt(512) is CMT_T3_4
    assert cmt(64).n_cpus == 64
    assert cmt(64).name == "SPARC T3-4[64p]"
    for bad in (0, 513):
        with pytest.raises(ValueError):
            cmt(bad)


def test_catalog_aliases_resolve_to_the_t3_4():
    for alias in ("cmt", "t3", "sparct34"):
        assert get_machine_spec(alias) is CMT_T3_4
    with pytest.raises(KeyError):
        get_machine_spec("t4")


def test_machines_package_reexports():
    from repro import machines

    assert machines.CMT_T3_4 is CMT_T3_4
    assert machines.cmt(16).n_cpus == 16
    assert isinstance(CMT_T3_4, MachineSpec)


def test_cross_machine_sanity_ordering():
    """fine/coarse degradation ranks MTA <= CMT << SMP on the same
    generated graphs -- the taskbench registry experiment's headline
    check, asserted here directly against the machines."""
    from repro.machines import exemplar
    from repro.mta import MtaMachine, mta
    from repro.taskbench import job_from_recipe

    fine = job_from_recipe("tb-mesh-w64-d6-g1-s0-hw")
    coarse = job_from_recipe("tb-mesh-w8-d6-g8-s0-hw")

    def ratio(machine):
        return machine.run(fine).seconds / machine.run(coarse).seconds

    mta_ratio = ratio(MtaMachine(mta(1)))
    cmt_ratio = ratio(ConventionalMachine(cmt(256)))
    smp_ratio = ratio(ConventionalMachine(exemplar(16)))
    assert mta_ratio <= cmt_ratio * 1.05   # streams at least as cheap
    assert smp_ratio >= 2.0 * cmt_ratio    # OS threads convoy
    assert smp_ratio >= 3.0                # and it hurts in absolute terms


def test_more_strands_never_hurt():
    from repro.taskbench import job_from_recipe

    job = job_from_recipe("tb-stencil-w32-d4-g2-s0-hw")
    prev = float("inf")
    for n in (8, 32, 128, 512):
        seconds = ConventionalMachine(cmt(n)).run(job).seconds
        assert seconds <= prev * (1.0 + 1e-9)
        prev = seconds
