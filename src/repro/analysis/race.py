"""The ``repro race`` driver.

Analyzes registered experiments (or all of them) with the
happens-before detector, optionally checks the buggy fixtures, and
writes the schema-versioned JSON report.  Exit status is the CI
contract:

* ``0`` -- every analyzed job clean (and, with ``--fixtures``, every
  fixture flagged with exactly its expected hazard classes);
* ``1`` -- a finding in a registered experiment, a fixture that failed
  to trip, or an engine-parity divergence;
* ``2`` -- unknown experiment id.
"""

from __future__ import annotations

import json
import sys
from typing import Optional, Sequence

from repro.analysis.hb import analyze_job, analyze_job_both, current_engine
from repro.analysis.report import (
    JobReport,
    RACE_REPORT_SCHEMA,
    render_report,
    report_to_dict,
)
from repro.analysis.targets import experiment_jobs
from repro.harness.runner import BenchmarkData


def _analyze_experiments(ids: Sequence[str], data: BenchmarkData,
                         engine: str, parity: bool
                         ) -> tuple[dict[str, list[JobReport]], int]:
    """Per-experiment job reports; jobs shared between experiments are
    analyzed once.  Returns the reports and a status (0 clean, 1 not)."""
    status = 0
    memo: dict[str, JobReport] = {}
    out: dict[str, list[JobReport]] = {}
    for eid in ids:
        reports = []
        for name, job in experiment_jobs(eid, data).items():
            if name not in memo:
                if parity:
                    des, cohort = analyze_job_both(job)
                    if des.findings != cohort.findings \
                            or des.suppressed != cohort.suppressed:
                        print(f"ENGINE PARITY FAILURE for {name}:\n"
                              f"  des:    {[f.render() for f in des.findings]}\n"
                              f"  cohort: {[f.render() for f in cohort.findings]}",
                              file=sys.stderr)
                        status = 1
                    memo[name] = des if engine == "des" else cohort
                else:
                    memo[name] = analyze_job(job, engine)
            reports.append(memo[name])
        out[eid] = reports
    return out, status


def run_race(ids: Sequence[str], data: BenchmarkData, *,
             run_all: bool = False, fixtures: bool = False,
             json_path: Optional[str] = None,
             engine: Optional[str] = None,
             parity: bool = True) -> int:
    """Drive the detector; returns the process exit status."""
    from repro.harness.registry import EXPERIMENT_IDS, list_experiments

    if engine is None:
        engine = current_engine()
    if run_all:
        ids = list(EXPERIMENT_IDS)
    known = set(list_experiments())
    for eid in ids:
        if eid not in known:
            print(f"unknown experiment {eid!r}; known: "
                  f"{sorted(known)}", file=sys.stderr)
            return 2
    status = 0
    reports: dict[str, list[JobReport]] = {}
    if ids:
        reports, status = _analyze_experiments(ids, data, engine, parity)
        print(render_report(reports, engine))
        if any(f for rs in reports.values() for r in rs
               for f in r.findings):
            status = 1

    dynamic = ()
    if fixtures:
        fx_status, dynamic = _check_fixtures(engine)
        status = status or fx_status

    if json_path is not None:
        payload = report_to_dict(reports, engine,
                                 dynamic_findings=tuple(dynamic))
        payload["status"] = status
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {RACE_REPORT_SCHEMA} report to {json_path}")
    return status


def _check_fixtures(engine: str):
    """Every fixture must trip exactly its expected hazard classes."""
    from repro.analysis.fixtures import FIXTURES

    status = 0
    dynamic = []
    print(f"\nfixture checks ({engine} engine)")
    for fx in FIXTURES:
        flagged, findings = fx.check(engine)
        dynamic.extend(findings)
        expected = ",".join(sorted(fx.expected))
        seen = ",".join(sorted({f.hazard for f in findings})) or "none"
        mark = "ok " if flagged else "FAIL"
        print(f"  [{mark}] {fx.name:18s} expected {expected}; got {seen}")
        if not flagged:
            for f in findings:
                print(f"         {f.render()}")
            status = 1
    return status, dynamic
