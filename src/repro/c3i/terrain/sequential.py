"""Program 3: the sequential Terrain Masking program.

For each threat in turn: save the masking region (temp), compute the
maximum safe altitudes due to the threat, and minimize them back into
the overall result -- the exact structure of the paper's pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.c3i.terrain.model import masking_for_threat_cached
from repro.c3i.terrain.scenarios import TerrainScenario


@dataclass
class TerrainMaskingResult:
    """Output and structural statistics of one scenario run."""

    scenario: int
    masking: Optional[np.ndarray] = None
    #: structural counts driving the workload model
    n_region_cells_total: int = 0   # cells per pass over all threats
    n_rings_total: int = 0
    ring_cells_total: int = 0
    #: per-threat (window cells, ring count, mean ring width)
    per_threat: list[tuple[int, int, float]] = field(default_factory=list)

    @property
    def mean_ring_width(self) -> float:
        return (self.ring_cells_total / self.n_rings_total
                if self.n_rings_total else 0.0)


def run_sequential(scenario: TerrainScenario) -> TerrainMaskingResult:
    """Execute Program 3 on one scenario."""
    n = scenario.grid_n
    result = TerrainMaskingResult(scenario=scenario.index)
    masking = np.full((n, n), np.inf)

    for threat in scenario.threats:
        window, alt, stats = masking_for_threat_cached(
            scenario.terrain, threat)
        sx, sy = window.slices()
        # Program 3: temp = masking region; compute; min back.
        temp = masking[sx, sy].copy()
        masking[sx, sy] = np.minimum(alt, temp)
        result.n_region_cells_total += window.n_cells
        result.n_rings_total += stats.n_rings
        result.ring_cells_total += stats.n_ring_cells
        result.per_threat.append((
            window.n_cells, stats.n_rings,
            stats.n_ring_cells / stats.n_rings if stats.n_rings else 0.0))

    result.masking = masking
    return result


def run_benchmark_sequential(scenarios: list[TerrainScenario]
                             ) -> list[TerrainMaskingResult]:
    """All five scenarios, as the benchmark measures them."""
    return [run_sequential(sc) for sc in scenarios]
