"""Harness-side observability: epoch coverage, cache attribution,
per-experiment metrics aggregation.

The bugfix sweep behind these tests: (1) the model-epoch hash must
cover every file that changes simulation outcomes -- the cohort
compilers and batch engine included -- so stale cache entries cannot
survive a model edit; (2) cache hit/miss attribution must be
per-task-scope, not per-process-cumulative-delta, so interleaved runs
report honest numbers.
"""

import os
import threading

from repro.harness import store
from repro.harness.parallel import (
    metrics_rollup,
    metrics_to_dict,
    render_metrics,
    run_experiments,
)
from repro.harness.store import (
    CacheScope,
    ResultCache,
    _compute_epoch,
    _model_source_files,
)


# ----------------------------------------------------------------------
# model epoch: source coverage + sensitivity
# ----------------------------------------------------------------------

def repro_root():
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def test_epoch_covers_every_outcome_determining_module():
    files = {os.path.relpath(p, repro_root()).replace(os.sep, "/")
             for p in _model_source_files(repro_root())}
    # the cohort fast path lives outside des/simulator.py -- a previous
    # audit gap: these files change outcomes but were easy to miss
    for must_cover in ("des/batch.py", "des/simulator.py",
                      "des/resources.py", "des/sync.py",
                      "machines/cohort.py", "machines/machine.py",
                      "mta/cohort.py", "mta/machine.py",
                      "obs/metrics.py", "workload/cohort.py"):
        assert must_cover in files, must_cover


def test_patching_a_covered_file_changes_the_epoch(tmp_path):
    root = tmp_path / "repro"
    pkg = root / "des"
    pkg.mkdir(parents=True)
    target = pkg / "batch.py"
    target.write_text("WAIT_COST = 1.0\n")
    before = _compute_epoch(str(root), "v1")
    assert _compute_epoch(str(root), "v1") == before   # deterministic
    target.write_text("WAIT_COST = 2.0\n")
    assert _compute_epoch(str(root), "v1") != before
    # version participates too
    target.write_text("WAIT_COST = 1.0\n")
    assert _compute_epoch(str(root), "v2") != before


def test_adding_a_file_to_a_covered_package_changes_the_epoch(tmp_path):
    root = tmp_path / "repro"
    (root / "obs").mkdir(parents=True)
    (root / "obs" / "trace.py").write_text("x = 1\n")
    before = _compute_epoch(str(root), "")
    (root / "obs" / "extra.py").write_text("y = 2\n")
    assert _compute_epoch(str(root), "") != before


def test_nested_subpackage_module_changes_the_epoch(tmp_path):
    """Regression: the source walk only listdir'd each package's top
    level, so a model package growing a subpackage (``des/engines/``)
    would change outcomes without ever invalidating cached entries."""
    root = tmp_path / "repro"
    (root / "des").mkdir(parents=True)
    (root / "des" / "batch.py").write_text("x = 1\n")
    before = _compute_epoch(str(root), "")

    sub = root / "des" / "engines"
    sub.mkdir()
    (sub / "fast.py").write_text("y = 2\n")
    assert _compute_epoch(str(root), "") != before
    planted = str(sub / "fast.py")
    assert planted in set(_model_source_files(str(root)))

    # editing the nested module moves the epoch again
    mid = _compute_epoch(str(root), "")
    (sub / "fast.py").write_text("y = 3\n")
    after = _compute_epoch(str(root), "")
    assert after != mid

    # __pycache__ trees stay invisible
    pyc = root / "des" / "__pycache__"
    pyc.mkdir()
    (pyc / "batch.cpython-311.py").write_text("compiled\n")
    assert _compute_epoch(str(root), "") == after
    assert not any("__pycache__" in p
                   for p in _model_source_files(str(root)))


def test_nested_modules_with_shared_basenames_are_distinct(tmp_path):
    """Two trees whose files differ only in *path* must not collide:
    the epoch hashes package-relative paths, not basenames."""
    a = tmp_path / "a" / "repro"
    b = tmp_path / "b" / "repro"
    for root, pkg in ((a, "des"), (b, "des")):
        (root / pkg).mkdir(parents=True)
    (a / "des" / "util.py").write_text("same\n")
    (b / "des" / "deep").mkdir()
    (b / "des" / "deep" / "util.py").write_text("same\n")
    assert _compute_epoch(str(a), "") != _compute_epoch(str(b), "")


# ----------------------------------------------------------------------
# cache scopes: exact per-task hit/miss attribution
# ----------------------------------------------------------------------

def counting_cache(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cache.put("present", {"seconds": 1.0})
    return cache


def test_cache_scope_counts_only_enclosed_lookups(tmp_path):
    cache = counting_cache(tmp_path)
    cache.get("present")                      # outside any scope
    with store.cache_scope() as sc:
        cache.get("present")
        cache.get("present")
        cache.get("absent")
    assert (sc.hits, sc.misses) == (2, 1)
    cache.get("absent")                       # after the scope closed
    assert (sc.hits, sc.misses) == (2, 1)


def test_cache_scopes_nest_innermost_wins(tmp_path):
    cache = counting_cache(tmp_path)
    with store.cache_scope() as outer:
        cache.get("present")
        with store.cache_scope() as inner:
            cache.get("absent")
        cache.get("present")
    assert (outer.hits, outer.misses) == (2, 0)
    assert (inner.hits, inner.misses) == (0, 1)


def test_cache_scopes_are_thread_isolated(tmp_path):
    """The regression this guards: process-cumulative counter deltas
    double-count when two tasks interleave in one process.  Scopes are
    contextvar-backed, so concurrent threads never bleed."""
    cache = counting_cache(tmp_path)
    results: dict[str, CacheScope] = {}
    gate = threading.Barrier(2)

    def task(tag: str, hits: int, misses: int):
        with store.cache_scope() as sc:
            gate.wait()                       # force full overlap
            for _ in range(hits):
                cache.get("present")
            for _ in range(misses):
                cache.get("absent")
            gate.wait()
        results[tag] = sc

    t1 = threading.Thread(target=task, args=("a", 3, 1))
    t2 = threading.Thread(target=task, args=("b", 1, 4))
    t1.start(); t2.start(); t1.join(); t2.join()
    assert (results["a"].hits, results["a"].misses) == (3, 1)
    assert (results["b"].hits, results["b"].misses) == (1, 4)


# ----------------------------------------------------------------------
# per-experiment metrics aggregation (repro all --metrics)
# ----------------------------------------------------------------------

def test_profiles_carry_per_run_metrics_serial(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    results, profiles = run_experiments(
        ["table2"], threat_scale=0.01, terrain_scale=0.03, jobs=1)
    assert results["table2"].all_checks_pass()
    (profile,) = profiles
    assert profile.cache_misses > 0 and profile.cache_hits == 0
    assert len(profile.metrics) == profile.cache_misses
    roll = metrics_rollup(profile)
    assert roll["sim_runs"] == len(profile.metrics)
    assert roll["simulated_seconds"] > 0
    for rec in profile.metrics:
        assert rec["kind"] in ("conventional", "mta")
        assert "serial_wall_seconds" in rec["stats"]
    # a second run is all cache hits but reports identical metrics
    results2, profiles2 = run_experiments(
        ["table2"], threat_scale=0.01, terrain_scale=0.03, jobs=1)
    assert metrics_rollup(profiles2[0]) == roll
    payload = metrics_to_dict(profiles)
    assert payload["schema"] == 1
    assert payload["experiments"][0]["experiment_id"] == "table2"
    table = render_metrics(profiles)
    assert "table2" in table and "sim-sec" in table


def test_profiles_carry_per_run_metrics_parallel(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    results, profiles = run_experiments(
        ["table2", "table5"], threat_scale=0.01, terrain_scale=0.03,
        jobs=2)
    assert [p.experiment_id for p in profiles] == ["table2", "table5"]
    for p in profiles:
        roll = metrics_rollup(p)
        assert roll["sim_runs"] > 0
        assert roll["simulated_seconds"] > 0
    # table5 runs parallel regions; the rollup must show them
    assert metrics_rollup(profiles[1])["cohort_regions"] > 0
