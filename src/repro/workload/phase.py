"""Compute phases: operation mix + memory locality + internal parallelism."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.workload.ops import OpCounts, SharedAccess


class AccessPattern(enum.Enum):
    """Coarse classification of a phase's memory reference stream.

    Conventional-machine cache models use this to decide how much line
    reuse the phase enjoys:

    * ``SEQUENTIAL`` -- unit-stride sweeps; every byte of a fetched line
      is consumed, so the miss traffic equals the data actually touched.
    * ``STRIDED`` -- regular non-unit strides; roughly half of each
      fetched line is wasted.
    * ``RANDOM`` -- pointer chasing / scattered indexing; a full line is
      fetched per reference.
    """

    SEQUENTIAL = "sequential"
    STRIDED = "strided"
    RANDOM = "random"


#: Line-traffic amplification applied when a phase misses cache:
#: fraction of each fetched line that is wasted motion.
PATTERN_AMPLIFICATION = {
    AccessPattern.SEQUENTIAL: 1.0,
    AccessPattern.STRIDED: 2.0,
    AccessPattern.RANDOM: 4.0,
}


@dataclass(frozen=True)
class MemoryProfile:
    """Locality descriptor for one phase.

    ``unique_bytes`` is the phase's footprint (distinct bytes touched);
    the op counts give the total bytes referenced.  A machine's cache
    model combines the two: a footprint that fits in cache costs only
    compulsory traffic, one that does not streams from memory.
    """

    unique_bytes: float = 0.0
    pattern: AccessPattern = AccessPattern.SEQUENTIAL
    #: Fraction of references that hit data written by a *different*
    #: thread (coherence/communication traffic); always misses on SMPs.
    shared_fraction: float = 0.0
    #: Bytes moved per memory reference on a cached machine -- 8 for
    #: double-precision data, 2 for the int16 elevation grids of the
    #: Terrain Masking benchmark.  (The MTA always transfers full
    #: words; its network model counts references, not bytes.)
    access_bytes: float = 8.0

    def __post_init__(self) -> None:
        if self.unique_bytes < 0:
            raise ValueError("unique_bytes must be >= 0")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ValueError("shared_fraction must be in [0, 1]")
        if self.access_bytes <= 0:
            raise ValueError("access_bytes must be positive")


@dataclass(frozen=True)
class Phase:
    """A straight-line chunk of one thread's execution.

    ``parallelism`` is the phase's *internal* concurrency: the number of
    independent strands a machine with cheap fine-grained threading (the
    Tera MTA) can extract.  Conventional machines run the phase on one
    processor unless it is explicitly split; the MTA machine lets the
    phase occupy up to ``parallelism`` hardware streams.

    ``serial_cycles`` is unoverlappable latency on the phase's critical
    path (e.g. the ring-by-ring wavefront in Terrain Masking: each ring
    must finish before the next starts, so ``n_rings * ring_start``
    cycles can never be hidden however many streams are available).

    ``accesses`` records which *shared* arrays the phase reads and
    writes, with element ranges where the workload knows them (see
    :class:`~repro.workload.ops.SharedAccess`).  The machine models
    ignore it; the race detector in :mod:`repro.analysis` is its
    consumer.
    """

    name: str
    ops: OpCounts = field(default_factory=OpCounts)
    memory: MemoryProfile = field(default_factory=MemoryProfile)
    parallelism: float = 1.0
    serial_cycles: float = 0.0
    accesses: tuple[SharedAccess, ...] = ()

    def __post_init__(self) -> None:
        if self.parallelism < 1.0:
            raise ValueError("parallelism must be >= 1")
        if self.serial_cycles < 0:
            raise ValueError("serial_cycles must be >= 0")
        object.__setattr__(self, "accesses", tuple(self.accesses))
        for a in self.accesses:
            if not isinstance(a, SharedAccess):
                raise TypeError(f"bad shared access {a!r}")

    def scaled(self, k: float) -> "Phase":
        """The same phase with ``k`` times the work (footprint unchanged)."""
        return replace(self, ops=self.ops * k,
                       serial_cycles=self.serial_cycles * k)

    def split(self, n: int) -> list["Phase"]:
        """Divide the phase into ``n`` equal slices (for explicit chunking
        on machines without fine-grained threads).  Each slice gets a
        proportional share of the ops *and* of the memory footprint --
        chunking a sweep over an array gives each thread its own
        subarray, not the whole thing."""
        if n < 1:
            raise ValueError("n must be >= 1")
        slice_ops = self.ops * (1.0 / n)
        slice_memory = replace(self.memory,
                               unique_bytes=self.memory.unique_bytes / n)
        return [
            replace(self, name=f"{self.name}[{i}/{n}]", ops=slice_ops,
                    memory=slice_memory,
                    parallelism=max(1.0, self.parallelism / n),
                    serial_cycles=self.serial_cycles / n)
            for i in range(n)
        ]
