"""Generator-based simulated processes.

A :class:`Process` wraps a Python generator.  The generator ``yield``s
:class:`~repro.des.events.Event` instances (or other processes, which
are themselves events); the simulator resumes the generator with the
event's value when it fires, or throws the event's failure exception
into it.

A process is itself an event -- it fires, with the generator's return
value, when the generator finishes.  This makes fork/join trivial::

    def child(sim):
        yield sim.timeout(5)
        return 42

    def parent(sim):
        p = sim.process(child(sim))
        result = yield p        # joins; result == 42
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Generator, Optional

from repro.des.errors import DesError, Interrupt
from repro.des.events import Event, _internal_event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.simulator import Simulator

ProcessGenerator = Generator[Event, object, object]


class Process(Event):
    """A simulated thread of control (and its completion event)."""

    __slots__ = ("generator", "name", "_waiting_on", "tid")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise TypeError(
                f"process body must be a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        #: index into ``sim.processes`` -- the trace thread id, and the
        #: handle deadlock diagnostics use to walk live waiters
        self.tid = len(sim.processes)
        sim.processes.append(self)
        tr = sim.trace
        if tr is not None:
            tr.thread_start(self.tid, sim.now, self.name)
        # Bootstrap: resume the generator at time now, as soon as the
        # event loop gets control.  (sim._enqueue inlined: one process
        # is created per simulated thread.)
        _heappush(sim._heap,
                  (sim.now, 0, sim._seq, _internal_event(sim, self._resume)))
        sim._seq += 1

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process must currently be waiting on an event; the event it
        was waiting on is left untouched (it may still fire later, but
        this process will no longer react to it).
        """
        if self.triggered:
            raise DesError(f"{self.name}: cannot interrupt a dead process")
        if self._waiting_on is None:
            raise DesError(f"{self.name}: process is not waiting on anything")
        target = self._waiting_on
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        kick = Event(self.sim)
        kick.callbacks.append(
            lambda _ev: self._step(throw=Interrupt(cause)))
        kick.succeed(None, priority=0)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Callback attached to whatever event this process waits on."""
        self._waiting_on = None
        tr = self.sim.trace
        if tr is not None:
            tr.unblock(self.tid, self.sim.now)
        if event._exc is not None:
            event._mark_defused()
            self._step(throw=event._exc)
        else:
            self._step(send=event._value)

    def _step(self, send: object = None,
              throw: Optional[BaseException] = None) -> None:
        sim = self.sim
        sim._active_process = self
        try:
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            if sim.trace is not None:
                sim.trace.thread_end(self.tid, sim.now)
            return
        except BaseException as exc:
            self.fail(exc)
            if sim.trace is not None:
                sim.trace.thread_end(self.tid, sim.now, error=repr(exc))
            return
        finally:
            sim._active_process = None

        if not isinstance(target, Event):
            err = DesError(
                f"{self.name}: processes may only yield events, "
                f"got {target!r}")
            # Deliver the error into the generator so the stack trace
            # points at the offending yield.
            self._step(throw=err)
            return
        if target.sim is not self.sim:
            self._step(throw=DesError(
                f"{self.name}: yielded event from a different simulator"))
            return

        self._waiting_on = target
        if target.callbacks is None:  # already processed
            # Already fired: resume immediately (via a priority-0 event so
            # ordering relative to other immediate work stays FIFO).
            kick = _internal_event(self.sim,
                                   lambda _ev: self._resume(target))
            self.sim._enqueue(kick, priority=0)
        else:
            target.callbacks.append(self._resume)
            tr = sim.trace
            if tr is not None:
                tr.block(self.tid, sim.now, target)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "done" if self.triggered else "alive"
        return f"<Process {self.name} {status}>"
