"""Table 9 / Figure 3: coarse-grained Terrain Masking on the quad
Pentium Pro -- bus saturation caps the speedup near 3x."""

from _support import run_and_report

from repro.harness import render_speedup_figure
from repro.harness.calibration import PAPER_TABLE9


def bench_table9_fig3(benchmark, data):
    result = run_and_report(benchmark, data, "table9")
    procs = [1, 2, 3, 4]
    seq = result.row("sequential").simulated
    speedups = [seq / result.row(f"{n} processors").simulated
                for n in procs]
    paper = [PAPER_TABLE9["sequential"] / PAPER_TABLE9[n] for n in procs]
    print()
    print(render_speedup_figure(
        "Figure 3: Terrain Masking speedup on 4-CPU Pentium Pro",
        procs, speedups, paper))
