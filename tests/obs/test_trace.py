"""Event tracing: kernel hooks, Chrome export, schema validation."""

import pytest

from repro.des import SimBarrier, SimLock, Simulator
from repro.machines import ConventionalMachine, exemplar
from repro.obs.trace import (
    REGION_TID,
    TraceRecorder,
    active_tracer,
    describe_event,
    tracing,
    validate_chrome_trace,
)
from repro.workload import JobBuilder, OpCounts, ThreadProgramBuilder


def contended_sim(tr=None):
    """Two processes racing for one lock; returns the simulator."""
    sim = Simulator()
    if tr is not None:
        tr.begin_run("test/contended")
        sim.trace = tr
    lock = SimLock(sim, name="L")

    def worker(sim):
        grant = yield lock.acquire()
        yield sim.timeout(2)
        lock.release(grant)

    for i in range(2):
        sim.process(worker(sim), name=f"w{i}")
    sim.run()
    if tr is not None:
        tr.end_run(sim.now)
    return sim


def small_job():
    threads = [ThreadProgramBuilder(f"t{i}")
               .compute("c", OpCounts(ialu=1e5))
               .critical("L", "crit", OpCounts(store=50.0, sync=2.0))
               .build()
               for i in range(3)]
    return (JobBuilder("traced")
            .serial("setup", OpCounts(ialu=1e4))
            .parallel(threads)
            .build())


# ----------------------------------------------------------------------
# kernel-level recording
# ----------------------------------------------------------------------

def test_kernel_hooks_record_thread_and_lock_lifecycle():
    tr = TraceRecorder()
    contended_sim(tr)
    kinds = {rec[0] for rec in tr.records}
    # both workers start and end; the loser blocks, queues, unblocks
    assert {"start", "end", "block", "unblock",
            "acquire", "release", "queue", "run-end"} <= kinds
    # the queued record carries the waiting depth
    (queue_rec,) = [r for r in tr.records if r[0] == "queue"]
    assert queue_rec[4] == "L" and queue_rec[5] == 1


def test_tracing_disabled_records_nothing():
    tr = TraceRecorder()
    contended_sim(None)     # sim.trace stays None
    assert tr.records == [] and tr.dropped == 0


def test_to_chrome_slices_and_validation():
    tr = TraceRecorder()
    contended_sim(tr)
    obj = tr.to_chrome()
    n = validate_chrome_trace(obj)
    assert n == len(obj["traceEvents"]) > 0
    names = [e["name"] for e in obj["traceEvents"] if e["ph"] == "X"]
    # thread lifetime slices, a wait slice and two hold slices
    assert "w0" in names and "w1" in names
    assert any(nm.startswith("wait resource 'L'") for nm in names)
    assert sum(1 for nm in names if nm == "hold L") == 2


def test_max_events_caps_memory_not_correctness():
    tr = TraceRecorder(max_events=3)
    contended_sim(tr)
    assert len(tr.records) == 3
    assert tr.dropped > 0
    obj = tr.to_chrome()
    validate_chrome_trace(obj)
    assert obj["otherData"]["dropped_records"] == tr.dropped


def test_max_events_rejects_nonpositive():
    with pytest.raises(ValueError):
        TraceRecorder(max_events=0)


# ----------------------------------------------------------------------
# machine pickup through the process-wide active tracer
# ----------------------------------------------------------------------

def test_machine_attaches_active_tracer_des_path():
    with tracing() as tr:
        assert active_tracer() is tr
        ConventionalMachine(exemplar(4), use_cohort=False).run(small_job())
    assert active_tracer() is None
    kinds = {rec[0] for rec in tr.records}
    assert "start" in kinds and "region" in kinds
    assert list(tr.run_labels.values()) == [
        "HP Exemplar S-Class[4p]/traced"]
    regions = [r for r in tr.records if r[0] == "region"]
    engines = {r[4][1] for r in regions}
    assert engines == {"des"}
    validate_chrome_trace(tr.to_chrome())


def test_machine_attaches_active_tracer_cohort_path():
    with tracing() as tr:
        ConventionalMachine(exemplar(4), use_cohort=True).run(small_job())
    regions = [r for r in tr.records if r[0] == "region"]
    # serial step + parallel region, both on the cohort engine
    assert {r[4][1] for r in regions} == {"cohort"}
    assert any(r[4][2] == 3 for r in regions)     # n_threads recorded
    obj = tr.to_chrome()
    validate_chrome_trace(obj)
    region_rows = [e for e in obj["traceEvents"]
                   if e["ph"] == "X" and e["tid"] == REGION_TID]
    assert len(region_rows) == len(regions)
    assert all(e["args"]["engine"] == "cohort" for e in region_rows)


def test_tracing_nests_and_restores():
    with tracing() as outer:
        with tracing() as inner:
            assert active_tracer() is inner
        assert active_tracer() is outer
    assert active_tracer() is None


# ----------------------------------------------------------------------
# describe_event / schema validation corners
# ----------------------------------------------------------------------

def test_describe_event_labels():
    sim = Simulator()
    assert describe_event(sim.timeout(2.5)) == "timeout(2.5)"
    bar = SimBarrier(sim, parties=2, name="gate")
    lock = SimLock(sim, name="L")
    got = {}

    def worker(sim):
        grant = yield lock.acquire()
        got["req"] = describe_event(grant)
        lock.release(grant)
        got["bar"] = describe_event(bar.wait())
        got["join"] = describe_event(sim.process(idle(sim), name="kid"))
        got["event"] = describe_event(sim.event())

    def idle(sim):
        yield sim.timeout(0)

    sim.process(worker(sim))
    sim.run()
    assert got["req"] == "resource 'L'"
    assert got["bar"] == "barrier 'gate'"
    assert got["join"] == "join 'kid'"
    assert got["event"] == "event"


@pytest.mark.parametrize("bad, msg", [
    ([], "JSON object"),
    ({}, "traceEvents"),
    ({"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "tid": 1}]},
     "unknown phase"),
    ({"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1,
                       "ts": -1.0, "dur": 1.0}]}, "bad ts"),
    ({"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1,
                       "ts": 0.0}]}, "bad dur"),
    ({"traceEvents": [{"ph": "M", "name": "x", "pid": 1, "tid": 1}]},
     "needs args"),
])
def test_validate_chrome_trace_rejects(bad, msg):
    with pytest.raises(ValueError, match=msg):
        validate_chrome_trace(bad)
