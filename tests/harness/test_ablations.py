"""Tests for the ablation studies and the scaling projection."""

import pytest

from repro.harness import BenchmarkData, run_experiment

pytestmark = pytest.mark.slow  # full ablation sweeps


@pytest.fixture(scope="module")
def data():
    return BenchmarkData(threat_scale=0.01, terrain_scale=0.03)


ABLATIONS = ("scaling", "ablation-finegrained-smp", "ablation-network",
             "ablation-issue", "ablation-cache", "threat-alternative")


@pytest.mark.parametrize("eid", ABLATIONS)
def test_ablation_shape_checks_pass(eid, data):
    res = run_experiment(eid, data)
    failed = [str(c) for c in res.checks if not c.passed]
    assert not failed, f"{eid}: {failed}"


def test_scaling_monotonic_in_processors(data):
    res = run_experiment("scaling", data)
    for bench in ("Threat", "Terrain"):
        for net in ("prototype net", "mature net"):
            times = [res.row(f"{bench}, {p}p ({net})").simulated
                     for p in (1, 2, 4, 8, 16)]
            assert times == sorted(times, reverse=True), (
                f"{bench} on {net} not monotone: {times}")


def test_mature_network_never_slower(data):
    res = run_experiment("scaling", data)
    for bench in ("Threat", "Terrain"):
        for p in (2, 4, 8, 16):
            proto = res.row(f"{bench}, {p}p (prototype net)").simulated
            mature = res.row(f"{bench}, {p}p (mature net)").simulated
            assert mature <= proto * 1.0001


def test_network_exponent_rows_match_table_values(data):
    """At the calibrated exponent, the ablation reproduces the paper's
    two-processor speedups."""
    res = run_experiment("ablation-network", data)
    st = res.row("Threat 2p speedup, exponent 0.54").simulated
    sm = res.row("Terrain 2p speedup, exponent 0.54").simulated
    assert st == pytest.approx(1.78, abs=0.15)
    assert sm == pytest.approx(1.41, abs=0.15)


def test_issue_ablation_orders_the_mechanisms(data):
    """Both mechanisms must be removed for conventional-class speed."""
    res = run_experiment("ablation-issue", data)
    real = res.row(
        "real MTA (21-cycle issue, unhidden latency)").simulated
    fast = res.row("1-cycle issue, latency still unhidden").simulated
    hidden = res.row(
        "21-cycle issue, latency hidden (cache-like)").simulated
    both = res.row("1-cycle issue + latency hidden").simulated
    assert both < fast < real
    assert both < hidden < real


def test_finegrained_smp_is_worse_than_mta(data):
    res = run_experiment("ablation-finegrained-smp", data)
    mta = res.row("MTA 1p, fine-grained").simulated
    smp = res.row(
        "Exemplar 16p, fine-grained with sw-thread costs").simulated
    assert smp > mta


def test_sensitivity_experiment(data):
    res = run_experiment("sensitivity", data)
    assert res.all_checks_pass()
    assert len(res.rows) == 20  # 5 parameters x 4 outputs


def test_sensitivity_parameters_hit_the_right_outputs(data):
    """Each knob must move its own subsystem and leave the other
    machine's results untouched."""
    from repro.harness.sensitivity import run_sensitivity
    rows = {(r.parameter, r.output): r for r in run_sensitivity(data)}
    # Exemplar knobs never move MTA outputs
    for knob in ("Exemplar memory bandwidth", "Exemplar miss latency"):
        for out in ("threat MTA 1p (s)", "threat MTA 2p speedup",
                    "terrain MTA 2p speedup"):
            assert rows[(knob, out)].swing_pct < 0.5
        assert rows[(knob, "terrain Exemplar 16p speedup")].swing_pct > 3
    # MTA knobs never move the Exemplar output
    for knob in ("MTA network words/cycle", "MTA memory latency",
                 "MTA LIW packing"):
        assert rows[(knob, "terrain Exemplar 16p speedup")].swing_pct < 0.5


def test_temp_memory_experiment(data):
    res = run_experiment("ablation-temp-memory", data)
    assert res.all_checks_pass()
    fp16 = res.row("Program 4 footprint, 16 threads (GB)").simulated
    fp500 = res.row("Program 4 footprint, 500 threads (GB)").simulated
    assert fp500 > fp16 * 5  # storage grows with threads


def test_blocked_footprint_monotone_and_validated():
    from repro.c3i.terrain import blocked_memory_footprint, make_scenario
    import pytest as _pytest
    sc = make_scenario(1, scale=0.04)
    prev = 0.0
    for n in (1, 4, 16, 64, 256):
        fp = blocked_memory_footprint(sc, n)
        assert fp > prev
        prev = fp
    with _pytest.raises(ValueError):
        blocked_memory_footprint(sc, 0)


def test_seed_robustness_experiment(data):
    res = run_experiment("seed-robustness", data)
    assert res.all_checks_pass()
    # three universes x three outputs
    assert len(res.rows) == 9


def test_seed_offset_changes_scenarios_but_not_scale():
    from repro.c3i import terrain as TE
    from repro.c3i import threat as TH
    import numpy as np
    a = TH.make_scenario(0, scale=0.01, seed_offset=0)
    b = TH.make_scenario(0, scale=0.01, seed_offset=5)
    assert a.threats != b.threats
    assert a.n_threats == b.n_threats
    ta = TE.make_scenario(0, scale=0.025, seed_offset=0)
    tb = TE.make_scenario(0, scale=0.025, seed_offset=5)
    assert not np.array_equal(ta.terrain, tb.terrain)
    assert ta.grid_n == tb.grid_n
