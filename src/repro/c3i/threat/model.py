"""Threats, weapons and interception mathematics.

A threat flies a ballistic arc from its launch point to its impact
point: linear ground track plus a parabolic altitude profile peaking at
``apex_alt``.  A weapon can intercept the threat at time ``t`` when the
threat is (i) past its detection time, (ii) within the weapon's slant
range of the weapon site, and (iii) inside the weapon's engagement
altitude band.  Because the arc can dip in and out of the altitude band
while in range, a (threat, weapon) pair produces zero, one or *two*
engagement windows -- the "zero, one, or more intervals" of the paper.

The time-stepped simulation evaluates feasibility on a fixed grid of
``n_steps`` times between launch and impact (the benchmark's simulation
resolution); interception windows are maximal runs of feasible steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.c3i.common import contiguous_runs


@dataclass(frozen=True)
class Threat:
    """One incoming ballistic threat."""

    launch_x: float
    launch_y: float
    impact_x: float
    impact_y: float
    launch_time: float
    impact_time: float
    apex_alt: float
    #: fraction of the flight after which tracking picks the threat up
    detect_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.impact_time <= self.launch_time:
            raise ValueError("impact must come after launch")
        if self.apex_alt <= 0:
            raise ValueError("apex altitude must be positive")
        if not 0.0 <= self.detect_fraction < 1.0:
            raise ValueError("detect_fraction must be in [0, 1)")

    @property
    def flight_time(self) -> float:
        return self.impact_time - self.launch_time

    @property
    def detection_time(self) -> float:
        """Initial detection time (t0 of Program 1)."""
        return self.launch_time + self.detect_fraction * self.flight_time

    def position(self, t: float) -> tuple[float, float, float]:
        """(x, y, altitude) at time ``t`` (scalar convenience)."""
        s = (t - self.launch_time) / self.flight_time
        s = min(max(s, 0.0), 1.0)
        x = self.launch_x + s * (self.impact_x - self.launch_x)
        y = self.launch_y + s * (self.impact_y - self.launch_y)
        alt = 4.0 * self.apex_alt * s * (1.0 - s)
        return x, y, alt


@dataclass(frozen=True)
class Weapon:
    """One interceptor site."""

    x: float
    y: float
    slant_range: float
    min_alt: float
    max_alt: float

    def __post_init__(self) -> None:
        if self.slant_range <= 0:
            raise ValueError("slant_range must be positive")
        if not 0.0 <= self.min_alt < self.max_alt:
            raise ValueError("need 0 <= min_alt < max_alt")


@dataclass(frozen=True)
class Interval:
    """One interception window: the output tuple of the benchmark."""

    threat: int
    weapon: int
    t_first: float
    t_last: float

    def __post_init__(self) -> None:
        if self.t_last < self.t_first:
            raise ValueError("interval end before start")


# ----------------------------------------------------------------------
# vectorised trajectory / feasibility kernels
# ----------------------------------------------------------------------

def threat_positions(threat: Threat, n_steps: int
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Times and (x, y, alt) positions on the simulation grid.

    The grid spans detection time to impact time -- the range the inner
    loop of Program 1 scans.
    """
    if n_steps < 2:
        raise ValueError("need at least 2 time steps")
    times = np.linspace(threat.detection_time, threat.impact_time, n_steps)
    s = (times - threat.launch_time) / threat.flight_time
    xs = threat.launch_x + s * (threat.impact_x - threat.launch_x)
    ys = threat.launch_y + s * (threat.impact_y - threat.launch_y)
    alts = 4.0 * threat.apex_alt * s * (1.0 - s)
    return times, np.stack([xs, ys, alts], axis=1)


def feasible_mask(positions: np.ndarray, weapon: Weapon) -> np.ndarray:
    """Per-step feasibility of interception by ``weapon``.

    ``positions`` is the (n_steps, 3) array from
    :func:`threat_positions`.
    """
    dx = positions[:, 0] - weapon.x
    dy = positions[:, 1] - weapon.y
    alt = positions[:, 2]
    slant_sq = dx * dx + dy * dy + alt * alt
    return ((slant_sq <= weapon.slant_range ** 2)
            & (alt >= weapon.min_alt)
            & (alt <= weapon.max_alt))


def pair_intervals(times: np.ndarray, positions: np.ndarray,
                   weapon: Weapon, threat_idx: int, weapon_idx: int
                   ) -> list[Interval]:
    """All interception windows for one (threat, weapon) pair."""
    mask = feasible_mask(positions, weapon)
    return [
        Interval(threat=threat_idx, weapon=weapon_idx,
                 t_first=float(times[a]), t_last=float(times[b]))
        for a, b in contiguous_runs(mask)
    ]


def precheck_in_range(threat: Threat, weapon: Weapon) -> bool:
    """Cheap exact screen before the time-stepped scan.

    The slant distance to the threat is never less than the horizontal
    distance from the weapon to the threat's ground track, so if that
    segment-to-point distance already exceeds the slant range, no time
    step can be feasible and the scan is skipped.  (The real benchmark
    program's efficiency comes from this kind of screen; it is also
    what makes per-threat work *vary* -- the load imbalance visible in
    the paper's chunk sweep.)
    """
    ax, ay = threat.launch_x, threat.launch_y
    bx, by = threat.impact_x, threat.impact_y
    px, py = weapon.x, weapon.y
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        u = 0.0
    else:
        u = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
        u = min(max(u, 0.0), 1.0)
    cx, cy = ax + u * dx, ay + u * dy
    dist_sq = (px - cx) ** 2 + (py - cy) ** 2
    return dist_sq <= weapon.slant_range ** 2
