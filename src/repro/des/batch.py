"""Vectorized batch execution of homogeneous thread cohorts.

The DES path simulates every thread of a parallel region as its own
generator process; each fair-share reallocation is an O(n) Python scan
and each completion a heap event.  For *cohorts* -- threads whose
programs are structurally identical (same item sequence, no cross-
thread synchronization except the region barrier and per-item critical
sections) -- the same timeline can be replayed with flat per-thread
state and no processes, events, or callbacks at all:

* A batch server mirrors one
  :class:`~repro.des.resources.FairShareServer` with at most one job
  per thread slot, advancing remaining work lazily (only when the
  server is touched, like the DES server's flush/wakeup chunking) and
  caching its next completion time.  Small cohorts use
  :class:`ScalarBatchServer`, which reproduces the DES allocation
  arithmetic verbatim in Python; large cohorts use
  :class:`BatchServer`, which holds remaining work in numpy arrays so
  a reallocation costs a few vector operations instead of an O(n)
  interpreted scan.  The completion rule (batch every job within
  ``1e-9`` relative of the minimum remaining work) is the DES server's
  rule in both.

* :class:`CohortEngine` owns the region's servers, sleep timers and
  locks and drives per-thread *segment lists* -- a precompiled form of
  the thread programs -- through them, mirroring the DES event order:
  at each event time every completion is processed before any lock
  handoff wakes a waiter, and completions are processed in job-arrival
  order, matching the FIFO insertion order of ``FairShareServer._jobs``.

Equivalence with the DES path is *numerical*, not bit-for-bit: the
vectorized allocation follows the same formulas but groups float
operations differently (e.g. one ``capacity/n`` division instead of a
sequential water-fill chain), so event times can differ by a few ulps.
Those differences are absorbed by the completion-batching tolerance
the DES server itself applies; end-to-end simulated seconds agree to
well within 1e-9 relative (asserted for every registry experiment by
``repro bench --verify``).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Optional, Sequence

import numpy as np

from repro.des.errors import DesError

#: completion tolerance -- must match ``repro.des.resources._EPS``
_EPS = 1e-9
_INF = float("inf")

#: cohorts up to this many threads run on the interpreted scalar
#: server; beyond it the numpy server's fixed per-operation overhead
#: is amortized over enough slots to win
SCALAR_MAX_SLOTS = 96

# ----------------------------------------------------------------------
# segment opcodes (a compiled thread program is a list of tuples whose
# first element is one of these)
# ----------------------------------------------------------------------
SRV = 0     #: ``(SRV, server_id, demand, cap)`` -- one fair-share job
PAR = 1     #: ``(PAR, ((server_id, demand, cap), ...))`` -- jobs started
#:             together on *distinct* servers, joined like ``AllOf``
SLEEP = 2   #: ``(SLEEP, seconds)`` -- a plain timeout
ACQ = 3     #: ``(ACQ, lock_name)`` -- FIFO lock acquire
REL = 4     #: ``(REL, lock_name)`` -- lock release (hand off to waiter)

#: a segment's ``server_id`` may be None: "this thread's home server"
#: (the MTA pins each thread to one processor's issue server).


def serve_alone(server, demand: float, cap: float, t: float) -> float:
    """Closed form for a single job alone on an idle fair-share server.

    Mirrors what submit/allocate/wakeup compute for ``n_active == 1``
    bit-for-bit (``capacity / 1 == capacity``), credits the server's
    busy-time and served-work statistics, and returns the completion
    time.  ``server`` is a live :class:`FairShareServer`.
    """
    rate = cap if cap <= server.capacity else server.capacity
    dt = demand / rate
    server.busy_time += dt
    server.total_served += rate * dt
    return t + dt


class ScalarBatchServer:
    """Interpreted mirror of one fair-share server for a small cohort.

    Jobs live in a dict keyed by thread slot (insertion-ordered, like
    ``FairShareServer._jobs``); the allocation, advance and completion
    arithmetic is the DES server's, operation for operation.
    """

    __slots__ = ("capacity", "n", "due", "busy_time", "total_served",
                 "_jobs", "_last", "_dirty")

    def __init__(self, capacity: float, n_slots: int, start: float):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        #: slot -> [remaining, ecap, arrival_seq, rate]
        self._jobs: dict[int, list] = {}
        self.n = 0
        self.due = _INF          # absolute next-completion time
        self.busy_time = 0.0
        self.total_served = 0.0
        self._last = start
        self._dirty = False

    def add(self, slot: int, demand: float, cap: Optional[float],
            seq: int, now: float) -> None:
        if now != self._last:
            self._advance_to(now)
        self._jobs[slot] = [demand, cap if cap is not None else _INF,
                            seq, 0.0]
        self.n += 1
        self._dirty = True

    def _advance_to(self, now: float) -> None:
        dt = now - self._last
        self._last = now
        jobs = self._jobs
        if dt <= 0 or not jobs:
            return
        served_total = 0.0
        for job in jobs.values():
            served = job[3] * dt
            job[0] -= served
            served_total += served
        self.total_served += served_total
        self.busy_time += dt

    def finish(self, now: float) -> list[tuple[int, int]]:
        """Completed ``(arrival_seq, slot)`` pairs at time ``now``."""
        jobs = self._jobs
        # advance inlined: finish runs once per completion event
        dt = now - self._last
        self._last = now
        m = _INF
        if dt > 0:
            served_total = 0.0
            for job in jobs.values():
                served = job[3] * dt
                job[0] -= served
                served_total += served
                if job[0] < m:
                    m = job[0]
            self.total_served += served_total
            self.busy_time += dt
        else:
            for job in jobs.values():
                if job[0] < m:
                    m = job[0]
        threshold = m * (1.0 + _EPS)
        if threshold < _EPS:
            threshold = _EPS
        out = []
        for slot, job in jobs.items():
            if job[0] <= threshold:
                out.append((job[2], slot))
        for _sq, slot in out:
            del jobs[slot]
        self.n = len(jobs)
        self._dirty = True
        return out

    def flush(self, now: float) -> None:
        """Recompute rates and the next completion time if stale."""
        if not self._dirty:
            return
        self._dirty = False
        jobs = self._jobs
        if not jobs:
            self.due = _INF
            return
        # single pass assuming uniform caps (the common case); fall to
        # the grouped water-fill on the first mismatch, which rewrites
        # every rate anyway
        vals = jobs.values()
        it = iter(vals)
        first = next(it)
        cap0 = first[1]
        share = self.capacity / len(jobs)
        rate = cap0 if cap0 <= share else share
        first[3] = rate
        m = first[0]
        uniform = True
        for job in it:
            if job[1] != cap0:
                uniform = False
                break
            job[3] = rate
            if job[0] < m:
                m = job[0]
        delay = _INF
        if uniform:
            delay = m / rate if rate > 0 else _INF
        else:
            groups: dict[float, list] = {}
            for job in vals:
                grp = groups.get(job[1])
                if grp is None:
                    groups[job[1]] = [job]
                else:
                    grp.append(job)
            left = self.capacity
            n_left = len(jobs)
            for ecap in sorted(groups):
                for job in groups[ecap]:
                    share = left / n_left
                    rate = ecap if ecap <= share else share
                    job[3] = rate
                    left -= rate
                    n_left -= 1
                    if rate > 0:
                        d = job[0] / rate
                        if d < delay:
                            delay = d
        if delay < 0.0:
            delay = 0.0
        self.due = self._last + delay


def _water_fill(caps: np.ndarray, capacity: float) -> np.ndarray:
    """Water-filling allocation over heterogeneous per-job caps.

    Same fill order as ``FairShareServer._allocate``: distinct caps
    ascending.  A whole group is either capped (each job gets exactly
    its cap) or share-limited; in the share-limited regime every
    remaining job receives the equal split of the leftover capacity,
    which matches the DES sequential chain up to float rounding.
    """
    order = np.argsort(caps, kind="stable")
    sorted_caps = caps[order]
    rates = np.empty_like(caps)
    left = capacity
    n_left = caps.size
    uniq, counts = np.unique(sorted_caps, return_counts=True)
    start = 0
    for c, k in zip(uniq, counts):
        share = left / n_left
        if c <= share:
            rates[order[start:start + k]] = c
            left -= c * k
            n_left -= int(k)
            start += int(k)
        else:
            rates[order[start:]] = share
            break
    return rates


class BatchServer:
    """Numpy mirror of one fair-share server for a large cohort.

    Slots are thread ids; a thread has at most one job on a given
    server at a time (the thread programs the machines generate always
    block on a submission before issuing the next one to the same
    server).  Submissions are buffered and applied vectorized at the
    next :meth:`flush` -- all adds between flushes happen at the same
    event time, so deferring them changes nothing.

    When every active job gets the same rate (uniform caps, or all
    share-limited -- by far the common regimes) the server runs a
    scalar-rate lane that advances remaining work with one vector
    subtraction per event.
    """

    __slots__ = ("capacity", "n", "due", "busy_time", "total_served",
                 "_slots", "_rem", "_caps", "_seq", "_rates", "_rate",
                 "_mincap", "_last", "_dirty", "_pend")

    def __init__(self, capacity: float, n_slots: int, start: float):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self.n = 0
        self.due = _INF
        self.busy_time = 0.0
        self.total_served = 0.0
        # compact, membership-aligned arrays (only live jobs)
        self._slots: Optional[np.ndarray] = None
        self._rem: Optional[np.ndarray] = None
        self._caps: Optional[np.ndarray] = None
        self._seq: Optional[np.ndarray] = None
        self._rates: Optional[np.ndarray] = None   # heterogeneous lane
        self._rate = 0.0                           # scalar lane
        self._mincap = _INF     # lower bound on every cap ever submitted
        self._last = start
        self._dirty = False
        self._pend: list[tuple[int, float, float, int]] = []

    def add(self, slot: int, demand: float, cap: Optional[float],
            seq: int, now: float) -> None:
        # `now` is always the engine's current event time; the buffered
        # submission takes effect at the flush closing this event.
        c = cap if cap is not None else _INF
        if c < self._mincap:
            self._mincap = c
        self._pend.append((slot, demand, c, seq))
        self.n += 1
        self._dirty = True

    def _advance_to(self, now: float) -> None:
        dt = now - self._last
        self._last = now
        rem = self._rem
        if dt <= 0 or rem is None:
            return
        rate = self._rate
        if rate:
            rem -= rate * dt
            self.total_served += rate * dt * rem.size
        else:
            served = self._rates * dt
            rem -= served
            self.total_served += float(served.sum())
        self.busy_time += dt

    def finish(self, now: float) -> list[tuple[int, int]]:
        """Completed ``(arrival_seq, slot)`` pairs at time ``now``.

        Applies the DES completion batching rule: every job whose
        remaining work is within 1e-9 relative of the minimum (floored
        at 1e-9 absolute) finishes together.
        """
        # advance inlined: finish is called once per completion event
        dt = now - self._last
        self._last = now
        rem = self._rem
        if dt > 0:
            rate = self._rate
            if rate:
                rem -= rate * dt
                self.total_served += rate * dt * rem.size
            else:
                served = self._rates * dt
                rem -= served
                self.total_served += float(served.sum())
            self.busy_time += dt
        threshold = float(rem.min()) * (1.0 + _EPS)
        if threshold < _EPS:
            threshold = _EPS
        mask = rem <= threshold
        out = list(zip(self._seq[mask].tolist(),
                       self._slots[mask].tolist()))
        keep = ~mask
        self._slots = self._slots[keep]
        self._rem = rem[keep]
        if self._caps is not None:
            self._caps = self._caps[keep]
        self._seq = self._seq[keep]
        self.n -= len(out)
        self._dirty = True
        return out

    def flush(self, now: float) -> None:
        """Apply buffered submissions and recompute rates and the next
        completion time if stale."""
        if not self._dirty:
            return
        self._dirty = False
        self._advance_to(now)
        pend = self._pend
        if pend:
            slots = np.array([p[0] for p in pend], dtype=np.int64)
            dem = np.array([p[1] for p in pend])
            # an entirely uncapped server (e.g. the network) never
            # materializes a caps array at all
            caps = (np.array([p[2] for p in pend])
                    if self._mincap < _INF else None)
            seqs = np.array([p[3] for p in pend], dtype=np.int64)
            pend.clear()
            if self._rem is None or self._rem.size == 0:
                self._slots, self._rem = slots, dem
                self._caps, self._seq = caps, seqs
            else:
                if caps is not None:
                    old = (self._caps if self._caps is not None
                           else np.full(self._rem.size, _INF))
                    self._caps = np.concatenate((old, caps))
                self._slots = np.concatenate((self._slots, slots))
                self._rem = np.concatenate((self._rem, dem))
                self._seq = np.concatenate((self._seq, seqs))
        rem = self._rem
        k = 0 if rem is None else rem.size
        if k == 0:
            self.due = _INF
            self._slots = self._rem = self._caps = self._seq = None
            self._rates = None
            self._rate = 0.0
            return
        capacity = self.capacity
        share = capacity / k
        if self._mincap >= share:
            # every job is share-limited: equal split, which is what
            # the FairShareServer water-fill computes sequentially
            self._rate = share
            self._rates = None
            delay = float(rem.min()) / share
        else:
            caps = self._caps
            cmin = float(caps.min())
            if cmin >= share:
                self._rate = share
                self._rates = None
                delay = float(rem.min()) / share
            else:
                cmax = float(caps.max())
                if cmin == cmax:
                    # uniform caps below the fair share: everyone capped
                    self._rate = cmin
                    self._rates = None
                    delay = float(rem.min()) / cmin
                elif float(caps.sum()) <= capacity:
                    # no job is share-limited: everyone runs at its cap
                    self._rate = 0.0
                    self._rates = caps
                    delay = float((rem / caps).min())
                else:
                    self._rate = 0.0
                    self._rates = _water_fill(caps, capacity)
                    delay = float((rem / self._rates).min())
        if delay < 0.0:
            delay = 0.0
        self.due = self._last + delay


def make_server(capacity: float, n_slots: int, start: float):
    """The batch-server implementation appropriate for a cohort size."""
    if n_slots <= SCALAR_MAX_SLOTS:
        return ScalarBatchServer(capacity, n_slots, start)
    return BatchServer(capacity, n_slots, start)


class _Thread:
    __slots__ = ("segs", "idx", "own", "outstanding")

    def __init__(self, segs: list, own: int):
        self.segs = segs
        self.idx = 0
        self.own = own          # home server id (None segments resolve here)
        self.outstanding = 0    # unfinished parts of the current segment


class _LockState:
    __slots__ = ("holder", "queue", "waits", "wait_time", "max_depth",
                 "hist")

    def __init__(self) -> None:
        self.holder: Optional[int] = None
        self.queue: deque[tuple[int, float]] = deque()
        self.waits = 0
        self.wait_time = 0.0
        # convoy statistics -- the same formula Resource applies: depth
        # seen by each contended acquire, max + power-of-two histogram
        self.max_depth = 0
        self.hist: dict[int, int] = {}


class CohortEngine:
    """Replays one homogeneous parallel region without DES processes.

    Parameters
    ----------
    start_time:
        Absolute simulation time at which the region's threads start
        (after the parent has paid thread-creation costs).
    capacities:
        Aggregate capacity of each server, indexed by the ``server_id``
        the segments use.
    programs:
        One compiled segment list per thread (empty for work-queue
        workers, which pull everything from ``queue``).
    own_sids:
        Per-thread home server id (defaults to 0) resolving segments
        whose ``server_id`` is None.
    queue:
        Optional FIFO of compiled work items; a thread that exhausts
        its segments pops the next item, exactly like the DES worker
        loop over ``Store.try_get``.
    """

    def __init__(self, start_time: float, capacities: Sequence[float],
                 programs: Sequence[list],
                 own_sids: Optional[Sequence[int]] = None,
                 queue: Optional[deque] = None):
        n = len(programs)
        self.now = float(start_time)
        self.servers = [make_server(c, n, self.now) for c in capacities]
        self.threads = [
            _Thread(list(segs), own_sids[i] if own_sids is not None else 0)
            for i, segs in enumerate(programs)
        ]
        self.queue = queue
        self.timers: list[tuple[float, int, int]] = []
        self.locks: dict[str, _LockState] = {}
        self.n_done = 0
        self._seq = 0
        self._grants: deque[int] = deque()

    # ------------------------------------------------------------------
    def run(self) -> float:
        """Drive the region to completion; returns its absolute end time."""
        n = len(self.threads)
        # threads start in creation order (DES bootstrap order)
        for tid in range(n):
            self._advance_thread(tid)
        self._drain_grants()
        servers = self.servers
        for s in servers:
            if s._dirty:
                s.flush(self.now)
        # a flushed server's `due` is authoritative (inf when idle), so
        # the event loops below never need to consult `n`
        if len(servers) == 2:
            return self._run_two(n)
        return self._run_many(n)

    def _run_two(self, n: int) -> float:
        """Event loop specialized for two servers (every conventional
        region -- cpu + bus -- and the single-processor MTA)."""
        s0, s1 = self.servers
        timers = self.timers
        threads = self.threads
        advance = self._advance_thread
        grants = self._grants
        while self.n_done < n:
            d0 = s0.due
            d1 = s1.due
            t = d0 if d0 < d1 else d1
            if timers and timers[0][0] < t:
                t = timers[0][0]
            if t == _INF:  # pragma: no cover - defensive
                raise DesError("cohort region deadlocked")
            self.now = t
            batch = s0.finish(t) if d0 <= t else []
            if d1 <= t:
                b1 = s1.finish(t)
                batch = batch + b1 if batch else b1
            while timers and timers[0][0] <= t:
                _t, sq, tid = heappop(timers)
                batch.append((sq, tid))
            if len(batch) > 1:
                # job-arrival order: the FIFO insertion order the DES
                # server iterates when succeeding a completion batch
                batch.sort()
            for _sq, tid in batch:
                th = threads[tid]
                o = th.outstanding - 1
                th.outstanding = o
                if o == 0:
                    advance(tid)
            if grants:
                self._drain_grants()
            if s0._dirty:
                s0.flush(t)
            if s1._dirty:
                s1.flush(t)
        return self.now

    def _run_many(self, n: int) -> float:
        """Generic event loop for any server count."""
        servers = self.servers
        timers = self.timers
        threads = self.threads
        advance = self._advance_thread
        grants = self._grants
        while self.n_done < n:
            t = _INF
            for s in servers:
                if s.due < t:
                    t = s.due
            if timers and timers[0][0] < t:
                t = timers[0][0]
            if t == _INF:  # pragma: no cover - defensive
                raise DesError("cohort region deadlocked")
            self.now = t
            batch: list[tuple[int, int]] = []
            for s in servers:
                if s.due <= t:
                    batch.extend(s.finish(t))
            while timers and timers[0][0] <= t:
                _t, sq, tid = heappop(timers)
                batch.append((sq, tid))
            if len(batch) > 1:
                # job-arrival order: the FIFO insertion order the DES
                # server iterates when succeeding a completion batch
                batch.sort()
            for _sq, tid in batch:
                th = threads[tid]
                o = th.outstanding - 1
                th.outstanding = o
                if o == 0:
                    advance(tid)
            if grants:
                self._drain_grants()
            for s in servers:
                if s._dirty:
                    s.flush(t)
        return self.now

    # ------------------------------------------------------------------
    def total_lock_waits(self) -> int:
        return sum(lk.waits for lk in self.locks.values())

    def total_lock_wait_time(self) -> float:
        return sum(lk.wait_time for lk in self.locks.values())

    # ------------------------------------------------------------------
    def _advance_thread(self, tid: int) -> None:
        """Run a thread forward until it blocks or finishes.

        Zero-demand submissions, free lock acquires and releases are
        processed synchronously -- they advance no simulated time and
        the threads of a cohort are interchangeable, so the DES
        event-queue interleaving they would get cannot change the
        region timeline.
        """
        th = self.threads[tid]
        segs = th.segs
        i = th.idx
        servers = self.servers
        now = self.now
        seq = self._seq
        while True:
            if i >= len(segs):
                q = self.queue
                if q:
                    segs = th.segs = q.popleft()
                    i = 0
                    continue
                th.idx = i
                self._seq = seq
                self.n_done += 1
                return
            seg = segs[i]
            i += 1
            op = seg[0]
            if op == SRV:
                _op, sid, demand, cap = seg
                if demand > 0:
                    if sid is None:
                        sid = th.own
                    servers[sid].add(tid, demand, cap, seq, now)
                    seq += 1
                    th.outstanding = 1
                    th.idx = i
                    self._seq = seq
                    return
            elif op == PAR:
                k = 0
                for sid, demand, cap in seg[1]:
                    if demand > 0:
                        if sid is None:
                            sid = th.own
                        servers[sid].add(tid, demand, cap, seq, now)
                        seq += 1
                        k += 1
                if k:
                    th.outstanding = k
                    th.idx = i
                    self._seq = seq
                    return
            elif op == SLEEP:
                d = seg[1]
                if d > 0:
                    heappush(self.timers, (now + d, seq, tid))
                    self._seq = seq + 1
                    th.outstanding = 1
                    th.idx = i
                    return
            elif op == ACQ:
                lk = self._lock(seg[1])
                if lk.holder is None:
                    lk.holder = tid
                else:
                    # contended: counted at request time, like Resource
                    lk.waits += 1
                    depth = len(lk.queue) + 1
                    if depth > lk.max_depth:
                        lk.max_depth = depth
                    bucket = 1 << (depth.bit_length() - 1)
                    lk.hist[bucket] = lk.hist.get(bucket, 0) + 1
                    lk.queue.append((tid, now))
                    th.idx = i
                    self._seq = seq
                    return
            elif op == REL:
                lk = self._lock(seg[1])
                lk.holder = None
                if lk.queue:
                    wtid, t0 = lk.queue.popleft()
                    lk.wait_time += now - t0
                    lk.holder = wtid
                    # the waiter resumes only after the current
                    # completion batch, like a succeed() at the same
                    # timestamp
                    self._grants.append(wtid)
            else:  # pragma: no cover - compilers emit known opcodes
                raise DesError(f"unknown cohort segment {seg!r}")

    def _drain_grants(self) -> None:
        g = self._grants
        while g:
            self._advance_thread(g.popleft())

    def _lock(self, name: str) -> _LockState:
        lk = self.locks.get(name)
        if lk is None:
            lk = self.locks[name] = _LockState()
        return lk
