"""Unit and property tests for OpCounts."""

import pytest
from hypothesis import given, strategies as st

from repro.workload import OpCounts, WORD_BYTES


counts = st.floats(min_value=0, max_value=1e12, allow_nan=False)


def opcounts_strategy():
    return st.builds(OpCounts, ialu=counts, falu=counts, load=counts,
                     store=counts, branch=counts, sync=counts)


def test_total_and_mem_ops():
    oc = OpCounts(ialu=10, falu=5, load=3, store=2, branch=1, sync=4)
    assert oc.total == 25
    assert oc.mem_ops == 9
    assert oc.mem_bytes == 9 * WORD_BYTES


def test_mem_fraction():
    oc = OpCounts(ialu=6, load=3, store=1)
    assert oc.mem_fraction == pytest.approx(0.4)
    assert OpCounts().mem_fraction == 0.0


def test_negative_counts_rejected():
    with pytest.raises(ValueError):
        OpCounts(ialu=-1)


def test_addition():
    a = OpCounts(ialu=1, load=2)
    b = OpCounts(ialu=3, store=4)
    c = a + b
    assert c.ialu == 4 and c.load == 2 and c.store == 4


def test_scaling():
    oc = OpCounts(ialu=2, falu=4) * 2.5
    assert oc.ialu == 5 and oc.falu == 10
    assert (3 * OpCounts(load=1)).load == 3


def test_negative_scale_rejected():
    with pytest.raises(ValueError):
        OpCounts(ialu=1) * -1


def test_replace():
    oc = OpCounts(ialu=1, load=2).replace(load=9)
    assert oc.load == 9 and oc.ialu == 1


def test_dict_round_trip():
    oc = OpCounts(ialu=1, falu=2, load=3, store=4, branch=5, sync=6)
    assert OpCounts.from_dict(oc.as_dict()) == oc


def test_weighted_cycles():
    oc = OpCounts(ialu=10, falu=4)
    assert oc.weighted_cycles({"ialu": 1.0, "falu": 2.0}) == 18.0


@given(opcounts_strategy(), opcounts_strategy())
def test_addition_commutes(a, b):
    assert a + b == b + a


@given(opcounts_strategy(), st.floats(min_value=0, max_value=1e6,
                                      allow_nan=False))
def test_scaling_preserves_total(oc, k):
    assert (oc * k).total == pytest.approx(oc.total * k, rel=1e-9)


@given(opcounts_strategy())
def test_mem_fraction_bounded(oc):
    assert 0.0 <= oc.mem_fraction <= 1.0


def test_each_negative_field_names_the_offender():
    # the hot constructor fast-guards, then reports the exact field
    for name in ("ialu", "falu", "load", "store", "branch", "sync"):
        with pytest.raises(ValueError, match=name):
            OpCounts(**{name: -1.0})


def test_replace_covers_every_field():
    oc = OpCounts(ialu=1, falu=2, load=3, store=4, branch=5, sync=6)
    assert oc.replace(sync=9.0) == OpCounts(ialu=1, falu=2, load=3,
                                            store=4, branch=5, sync=9)
    assert oc.replace() == oc


def test_nan_counts_pass_validation_unchanged():
    # NaN < 0 is False: the explicit fast guard must keep admitting
    # NaN exactly like the historical fields() loop did
    oc = OpCounts(ialu=float("nan"))
    assert oc.ialu != oc.ialu
