"""Registry-wide engine-parity sweep.

Every experiment the registry can produce is swept at smoke scale:
each of its jobs runs under pure DES and under the cohort fast path on
both machine families, and the pair must satisfy the parity contract
in ``tests/parity.py``.  This is the contract the chaos CI gate relies
on -- the fault injector splits jobs and re-runs segments under
whichever engine is active, so any job the registry can emit must
agree across engines.

The sweep runs twice: with the cohort engine's closed-form layers on
(``REPRO_FORCE_CLOSED_FORM=1``, the default dispatch) and off (``=0``,
every thread event-stepped individually), so both sides of the
engine's internal dispatch decision stay covered by the same contract.

Jobs shared between experiments (the registry collapses identical
builders) are paired once and memoized by (mode, job name).
"""

import os

import pytest

from repro.analysis.targets import experiment_jobs
from repro.des.batch import FORCE_CLOSED_FORM_ENV
from repro.harness import EXPERIMENT_IDS, BenchmarkData

from tests.parity import (
    assert_equivalent,
    run_both_cmt,
    run_both_conventional,
    run_both_mta,
)

pytestmark = pytest.mark.slow

SCALES = dict(threat_scale=0.01, terrain_scale=0.03)

#: the engine's closed-form escape hatch, both positions
MODES = ("1", "0")

_pair_cache = {}


@pytest.fixture(scope="module")
def data():
    return BenchmarkData(**SCALES)


@pytest.fixture(params=MODES)
def closed_form_mode(request, monkeypatch):
    monkeypatch.setenv(FORCE_CLOSED_FORM_ENV, request.param)
    return request.param


def _pairs(job, mode):
    key = (mode, job.name)
    if key not in _pair_cache:
        _pair_cache[key] = (run_both_mta(job),
                            run_both_conventional(job))
    return _pair_cache[key]


@pytest.mark.parametrize("eid", sorted(EXPERIMENT_IDS))
def test_experiment_parity_under_both_engines(eid, data, closed_form_mode):
    assert os.environ[FORCE_CLOSED_FORM_ENV] == closed_form_mode
    jobs = experiment_jobs(eid, data)
    for name, job in jobs.items():
        (mta_des, mta_coh), (conv_des, conv_coh) = _pairs(
            job, closed_form_mode)
        try:
            assert_equivalent(mta_des, mta_coh)
            assert_equivalent(conv_des, conv_coh)
        except AssertionError as exc:
            raise AssertionError(
                f"{eid}/{name} [closed_form={closed_form_mode}]: "
                f"{exc}") from exc


# ----------------------------------------------------------------------
# taskbench topologies x all three machine families
# ----------------------------------------------------------------------

#: one recipe per topology, widths/depths chosen so every topology's
#: structural cases (halo clipping, fan-in joins, widening trees,
#: wrap-around meshes) are exercised, plus a non-default grain/seed
TASKBENCH_RECIPES = (
    "tb-stencil-w8-d4-g1-s0-hw",
    "tb-fanout-w8-d4-g1-s0-hw",
    "tb-tree-w16-d5-g1-s0-hw",
    "tb-mesh-w8-d3-g2-s1-hw",
)


@pytest.mark.parametrize("recipe", TASKBENCH_RECIPES)
def test_taskbench_parity_on_all_families(recipe, closed_form_mode):
    """Every topology is *byte-identical* across engines on the MTA,
    the Exemplar SMP and the T3-4 CMT -- exact equality, stricter than
    the registry contract's REL_TOL."""
    from repro.taskbench import job_from_recipe

    job = job_from_recipe(recipe)
    for family, (des, coh) in (("mta", run_both_mta(job)),
                               ("exemplar", run_both_conventional(job)),
                               ("cmt", run_both_cmt(job))):
        assert coh.seconds == des.seconds, \
            (recipe, family, closed_form_mode, des.seconds, coh.seconds)
        assert_equivalent(des, coh)


@pytest.mark.parametrize("recipe", TASKBENCH_RECIPES)
def test_taskbench_parity_under_no_cohort_hatch(recipe, monkeypatch):
    """With REPRO_NO_COHORT set, default-constructed machines dispatch
    to pure DES -- and still produce the exact cohort-path numbers."""
    from repro.machines import ConventionalMachine, cmt, exemplar
    from repro.mta import MtaMachine, mta
    from repro.taskbench import job_from_recipe
    from repro.workload.cohort import NO_COHORT_ENV

    job = job_from_recipe(recipe)
    cohort = [m.run(job).seconds
              for m in (MtaMachine(mta(2), use_cohort=True),
                        ConventionalMachine(exemplar(4),
                                            use_cohort=True),
                        ConventionalMachine(cmt(64), use_cohort=True))]
    monkeypatch.setenv(NO_COHORT_ENV, "1")
    hatched = [MtaMachine(mta(2)).run(job),
               ConventionalMachine(exemplar(4)).run(job),
               ConventionalMachine(cmt(64)).run(job)]
    for coh_seconds, des in zip(cohort, hatched):
        assert des.stats.get("cohort_regions", 0) == 0  # hatch honored
        assert des.seconds == coh_seconds
