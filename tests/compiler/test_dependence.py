"""Unit tests for the dependence analysis on hand-built loops."""


from repro.compiler import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    Const,
    DependenceKind,
    ForLoop,
    VarRef,
    WhileLoop,
    analyze_loop,
)
from repro.compiler.dependence import affine_form


def v(name):
    return VarRef(name)


def loop(body, var="i", pragma=False):
    return ForLoop(var=var, lower=Const(0), upper=v("n"), body=tuple(body),
                   pragma_parallel=pragma)


# ----------------------------------------------------------------------
# affine_form
# ----------------------------------------------------------------------

def test_affine_const():
    a = affine_form(Const(5), "i", set())
    assert (a.coef, a.base_var, a.base_num, a.opaque) == (0, None, 5, False)


def test_affine_loop_var():
    a = affine_form(v("i"), "i", set())
    assert (a.coef, a.base_num) == (1, 0)


def test_affine_linear_combination():
    # 2*i + k - 3
    e = BinOp("-", BinOp("+", BinOp("*", Const(2), v("i")), v("k")),
              Const(3))
    a = affine_form(e, "i", set())
    assert a.coef == 2 and a.base_var == "k" and a.base_num == -3
    assert not a.opaque


def test_affine_mutated_scalar_is_opaque():
    a = affine_form(v("count"), "i", {"count"})
    assert a.opaque


def test_affine_two_symbols_is_opaque():
    a = affine_form(BinOp("+", v("a"), v("b")), "i", set())
    assert a.opaque


def test_affine_call_is_opaque():
    a = affine_form(Call("f", (v("i"),)), "i", set())
    assert a.opaque


def test_affine_nonlinear_is_opaque():
    a = affine_form(BinOp("*", v("i"), v("i")), "i", set())
    assert a.opaque


# ----------------------------------------------------------------------
# loop verdicts
# ----------------------------------------------------------------------

def test_disjoint_writes_parallelizable():
    # a[i] = b[i] + 1
    l = loop([Assign(ArrayRef("a", (v("i"),)),
                     BinOp("+", ArrayRef("b", (v("i"),)), Const(1)))])
    assert analyze_loop(l) == []


def test_offset_write_read_carries():
    # a[i] = a[i-1]: distance-1 flow dependence
    l = loop([Assign(ArrayRef("a", (v("i"),)),
                     ArrayRef("a", (BinOp("-", v("i"), Const(1)),)))])
    deps = analyze_loop(l)
    assert any(d.kind == DependenceKind.ARRAY and d.distance in (-1.0, 1.0)
               for d in deps)


def test_stride_two_versus_odd_constant_independent():
    # a[2i] = a[2i+1]: even vs odd elements never collide
    l = loop([Assign(ArrayRef("a", (BinOp("*", Const(2), v("i")),)),
                     ArrayRef("a", (BinOp("+", BinOp("*", Const(2), v("i")),
                                          Const(1)),)))])
    assert analyze_loop(l) == []


def test_gcd_test_rules_out_dependence():
    # a[2i] = a[4i+1]: gcd(2,4)=2 does not divide 1
    l = loop([Assign(ArrayRef("a", (BinOp("*", Const(2), v("i")),)),
                     ArrayRef("a", (BinOp("+", BinOp("*", Const(4), v("i")),
                                          Const(1)),)))])
    assert analyze_loop(l) == []


def test_same_element_every_iteration_is_dependent():
    # s[0] = s[0] + a[i]: ZIV dependence (a scalar reduction in disguise)
    l = loop([Assign(ArrayRef("s", (Const(0),)),
                     BinOp("+", ArrayRef("s", (Const(0),)),
                           ArrayRef("a", (v("i"),))))])
    deps = analyze_loop(l)
    assert any(d.kind == DependenceKind.ARRAY for d in deps)


def test_opaque_subscript_assumed_dependent():
    # a[idx] = i where idx is mutated in the loop
    l = loop([
        Assign(ArrayRef("a", (v("idx"),)), v("i")),
        Assign(v("idx"), BinOp("+", v("idx"), Const(1))),
    ])
    deps = analyze_loop(l)
    kinds = {d.kind for d in deps}
    assert DependenceKind.SCALAR in kinds      # idx itself
    # single write to a[idx]: no pair, but idx is carried


def test_opaque_write_read_pair_assumed():
    # a[f(i)] = a[i]: call subscript defeats analysis
    l = loop([Assign(ArrayRef("a", (Call("f", (v("i"),), pure=True),)),
                     ArrayRef("a", (v("i"),)))])
    deps = analyze_loop(l)
    assert any(d.kind == DependenceKind.ASSUMED for d in deps)


def test_leading_dimension_disjointness_wins():
    # a[i][anything] = a[i][other]: dim 0 proves independence
    l = loop([Assign(ArrayRef("a", (v("i"), v("idx"))),
                     ArrayRef("a", (v("i"), v("jdx"))))])
    assert analyze_loop(l) == []


def test_scalar_read_then_write_carries():
    # acc = acc + 1 style
    l = loop([Assign(v("acc"), BinOp("+", v("acc"), Const(1)))])
    deps = analyze_loop(l)
    assert any(d.kind == DependenceKind.SCALAR and d.variable == "acc"
               for d in deps)


def test_privatizable_scalar_is_fine():
    # t = a[i]; b[i] = t  (t written before read)
    l = loop([
        Assign(v("t"), ArrayRef("a", (v("i"),))),
        Assign(ArrayRef("b", (v("i"),)), v("t")),
    ])
    assert analyze_loop(l) == []


def test_impure_call_bars_parallelization():
    l = loop([CallStmt("do_stuff", (v("i"),))])
    deps = analyze_loop(l)
    assert any(d.kind == DependenceKind.CALL for d in deps)


def test_pure_call_does_not_bar():
    l = loop([Assign(ArrayRef("a", (v("i"),)),
                     Call("sin", (v("i"),), pure=True))])
    assert analyze_loop(l) == []


def test_while_loop_is_sequential():
    w = WhileLoop(cond=v("go"), body=(Assign(v("x"), Const(1)),))
    deps = analyze_loop(w)
    assert len(deps) == 1
    assert deps[0].kind == DependenceKind.CONTROL


def test_inner_loop_sweep_not_disjoint_across_outer():
    # for i: for j in 0..m: a[j] = i  -- same a[j] every outer iteration
    inner = ForLoop(var="j", lower=Const(0), upper=v("m"),
                    body=(Assign(ArrayRef("a", (v("j"),)), v("i")),))
    outer = ForLoop(var="i", lower=Const(0), upper=v("n"), body=(inner,))
    deps = analyze_loop(outer)
    assert deps, "outer loop must not be parallelizable"


def test_inner_loop_with_outer_offset_is_disjoint():
    # for i: for j: a[i][j] = 0 -- dim 0 separates outer iterations
    inner = ForLoop(var="j", lower=Const(0), upper=v("m"),
                    body=(Assign(ArrayRef("a", (v("i"), v("j"))),
                                 Const(0)),))
    outer = ForLoop(var="i", lower=Const(0), upper=v("n"), body=(inner,))
    # single write, no (write, other) pair at all
    assert analyze_loop(outer) == []


def test_inner_var_pair_assumed_dependent():
    # for i: for j: a[j] = a[j] + 1 -- rewrites the same elements
    inner = ForLoop(var="j", lower=Const(0), upper=v("m"),
                    body=(Assign(ArrayRef("a", (v("j"),)),
                                 BinOp("+", ArrayRef("a", (v("j"),)),
                                       Const(1))),))
    outer = ForLoop(var="i", lower=Const(0), upper=v("n"), body=(inner,))
    deps = analyze_loop(outer)
    assert any(d.kind in (DependenceKind.ASSUMED, DependenceKind.ARRAY)
               for d in deps)
