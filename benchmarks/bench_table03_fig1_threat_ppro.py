"""Table 3 / Figure 1: multithreaded Threat Analysis on the quad
Pentium Pro (near-linear speedup; threads run in cache)."""

from _support import run_and_report

from repro.harness import render_speedup_figure
from repro.harness.calibration import PAPER_TABLE3


def bench_table3_fig1(benchmark, data):
    result = run_and_report(benchmark, data, "table3")
    procs = [1, 2, 3, 4]
    base = result.row("1 processors").simulated
    speedups = [base / result.row(f"{n} processors").simulated
                for n in procs]
    paper = [PAPER_TABLE3[1] / PAPER_TABLE3[n] for n in procs]
    print()
    print(render_speedup_figure(
        "Figure 1: Threat Analysis speedup on 4-CPU Pentium Pro",
        procs, speedups, paper))
