"""Dependence analysis over the loop IR.

For a candidate ``for`` loop the analysis collects every scalar and
array access in the body (including nested loops) and decides whether
any dependence is carried across iterations:

* **Scalars** -- a scalar read and written in the body is carried
  unless every path writes it before reading (privatizable).  The
  ``num_intervals`` counter of Threat Analysis is the canonical carried
  case.
* **Arrays** -- per-dimension subscript tests in the loop variable:
  ZIV (both constant), strong SIV (equal coefficients), and the GCD
  test for unequal coefficients.  Subscripts are recognised as affine
  only in the form ``a*v + x + c`` with ``x`` a single loop-invariant
  or inner-loop symbol; anything else (a mutated scalar like
  ``num_intervals``, a call, a nested array ref) is *opaque* and the
  pair is conservatively assumed dependent -- the paper's "non-trivial
  index expressions" obstacle.
* **Calls** -- any impure call bars parallelization outright (no
  interprocedural analysis; the "chains of function calls" obstacle).
* **While loops** -- inherently sequential (loop-carried condition).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.compiler.loopir import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    Const,
    Expr,
    ForLoop,
    IfStmt,
    Stmt,
    VarRef,
    WhileLoop,
)


class DependenceKind(enum.Enum):
    SCALAR = "scalar"       # loop-carried scalar dataflow
    ARRAY = "array"         # proven cross-iteration array dependence
    ASSUMED = "assumed"     # opaque subscripts: assumed dependence
    CALL = "call"           # impure call bars analysis
    CONTROL = "control"     # while-loop / loop-carried control


@dataclass(frozen=True)
class Dependence:
    kind: DependenceKind
    variable: str
    reason: str
    distance: Optional[float] = None

    def __str__(self) -> str:
        return f"[{self.kind.value}] {self.variable}: {self.reason}"


# ----------------------------------------------------------------------
# Access collection
# ----------------------------------------------------------------------

@dataclass
class _Accesses:
    scalar_reads: list[str] = field(default_factory=list)
    scalar_writes: list[str] = field(default_factory=list)
    #: ordered (name, "R"/"W") trace, for write-before-read checks
    scalar_trace: list[tuple[str, str]] = field(default_factory=list)
    array_reads: list[ArrayRef] = field(default_factory=list)
    array_writes: list[ArrayRef] = field(default_factory=list)
    impure_calls: list[str] = field(default_factory=list)
    inner_loop_vars: set[str] = field(default_factory=set)
    has_while: bool = False


def _collect_expr(e: Expr, acc: _Accesses) -> None:
    if isinstance(e, Const):
        return
    if isinstance(e, VarRef):
        acc.scalar_reads.append(e.name)
        acc.scalar_trace.append((e.name, "R"))
    elif isinstance(e, BinOp):
        _collect_expr(e.left, acc)
        _collect_expr(e.right, acc)
    elif isinstance(e, Call):
        if not e.pure:
            acc.impure_calls.append(e.fn)
        for a in e.args:
            _collect_expr(a, acc)
    elif isinstance(e, ArrayRef):
        acc.array_reads.append(e)
        for i in e.indices:
            _collect_expr(i, acc)
    else:  # pragma: no cover
        raise TypeError(f"unknown expression {e!r}")


def _collect_stmt(s: Stmt, acc: _Accesses) -> None:
    if isinstance(s, Assign):
        _collect_expr(s.value, acc)
        if isinstance(s.target, VarRef):
            acc.scalar_writes.append(s.target.name)
            acc.scalar_trace.append((s.target.name, "W"))
        else:
            acc.array_writes.append(s.target)
            for i in s.target.indices:
                _collect_expr(i, acc)
    elif isinstance(s, CallStmt):
        acc.impure_calls.append(s.fn)
        for a in s.args:
            _collect_expr(a, acc)
    elif isinstance(s, IfStmt):
        _collect_expr(s.cond, acc)
        for t in s.then:
            _collect_stmt(t, acc)
        for t in s.orelse:
            _collect_stmt(t, acc)
    elif isinstance(s, ForLoop):
        acc.inner_loop_vars.add(s.var)
        _collect_expr(s.lower, acc)
        _collect_expr(s.upper, acc)
        for t in s.body:
            _collect_stmt(t, acc)
    elif isinstance(s, WhileLoop):
        acc.has_while = True
        _collect_expr(s.cond, acc)
        for t in s.body:
            _collect_stmt(t, acc)
    else:  # pragma: no cover
        raise TypeError(f"unknown statement {s!r}")


def collect_accesses(body: tuple[Stmt, ...]) -> _Accesses:
    acc = _Accesses()
    for s in body:
        _collect_stmt(s, acc)
    return acc


# ----------------------------------------------------------------------
# Affine subscript recognition:  a*v + x + c
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _Affine:
    coef: float          # coefficient of the analyzed loop variable
    base_var: Optional[str]  # at most one symbolic term
    base_num: float
    opaque: bool = False

    def add(self, other: "_Affine", sign: float) -> "_Affine":
        if self.opaque or other.opaque:
            return _OPAQUE
        if self.base_var and other.base_var:
            return _OPAQUE  # more than one symbol: give up
        return _Affine(self.coef + sign * other.coef,
                       self.base_var or other.base_var,
                       self.base_num + sign * other.base_num)


_OPAQUE = _Affine(0.0, None, 0.0, opaque=True)


def affine_form(e: Expr, var: str, mutated: set[str]) -> _Affine:
    """Recognise ``e`` as affine in ``var``; opaque on anything else."""
    if isinstance(e, Const):
        return _Affine(0.0, None, float(e.value))
    if isinstance(e, VarRef):
        if e.name == var:
            return _Affine(1.0, None, 0.0)
        if e.name in mutated:
            return _OPAQUE  # value changes within the loop: unknown
        return _Affine(0.0, e.name, 0.0)
    if isinstance(e, BinOp):
        if e.op == "+":
            return affine_form(e.left, var, mutated).add(
                affine_form(e.right, var, mutated), 1.0)
        if e.op == "-":
            return affine_form(e.left, var, mutated).add(
                affine_form(e.right, var, mutated), -1.0)
        if e.op == "*":
            lhs = affine_form(e.left, var, mutated)
            rhs = affine_form(e.right, var, mutated)
            for k, a in ((lhs, rhs), (rhs, lhs)):
                if (not k.opaque and k.coef == 0 and k.base_var is None
                        and not a.opaque and a.base_var is None):
                    return _Affine(a.coef * k.base_num, None,
                                   a.base_num * k.base_num)
            return _OPAQUE
        return _OPAQUE
    return _OPAQUE  # calls, array refs: opaque


# ----------------------------------------------------------------------
# Subscript pair tests
# ----------------------------------------------------------------------

#: Per-dimension verdicts.
_INDEP = "independent"
_DEP = "dependent"
_UNKNOWN = "unknown"


def _dimension_verdict(w: _Affine, r: _Affine,
                       inner_vars: set[str]) -> tuple[str, Optional[float]]:
    if w.opaque or r.opaque:
        return _UNKNOWN, None
    varies_w = w.base_var in inner_vars if w.base_var else False
    varies_r = r.base_var in inner_vars if r.base_var else False

    if w.coef == r.coef:
        a = w.coef
        if a != 0:
            # strong SIV:  a*i + bw  vs  a*i' + br
            if w.base_var == r.base_var and not (varies_w or varies_r):
                d = (r.base_num - w.base_num) / a
                if d != int(d):
                    return _INDEP, None
                if d == 0:
                    return _INDEP, None  # only intra-iteration
                return _DEP, d
            if w.base_var == r.base_var:
                # same inner symbol: a nonzero coefficient still forces
                # i == i' only when the symbol takes the same value --
                # different inner iterations may collide across i.
                return _UNKNOWN, None
            return _UNKNOWN, None  # different symbols: unknown offset
        # ZIV: both invariant in the loop variable
        if w.base_var == r.base_var and not (varies_w or varies_r):
            if w.base_num == r.base_num:
                return _DEP, None  # same element every iteration
            if w.base_var is None:
                return _INDEP, None  # distinct constants
            return _UNKNOWN, None  # x+1 vs x+2: distinct... but offsets
        if varies_w or varies_r:
            return _UNKNOWN, None  # inner-var subscript sweeps a range
        return _UNKNOWN, None
    # unequal coefficients: GCD test when fully numeric
    if w.base_var is None and r.base_var is None:
        a1, a2 = w.coef, r.coef
        g = math.gcd(int(a1), int(a2)) if (
            a1 == int(a1) and a2 == int(a2)) else 0
        diff = r.base_num - w.base_num
        if g > 0 and diff == int(diff) and int(diff) % g != 0:
            return _INDEP, None
    return _UNKNOWN, None


def _pair_dependence(write: ArrayRef, other: ArrayRef, var: str,
                     mutated: set[str], inner_vars: set[str]
                     ) -> Optional[tuple[str, Optional[float]]]:
    """Test one (write, read-or-write) pair; None means independent."""
    if write.array != other.array:
        return None
    verdicts = []
    n = min(len(write.indices), len(other.indices))
    for d in range(n):
        wa = affine_form(write.indices[d], var, mutated)
        ra = affine_form(other.indices[d], var, mutated)
        verdicts.append(_dimension_verdict(wa, ra, inner_vars))
    if any(v == _INDEP for v, _dist in verdicts):
        return None
    if all(v == _DEP for v, _dist in verdicts) and verdicts:
        dist = next((d for v, d in verdicts if d is not None), None)
        return _DEP, dist
    return _UNKNOWN, None


# ----------------------------------------------------------------------
# Whole-loop analysis
# ----------------------------------------------------------------------

def analyze_loop(loop: Union[ForLoop, WhileLoop]) -> list[Dependence]:
    """All dependences that prevent running ``loop``'s iterations
    concurrently.  Empty list == provably parallelizable."""
    if isinstance(loop, WhileLoop):
        return [Dependence(
            DependenceKind.CONTROL, str(loop.cond),
            "while loop: trip count and condition are loop-carried")]

    acc = collect_accesses(loop.body)
    deps: list[Dependence] = []

    # 1. impure calls bar everything
    for fn in sorted(set(acc.impure_calls)):
        deps.append(Dependence(
            DependenceKind.CALL, fn,
            "call with unknown side effects defeats dependence analysis"))

    mutated = set(acc.scalar_writes)

    # 2. scalar dataflow
    reads = set(acc.scalar_reads)
    for name in sorted(mutated):
        if name == loop.var or name in acc.inner_loop_vars:
            continue
        if name not in reads:
            continue  # written only: privatizable output value
        # privatizable if the first access on the trace is a write
        first = next(k for n, k in acc.scalar_trace if n == name)
        if first == "W":
            continue
        deps.append(Dependence(
            DependenceKind.SCALAR, name,
            "read-then-written scalar carries a value across iterations"))

    # 3. array subscript tests.  Every write is tested against every
    # other access AND against itself -- a static write conflicts with
    # its own instances in other iterations unless the subscripts
    # separate iterations (output dependence).
    seen: set[tuple[str, str, str]] = set()
    for w in acc.array_writes:
        for other in acc.array_writes + acc.array_reads:
            verdict = _pair_dependence(w, other, loop.var, mutated,
                                       acc.inner_loop_vars)
            if verdict is None:
                continue
            kind, dist = verdict
            key = (w.array, str(w), str(other))
            if key in seen:
                continue
            seen.add(key)
            if kind == _DEP:
                deps.append(Dependence(
                    DependenceKind.ARRAY, w.array,
                    f"cross-iteration access pair {w} / {other}",
                    distance=dist))
            else:
                deps.append(Dependence(
                    DependenceKind.ASSUMED, w.array,
                    f"subscripts of {w} / {other} are not provably "
                    f"independent (opaque or range-overlapping)"))

    return deps
