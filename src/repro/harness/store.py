"""Serialization of experiment results (JSON round trip).

Lets CI pipelines and notebooks consume reproduced tables without
re-running the simulations, and lets the CLI emit machine-readable
output (``python -m repro run table5 --json out.json``).
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.harness.experiment import ExperimentResult, Row, ShapeCheck

#: bumped on any schema change
SCHEMA_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "notes": result.notes,
        "rows": [
            {"label": r.label, "paper": r.paper,
             "simulated": r.simulated, "unit": r.unit}
            for r in result.rows
        ],
        "checks": [
            {"description": c.description, "passed": c.passed,
             "detail": c.detail}
            for c in result.checks
        ],
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported result schema {schema!r} "
            f"(this build reads {SCHEMA_VERSION})")
    rows = tuple(
        Row(label=r["label"], paper=r["paper"],
            simulated=r["simulated"], unit=r["unit"])
        for r in payload["rows"]
    )
    checks = tuple(
        ShapeCheck(description=c["description"], passed=c["passed"],
                   detail=c.get("detail", ""))
        for c in payload["checks"]
    )
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        rows=rows,
        checks=checks,
        notes=payload.get("notes", ""),
    )


def dump_results(results: Iterable[ExperimentResult], path: str) -> None:
    """Write results as a JSON array."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump([result_to_dict(r) for r in results], fh, indent=2)


def load_results(path: str) -> list[ExperimentResult]:
    """Read back results written by :func:`dump_results`."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, list):
        raise ValueError("expected a JSON array of results")
    return [result_from_dict(p) for p in payload]
