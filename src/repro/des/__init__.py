"""Deterministic discrete-event simulation kernel.

This package is the substrate on which every machine model in
:mod:`repro` runs.  It provides a small, fully deterministic,
generator-based process model:

* :class:`~repro.des.simulator.Simulator` -- the event loop.
* :class:`~repro.des.events.Event`, :class:`~repro.des.events.Timeout`,
  :class:`~repro.des.events.AllOf`, :class:`~repro.des.events.AnyOf` --
  the things processes wait on.
* :class:`~repro.des.process.Process` -- a generator turned into a
  simulated thread of control.
* :class:`~repro.des.resources.Resource` -- a k-server FIFO resource.
* :class:`~repro.des.resources.FairShareServer` -- a generalized
  processor-sharing server with an optional per-customer rate cap.  This
  is the primitive used to model both shared memory buses and the Tera
  MTA's instruction-issue slots.
* :mod:`~repro.des.sync` -- locks, barriers, semaphores.
* :mod:`~repro.des.batch` -- vectorized replay of homogeneous thread
  cohorts (the machines' fast path around per-thread processes).
* :mod:`~repro.des.store` -- FIFO item stores (work queues).
* :mod:`~repro.des.monitor` -- time-series instrumentation.

Determinism: ties in the event heap are broken by insertion order, and
nothing in the kernel consults a random source, so a simulation is a
pure function of its inputs.
"""

from repro.des.batch import BatchServer, CohortEngine
from repro.des.errors import (DeadlockDiagnostic, DesError, Interrupt,
                              SimulationDeadlock)
from repro.des.events import AllOf, AnyOf, Event, Timeout, WaitEvent
from repro.des.process import Process
from repro.des.resources import FairShareServer, Request, Resource
from repro.des.simulator import Simulator
from repro.des.store import Store
from repro.des.sync import FullEmptyCell, SimBarrier, SimLock, SimSemaphore
from repro.des.monitor import Monitor, TimeSeries

__all__ = [
    "AllOf",
    "AnyOf",
    "BatchServer",
    "CohortEngine",
    "DeadlockDiagnostic",
    "DesError",
    "Event",
    "FairShareServer",
    "FullEmptyCell",
    "Interrupt",
    "Monitor",
    "Process",
    "Request",
    "Resource",
    "SimBarrier",
    "SimLock",
    "SimSemaphore",
    "SimulationDeadlock",
    "Simulator",
    "Store",
    "TimeSeries",
    "Timeout",
    "WaitEvent",
]
