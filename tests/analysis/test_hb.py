"""Tests for the happens-before race detector core."""

import pytest

from repro.analysis import (
    analyze_job,
    analyze_job_both,
    verify_engine_parity,
)
from repro.workload.builder import make_phase
from repro.workload.ops import (
    AccessMode,
    OpCounts,
    SharedAccess,
    read_of,
    write_of,
)
from repro.workload.task import (
    Compute,
    Critical,
    Job,
    ParallelRegion,
    SerialStep,
    ThreadProgram,
    WorkItem,
    WorkQueueRegion,
)


def phase(name, accesses=()):
    return make_phase(name, OpCounts(ialu=10, load=10, store=5),
                      accesses=tuple(accesses))


def parallel_job(name, thread_accesses):
    threads = tuple(
        ThreadProgram(f"t{i}", (Compute(phase(f"p{i}", accs)),))
        for i, accs in enumerate(thread_accesses))
    return Job(name, (ParallelRegion(threads),))


# ----------------------------------------------------------------------
# SharedAccess semantics
# ----------------------------------------------------------------------

def test_access_range_overlap():
    assert write_of("a", 0, 9).overlaps(read_of("a", 9, 20))
    assert not write_of("a", 0, 9).overlaps(read_of("a", 10, 20))
    assert not write_of("a", 0, 9).overlaps(write_of("b", 0, 9))


def test_opaque_extent_overlaps_everything():
    assert write_of("a").overlaps(read_of("a", 5, 5))
    assert read_of("a", 5, 5).overlaps(write_of("a"))
    assert write_of("a").overlaps(write_of("a"))
    assert not write_of("a").bounded
    assert write_of("a").span() == "a[*]"
    assert write_of("a", 0, 9).span() == "a[0:9]"


def test_access_validation():
    with pytest.raises(ValueError):
        SharedAccess("a", AccessMode.READ, 5, None)
    with pytest.raises(ValueError):
        SharedAccess("a", AccessMode.READ, 5, 4)


# ----------------------------------------------------------------------
# verdicts on synthetic jobs
# ----------------------------------------------------------------------

def test_disjoint_ranges_are_clean():
    job = parallel_job("disjoint", [
        (read_of("a", 0, 99), write_of("b", i * 10, i * 10 + 9))
        for i in range(4)])
    report = analyze_job(job, "des")
    assert report.clean and report.suppressed == 0


def test_shared_reads_are_clean():
    job = parallel_job("ro", [(read_of("a", 0, 99),)] * 4)
    assert analyze_job(job, "des").clean


def test_overlapping_writes_race():
    job = parallel_job("overlap", [
        (write_of("b", i * 10, i * 10 + 10),)  # one past the chunk end
        for i in range(4)])
    report = analyze_job(job, "des")
    assert not report.clean
    assert {f.hazard for f in report.findings} == {"data-race"}
    assert all(f.job == "overlap" for f in report.findings)


def test_write_write_on_whole_array_races_without_facts():
    job = parallel_job("nofacts", [(write_of("x"),)] * 3)
    report = analyze_job(job, "des")
    assert [f.hazard for f in report.findings] == ["data-race"]
    assert report.findings[0].location == "x[*]"


def test_serial_steps_never_race():
    job = Job("serial", (
        SerialStep(phase("a", (write_of("x", 0, 9),))),
        SerialStep(phase("b", (write_of("x", 0, 9),))),
    ))
    assert analyze_job(job, "des").clean


def test_single_worker_queue_is_serial():
    items = tuple(WorkItem(f"w{i}", (Compute(phase(f"m{i}",
                                                   (write_of("m"),))),))
                  for i in range(4))
    assert analyze_job(Job("q1", (WorkQueueRegion(items, 1),)),
                       "des").clean
    assert not analyze_job(Job("q2", (WorkQueueRegion(items, 2),)),
                           "des").clean


def test_common_lock_clears_conflict():
    items = tuple(
        WorkItem(f"w{i}", (Critical("L", phase(f"m{i}",
                                               (write_of("m", 3, 3),))),))
        for i in range(4))
    assert analyze_job(Job("locked", (WorkQueueRegion(items, 3),)),
                       "des").clean


def test_dropped_lock_is_lock_discipline():
    items = [
        WorkItem(f"w{i}", (Critical("L", phase(f"m{i}",
                                               (write_of("m", 3, 3),))),))
        for i in range(3)]
    items.append(WorkItem("w3", (Compute(phase("m3",
                                               (write_of("m", 3, 3),))),)))
    report = analyze_job(Job("dropped", (WorkQueueRegion(tuple(items),
                                                         3),)), "des")
    assert {f.hazard for f in report.findings} == {"lock-discipline"}


def test_different_locks_are_lock_discipline():
    threads = (
        ThreadProgram("t0", (Critical("L1", phase("a",
                                                  (write_of("m"),))),)),
        ThreadProgram("t1", (Critical("L2", phase("b",
                                                  (write_of("m"),))),)),
    )
    job = Job("wrong-lock", (ParallelRegion(threads),))
    report = analyze_job(job, "des")
    assert {f.hazard for f in report.findings} == {"lock-discipline"}


def test_same_unit_never_races_with_itself():
    threads = (ThreadProgram("t0", (
        Compute(phase("a", (write_of("x", 0, 9),))),
        Compute(phase("b", (write_of("x", 0, 9),))),
    )),)
    assert analyze_job(Job("selfj", (ParallelRegion(threads),)),
                       "des").clean


def test_bad_engine_rejected():
    with pytest.raises(ValueError):
        analyze_job(Job("empty", ()), "simd")


# ----------------------------------------------------------------------
# dependence-fact suppression
# ----------------------------------------------------------------------

def chunked_like_job(name):
    """Program-2-shaped job: opaque writes to intervals/num_intervals."""
    return parallel_job(name, [
        (read_of("threats", i * 10, i * 10 + 9), write_of("intervals"),
         write_of("num_intervals"))
        for i in range(4)])


def test_facts_suppress_opaque_conflicts_for_chunked_family():
    report = analyze_job(chunked_like_job("threat-chunked-4x"), "des")
    assert report.clean
    assert report.suppressed == 12  # C(4,2) pairs x 2 arrays


def test_no_facts_without_matching_program_family():
    report = analyze_job(chunked_like_job("unrelated-job"), "des")
    assert not report.clean
    assert report.suppressed == 0
    assert {f.location for f in report.findings} == {
        "intervals[*]", "num_intervals[*]"}


def test_facts_do_not_suppress_explicit_overlaps():
    """A bounded, provably overlapping range is always flagged even on
    an array the compiler proved iteration-independent."""
    job = parallel_job("threat-chunked-4x", [
        (write_of("intervals", i * 10, i * 10 + 10),)
        for i in range(4)])
    report = analyze_job(job, "des")
    assert {f.hazard for f in report.findings} == {"data-race"}


# ----------------------------------------------------------------------
# engine parity
# ----------------------------------------------------------------------

def test_parity_on_synthetic_jobs():
    for job in (chunked_like_job("threat-chunked-4x"),
                chunked_like_job("unrelated-job"),
                parallel_job("overlap", [
                    (write_of("b", i, i + 1),) for i in range(4)])):
        des, cohort = analyze_job_both(job)
        assert des.engine == "des" and cohort.engine == "cohort"
        assert des.findings == cohort.findings
        assert des.suppressed == cohort.suppressed


def test_verify_engine_parity_passes_and_raises(monkeypatch):
    job = chunked_like_job("threat-chunked-4x")
    assert verify_engine_parity(job).clean

    from repro.analysis import hb

    def broken(region):
        return []

    monkeypatch.setattr(hb, "_events_cohort", broken)
    with pytest.raises(AssertionError):
        verify_engine_parity(chunked_like_job("unrelated-job"))
