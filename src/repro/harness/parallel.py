"""Parallel experiment execution at simulation-cell granularity.

The registry's experiments are independent of each other (they share
only the read-only :class:`BenchmarkData` kernels and the persistent
result cache), so ``python -m repro all`` / ``report`` can fan them out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.  But whole
experiments are a poor unit of parallel work: a handful of simulations
dominate the registry's wall clock and many of them are shared between
experiments, so per-experiment scheduling leaves ``-j N`` gated on the
single largest experiment.

With the persistent cache available, the run therefore proceeds at
simulation-cell granularity:

1. **plan** (in the scheduling process) -- run every experiment
   against a :class:`_PlanningData` probe whose ``_simulate`` records
   each simulation *cell* (machine spec x job recipe x scales x seed
   universe) instead of running it.  Planning doubles as warm-up: it
   builds every kernel and job into the shared ``default_data``
   memos, and the pool is forked *afterwards*, so workers inherit the
   warm state copy-on-write instead of re-running kernels per process.
2. **cell** (workers) -- execute one deduplicated simulation cell
   (largest first, across all experiments) and publish its result
   through the content-addressed cache.  Cells already present in the
   cache are never submitted at all.
3. **replay** (workers) -- run each experiment for real over the
   now-warm cache, the moment its last outstanding cell lands; no
   phase barrier idles the pool.

Without a cache (``REPRO_NO_CACHE``, or an active tracer) cells cannot
be transported between processes and the scheduler falls back to
classic per-experiment tasks.

``run_experiments`` also collects a per-experiment profile (wall time
and cache hit/miss counts) for the CLI's ``--profile`` flag.  Under
cell scheduling an experiment is charged the cells *it* planned first
(wall and misses), plus its own plan and replay time; hits are the
replay's cache reads.

The pool path is crash-resilient at task granularity: a worker dying
mid-task (a real segfault/OOM kill, or an injected fault -- see
``REPRO_CHAOS_CRASH``) breaks the whole ProcessPoolExecutor, but
results that finished before the crash are salvaged, the pool is
rebuilt and only the unfinished tasks are retried, with bounded
attempts (``REPRO_RETRY_MAX``, default 3) and exponential backoff
(base ``REPRO_RETRY_BACKOFF_S``, default 0.25 s).  Backoff only ever
precedes a re-submission -- a task that exhausts its attempts raises
immediately, without a terminal sleep.  A task that *raises* in a
worker travels back as :class:`WorkerError` carrying the full child
traceback, not just the exception repr.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro import taskbench
from repro.harness import store
from repro.harness.experiment import ExperimentResult
from repro.harness.registry import EXPERIMENT_IDS, run_experiment
from repro.harness.runner import BenchmarkData, default_data
from repro.obs.trace import active_tracer

#: ``seed:rate[:mode]`` -- deterministically crash-fault workers.  A
#: worker handling fault unit ``u`` on attempt ``a`` dies iff
#: ``sha256(seed|u|a|worker-crash)`` maps below ``rate``; mode
#: ``exit`` (default) kills the process (breaking the pool), ``raise``
#: raises inside the task instead.  Experiment-level tasks use the
#: bare experiment id as their unit; simulation-cell tasks use
#: ``cell:<recipe>@<seed_offset>`` and are faulted only when the mode
#: carries the ``+cells`` suffix (``exit+cells`` / ``raise+cells``),
#: so existing experiment-level chaos seeds stay deterministic.
CHAOS_CRASH_ENV = "REPRO_CHAOS_CRASH"

RETRY_MAX_ENV = "REPRO_RETRY_MAX"
RETRY_BACKOFF_ENV = "REPRO_RETRY_BACKOFF_S"


class WorkerError(RuntimeError):
    """A task failed inside a worker process.

    ProcessPoolExecutor pickles exceptions across the process boundary
    and the traceback does not survive the trip -- debugging a parallel
    run used to mean re-running serially.  Workers therefore catch
    everything, format the traceback *in the child*, and send it back
    attached to this exception.  ``experiment_id`` is the failing fault
    unit: a bare experiment id for plan/replay tasks, ``cell:...`` for
    simulation cells.
    """

    def __init__(self, experiment_id: str, child_traceback: str):
        self.experiment_id = experiment_id
        self.child_traceback = child_traceback
        super().__init__(
            f"experiment {experiment_id!r} failed in a worker process\n"
            f"--- worker traceback ---\n{child_traceback}")

    def __reduce__(self):
        # default exception pickling replays args (the joined message)
        # into __init__, which takes two fields -- rebuild explicitly
        return (WorkerError, (self.experiment_id, self.child_traceback))


def _crash_config() -> Optional[tuple[int, float, str, bool]]:
    raw = os.environ.get(CHAOS_CRASH_ENV, "")
    if not raw:
        return None
    parts = raw.split(":")
    if len(parts) < 2:
        raise ValueError(
            f"{CHAOS_CRASH_ENV} must be seed:rate[:mode], got {raw!r}")
    mode = parts[2] if len(parts) > 2 else "exit"
    cells = mode.endswith("+cells")
    if cells:
        mode = mode[:-len("+cells")]
    if mode not in ("exit", "raise"):
        raise ValueError(f"unknown crash mode {mode!r}")
    return int(parts[0]), float(parts[1]), mode, cells


def _maybe_crash(unit_id: str, attempt: int) -> None:
    """Deterministic worker-crash injection (chaos testing)."""
    cfg = _crash_config()
    if cfg is None:
        return
    seed, rate, mode, cells = cfg
    if unit_id.startswith("cell:") and not cells:
        return
    from repro.faults.plan import derive_unit

    if derive_unit(seed, unit_id, attempt, "worker-crash") < rate:
        if mode == "raise":
            raise RuntimeError(
                f"injected worker fault for {unit_id!r} "
                f"(attempt {attempt})")
        os._exit(17)  # no cleanup -- model a hard crash/OOM kill


@dataclass(frozen=True)
class ExperimentProfile:
    """Cost accounting for one experiment run."""

    experiment_id: str
    wall_seconds: float
    cache_hits: int
    cache_misses: int
    #: one record per simulation the experiment consulted
    #: (``BenchmarkData.metrics_log`` entries: kind/machine/job/
    #: seconds/stats) -- the raw material of ``repro all --metrics``
    metrics: tuple[dict, ...] = ()


def _touch_sentinel(started_dir: Optional[str], task_id: str,
                    attempt: int) -> None:
    """Mark a task as started *before* any crash can happen, so the
    parent can distinguish tasks whose worker actually died from tasks
    merely poisoned by someone else's pool breakage."""
    if started_dir is not None:
        with open(os.path.join(
                started_dir, f"{task_id}.{attempt}"), "w"):
            pass


def _run_one(experiment_id: str, threat_scale: float,
             terrain_scale: float, attempt: int = 0,
             started_dir: Optional[str] = None,
             task_id: Optional[str] = None,
             ) -> tuple[ExperimentResult, ExperimentProfile]:
    """Worker body: run one experiment and account for it.

    Top-level (picklable) for ProcessPoolExecutor.  ``default_data`` is
    lru-cached per process, so a worker reuses its kernels across every
    task it is handed.  Hit/miss attribution uses
    :func:`repro.harness.store.cache_scope`, which counts the lookups
    made in this call's context exactly -- unlike snapshot deltas of
    the process-cumulative counters, it stays correct even if runs
    ever interleave within one process.
    """
    try:
        _touch_sentinel(started_dir, task_id or experiment_id, attempt)
        _maybe_crash(experiment_id, attempt)
        data = default_data(threat_scale, terrain_scale)
        n0 = len(data.metrics_log)
        t0 = time.perf_counter()
        with store.cache_scope() as sc:
            result = run_experiment(experiment_id, data)
        wall = time.perf_counter() - t0
        return result, ExperimentProfile(
            experiment_id=experiment_id, wall_seconds=wall,
            cache_hits=sc.hits, cache_misses=sc.misses,
            metrics=tuple(data.metrics_log[n0:]))
    except WorkerError:
        raise
    except BaseException:
        raise WorkerError(experiment_id, traceback.format_exc()) \
            from None


# ----------------------------------------------------------------------
# the planning probe: record simulation cells instead of running them
# ----------------------------------------------------------------------

class _PlanningData(BenchmarkData):
    """A :class:`BenchmarkData` whose ``_simulate`` records each cell.

    Kernels, scenarios and jobs are built for real (they are cheap and
    memoized); only the simulations -- the expensive part -- are
    replaced by a placeholder.  Every recorded cell names a job
    *recipe*, so any pool worker can rebuild the job and execute the
    cell independently.  Experiment arithmetic downstream of the
    placeholder timings is garbage and discarded; the replay phase
    recomputes it over the warm cache, so an incomplete or failed plan
    is merely less parallel, never wrong.

    Given a ``donor`` (the process-wide ``default_data``), the probe
    shares the donor's kernel/job memo dict outright: everything the
    plan builds lands in the memos every later consumer reads, which
    is what makes parent-side planning double as pool warm-up.
    """

    def __init__(self, threat_scale: float = 0.02,
                 terrain_scale: float = 0.05, seed_offset: int = 0,
                 donor: Optional[BenchmarkData] = None):
        super().__init__(threat_scale=threat_scale,
                         terrain_scale=terrain_scale,
                         seed_offset=seed_offset)
        if donor is not None:
            self._cache = donor._cache
        self._donor = donor
        #: planner siblings, deliberately outside the (shared) memo
        #: dict so they never collide with the donor's real siblings
        self._plan_siblings: dict[int, "_PlanningData"] = {}
        #: (cache key, cell descriptor or None) per ``_simulate`` call;
        #: shared with the seed-offset siblings so one plan call sees
        #: every universe's cells
        self.trace: list[tuple[str, Optional[dict]]] = []

    def with_seed_offset(self, seed_offset: int) -> "_PlanningData":
        if seed_offset == self.seed_offset:
            return self
        sib = self._plan_siblings.get(seed_offset)
        if sib is None:
            donor = (self._donor.with_seed_offset(seed_offset)
                     if self._donor is not None else None)
            sib = _PlanningData(threat_scale=self.threat_scale,
                                terrain_scale=self.terrain_scale,
                                seed_offset=seed_offset, donor=donor)
            sib.trace = self.trace
            self._plan_siblings[seed_offset] = sib
        return sib

    def _simulate(self, key_payload: dict, run) -> float:
        key = self._sim_key(key_payload)
        self.trace.append((key, self._cell(key, key_payload)))
        return 1.0  # placeholder: plans never produce user-visible rows

    def _cell(self, key: str, key_payload: dict) -> Optional[dict]:
        jobfp = key_payload.get("job", "")
        if not (isinstance(jobfp, str) and jobfp.startswith("recipe:")):
            return None  # inline-built job: not transportable
        recipe = jobfp[len("recipe:"):]
        return {
            "key": key,
            "kind": key_payload["kind"],
            "spec": key_payload["spec"],
            "job_recipe": recipe,
            "slices_per_phase": key_payload["slices_per_phase"],
            "exploit_fine_grained": key_payload.get(
                "exploit_fine_grained", False),
            "seed_offset": self.seed_offset,
            "unit": f"cell:{recipe}@{self.seed_offset}",
            "weight": _cell_weight(recipe, key_payload["spec"]),
        }


def _cell_weight(recipe: str, spec) -> int:
    """Largest-first ordering heuristic: thread count x machine width.

    Only the *ordering* of cell submissions depends on this, never a
    result, so a rough static estimate is enough.
    """
    if recipe.endswith("-fg"):
        base = 1000
    elif recipe.startswith("tb-"):
        base = taskbench.recipe_weight(recipe)  # total grain units
    else:
        tail = recipe.rsplit("-", 2)
        base = int(tail[1]) if len(tail) == 3 and tail[1].isdigit() else 1
    width = (getattr(spec, "n_processors", None)
             or getattr(spec, "n_cpus", None) or 1)
    return base * int(width)


def _plan_one(experiment_id: str, planner: _PlanningData) -> dict:
    """Enumerate one experiment's simulation cells (in-process).

    Runs in the scheduling process, before the pool forks: planning is
    cheap once kernels are memoized, and doing it here warms exactly
    the state the forked workers inherit.
    """
    del planner.trace[:]
    t0 = time.perf_counter()
    try:
        run_experiment(experiment_id, planner)
    except Exception:
        # Placeholder timings can break experiment arithmetic (ratios
        # of constants, checks that divide).  The replay phase runs
        # the experiment for real, so a partial plan costs
        # parallelism, not correctness.
        pass
    cells: dict[str, Optional[dict]] = {}
    for key, cell in planner.trace:
        cells.setdefault(key, cell)
    return {"cells": cells, "wall": time.perf_counter() - t0}


def _run_cell(cell: dict, threat_scale: float, terrain_scale: float,
              attempt: int = 0, started_dir: Optional[str] = None,
              task_id: Optional[str] = None) -> dict:
    """Worker body: execute one simulation cell into the shared cache.

    The job is rebuilt from its recipe name; the resulting cache key is
    identical to the one the planner recorded (both are fingerprints of
    the same spec / recipe / scales / universe), so the replay phase
    finds the entry without coordination.
    """
    unit = cell["unit"]
    try:
        _touch_sentinel(started_dir, task_id or unit, attempt)
        _maybe_crash(unit, attempt)
        data = default_data(threat_scale, terrain_scale) \
            .with_seed_offset(cell["seed_offset"])
        job = data.job_from_recipe(cell["job_recipe"])
        n0 = len(data.metrics_log)
        t0 = time.perf_counter()
        with store.cache_scope() as sc:
            if cell["kind"] == "conventional":
                data.run_conventional(
                    cell["spec"], job,
                    slices_per_phase=cell["slices_per_phase"],
                    exploit_fine_grained=cell["exploit_fine_grained"])
            else:
                data.run_mta_spec(
                    cell["spec"], job,
                    slices_per_phase=cell["slices_per_phase"])
        # the simulation record this cell produced (exactly one
        # _simulate call), streamed back so the scheduling process can
        # emit it to the run directory's cells.jsonl as it lands
        record = (data.metrics_log[n0]
                  if len(data.metrics_log) > n0 else None)
        return {"wall": time.perf_counter() - t0,
                "hits": sc.hits, "misses": sc.misses,
                "record": record}
    except WorkerError:
        raise
    except BaseException:
        raise WorkerError(unit, traceback.format_exc()) from None


#: ``cell_sink(experiment_id, records)`` receives simulation records
#: (``BenchmarkData.metrics_log`` entries) as they land, attributed to
#: the experiment on whose behalf they ran -- the run directory's
#: ``cells.jsonl`` stream.  Called in the scheduling process only.
CellSink = Callable[[str, Sequence[dict]], None]


def run_cells(
    cells: Sequence[dict],
    *,
    threat_scale: float,
    terrain_scale: float,
    jobs: int = 1,
    on_record: Optional[Callable[[dict], None]] = None,
    trim_logs: bool = False,
) -> dict[str, dict]:
    """Execute transportable simulation cells, deduped against the cache.

    The service batcher's engine entry point (and usable by any caller
    holding cell descriptors of the :class:`_PlanningData` shape:
    ``key``/``kind``/``spec``/``job_recipe``/``slices_per_phase``/
    ``exploit_fine_grained``/``seed_offset``/``unit``/``weight``).
    Cells are deduplicated by content-addressed ``key`` among
    themselves and against the persistent cache; the remainder run
    largest-first -- in this process with ``jobs <= 1``, otherwise
    fanned over the crash-salvaging pool exactly like a ``repro all -j``
    run (the pool path requires an active cache to transport results,
    and falls back to in-process execution without one).

    Returns ``{key: record}`` with one simulation record per distinct
    key.  ``on_record`` is additionally called with each record as it
    lands (cache hits first), in the scheduling process -- the hook the
    asyncio service uses to stream results before the whole batch has
    finished.

    ``trim_logs=True`` truncates the process-wide ``metrics_log`` after
    each in-process cell: a long-running service executes cells forever
    in one process, and the log (an append-only list meant to span one
    CLI invocation) would otherwise grow without bound.  Leave it off
    when anything else in the process profiles simulations.
    """
    records: dict[str, dict] = {}
    todo: dict[str, dict] = {}
    cache = store.active_cache()
    for cell in cells:
        key = cell["key"]
        if key in records or key in todo:
            continue
        entry = cache.get(key) if cache is not None else None
        if entry is not None:
            records[key] = store.entry_to_record(
                key, entry, cell["seed_offset"], kind=cell["kind"])
        else:
            todo[key] = cell
    if on_record is not None:
        for record in records.values():
            on_record(record)
    if not todo:
        return records

    def settle(key: str, record: dict) -> None:
        records[key] = record
        if on_record is not None:
            on_record(record)

    order = sorted(todo.values(), key=lambda c: c["weight"],
                   reverse=True)
    if jobs > 1 and cache is not None:
        tasks = [_Task("cell:" + c["key"], c["unit"], _run_cell, c)
                 for c in order]

        def on_result(tid: str, value) -> list[_Task]:
            record = value.get("record")
            if record is not None:
                settle(tid[len("cell:"):], record)
            return []

        _pool_schedule(tasks, threat_scale, terrain_scale,
                       min(jobs, len(tasks)), on_result=on_result)
        # a worker whose record went missing (it only happens if the
        # cell's _simulate was memo-elided) still published through
        # the cache -- recover rather than drop the subscriber
        for key, cell in todo.items():
            if key not in records:
                entry = cache.get(key)
                if entry is None:
                    raise WorkerError(
                        cell["unit"],
                        f"cell {key} produced no record and no cache "
                        f"entry")
                settle(key, store.entry_to_record(
                    key, entry, cell["seed_offset"], kind=cell["kind"]))
    else:
        for cell in order:
            value = _run_cell(cell, threat_scale, terrain_scale)
            record = value["record"]
            if record is None:  # pragma: no cover -- memo-elided
                raise WorkerError(
                    cell["unit"],
                    f"cell {cell['key']} produced no record")
            settle(cell["key"], record)
            if trim_logs:
                data = default_data(threat_scale, terrain_scale) \
                    .with_seed_offset(cell["seed_offset"])
                del data.metrics_log[:]
    return records


def run_experiments(
    experiment_ids: Optional[Iterable[str]] = None,
    *,
    threat_scale: float,
    terrain_scale: float,
    jobs: Optional[int] = None,
    data: Optional[BenchmarkData] = None,
    cell_sink: Optional[CellSink] = None,
) -> tuple[dict[str, ExperimentResult], list[ExperimentProfile]]:
    """Run experiments, in parallel when ``jobs > 1``.

    Results come back keyed by id in the requested order regardless of
    completion order.  ``jobs=None`` uses the CPU count; ``jobs=1``
    runs serially in-process (sharing ``data`` when given, so tests and
    the single-core path pay no pickling or re-kerneling cost).

    ``cell_sink`` streams per-simulation records to the caller as work
    completes (see :data:`CellSink`); the run-directory layer uses it
    to write ``cells.jsonl`` incrementally, so even an interrupted run
    leaves its finished cells on disk.

    With ``REPRO_RUN_TIMEOUT_S=soft[:hard]`` set, a
    :class:`~repro.obs.watchdog.RunWatchdog` shadows the whole run:
    warn on stderr past ``soft`` wall-clock seconds, interrupt the run
    past ``hard``.
    """
    from contextlib import nullcontext

    from repro.obs.watchdog import RUN_TIMEOUT_ENV, RunWatchdog

    raw_timeout = os.environ.get(RUN_TIMEOUT_ENV, "")
    guard = (RunWatchdog.from_env(raw_timeout) if raw_timeout
             else nullcontext())
    with guard:
        return _run_experiments_inner(
            experiment_ids, threat_scale=threat_scale,
            terrain_scale=terrain_scale, jobs=jobs, data=data,
            cell_sink=cell_sink)


def _run_experiments_inner(
    experiment_ids: Optional[Iterable[str]] = None,
    *,
    threat_scale: float,
    terrain_scale: float,
    jobs: Optional[int] = None,
    data: Optional[BenchmarkData] = None,
    cell_sink: Optional[CellSink] = None,
) -> tuple[dict[str, ExperimentResult], list[ExperimentProfile]]:
    ids: Sequence[str] = tuple(experiment_ids or EXPERIMENT_IDS)
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, jobs)

    if jobs == 1 or not ids:
        if data is None:
            data = default_data(threat_scale, terrain_scale)
        results: dict[str, ExperimentResult] = {}
        profiles: list[ExperimentProfile] = []
        for eid in ids:
            n0 = len(data.metrics_log)
            t0 = time.perf_counter()
            with store.cache_scope() as sc:
                results[eid] = run_experiment(eid, data)
            wall = time.perf_counter() - t0
            profiles.append(ExperimentProfile(
                experiment_id=eid, wall_seconds=wall,
                cache_hits=sc.hits, cache_misses=sc.misses,
                metrics=tuple(data.metrics_log[n0:])))
            if cell_sink is not None:
                cell_sink(eid, data.metrics_log[n0:])
        return results, profiles

    # Cell-granular scheduling needs the persistent cache to transport
    # simulation results between workers, and an active tracer must
    # observe real simulations in the run's own process semantics --
    # either condition falls back to classic per-experiment tasks.
    if store.active_cache() is not None and active_tracer() is None:
        pairs = _cell_run(ids, threat_scale, terrain_scale, jobs,
                          cell_sink=cell_sink)
    else:
        pairs = _experiment_run(ids, threat_scale, terrain_scale,
                                min(jobs, len(ids)),
                                cell_sink=cell_sink)
    return ({eid: pairs[eid][0] for eid in ids},
            [pairs[eid][1] for eid in ids])


# ----------------------------------------------------------------------
# the generic crash-salvaging pool scheduler
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _Task:
    """One unit of pool work.

    ``task_id`` is unique per run and names the start sentinel;
    ``unit`` is the fault-attribution id (crash injection, WorkerError)
    -- the bare experiment id for plan/replay tasks, ``cell:...`` for
    cells, so resilience seeds derived over experiment ids are
    unaffected by how many cells an experiment fans out into.
    """

    task_id: str
    unit: str
    fn: Callable
    payload: object = field(compare=False)


def _pool_schedule(
    tasks: Sequence[_Task],
    threat_scale: float,
    terrain_scale: float,
    jobs: int,
    on_result: Optional[Callable[[str, object], list[_Task]]] = None,
) -> dict[str, object]:
    """Drain tasks through one persistent pool, surviving crashes.

    ``on_result(task_id, value)`` may return follow-up tasks, which is
    how planning fans out into cells and cells into replays without any
    phase barrier.

    A worker that dies (``os._exit``, segfault, OOM kill) breaks the
    entire pool: every unfinished future raises
    :class:`BrokenProcessPool`.  Futures that completed *before* the
    crash still hold their results, so those are salvaged; the pool is
    rebuilt and only the failures are retried -- each task gets
    ``REPRO_RETRY_MAX`` attempts with exponential backoff.  The attempt
    number reaches the worker, so deterministic crash injection
    (``REPRO_CHAOS_CRASH``) can fault attempt 0 and spare the retry.

    Pool breakage poisons *every* unfinished future, including tasks
    that were still queued (or mid-run on another worker) when the
    culprit's worker died, and the executor gives no way to tell them
    apart.  Charging every poisoned future an attempt would let one bad
    task exhaust innocent budgets.  So workers touch a start sentinel
    before running, and after a breakage the tasks that had *started*
    the broken round (a superset containing the culprit, at most
    pool-width wide) are re-run one at a time: running alone, a crash
    identifies its task exactly, and only that task's attempt counter
    moves.  Tasks that never started are requeued uncharged.

    Retry backoff (``base * 2**(attempt-1)``) is applied as a
    *readiness deadline* on the requeued task, not an inline sleep: the
    scheduler keeps collecting other results while a retry waits, and a
    task that exhausts its attempt budget raises immediately -- the
    final failure never sleeps first.
    """
    import multiprocessing as mp
    import shutil
    import tempfile

    # Fork (when the platform has it) so workers inherit the parent's
    # warm kernel/job memos copy-on-write -- the pool is created after
    # planning precisely so there is something to inherit.
    mp_context = (mp.get_context("fork")
                  if "fork" in mp.get_all_start_methods() else None)

    def new_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=jobs,
                                   mp_context=mp_context)

    max_attempts = max(1, int(os.environ.get(RETRY_MAX_ENV, "3")))
    backoff = float(os.environ.get(RETRY_BACKOFF_ENV, "0.25"))
    results: dict[str, object] = {}
    by_id: dict[str, _Task] = {}
    attempts: dict[str, int] = {}
    not_before: dict[str, float] = {}
    queue: list[str] = []
    suspects: list[str] = []
    started_dir = tempfile.mkdtemp(prefix="repro-pool-")
    pool = new_pool()

    def enqueue(task: _Task) -> None:
        by_id[task.task_id] = task
        attempts.setdefault(task.task_id, 0)
        queue.append(task.task_id)

    def settle(tid: str, value: object) -> None:
        results[tid] = value
        if on_result is not None:
            for task in (on_result(tid, value) or ()):
                enqueue(task)

    def charge(tid: str) -> None:
        """One failed attempt; sets the retry deadline.  The caller
        raises instead of calling this when the budget is exhausted."""
        attempts[tid] += 1
        not_before[tid] = time.monotonic() + \
            backoff * (2.0 ** (attempts[tid] - 1))

    def submit(tid: str):
        task = by_id[tid]
        return pool.submit(task.fn, task.payload, threat_scale,
                           terrain_scale, attempts[tid], started_dir,
                           tid)

    def rebuild_pool() -> None:
        nonlocal pool
        # the broken pool cannot run anything anymore
        pool.shutdown(wait=False, cancel_futures=True)
        pool = new_pool()

    def classify(tid: str) -> None:
        """After a pool breakage: suspect if the task had started its
        current attempt, requeue uncharged otherwise."""
        started = os.path.exists(os.path.join(
            started_dir, f"{tid}.{attempts[tid]}"))
        if started:
            suspects.append(tid)
        else:
            queue.append(tid)

    for task in tasks:
        enqueue(task)

    try:
        while queue or suspects:
            # isolation phase: one suspect at a time, so a dead worker
            # names its task unambiguously
            while suspects:
                tid = suspects.pop(0)
                delay = not_before.get(tid, 0.0) - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                fut = submit(tid)
                try:
                    settle(tid, fut.result())
                except BrokenProcessPool as exc:
                    rebuild_pool()
                    if attempts[tid] + 1 >= max_attempts:
                        raise WorkerError(
                            by_id[tid].unit,
                            f"worker process died "
                            f"({max_attempts} attempts): {exc}") \
                            from exc
                    charge(tid)
                    suspects.insert(0, tid)
                except Exception:
                    if attempts[tid] + 1 >= max_attempts:
                        raise
                    charge(tid)
                    suspects.insert(0, tid)
            if not queue:
                break

            # pipelined phase: keep the pool saturated with every task
            # that is ready, collecting and fanning out as they finish
            inflight: dict[object, str] = {}
            broken = False
            while queue or inflight:
                now = time.monotonic()
                ready = [tid for tid in queue
                         if not_before.get(tid, 0.0) <= now]
                if ready:
                    queue[:] = [tid for tid in queue
                                if tid not in set(ready)]
                    for tid in ready:
                        inflight[submit(tid)] = tid
                if not inflight:
                    # everything queued is a retry waiting out backoff
                    soonest = min(not_before[tid] for tid in queue)
                    time.sleep(max(0.0, soonest - time.monotonic()))
                    continue
                timeout = None
                if queue:
                    soonest = min(not_before.get(tid, 0.0)
                                  for tid in queue)
                    timeout = max(0.0, soonest - time.monotonic())
                done, _ = wait(list(inflight), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                for fut in done:
                    tid = inflight.pop(fut)
                    try:
                        settle(tid, fut.result())
                    except BrokenProcessPool:
                        broken = True
                        classify(tid)
                    except Exception:
                        if attempts[tid] + 1 >= max_attempts:
                            raise
                        charge(tid)
                        queue.append(tid)
                if broken:
                    # drain survivors: completed futures still hold
                    # results, everything else is poisoned
                    for fut, tid in list(inflight.items()):
                        try:
                            settle(tid, fut.result())
                        except BrokenProcessPool:
                            classify(tid)
                        except Exception:
                            if attempts[tid] + 1 >= max_attempts:
                                raise
                            charge(tid)
                            queue.append(tid)
                    inflight.clear()
                    rebuild_pool()
                    if not suspects:
                        # sentinel writes failed somehow: isolate
                        # everyone poisoned rather than loop without
                        # progress
                        suspects[:] = queue
                        queue[:] = []
                    break
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
        shutil.rmtree(started_dir, ignore_errors=True)
    return results


def _experiment_run(
    ids: Sequence[str], threat_scale: float, terrain_scale: float,
    jobs: int, cell_sink: Optional[CellSink] = None,
) -> dict[str, tuple[ExperimentResult, ExperimentProfile]]:
    """Per-experiment scheduling (no cache to share cells through)."""
    tasks = [_Task("run:" + eid, eid, _run_one, eid) for eid in ids]

    def on_result(tid: str, value) -> list[_Task]:
        if cell_sink is not None:
            _result, profile = value
            cell_sink(tid[len("run:"):], profile.metrics)
        return []

    results = _pool_schedule(tasks, threat_scale, terrain_scale, jobs,
                             on_result=on_result)
    return {eid: results["run:" + eid] for eid in ids}


def _cell_run(
    ids: Sequence[str], threat_scale: float, terrain_scale: float,
    jobs: int, cell_sink: Optional[CellSink] = None,
) -> dict[str, tuple[ExperimentResult, ExperimentProfile]]:
    """Cell-granular scheduling: plan -> deduped cells -> replay.

    Planning happens up front in this process (warming the kernels and
    jobs the forked workers then inherit).  The transportable cells of
    all experiments are deduplicated against each other and against
    the persistent cache, sorted largest first, and fanned over the
    pool; each experiment's replay follows as soon as its last
    outstanding cell lands.  Cell cost (wall and cache misses) is
    charged to the first experiment that planned the cell.
    """
    cache = store.active_cache()
    planner = _PlanningData(
        threat_scale=threat_scale, terrain_scale=terrain_scale,
        donor=default_data(threat_scale, terrain_scale))

    plan_wall = dict.fromkeys(ids, 0.0)
    charged_wall = dict.fromkeys(ids, 0.0)
    charged_miss = dict.fromkeys(ids, 0)
    key_of_task: dict[str, str] = {}
    owner: dict[str, str] = {}          # cell key -> charged eid
    waiting: dict[str, list[str]] = {}  # cell key -> waiting eids
    remaining: dict[str, set] = {eid: set() for eid in ids}
    replayed: set = set()

    pending_cells: list[dict] = []
    seen: dict[str, bool] = {}          # cell key -> needs computing
    for eid in ids:
        plan = _plan_one(eid, planner)
        plan_wall[eid] = plan["wall"]
        for key, cell in plan["cells"].items():
            if cell is None:
                continue  # inline-built job: replay computes it
            if key not in seen:
                seen[key] = cache.get(key) is None
                if seen[key]:
                    owner[key] = eid
                    waiting[key] = []
                    pending_cells.append(cell)
            if seen[key]:
                waiting[key].append(eid)
                remaining[eid].add(key)

    def replay_task(eid: str) -> _Task:
        replayed.add(eid)
        return _Task("run:" + eid, eid, _run_one, eid)

    # largest first: the biggest cells bound the tail of the run
    pending_cells.sort(key=lambda c: c["weight"], reverse=True)
    tasks: list[_Task] = []
    for cell in pending_cells:
        task_id = "cell:" + cell["key"]
        key_of_task[task_id] = cell["key"]
        tasks.append(_Task(task_id, cell["unit"], _run_cell, cell))
    # experiments with nothing outstanding replay straight away
    tasks.extend(replay_task(eid) for eid in ids if not remaining[eid])

    def on_result(tid: str, value) -> list[_Task]:
        if not tid.startswith("cell:"):
            # a replay finished: stream every record it consulted (the
            # sink dedupes against the cell-task records by cache key)
            if cell_sink is not None:
                _result, profile = value
                cell_sink(tid[len("run:"):], profile.metrics)
            return []
        key = key_of_task[tid]
        eid = owner[key]
        charged_wall[eid] += value["wall"]
        charged_miss[eid] += value["misses"]
        if cell_sink is not None and value.get("record") is not None:
            cell_sink(eid, (value["record"],))
        new: list[_Task] = []
        for waiter in waiting.pop(key, ()):
            remaining[waiter].discard(key)
            if not remaining[waiter] and waiter not in replayed:
                new.append(replay_task(waiter))
        return new

    results = _pool_schedule(tasks, threat_scale, terrain_scale, jobs,
                             on_result=on_result)

    out: dict[str, tuple[ExperimentResult, ExperimentProfile]] = {}
    for eid in ids:
        result, rp = results["run:" + eid]
        out[eid] = (result, ExperimentProfile(
            experiment_id=eid,
            wall_seconds=(plan_wall[eid] + charged_wall[eid]
                          + rp.wall_seconds),
            cache_hits=rp.cache_hits,
            cache_misses=charged_miss[eid] + rp.cache_misses,
            metrics=rp.metrics))
    return out


def metrics_rollup(profile: ExperimentProfile) -> dict:
    """Aggregate one experiment's simulation records into totals."""
    from repro.obs.metrics import rollup_records

    return rollup_records(profile.metrics)


def metrics_to_dict(profiles: list[ExperimentProfile]) -> dict:
    """Machine-readable ``--metrics-json`` payload (for CI)."""
    return {
        "schema": 1,
        "experiments": [
            {"experiment_id": p.experiment_id,
             "rollup": metrics_rollup(p),
             "runs": list(p.metrics)}
            for p in profiles
        ],
    }


def render_metrics(profiles: list[ExperimentProfile]) -> str:
    """The ``--metrics`` table: per-experiment simulation rollups."""
    lines = [
        f"{'experiment':<26} {'sims':>5} {'sim-sec':>10} "
        f"{'regions c/d':>12} {'closed':>7} {'drained':>8} "
        f"{'region-wall':>12} {'lock-wait':>10} {'convoy':>7}",
        "-" * 96,
    ]
    for p in profiles:
        t = metrics_rollup(p)
        regions = (f"{t['cohort_regions']:.0f}/"
                   f"{t['des_regions']:.0f}")
        lines.append(
            f"{p.experiment_id:<26} {t['sim_runs']:>5d} "
            f"{t['simulated_seconds']:>10.3f} {regions:>12} "
            f"{t['closed_form_regions']:>7.0f} "
            f"{t['drained_grants']:>8.0f} "
            f"{t['region_wall_seconds']:>12.3f} "
            f"{t['lock_wait_seconds']:>10.3f} "
            f"{t['lock_convoy_max']:>7.0f}")
    return "\n".join(lines)


def render_profile(profiles: list[ExperimentProfile]) -> str:
    """The ``--profile`` table (per-experiment wall + cache traffic).

    Under cell-granular scheduling an experiment's wall is its plan +
    the cells it was first to request + its replay; misses are counted
    where the simulation was actually computed, hits are the replay's
    cache reads.
    """
    lines = [
        f"{'experiment':<26} {'wall (s)':>9} {'cache hits':>11} "
        f"{'misses':>7}",
        "-" * 56,
    ]
    for p in profiles:
        lines.append(f"{p.experiment_id:<26} {p.wall_seconds:>9.2f} "
                     f"{p.cache_hits:>11d} {p.cache_misses:>7d}")
    lines.append("-" * 56)
    lines.append(
        f"{'total':<26} {sum(p.wall_seconds for p in profiles):>9.2f} "
        f"{sum(p.cache_hits for p in profiles):>11d} "
        f"{sum(p.cache_misses for p in profiles):>7d}")
    return "\n".join(lines)
