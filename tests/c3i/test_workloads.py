"""Tests for the workload extractors (instrumented runs -> jobs)."""

import pytest

from repro.c3i import terrain as TE
from repro.c3i import threat as TH
from repro.c3i.threat.workload import full_scale_stats
from repro.c3i.threat.scenarios import FULL_SCALE as TH_FULL
from repro.workload.task import (
    ParallelRegion,
    SerialStep,
    WorkQueueRegion,
)


@pytest.fixture(scope="module")
def threat_data():
    scs = TH.benchmark_scenarios(scale=0.02)
    seq = [TH.run_sequential(s) for s in scs]
    return scs, seq


@pytest.fixture(scope="module")
def terrain_data():
    scs = TE.benchmark_scenarios(scale=0.04)
    seq = [TE.run_sequential(s) for s in scs]
    return scs, seq


# ----------------------------------------------------------------------
# Threat Analysis workloads
# ----------------------------------------------------------------------

def test_full_scale_stats_tiling(threat_data):
    scs, seq = threat_data
    stats = full_scale_stats(scs[0], seq[0])
    assert stats.n_threats == TH_FULL.n_threats
    m = scs[0].n_threats
    dt = TH_FULL.n_steps / scs[0].n_steps
    # tiling: threat i mirrors measured threat i % m, scaled by dt
    assert stats.steps[m + 3] == pytest.approx(
        seq[0].steps_per_threat[3] * dt)
    assert stats.intervals_total == pytest.approx(
        sum(seq[0].intervals_per_threat[i % m]
            for i in range(TH_FULL.n_threats)))


def test_sequential_job_is_all_serial(threat_data):
    scs, seq = threat_data
    job = TH.sequential_benchmark_job(scs, seq)
    assert all(isinstance(s, SerialStep) for s in job.steps)
    assert len(job.steps) == 2 * len(scs)  # setup + scan per scenario
    assert job.total_ops.total > 1e10      # paper-scale work


def test_chunked_job_structure(threat_data):
    scs, seq = threat_data
    job = TH.chunked_benchmark_job(scs, seq, 64, thread_kind="hw")
    regions = [s for s in job.steps if isinstance(s, ParallelRegion)]
    assert len(regions) == len(scs)
    for region in regions:
        assert region.n_threads == 64
        assert region.thread_kind == "hw"
        # every chunk is non-empty at full scale (1000 threats / 64)
        assert all(t.total_ops.total > 0 for t in region.threads)


def test_chunked_job_conserves_scan_work(threat_data):
    """Total scan ops are identical for any chunk count."""
    scs, seq = threat_data
    totals = []
    for chunks in (1, 16, 256):
        job = TH.chunked_benchmark_job(scs, seq, chunks)
        totals.append(job.total_ops.total)
    assert totals[0] == pytest.approx(totals[1], rel=1e-9)
    assert totals[0] == pytest.approx(totals[2], rel=1e-9)


def test_chunked_equals_sequential_scan_work(threat_data):
    scs, seq = threat_data
    seq_job = TH.sequential_benchmark_job(scs, seq)
    ch_job = TH.chunked_benchmark_job(scs, seq, 8)
    assert ch_job.total_ops.total == pytest.approx(
        seq_job.total_ops.total, rel=1e-9)


def test_chunked_invalid(threat_data):
    scs, seq = threat_data
    with pytest.raises(ValueError):
        TH.chunked_benchmark_job(scs, seq, 0)


def test_threat_memory_footprint_fits_smp_caches(threat_data):
    """The paper: threads 'execute mostly within cache'."""
    scs, seq = threat_data
    job = TH.chunked_benchmark_job(scs, seq, 16)
    from repro.machines import EXEMPLAR_16
    for step in job.steps:
        if isinstance(step, ParallelRegion):
            for t in step.threads:
                for item in t.items:
                    assert (item.phase.memory.unique_bytes
                            < EXEMPLAR_16.cache.capacity_bytes)


def test_finegrained_job_has_sync_criticals(threat_data):
    scs, seq = threat_data
    job = TH.finegrained_benchmark_job(scs, seq, max_threads=50)
    regions = [s for s in job.steps if isinstance(s, ParallelRegion)]
    assert regions
    from repro.workload.task import Critical
    crits = [it for r in regions for t in r.threads for it in t.items
             if isinstance(it, Critical)]
    assert crits
    assert all(c.lock == "num_intervals" for c in crits)
    assert sum(c.phase.ops.sync for c in crits) > 0


# ----------------------------------------------------------------------
# Terrain Masking workloads
# ----------------------------------------------------------------------

def test_terrain_sequential_job_memory_bound(terrain_data):
    scs, seq = terrain_data
    job = TE.sequential_benchmark_job(scs, seq)
    total = job.total_ops
    # more than one op in four references memory: the memory-bound
    # character behind Tables 8-11
    assert total.mem_fraction > 0.25


def test_terrain_sequential_job_footprint_exceeds_caches(terrain_data):
    scs, seq = terrain_data
    job = TE.sequential_benchmark_job(scs, seq)
    from repro.machines import ALPHASTATION_500
    propagate = [s.phase for s in job.steps
                 if isinstance(s, SerialStep)
                 and "propagate" in s.phase.name]
    assert propagate
    for p in propagate:
        assert (p.memory.unique_bytes
                > ALPHASTATION_500.cache.capacity_bytes * 0.5)


def test_terrain_blocked_job_structure(terrain_data):
    scs, _seq = terrain_data
    blocked = [TE.run_blocked(s, n_threads=4) for s in scs]
    job = TE.blocked_benchmark_job(scs, blocked)
    queues = [s for s in job.steps if isinstance(s, WorkQueueRegion)]
    assert len(queues) == len(scs)
    for q, sc in zip(queues, scs):
        assert q.n_threads == 4
        assert len(q.items) == sc.n_threats
    from repro.workload.task import Critical
    # every item ends with lock-protected merges
    item = queues[0].items[0]
    locks = [it.lock for it in item.items if isinstance(it, Critical)]
    assert locks
    assert all("block" in lk for lk in locks)


def test_terrain_blocked_reset_cheaper_than_seq_copy(terrain_data):
    """The temp/masking role swap: the blocked variant's private reset
    pass touches less memory than the sequential copy pass."""
    scs, seq = terrain_data
    blocked = [TE.run_blocked(s, n_threads=1) for s in scs]
    seq_job = TE.sequential_benchmark_job(scs, seq)
    bl_job = TE.blocked_benchmark_job(scs, blocked)
    # compare only non-propagate mem ops (copy+merge vs reset+merge)
    def aux_mem(job):
        total = 0.0
        for step in job.steps:
            phases = []
            if isinstance(step, SerialStep):
                phases = [step.phase]
            elif isinstance(step, WorkQueueRegion):
                phases = [it.phase for item in step.items
                          for it in item.items]
            for p in phases:
                if "propagate" not in p.name:
                    total += p.ops.mem_ops
        return total
    assert aux_mem(bl_job) < aux_mem(seq_job)


def test_terrain_finegrained_job_wide_phases(terrain_data):
    scs, _seq = terrain_data
    fine = [TE.run_finegrained(s) for s in scs]
    job = TE.finegrained_benchmark_job(scs, fine)
    wide = [s.phase for s in job.steps if isinstance(s, SerialStep)
            and s.phase.parallelism > 1]
    assert wide
    propagate = [p for p in wide if "propagate" in p.name]
    # inner-loop parallelism is tens-to-hundreds of strands
    assert all(10 <= p.parallelism <= 5000 for p in propagate)
    # the ring wavefront leaves an unhidable critical path
    assert all(p.serial_cycles > 0 for p in propagate)


def test_terrain_jobs_conserve_propagation_work(terrain_data):
    scs, seq = terrain_data
    fine = [TE.run_finegrained(s) for s in scs]
    blocked = [TE.run_blocked(s, n_threads=8) for s in scs]

    def propagate_ops(job):
        total = 0.0
        for step in job.steps:
            phases = []
            if isinstance(step, SerialStep):
                phases = [step.phase]
            elif isinstance(step, WorkQueueRegion):
                phases = [it.phase for item in step.items
                          for it in item.items]
            for p in phases:
                if "propagate" in p.name:
                    total += p.ops.total
        return total

    a = propagate_ops(TE.sequential_benchmark_job(scs, seq))
    b = propagate_ops(TE.blocked_benchmark_job(scs, blocked))
    c = propagate_ops(TE.finegrained_benchmark_job(scs, fine))
    assert a == pytest.approx(b, rel=1e-9)
    assert a == pytest.approx(c, rel=1e-9)
