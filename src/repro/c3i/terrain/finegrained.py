"""The fine-grained multithreaded Terrain Masking program (Tera MTA).

The coarse-grained program needs a private temp array per thread --
impractical for the hundreds of threads the MTA wants.  The Tera
version instead parallelizes the *inner* loops: within the per-threat
shadow propagation, every cell of a ring is independent (it reads only
the previous ring), so each ring is a parallel loop of tens-to-hundreds
of strands; the copy/reset/merge sweeps are flat parallel loops over
the region.  Threats are processed one after another -- no extra temp
storage beyond the single region-sized buffer.

The computation is identical to the sequential program (the ring
recurrence is evaluated with the same operands); what changes is the
available parallelism, which is recorded per ring for the workload
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.c3i.terrain.model import masking_for_threat_cached
from repro.c3i.terrain.scenarios import TerrainScenario


@dataclass
class FineGrainedTerrainResult:
    """Output plus the parallelism profile of the inner loops."""

    scenario: int
    masking: Optional[np.ndarray] = None
    #: per threat: (window cells, ring sizes)
    ring_profile: list[tuple[int, list[int]]] = field(default_factory=list)
    n_region_cells_total: int = 0
    n_rings_total: int = 0
    ring_cells_total: int = 0

    @property
    def mean_ring_width(self) -> float:
        return (self.ring_cells_total / self.n_rings_total
                if self.n_rings_total else 0.0)

    @property
    def max_ring_width(self) -> int:
        widths = [w for _c, sizes in self.ring_profile for w in sizes]
        return max(widths) if widths else 0


def run_finegrained(scenario: TerrainScenario) -> FineGrainedTerrainResult:
    """Execute the fine-grained variant on one scenario."""
    n = scenario.grid_n
    result = FineGrainedTerrainResult(scenario=scenario.index)
    masking = np.full((n, n), np.inf)

    for threat in scenario.threats:
        window, alt, stats = masking_for_threat_cached(
            scenario.terrain, threat)
        sx, sy = window.slices()
        masking[sx, sy] = np.minimum(alt, masking[sx, sy])
        result.ring_profile.append((window.n_cells,
                                    list(stats.ring_sizes)))
        result.n_region_cells_total += window.n_cells
        result.n_rings_total += stats.n_rings
        result.ring_cells_total += stats.n_ring_cells

    result.masking = masking
    return result
