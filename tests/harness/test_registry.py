"""Integration tests: the full experiment registry against the paper.

These run the complete pipeline (scenario generation -> real kernels ->
workload extraction -> machine simulation) at reduced kernel scale and
assert the paper's shape properties.  They are the reproduction's
acceptance tests.
"""

import pytest

from repro.harness import (
    EXPERIMENT_IDS,
    BenchmarkData,
    default_data,
    list_experiments,
    run_experiment,
)


@pytest.fixture(scope="module")
def data():
    # smaller kernels than the default for test speed
    return BenchmarkData(threat_scale=0.015, terrain_scale=0.04)


def test_list_experiments_contains_all_tables():
    ids = list_experiments()
    for t in range(2, 13):
        assert f"table{t}" in ids
    for f in range(1, 5):
        assert f"fig{f}" in ids
    assert "autopar" in ids and "micro" in ids


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("table99")


def test_figure_aliases_resolve(data):
    a = run_experiment("fig1", data)
    b = run_experiment("table3", data)
    assert a.experiment_id == b.experiment_id == "table3"


#: the paper's own tables/figures; ablations are covered (at smaller
#: scale) in test_ablations.py
PAPER_EXPERIMENTS = tuple(e for e in EXPERIMENT_IDS
                          if e.startswith("table") or e in ("autopar",
                                                            "micro"))


@pytest.mark.slow
@pytest.mark.parametrize("eid", PAPER_EXPERIMENTS)
def test_every_experiment_passes_its_shape_checks(eid, data):
    res = run_experiment(eid, data)
    assert res.rows, f"{eid} produced no rows"
    failed = [str(c) for c in res.checks if not c.passed]
    assert not failed, f"{eid}: {failed}"


def test_table2_sequential_ordering(data):
    res = run_experiment("table2", data)
    alpha = res.row("Alpha").simulated
    tera = res.row("Tera").simulated
    assert tera > 10 * alpha


def test_table5_vs_table6_consistency(data):
    """Table 5's 2-processor run is Table 6's 256-chunk row."""
    t5 = run_experiment("table5", data)
    t6 = run_experiment("table6", data)
    assert t5.row("2 processors").simulated == pytest.approx(
        t6.row("256 chunks").simulated, rel=1e-9)


def test_summary_tables_are_consistent(data):
    """Table 7 aggregates the other threat tables verbatim."""
    t7 = run_experiment("table7", data)
    t5 = run_experiment("table5", data)
    assert t7.row("manual / Tera (1p)").simulated == pytest.approx(
        t5.row("1 processor").simulated, rel=1e-9)
    t2 = run_experiment("table2", data)
    assert t7.row("none / Alpha").simulated == pytest.approx(
        t2.row("Alpha").simulated, rel=1e-9)


def test_cross_benchmark_claim_tera_vs_alpha(data):
    """Section 7: multithreaded single-processor MTA is 2-3.5x faster
    than the sequential Alpha for both benchmarks."""
    t7 = run_experiment("table7", data)
    ratio_threat = (t7.row("none / Alpha").simulated
                    / t7.row("manual / Tera (1p)").simulated)
    t12 = run_experiment("table12", data)
    ratio_terrain = (t12.row("none / Alpha").simulated
                     / t12.row("manual / Tera (1p)").simulated)
    assert 1.8 <= ratio_threat <= 3.8
    assert 1.8 <= ratio_terrain <= 3.8


def test_absolute_times_within_tolerance(data):
    """Beyond shape: the calibrated model lands within 25% of every
    paper cell in the headline tables."""
    for eid in ("table2", "table5", "table8", "table11"):
        res = run_experiment(eid, data)
        for row in res.rows:
            if row.paper is None or row.unit != "s":
                continue
            assert abs(row.error_pct) <= 25.0, (
                f"{eid}/{row.label}: {row.error_pct:+.1f}%")


def test_default_data_is_cached():
    a = default_data()
    b = default_data()
    assert a is b
