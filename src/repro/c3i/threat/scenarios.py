"""Synthetic input scenarios for Threat Analysis.

The original C3IPBS data is not distributable, but the paper documents
the parameters that matter for the study: five input scenarios, 1000
threats each, enough per-pair work that the total sequential run takes
minutes on late-90s hardware.  The generator reproduces those
parameters; ``scale`` shrinks a scenario for fast simulation while
keeping the statistics (the workload extractor extrapolates the op
counts back to full scale -- the work is exactly linear in
``n_threats * n_steps``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.c3i.common import THREAT_ANALYSIS, scenario_rng
from repro.c3i.threat.model import Threat, Weapon


@dataclass(frozen=True)
class FullScale:
    """Paper-scale parameters (per scenario)."""

    n_threats: int = 1000
    n_weapons: int = 25
    n_steps: int = 19_200     # time-step grid per (threat, weapon) pair


FULL_SCALE = FullScale()

#: the theatre is a square of this size (length units)
ARENA = 1000.0


@dataclass(frozen=True)
class Scenario:
    """One Threat Analysis input scenario."""

    index: int
    threats: tuple[Threat, ...]
    weapons: tuple[Weapon, ...]
    n_steps: int
    scale: float

    @property
    def n_threats(self) -> int:
        return len(self.threats)

    @property
    def n_weapons(self) -> int:
        return len(self.weapons)

    @property
    def extrapolation_factor(self) -> float:
        """Multiplier taking this scenario's work to paper scale."""
        full = (FULL_SCALE.n_threats * FULL_SCALE.n_weapons
                * FULL_SCALE.n_steps)
        here = self.n_threats * self.n_weapons * self.n_steps
        return full / here


@lru_cache(maxsize=64)
def make_scenario(index: int, scale: float = 1.0,
                  seed_offset: int = 0) -> Scenario:
    """Generate scenario ``index`` (0..4) at the given scale.

    ``scale`` multiplies the threat count and the time-step resolution
    (weapons stay fixed: the benchmark's weapon laydown is small).
    ``seed_offset`` selects an alternative synthetic-input universe
    (for the seed-robustness study).

    Generation is deterministic in the arguments, and scenarios are
    frozen, so instances are shared process-wide: every worker (and
    every ``BenchmarkData``) that asks for the same universe reuses
    one object.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    rng = scenario_rng(THREAT_ANALYSIS, index, seed_offset)

    n_threats = max(4, round(FULL_SCALE.n_threats * scale))
    n_steps = max(64, round(FULL_SCALE.n_steps * scale))
    n_weapons = FULL_SCALE.n_weapons

    # Threats rain toward a defended zone in the arena centre; each
    # scenario shifts the axis of attack and the altitude mix.  As in
    # the real benchmark data, the threat list is ordered by raid
    # geometry (attack bearing), so *contiguous* threat subranges --
    # the chunks of Program 2 -- see systematically different weapon
    # coverage.  That ordering is what makes the paper's chunk-level
    # load imbalance (Table 6) non-trivial.
    axis = rng.uniform(0, 2 * np.pi)
    threats = []
    bearings = np.sort(rng.normal(0.0, 0.5, size=n_threats))
    for k in range(n_threats):
        ang = axis + bearings[k]
        launch_r = rng.uniform(0.8, 1.4) * ARENA
        lx = ARENA / 2 + launch_r * np.cos(ang)
        ly = ARENA / 2 + launch_r * np.sin(ang)
        ix = ARENA / 2 + rng.normal(0.0, ARENA * 0.12)
        iy = ARENA / 2 + rng.normal(0.0, ARENA * 0.12)
        launch_t = rng.uniform(0.0, 500.0)
        flight = rng.uniform(120.0, 400.0)
        apex = rng.uniform(60.0, 400.0)
        threats.append(Threat(
            launch_x=float(lx), launch_y=float(ly),
            impact_x=float(ix), impact_y=float(iy),
            launch_time=float(launch_t),
            impact_time=float(launch_t + flight),
            apex_alt=float(apex),
            detect_fraction=float(rng.uniform(0.01, 0.08)),
        ))

    # Weapon sites ring the defended zone, with mixed envelopes: some
    # low-altitude point defence, some high-altitude area defence.
    weapons = []
    for w in range(n_weapons):
        ang = 2 * np.pi * w / n_weapons + rng.normal(0.0, 0.1)
        r = rng.uniform(0.05, 0.35) * ARENA
        low = rng.random() < 0.5
        weapons.append(Weapon(
            x=float(ARENA / 2 + r * np.cos(ang)),
            y=float(ARENA / 2 + r * np.sin(ang)),
            slant_range=float(rng.uniform(0.15, 0.7) * ARENA),
            min_alt=float(rng.uniform(0.0, 10.0)),
            max_alt=float(rng.uniform(40.0, 120.0) if low
                          else rng.uniform(150.0, 450.0)),
        ))

    return Scenario(index=index, threats=tuple(threats),
                    weapons=tuple(weapons), n_steps=n_steps, scale=scale)


def benchmark_scenarios(scale: float = 1.0,
                        seed_offset: int = 0) -> list[Scenario]:
    """The benchmark's five input scenarios."""
    return [make_scenario(i, scale=scale, seed_offset=seed_offset)
            for i in range(5)]
