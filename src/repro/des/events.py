"""Event primitives for the DES kernel.

An :class:`Event` is a one-shot occurrence in simulated time.  Processes
wait on events by ``yield``-ing them; the simulator resumes the process
when the event fires.  Events carry either a value (success) or an
exception (failure).
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.des.errors import DesError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.simulator import Simulator

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle::

        created --(succeed/fail)--> triggered --(event loop)--> processed

    ``triggered`` means the outcome is decided and the event sits in the
    simulator's queue; ``processed`` means its callbacks have run.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked with this event when it is processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: object = _PENDING
        self._exc: Optional[BaseException] = None
        self._defused = False

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the outcome (value or failure) has been decided."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run by the event loop."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise DesError("event outcome not decided yet")
        return self._exc is None

    @property
    def value(self) -> object:
        """The event's value (raises the failure exception if it failed)."""
        if self._value is _PENDING:
            raise DesError("event has not been triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: object = None, priority: int = 1) -> "Event":
        """Decide the event's outcome as success and enqueue it."""
        if self._value is not _PENDING:
            raise DesError(f"{self!r} already triggered")
        self._value = value
        # sim._enqueue inlined: succeed() fires once per job/process
        # completion and sits on the simulation's hottest path.
        sim = self.sim
        _heappush(sim._heap, (sim.now, priority, sim._seq, self))
        sim._seq += 1
        return self

    def fail(self, exc: BaseException, priority: int = 1) -> "Event":
        """Decide the event's outcome as failure and enqueue it."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _PENDING:
            raise DesError(f"{self!r} already triggered")
        self._value = None
        self._exc = exc
        self.sim._enqueue(self, priority)
        return self

    def _mark_defused(self) -> None:
        # A failed event whose exception was delivered to at least one
        # waiter is "defused": the failure was handled and must not be
        # re-raised by the event loop at the end of the run.
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


def _internal_event(sim: "Simulator",
                    callback: Callable[[Event], None]) -> Event:
    """A pre-wired event for kernel-internal scheduling (server wakeups,
    deferred flushes, process bootstraps).

    Bypasses :meth:`Event.__init__` and the callbacks-list append: these
    events are created once per scheduling decision on the simulation's
    hottest path, and never escape to user code.
    """
    ev = Event.__new__(Event)
    ev.sim = sim
    ev.callbacks = [callback]
    ev._value = None          # trigger directly; not via succeed()
    ev._exc = None
    ev._defused = False
    return ev


class WaitEvent(Event):
    """An event a synchronization primitive hands to a waiter.

    Carries the primitive's kind and name so traces and deadlock
    diagnostics can say *what* a blocked thread is waiting on
    (``barrier 'phase-sync'``) instead of showing an anonymous event.
    """

    __slots__ = ("kind", "source_name")

    def __init__(self, sim: "Simulator", kind: str, source_name: str):
        super().__init__(sim)
        self.kind = kind
        self.source_name = source_name


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        # sim._enqueue inlined (delay already validated >= 0)
        _heappush(sim._heap, (sim.now + delay, 1, sim._seq, self))
        sim._seq += 1


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise DesError("cannot mix events from different simulators")
        self._n_fired = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, object]:
        return {ev: ev._value for ev in self.events
                if ev._value is not _PENDING and ev._exc is None}

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:  # already triggered
            return
        self._n_fired += 1
        if event._exc is not None:
            event._defused = True
            self.fail(event._exc)
        elif self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired (or any fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired == len(self.events)


class AnyOf(_Condition):
    """Fires when the first constituent event fires (or any fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired >= 1
