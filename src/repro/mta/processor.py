"""Cycle-level MTA processor: issue arbitration across streams."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mta.stream import Stream


@dataclass
class CycleProcessor:
    """One MTA processor at cycle fidelity.

    The processor issues at most one instruction per cycle, drawn from
    whichever resident stream is ready (the hardware switches streams
    every cycle at no cost).  ``next_free`` is the next cycle with a
    free issue slot.
    """

    pid: int
    max_streams: int
    streams: list[Stream] = field(default_factory=list)
    next_free: float = 0.0
    issued: int = 0

    def add_stream(self, stream: Stream) -> None:
        if self.active_streams >= self.max_streams:
            raise ValueError(
                f"processor {self.pid}: all {self.max_streams} hardware "
                f"streams are occupied")
        self.streams.append(stream)

    @property
    def active_streams(self) -> int:
        """Streams currently holding a hardware slot (not revoked)."""
        return sum(1 for s in self.streams if not s.revoked)

    def revoke_streams(self, n: int, cycle: float) -> list[Stream]:
        """Revoke up to ``n`` of the most recently added live streams.

        Models the runtime reclaiming hardware streams from a protection
        domain mid-run (fault injection).  Returns the revoked streams,
        newest first, so the system driver can migrate their residual
        programs onto the survivors.  Streams that already finished are
        not eligible; revoking more streams than are live revokes all
        but the oldest (a processor never loses its last stream).
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        live = [s for s in self.streams if not s.revoked and not s.done]
        revoked: list[Stream] = []
        for stream in reversed(live[1:]):  # keep at least the oldest
            if len(revoked) >= n:
                break
            stream.revoke(cycle)
            revoked.append(stream)
        return revoked

    def take_slot(self, ready_cycle: float) -> float:
        """Allocate the earliest issue slot at or after ``ready_cycle``."""
        slot = max(ready_cycle, self.next_free)
        self.next_free = slot + 1.0
        self.issued += 1
        return slot

    def utilization(self, cycles: float) -> float:
        """Fraction of issue slots used over ``cycles`` cycles."""
        return self.issued / cycles if cycles > 0 else 0.0

    @property
    def done(self) -> bool:
        return all(s.done for s in self.streams)
