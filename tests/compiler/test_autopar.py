"""The paper's auto-parallelization outcome, mechanically reproduced.

Section 5/6: "the manufacturer-supplied automatic parallelizing
compilers were unable to identify any practical opportunities for
parallelization" of either sequential program -- and could not even
parallelize the manually transformed programs without the explicit
pragmas.
"""


from repro.compiler import (
    Assign,
    ArrayRef,
    Const,
    ForLoop,
    Program,
    VarRef,
    parallelize,
    render_feedback,
    terrain_blocked_ir,
    terrain_sequential_ir,
    threat_chunked_ir,
    threat_sequential_ir,
)


def test_threat_sequential_not_parallelized():
    result = parallelize(threat_sequential_ir())
    assert result.n_loops >= 3          # threat, weapon, while
    assert result.n_parallelized == 0
    assert not result.found_any_parallelism


def test_threat_sequential_reasons_match_paper():
    """The outer loop fails on the shared num_intervals counter and the
    opaque calls; the inner while is inherently sequential."""
    result = parallelize(threat_sequential_ir())
    by_label = {r.label: r for r in result.reports}
    outer = by_label["for threat"]
    reasons = " ".join(outer.reasons)
    assert "num_intervals" in reasons
    assert "call" in reasons
    inner = by_label["while (weapon can intercept threat)"]
    assert any("loop-carried" in r for r in inner.reasons)


def test_threat_chunked_parallelized_only_by_pragma():
    with_pragma = parallelize(threat_chunked_ir(with_pragma=True))
    assert with_pragma.n_parallelized == 1
    chunk = with_pragma.parallelized_loops[0]
    assert chunk.by_pragma
    assert chunk.label == "for chunk"
    assert with_pragma.n_auto_parallelized == 0

    without = parallelize(threat_chunked_ir(with_pragma=False))
    assert without.n_parallelized == 0


def test_terrain_sequential_not_parallelized():
    result = parallelize(terrain_sequential_ir())
    assert result.n_loops >= 5
    assert result.n_parallelized == 0


def test_terrain_sequential_outer_loop_reasons():
    result = parallelize(terrain_sequential_ir())
    outer = next(r for r in result.reports if r.label == "for threat")
    assert not outer.parallelized
    reasons = " ".join(outer.reasons)
    # the overlapping-region writes and the opaque bounds/altitude calls
    assert "masking" in reasons or "call" in reasons


def test_terrain_blocked_parallelized_only_by_pragma():
    with_pragma = parallelize(terrain_blocked_ir(with_pragma=True))
    assert with_pragma.n_parallelized == 1
    assert with_pragma.parallelized_loops[0].by_pragma
    without = parallelize(terrain_blocked_ir(with_pragma=False))
    assert without.n_parallelized == 0


def test_auto_parallelizable_loop_is_found():
    """Sanity: the pass is not a rubber stamp -- a clean DOALL loop is
    parallelized automatically."""
    prog = Program(
        name="daxpy", params=("n", "a", "x", "y"),
        body=(ForLoop(
            var="i", lower=Const(0), upper=VarRef("n"),
            body=(Assign(ArrayRef("y", (VarRef("i"),)),
                         ArrayRef("x", (VarRef("i"),))),)),))
    result = parallelize(prog)
    assert result.n_auto_parallelized == 1
    assert not result.reports[0].by_pragma


def test_feedback_rendering_sequential():
    result = parallelize(threat_sequential_ir())
    text = render_feedback(result)
    assert "ThreatAnalysis" in text
    assert "NOT parallelized" in text
    assert "no practical opportunities" in text
    assert "PARALLELIZED" not in text.replace("NOT parallelized", "")


def test_feedback_rendering_pragma():
    result = parallelize(threat_chunked_ir())
    text = render_feedback(result)
    assert "explicit pragma" in text
    assert "1/" in text  # summary line counts one parallelized loop


def test_feedback_rendering_empty_program():
    result = parallelize(Program(name="empty", params=(), body=()))
    assert "no loops found" in render_feedback(result)


def test_loop_listing_order_outermost_first():
    result = parallelize(threat_sequential_ir())
    depths = [r.depth for r in result.reports]
    assert depths[0] == 0
    assert all(d >= 0 for d in depths)
    assert max(depths) >= 2
