"""The Section 7 thread-cost comparison, as data.

    "On conventional multiprocessors with operating system support for
    threads, thread creation costs tens of thousands to hundreds of
    thousands of cycles and thread synchronization costs hundreds to
    thousands of cycles.  On the Tera MTA, thread creation and
    synchronization cost only a few cycles."

This table consolidates the platform cost rows used by the machine
models, so the micro-claims benchmark (and documentation) can cite a
single source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.catalog import EXEMPLAR_16, PPRO_SMP_4
from repro.mta.spec import MTA_2


@dataclass(frozen=True)
class PlatformCosts:
    platform: str
    thread_kind: str
    create_cycles: float
    sync_cycles: float


COST_TABLE: tuple[PlatformCosts, ...] = (
    PlatformCosts("Pentium Pro / Windows NT (Win32 threads)", "os",
                  PPRO_SMP_4.costs_for("os").create_cycles,
                  PPRO_SMP_4.costs_for("os").sync_cycles),
    PlatformCosts("HP Exemplar / SPP-UX (pthreads)", "os",
                  EXEMPLAR_16.costs_for("os").create_cycles,
                  EXEMPLAR_16.costs_for("os").sync_cycles),
    PlatformCosts("Tera MTA (software threads / futures)", "sw",
                  MTA_2.costs_for("sw").create_cycles,
                  MTA_2.costs_for("sw").sync_cycles),
    PlatformCosts("Tera MTA (compiler-created hardware streams)", "hw",
                  MTA_2.costs_for("hw").create_cycles,
                  MTA_2.costs_for("hw").sync_cycles),
)


def cost_ratio(metric: str = "create_cycles") -> float:
    """How many times cheaper the cheapest MTA row is than the most
    expensive conventional row -- 'many orders of magnitude' per the
    paper."""
    conventional = [getattr(c, metric) for c in COST_TABLE
                    if "Tera" not in c.platform]
    tera = [getattr(c, metric) for c in COST_TABLE if "Tera" in c.platform]
    return max(conventional) / min(tera)


def render_cost_table() -> str:
    """The cost comparison as an aligned text table."""
    lines = [
        f"{'Platform':<48} {'create (cycles)':>16} {'sync (cycles)':>14}",
        "-" * 80,
    ]
    for row in COST_TABLE:
        lines.append(f"{row.platform:<48} {row.create_cycles:>16,.0f} "
                     f"{row.sync_cycles:>14,.0f}")
    return "\n".join(lines)
