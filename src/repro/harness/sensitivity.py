"""Parameter sensitivity: which conclusions depend on which constants.

For each calibrated constant the study perturbs it by +/-25% and
measures four headline outputs.  The point is epistemic honesty about
the calibration: the *qualitative* findings (which machine wins, what
saturates) must survive any single-constant error, while absolute
seconds legitimately move.

Outputs watched:

* MT Threat Analysis on 1 MTA processor  (Table 5's 82 s)
* MT Threat Analysis 2-processor speedup (Table 5's 1.8x)
* FG Terrain Masking 2-processor speedup (Table 11's 1.4x)
* Terrain Masking 16-CPU Exemplar speedup (Table 10's ~6x)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.harness.runner import BenchmarkData
from repro.machines import exemplar
from repro.machines.spec import MemSpec
from repro.mta import MtaSpec, mta


@dataclass(frozen=True)
class SensitivityRow:
    parameter: str
    output: str
    base: float
    low: float    # output at parameter * 0.75
    high: float   # output at parameter * 1.25

    @property
    def swing_pct(self) -> float:
        """Largest relative output change across the perturbations."""
        return 100.0 * max(abs(self.low - self.base),
                           abs(self.high - self.base)) / self.base


def _outputs(data: BenchmarkData, mta_factory: Callable[[int], MtaSpec],
             exemplar_factory) -> dict[str, float]:
    threat = data.threat_chunked_job(256, thread_kind="hw")
    terrain = data.terrain_finegrained_job()
    blocked1 = data.terrain_blocked_job(1)
    blocked16 = data.terrain_blocked_job(16)
    t1 = data.run_mta_spec(mta_factory(1), threat)
    t2 = data.run_mta_spec(mta_factory(2), threat)
    m1 = data.run_mta_spec(mta_factory(1), terrain)
    m2 = data.run_mta_spec(mta_factory(2), terrain)
    e1 = data.run_conventional(exemplar_factory(1), blocked1)
    e16 = data.run_conventional(exemplar_factory(16), blocked16)
    return {
        "threat MTA 1p (s)": t1,
        "threat MTA 2p speedup": t1 / t2,
        "terrain MTA 2p speedup": m1 / m2,
        "terrain Exemplar 16p speedup": e1 / e16,
    }


def _mta_knob(field: str, factor: float):
    def factory(p: int) -> MtaSpec:
        base = mta(p)
        return dataclasses.replace(
            base, **{field: getattr(base, field) * factor})
    return factory


def _exemplar_knob(field: str, factor: float):
    def factory(n: int):
        spec = exemplar(n)
        mem = spec.mem
        kwargs = {"bandwidth_bytes_per_s": mem.bandwidth_bytes_per_s,
                  "miss_latency_s": mem.miss_latency_s}
        kwargs[field] = kwargs[field] * factor
        return dataclasses.replace(spec, mem=MemSpec(**kwargs))
    return factory


#: (parameter label, model, field) -- the calibrated constants probed.
PARAMETERS = (
    ("MTA network words/cycle", "mta", "network_words_per_cycle"),
    ("MTA memory latency", "mta", "mem_latency_cycles"),
    ("MTA LIW packing", "mta", "ops_per_instruction"),
    ("Exemplar memory bandwidth", "exemplar", "bandwidth_bytes_per_s"),
    ("Exemplar miss latency", "exemplar", "miss_latency_s"),
)


def run_sensitivity(data: BenchmarkData) -> list[SensitivityRow]:
    """The full sensitivity table (one row per parameter x output)."""
    base = _outputs(data, mta, exemplar)
    rows: list[SensitivityRow] = []
    for label, model, field in PARAMETERS:
        variants = {}
        for tag, factor in (("low", 0.75), ("high", 1.25)):
            if model == "mta":
                variants[tag] = _outputs(data, _mta_knob(field, factor),
                                         exemplar)
            else:
                variants[tag] = _outputs(data, mta,
                                         _exemplar_knob(field, factor))
        for output, base_v in base.items():
            rows.append(SensitivityRow(
                parameter=label, output=output, base=base_v,
                low=variants["low"][output],
                high=variants["high"][output]))
    return rows


def render_sensitivity(rows: list[SensitivityRow]) -> str:
    lines = [
        f"{'parameter':<30} {'output':<30} {'base':>9} {'-25%':>9} "
        f"{'+25%':>9} {'swing':>7}",
        "-" * 98,
    ]
    for r in rows:
        lines.append(
            f"{r.parameter:<30} {r.output:<30} {r.base:>9.2f} "
            f"{r.low:>9.2f} {r.high:>9.2f} {r.swing_pct:>6.1f}%")
    return "\n".join(lines)


def qualitative_conclusions_hold(rows: list[SensitivityRow]) -> bool:
    """Under every probed perturbation: the MTA's 2-processor speedups
    stay sub-ideal, and Threat scales better than Terrain on the MTA."""
    by_param: dict[str, dict[str, SensitivityRow]] = {}
    for r in rows:
        by_param.setdefault(r.parameter, {})[r.output] = r
    for variants in by_param.values():
        threat_s = variants["threat MTA 2p speedup"]
        terrain_s = variants["terrain MTA 2p speedup"]
        for tag in ("low", "high"):
            ts = getattr(threat_s, tag)
            ms = getattr(terrain_s, tag)
            if not (1.0 <= ms <= 2.0 and 1.0 <= ts <= 2.0):
                return False
            if ts < ms - 0.05:  # Threat must scale at least as well
                return False
    return True
