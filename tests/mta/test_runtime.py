"""Tests for the Tera programming-system surface (futures, sync
variables, parallel loops)."""

import pytest

from repro.mta import MTA_2, TeraRuntime, mta


def test_cycles_advance_simulated_time():
    rt = TeraRuntime()

    def body(rt):
        yield rt.cycles(100)
        return rt.now_cycles

    f = rt.future(body)
    rt.run()
    # 75 creation cycles + 100 work cycles
    assert f.value() == pytest.approx(175, abs=1)


def test_future_creation_costs_75_cycles():
    rt = TeraRuntime()

    def body(rt):
        yield rt.cycles(0)
        return rt.now_cycles

    f = rt.future(body)
    rt.run()
    assert f.value() == pytest.approx(
        MTA_2.costs_for("sw").create_cycles, abs=1)


def test_hw_thread_creation_costs_2_cycles():
    rt = TeraRuntime()

    def body(rt):
        yield rt.cycles(0)
        return rt.now_cycles

    f = rt.hw_thread(body)
    rt.run()
    assert f.value() == pytest.approx(2, abs=1)


def test_future_get_joins():
    rt = TeraRuntime()

    def worker(rt):
        yield rt.cycles(500)
        return 42

    def parent(rt, fut):
        result = yield fut.get()
        return (result, rt.now_cycles)

    fut = rt.future(worker)
    p = rt.future(parent, fut)
    rt.run()
    result, when = p.value()
    assert result == 42
    assert when >= 575  # worker creation + work


def test_future_get_after_completion():
    rt = TeraRuntime()

    def quick(rt):
        yield rt.cycles(1)
        return "early"

    def late(rt, fut):
        yield rt.cycles(10_000)
        v = yield fut.get()
        return v

    fut = rt.future(quick)
    p = rt.future(late, fut)
    rt.run()
    assert p.value() == "early"
    assert fut.is_done


def test_sync_variable_producer_consumer():
    rt = TeraRuntime()
    cell = rt.sync_variable()
    order = []

    def producer(rt, cell):
        yield rt.cycles(300)
        yield cell.write("payload")
        order.append(("wrote", rt.now_cycles))

    def consumer(rt, cell):
        v = yield cell.read()
        order.append(("read", rt.now_cycles))
        return v

    rt.future(producer, cell)
    c = rt.future(consumer, cell)
    rt.run()
    assert c.value() == "payload"
    # consumer cannot finish before the producer wrote (~375 cycles)
    read_time = dict(order)["read"]
    assert read_time >= 375
    assert not cell.is_full


def test_sync_access_costs_one_cycle():
    rt = TeraRuntime()
    cell = rt.sync_variable(value=7, full=True)

    def reader(rt, cell):
        v = yield cell.read()
        return (v, rt.now_cycles)

    f = rt.hw_thread(reader, cell)
    rt.run()
    v, when = f.value()
    assert v == 7
    # 2 cycles creation + 1 cycle sync access
    assert when == pytest.approx(3, abs=1)


def test_sync_variable_read_ff_leaves_full():
    rt = TeraRuntime()
    cell = rt.sync_variable(value="x", full=True)

    def reader(rt, cell):
        v = yield cell.read_ff()
        return v

    f = rt.future(reader, cell)
    rt.run()
    assert f.value() == "x"
    assert cell.is_full


def test_sync_variable_reset():
    rt = TeraRuntime()
    cell = rt.sync_variable(value=1, full=True)
    cell.reset()
    assert not cell.is_full
    cell.reset(value=9, full=True)
    assert cell.is_full and cell.peek() == 9


def test_parallel_for_runs_every_iteration():
    rt = TeraRuntime()
    done = []

    def body(rt, i):
        yield rt.cycles(10 * (i + 1))
        done.append(i)

    def main(rt):
        yield rt.parallel_for(range(8), body)
        return sorted(done)

    m = rt.future(main)
    rt.run()
    assert m.value() == list(range(8))


def test_parallel_for_iterations_overlap():
    """100 iterations of 1000 cycles each finish in ~1000 cycles, not
    100,000 -- thread creation is nearly free."""
    rt = TeraRuntime()

    def body(rt, i):
        yield rt.cycles(1000)

    def main(rt):
        yield rt.parallel_for(range(100), body)
        return rt.now_cycles

    m = rt.future(main)
    rt.run()
    assert m.value() < 2500


def test_parallel_for_sw_threads():
    rt = TeraRuntime()

    def body(rt, i):
        yield rt.cycles(1)

    def main(rt):
        yield rt.parallel_for(range(4), body, thread_kind="sw")
        return rt.now_cycles

    m = rt.future(main)
    rt.run()
    assert m.value() >= 75  # sw creation cost dominates


def test_atomic_counter_with_sync_variable():
    """The int_fetch_add idiom: concurrent increments never lose one."""
    rt = TeraRuntime()
    counter = rt.sync_variable(value=0, full=True)

    def incrementer(rt, counter, times):
        for _ in range(times):
            v = yield counter.read()
            yield rt.cycles(5)  # some unrelated work inside
            yield counter.write(v + 1)

    def main(rt):
        yield rt.parallel_for(
            range(10), lambda r, i: incrementer(r, counter, 20))
        return counter.peek()

    m = rt.future(main)
    rt.run()
    assert m.value() == 200


def test_runtime_propagates_body_failure():
    rt = TeraRuntime()

    def bad(rt):
        yield rt.cycles(1)
        raise RuntimeError("kernel panic")

    rt.future(bad)
    with pytest.raises(RuntimeError, match="kernel panic"):
        rt.run()


def test_runtime_on_custom_spec():
    rt = TeraRuntime(mta(4))
    assert rt.spec.n_processors == 4
