"""Suite-wide fixtures.

CLI commands now persist run artifacts under ``./.repro_runs`` (see
:mod:`repro.harness.rundir`); tests must never write those into the
working tree, so every test gets its own throwaway run-directory root.
Tests that exercise the run-artifact layer itself simply read
``os.environ["REPRO_RUNS_DIR"]`` or point the fixture elsewhere.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "repro-runs"))
