"""Synthetic input scenarios for Terrain Masking.

Paper-documented parameters: five scenarios, 60 threats each, each
threat's region of influence up to 5% of the terrain.  ``scale``
shrinks the grid (and ranges with it) for fast simulation; the workload
extractor extrapolates by the cell-count ratio (the work is linear in
region cells).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.c3i.common import TERRAIN_MASKING, scenario_rng
from repro.c3i.terrain.model import GroundThreat, generate_terrain


@dataclass(frozen=True)
class FullScale:
    """Paper-scale parameters (per scenario)."""

    grid_n: int = 3200
    n_threats: int = 60
    #: a disc of radius 0.126*N covers 5% of an N x N terrain
    max_range_fraction: float = 0.126
    min_range_fraction: float = 0.055


FULL_SCALE = FullScale()


@dataclass(frozen=True)
class TerrainScenario:
    """One Terrain Masking input scenario."""

    index: int
    terrain: np.ndarray
    threats: tuple[GroundThreat, ...]
    scale: float

    @property
    def grid_n(self) -> int:
        return int(self.terrain.shape[0])

    @property
    def n_threats(self) -> int:
        return len(self.threats)

    @property
    def extrapolation_factor(self) -> float:
        """Cell-count multiplier to paper scale (regions scale with the
        grid, so work goes as the square of the linear scale)."""
        return (FULL_SCALE.grid_n / self.grid_n) ** 2

    def region_cells_total(self) -> int:
        return sum(math.pi * t.range_cells ** 2 for t in self.threats)


@lru_cache(maxsize=64)
def make_scenario(index: int, scale: float = 1.0,
                  seed_offset: int = 0) -> TerrainScenario:
    """Generate terrain scenario ``index`` (0..4) at the given scale.

    ``seed_offset`` selects an alternative synthetic-input universe.

    Deterministic in the arguments and frozen, so instances (and the
    per-terrain masking memo keyed on them) are shared process-wide.
    The terrain grid is marked read-only to keep sharing safe.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    rng = scenario_rng(TERRAIN_MASKING, index, seed_offset)
    n = max(64, round(FULL_SCALE.grid_n * scale))
    terrain = generate_terrain(n, rng, relief=250.0 + 50.0 * index)
    terrain.setflags(write=False)

    threats = []
    for _ in range(FULL_SCALE.n_threats):
        r_frac = rng.uniform(FULL_SCALE.min_range_fraction,
                             FULL_SCALE.max_range_fraction)
        r = max(4, round(r_frac * n))
        margin = 2
        threats.append(GroundThreat(
            x=int(rng.integers(margin, n - margin)),
            y=int(rng.integers(margin, n - margin)),
            range_cells=r,
            sensor_height=float(rng.uniform(8.0, 25.0)),
        ))
    return TerrainScenario(index=index, terrain=terrain,
                           threats=tuple(threats), scale=scale)


def benchmark_scenarios(scale: float = 1.0,
                        seed_offset: int = 0) -> list[TerrainScenario]:
    """The benchmark's five input scenarios."""
    return [make_scenario(i, scale=scale, seed_offset=seed_offset)
            for i in range(5)]
