"""The SPARC T3-4 chip-multithreaded machine family (see ``spec.py``)."""

from typing import Any

from repro.cmt.spec import CMT_T3_4, SPARC_T3_4, CmtSpec, cmt

__all__ = ["CMT_T3_4", "SPARC_T3_4", "CmtMachine", "CmtSpec", "cmt"]


def __getattr__(name: str) -> Any:
    # CmtMachine pulls in the full machine model; import it lazily so
    # repro.machines.catalog can import repro.cmt.spec without a cycle.
    if name == "CmtMachine":
        from repro.cmt.machine import CmtMachine
        return CmtMachine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
