"""Property-based tests for the synthetic scenario generators.

Two families of properties:

* every generated scenario -- any index, any seed universe -- produces
  output that passes its own correctness validators (the C3IPBS-style
  checks in ``validate.py``);
* the validators are not vacuous: mutated outputs are rejected.
"""

import dataclasses
import functools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.c3i.terrain import scenarios as te_scenarios
from repro.c3i.terrain import validate as te_validate
from repro.c3i.terrain.blocked import run_blocked
from repro.c3i.terrain.finegrained import run_finegrained as te_finegrained
from repro.c3i.terrain.sequential import run_sequential as te_sequential
from repro.c3i.threat import scenarios as th_scenarios
from repro.c3i.threat import validate as th_validate
from repro.c3i.threat.chunked import run_chunked
from repro.c3i.threat.finegrained import run_finegrained as th_finegrained
from repro.c3i.threat.model import Interval
from repro.c3i.threat.sequential import run_sequential as th_sequential

THREAT_SCALE = 0.01
TERRAIN_SCALE = 0.02

PROPERTY_SETTINGS = settings(
    max_examples=8, deadline=None, derandomize=True,
    suppress_health_check=[HealthCheck.too_slow])

indices = st.integers(min_value=0, max_value=4)
seed_offsets = st.integers(min_value=0, max_value=3)


@functools.lru_cache(maxsize=None)
def threat_case(index, seed_offset=0):
    sc = th_scenarios.make_scenario(index, scale=THREAT_SCALE,
                                    seed_offset=seed_offset)
    return sc, th_sequential(sc)


@functools.lru_cache(maxsize=None)
def terrain_case(index, seed_offset=0):
    sc = te_scenarios.make_scenario(index, scale=TERRAIN_SCALE,
                                    seed_offset=seed_offset)
    return sc, te_sequential(sc)


# ----------------------------------------------------------------------
# generated scenarios satisfy their own validators
# ----------------------------------------------------------------------

@PROPERTY_SETTINGS
@given(index=indices, seed_offset=seed_offsets)
def test_threat_scenarios_pass_validation(index, seed_offset):
    scenario, reference = threat_case(index, seed_offset)
    assert scenario.n_threats >= 4
    assert scenario.n_weapons == th_scenarios.FULL_SCALE.n_weapons
    assert scenario.n_steps >= 64
    for threat in scenario.threats:
        assert threat.launch_time < threat.impact_time
        assert threat.detection_time < threat.impact_time

    th_validate.check_intervals(scenario, reference.intervals)
    th_validate.check_chunked(reference, run_chunked(scenario, n_chunks=4))
    th_validate.check_finegrained(reference, th_finegrained(scenario))


@PROPERTY_SETTINGS
@given(index=indices, seed_offset=seed_offsets)
def test_terrain_scenarios_pass_validation(index, seed_offset):
    scenario, reference = terrain_case(index, seed_offset)
    assert scenario.grid_n >= 64
    assert scenario.n_threats == te_scenarios.FULL_SCALE.n_threats
    for threat in scenario.threats:
        assert 0 <= threat.x < scenario.grid_n
        assert 0 <= threat.y < scenario.grid_n

    te_validate.check_masking(scenario, reference.masking)
    te_validate.check_blocked(reference, run_blocked(scenario))
    te_validate.check_finegrained(reference, te_finegrained(scenario))


@PROPERTY_SETTINGS
@given(index=indices, seed_offset=seed_offsets)
def test_threat_generation_is_deterministic(index, seed_offset):
    a = th_scenarios.make_scenario(index, scale=THREAT_SCALE,
                                   seed_offset=seed_offset)
    b = th_scenarios.make_scenario(index, scale=THREAT_SCALE,
                                   seed_offset=seed_offset)
    assert a.threats == b.threats
    assert a.weapons == b.weapons


# ----------------------------------------------------------------------
# the validators reject mutated output (they are not vacuous)
# ----------------------------------------------------------------------

def scenario_with_intervals():
    for index in range(5):
        scenario, reference = threat_case(index)
        if reference.intervals:
            return scenario, reference
    raise AssertionError("no scenario produced intervals")


@PROPERTY_SETTINGS
@given(mutation=st.sampled_from(
    ["threat-oob", "weapon-oob", "before-detection", "after-impact"]),
    pick=st.integers(min_value=0, max_value=10**6))
def test_interval_validator_rejects_mutations(mutation, pick):
    scenario, reference = scenario_with_intervals()
    intervals = list(reference.intervals)
    k = pick % len(intervals)
    iv = intervals[k]
    if mutation == "threat-oob":
        bad = dataclasses.replace(iv, threat=scenario.n_threats)
    elif mutation == "weapon-oob":
        bad = dataclasses.replace(iv, weapon=-1)
    elif mutation == "before-detection":
        t0 = scenario.threats[iv.threat].detection_time
        bad = dataclasses.replace(iv, t_first=t0 - 1.0)
    else:
        t1 = scenario.threats[iv.threat].impact_time
        bad = Interval(threat=iv.threat, weapon=iv.weapon,
                       t_first=iv.t_first, t_last=t1 + 1.0)
    intervals[k] = bad
    with pytest.raises(th_validate.ValidationError):
        th_validate.check_intervals(scenario, intervals)


def test_chunked_validator_rejects_dropped_interval():
    scenario, reference = scenario_with_intervals()
    chunked = run_chunked(scenario, n_chunks=4)
    for sec in chunked.intervals_per_chunk:
        if sec:
            sec.pop()
            break
    with pytest.raises(th_validate.ValidationError):
        th_validate.check_chunked(reference, chunked)


def test_finegrained_validator_rejects_dropped_interval():
    scenario, reference = scenario_with_intervals()
    fine = th_finegrained(scenario)
    assert fine.intervals
    fine.intervals.pop()
    with pytest.raises(th_validate.ValidationError):
        th_validate.check_finegrained(reference, fine)


@PROPERTY_SETTINGS
@given(mutation=st.sampled_from(
    ["shape", "below-terrain", "threat-cell", "all-finite"]),
    pick=st.integers(min_value=0, max_value=10**6))
def test_masking_validator_rejects_mutations(mutation, pick):
    scenario, reference = terrain_case(0)
    masking = reference.masking.copy()
    if mutation == "shape":
        masking = masking[:-1, :]
    elif mutation == "below-terrain":
        finite = np.argwhere(np.isfinite(masking))
        x, y = finite[pick % len(finite)]
        masking[x, y] = scenario.terrain[x, y] - 1.0
    elif mutation == "threat-cell":
        t = scenario.threats[pick % scenario.n_threats]
        masking[t.x, t.y] = scenario.terrain[t.x, t.y] + 5.0
    else:
        masking[~np.isfinite(masking)] = 1e6
    with pytest.raises(te_validate.ValidationError):
        te_validate.check_masking(scenario, masking)


def test_blocked_validator_rejects_cell_flip():
    scenario, reference = terrain_case(0)
    blocked = run_blocked(scenario)
    t = scenario.threats[0]
    blocked.masking[t.x, t.y] += 1.0
    with pytest.raises(te_validate.ValidationError):
        te_validate.check_blocked(reference, blocked)


def test_terrain_finegrained_validator_rejects_cell_flip():
    scenario, reference = terrain_case(0)
    fine = te_finegrained(scenario)
    fine.masking[0, 0] = scenario.terrain[0, 0] + 1.0
    with pytest.raises(te_validate.ValidationError):
        te_validate.check_finegrained(reference, fine)
