"""Shared resources: FIFO k-server resources and fair-share servers.

Two contention models cover everything the machine simulators need:

* :class:`Resource` -- classic k-server with a FIFO queue.  Used for
  locks (k=1) and for exclusive hardware (e.g. an uncontended port).

* :class:`FairShareServer` -- generalized processor sharing (GPS): all
  active jobs progress simultaneously, each at rate
  ``min(per_customer_cap, capacity / n_active)``.  This is the natural
  model for a shared memory bus (jobs share total bandwidth) and for
  the Tera MTA's instruction issue slots (each hardware stream is
  capped at 1/21 of the clock; the processor aggregates to at most one
  instruction per cycle).  Completions are computed exactly -- no time
  slicing -- so the model is both fast and deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.des.errors import DesError
from repro.des.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.simulator import Simulator

# Relative tolerance when deciding that a job's remaining work is zero.
_EPS = 1e-9


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Fires when the resource is granted.  Usable as a context manager so
    the resource is released even if the holder's code raises::

        with res.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.resource.release(self)


class Resource:
    """A k-server resource with a FIFO wait queue."""

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._queue: list[Request] = []
        # simple contention statistics
        self.total_waits = 0
        self.total_wait_time = 0.0
        self._wait_started: dict[Request, float] = {}

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self) -> Request:
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(req)
        else:
            self.total_waits += 1
            self._wait_started[req] = self.sim.now
            self._queue.append(req)
        return req

    def release(self, req: Request) -> None:
        if req in self._users:
            self._users.discard(req)
        elif req in self._queue:  # cancelled before being granted
            self._queue.remove(req)
            self._wait_started.pop(req, None)
            return
        else:
            raise DesError(f"{self.name}: releasing a request never granted")
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.pop(0)
            self.total_wait_time += self.sim.now - self._wait_started.pop(nxt)
            self._users.add(nxt)
            nxt.succeed(nxt)


class _Job:
    __slots__ = ("remaining", "done", "enter_time", "cap", "rate")

    def __init__(self, remaining: float, done: Event, enter_time: float,
                 cap: Optional[float]):
        self.remaining = remaining
        self.done = done
        self.enter_time = enter_time
        self.cap = cap       # per-job rate limit (None -> server default)
        self.rate = 0.0      # current allocation, set by _allocate()


class FairShareServer:
    """Generalized-processor-sharing server with per-customer rate cap.

    ``capacity`` is the aggregate service rate (work units per simulated
    time unit).  Rates are allocated by *water-filling*: capacity is
    shared equally, except that no job exceeds its rate cap, and the
    share a capped job cannot use is redistributed to the others.  With
    equal caps this reduces to ``min(cap, capacity / n_active)``.
    Allocations are recomputed exactly at every arrival and departure --
    no time slicing -- and ``submit(demand)`` returns an event that
    fires when the demand has been fully served.

    ``per_customer_cap`` is the default cap; ``submit(..., cap=...)``
    overrides it per job.  The MTA issue model uses ``capacity = clock``
    and a per-stream cap of ``clock / 21``, so a lone stream gets 1/21
    of the clock and ~21+ streams saturate the processor -- which is
    precisely the paper's single-thread utilization story.  A job
    representing a phase with internal parallelism ``p`` simply submits
    with ``cap = p * stream_rate``.
    """

    def __init__(self, sim: "Simulator", capacity: float,
                 per_customer_cap: Optional[float] = None,
                 name: str = "fairshare"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if per_customer_cap is not None and per_customer_cap <= 0:
            raise ValueError("per_customer_cap must be positive")
        self.sim = sim
        self.capacity = float(capacity)
        self.per_customer_cap = (
            float(per_customer_cap) if per_customer_cap is not None else None)
        self.name = name
        self._jobs: list[_Job] = []
        self._last_update = sim.now
        self._wakeup: Optional[Event] = None
        self._wakeup_valid = False
        self._flush_pending = False
        # statistics: integral of served work and of busy time
        self.total_served = 0.0
        self.busy_time = 0.0

    # ------------------------------------------------------------------
    @property
    def n_active(self) -> int:
        return len(self._jobs)

    def current_rate(self) -> float:
        """Equal-share per-job rate right now (0 if idle).

        With heterogeneous per-job caps the true allocation is computed
        by :meth:`_allocate`; this method reports the uncapped equal
        share and is kept for symmetric-job inspection.
        """
        n = len(self._jobs)
        if n == 0:
            return 0.0
        rate = self.capacity / n
        if self.per_customer_cap is not None:
            rate = min(rate, self.per_customer_cap)
        return rate

    def submit(self, demand: float, cap: Optional[float] = None) -> Event:
        """Enter a job with ``demand`` work units; returns its done-event.

        ``cap`` limits this job's service rate (defaults to the server's
        ``per_customer_cap``).
        """
        if demand < 0:
            raise ValueError("demand must be >= 0")
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive")
        done = Event(self.sim)
        if demand == 0:
            done.succeed(None)
            return done
        self._advance()
        self._jobs.append(_Job(float(demand), done, self.sim.now, cap))
        self._request_reschedule()
        return done

    def _request_reschedule(self) -> None:
        """Defer (re)allocation to a single flush event at the current
        timestamp, so a burst of arrivals/departures costs one O(n)
        pass instead of one per change."""
        self._wakeup_valid = False  # outstanding wakeup is stale
        if self._flush_pending:
            return
        self._flush_pending = True
        flush = Event(self.sim)
        flush.callbacks.append(self._flush)
        # priority 2: after every same-time completion and submission
        self.sim._enqueue(flush, priority=2, delay=0.0)
        flush._value = None

    def _flush(self, _event: Event) -> None:
        self._flush_pending = False
        self._advance()  # usually dt == 0 here
        self._reschedule()

    # ------------------------------------------------------------------
    def _allocate(self) -> None:
        """Water-filling rate allocation across the active jobs.

        Jobs are filled in ascending cap order; each takes the smaller
        of its cap and an equal share of what remains, and whatever a
        capped job leaves on the table is redistributed to the rest.
        """
        jobs = self._jobs
        if not jobs:
            return
        default = self.per_customer_cap
        inf = float("inf")

        # Fast path: all jobs share one cap (the overwhelmingly common
        # case -- symmetric thread regions).  Equal caps make
        # water-filling collapse to min(cap, capacity / n).
        first_cap = jobs[0].cap if jobs[0].cap is not None else default
        uniform = True
        for job in jobs:
            cap = job.cap if job.cap is not None else default
            if cap != first_cap:
                uniform = False
                break
        if uniform:
            share = self.capacity / len(jobs)
            rate = share if first_cap is None else min(first_cap, share)
            for job in jobs:
                job.rate = rate
            return

        ordered = sorted(
            jobs, key=lambda j: j.cap if j.cap is not None
            else (default if default is not None else inf))
        left = self.capacity
        n_left = len(ordered)
        for job in ordered:
            cap = job.cap if job.cap is not None else default
            share = left / n_left
            rate = share if cap is None else min(cap, share)
            job.rate = rate
            left -= rate
            n_left -= 1

    def _advance(self) -> None:
        """Credit service performed since the last state change."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._jobs:
            return
        served_total = 0.0
        for job in self._jobs:
            served = job.rate * dt
            job.remaining -= served
            served_total += served
        self.total_served += served_total
        self.busy_time += dt

    def _reschedule(self) -> None:
        """Recompute rates and schedule the next job completion."""
        self._wakeup_valid = False  # invalidate any outstanding wakeup
        if not self._jobs:
            return
        self._allocate()
        delay = min(job.remaining / job.rate for job in self._jobs
                    if job.rate > 0)
        delay = max(0.0, delay)
        wakeup = Event(self.sim)
        self._wakeup = wakeup
        self._wakeup_valid = True
        wakeup.callbacks.append(self._on_wakeup)
        self.sim._enqueue(wakeup, priority=1, delay=delay)
        wakeup._value = None  # trigger directly; not via succeed()

    def _on_wakeup(self, event: Event) -> None:
        if event is not self._wakeup or not self._wakeup_valid:
            return  # stale wakeup superseded by a later arrival
        self._advance()
        # A job is done when its remaining work is zero up to float
        # noise (relative to what has been served so far).
        min_remaining = min(j.remaining for j in self._jobs)
        threshold = max(_EPS, min_remaining * (1.0 + _EPS))
        keep, finished = [], []
        for j in self._jobs:
            (finished if j.remaining <= threshold else keep).append(j)
        self._jobs = keep
        for job in finished:
            job.remaining = 0.0
            job.done.succeed(None)
        self._request_reschedule()

    def utilization(self, total_time: Optional[float] = None) -> float:
        """Fraction of aggregate capacity actually used so far."""
        t = total_time if total_time is not None else self.sim.now
        if t <= 0:
            return 0.0
        return self.total_served / (self.capacity * t)
