"""``repro bench``: measure the cohort fast path against pure DES.

Two modes:

* The default re-measures the kernel benchmark rows recorded in
  ``BENCH_harness.json``: each row is one (machine, job) pair run on
  both the cohort path and the pure-DES path, best-of-N wall clock,
  with the simulated seconds of the two paths required to agree to
  within 1e-9 relative.

* ``--verify`` runs every registry experiment twice -- cohort enabled
  and ``REPRO_NO_COHORT=1`` -- with the result cache disabled, and
  asserts every reported row agrees to within 1e-9 relative.  This is
  the end-to-end equivalence gate the cohort work is held to.

Exit status is non-zero if any equivalence check fails, so both modes
are CI-ready.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Optional

from repro.harness.runner import BenchmarkData
from repro.workload.cohort import NO_COHORT_ENV

#: relative tolerance on simulated seconds, cohort vs DES
REL_TOL = 1e-9

#: the canonical kernel rows; each builds (machine, job) from data.
#: Definitions are spelled out here so the numbers in
#: ``BENCH_harness.json`` stay re-measurable by name alone.
def _rows() -> dict[str, Callable]:
    from repro.machines import ConventionalMachine, exemplar
    from repro.mta import MtaMachine, mta

    return {
        "exemplar16-threat16": lambda data, uc: (
            ConventionalMachine(exemplar(16), use_cohort=uc),
            data.threat_chunked_job(16)),
        "exemplar16-terrain-bl8": lambda data, uc: (
            ConventionalMachine(exemplar(16), use_cohort=uc),
            data.terrain_blocked_job(8)),
        "mta1-threat256": lambda data, uc: (
            MtaMachine(mta(1), use_cohort=uc),
            data.threat_chunked_job(256, thread_kind="hw")),
        "mta2-threat256": lambda data, uc: (
            MtaMachine(mta(2), use_cohort=uc),
            data.threat_chunked_job(256, thread_kind="hw")),
        # lock-convoy-dominated: every fine-grained thread appends its
        # result under one lock, so the region is one long convoy
        "exemplar16-threatfg1000": lambda data, uc: (
            ConventionalMachine(exemplar(16), use_cohort=uc),
            data.threat_finegrained_job()),
        # barrier-dominated: 1024 chunks over 128 hw streams, lock-free
        # lockstep phases joined only at the region barrier
        "mta1-threat1024": lambda data, uc: (
            MtaMachine(mta(1), use_cohort=uc),
            data.threat_chunked_job(1024, thread_kind="hw")),
        # work-queue-dominated: 16 workers pull threat items off a
        # shared queue (the terrain merge locks ride along), exercising
        # the closed-form queue solver rather than class compression
        "exemplar16-terrain-bl16": lambda data, uc: (
            ConventionalMachine(exemplar(16), use_cohort=uc),
            data.terrain_blocked_job(16)),
    }


def _rel_err(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b), 1e-300)


def _best_of(fn: Callable[[], object], repeat: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, result


def run_kernel_bench(data: BenchmarkData, repeat: int = 3,
                     json_path: Optional[str] = None,
                     run=None) -> int:
    """Measure each kernel row DES-vs-cohort; returns an exit status.

    ``run`` is an optional :class:`repro.harness.rundir.RunWriter`;
    each row becomes a queryable cell (``repro runs query --cell
    exemplar16-threatfg1000``) and the full payload is stored as the
    run's report, so the perf trajectory accumulates without anyone
    hand-editing ``BENCH_harness.json``.
    """
    print(f"kernel rows, best of {repeat} "
          f"(threat_scale={data.threat_scale}, "
          f"terrain_scale={data.terrain_scale})")
    print(f"{'row':24s} {'des_s':>9s} {'cohort_s':>9s} {'speedup':>8s} "
          f"{'rel_err':>9s}")
    status = 0
    payload = {}
    for name, build in _rows().items():
        machine_d, job = build(data, False)
        wall_d, res_d = _best_of(lambda: machine_d.run(job), repeat)
        machine_c, _ = build(data, True)
        wall_c, res_c = _best_of(lambda: machine_c.run(job), repeat)
        rel = _rel_err(res_c.seconds, res_d.seconds)
        ok = rel <= REL_TOL
        if not ok:
            status = 1
        print(f"{name:24s} {wall_d:9.4f} {wall_c:9.4f} "
              f"{wall_d / wall_c:7.2f}x {rel:9.2e}"
              f"{'' if ok else '  MISMATCH'}")
        payload[name] = {
            "wall_des_s": round(wall_d, 4),
            "wall_cohort_s": round(wall_c, 4),
            "speedup": round(wall_d / wall_c, 2),
            "simulated_seconds": res_c.seconds,
            "equivalent": ok,
        }
        if run is not None:
            run.record("bench", {
                "cell": name,
                "kind": machine_c.__class__.__name__,
                "machine": machine_c.spec.name,
                "job": job.name,
                "seconds": res_c.seconds,
                "stats": dict(payload[name]),
            })
    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    if run is not None:
        run.write_report(payload=payload)
    return status


def run_verify(data: BenchmarkData, run=None) -> int:
    """Cohort-vs-DES equivalence over every registry experiment."""
    from repro.harness.registry import EXPERIMENT_IDS, run_experiment

    def run_all_rows(no_cohort: bool) -> dict[tuple[str, str], float]:
        saved = {k: os.environ.get(k)
                 for k in (NO_COHORT_ENV, "REPRO_NO_CACHE")}
        os.environ["REPRO_NO_CACHE"] = "1"
        if no_cohort:
            os.environ[NO_COHORT_ENV] = "1"
        else:
            os.environ.pop(NO_COHORT_ENV, None)
        try:
            rows = {}
            for eid in EXPERIMENT_IDS:
                result = run_experiment(eid, data)
                for row in result.rows:
                    rows[(eid, row.label)] = row.simulated
            return rows
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v

    t0 = time.perf_counter()
    cohort_rows = run_all_rows(no_cohort=False)
    t1 = time.perf_counter()
    des_rows = run_all_rows(no_cohort=True)
    t2 = time.perf_counter()

    # an explicit check, not an assert: `python -O` strips asserts and
    # CI must fail loudly when the two walks disagree on row identity
    missing = cohort_rows.keys() ^ des_rows.keys()
    if missing:
        print(f"row sets differ between cohort and DES walks; "
              f"{len(missing)} one-sided rows:")
        for key in sorted(missing):
            side = "cohort-only" if key in cohort_rows else "des-only"
            print(f"  {side}: {key[0]} / {key[1]}")
        return 1
    bad = []
    for key, sim_c in cohort_rows.items():
        sim_d = des_rows[key]
        if sim_c is None or sim_d is None:
            if sim_c != sim_d:
                bad.append((key, sim_c, sim_d))
            continue
        if _rel_err(sim_c, sim_d) > REL_TOL:
            bad.append((key, sim_c, sim_d))
    print(f"verified {len(cohort_rows)} rows across "
          f"{len(EXPERIMENT_IDS)} experiments: "
          f"{len(bad)} mismatches")
    # the first walk pays all one-time real-kernel executions and job
    # construction, so these walls are not a cohort-vs-DES comparison;
    # use the default `repro bench` mode for timing
    print(f"cohort walk {t1 - t0:.1f}s, pure-DES walk {t2 - t1:.1f}s")
    for (eid, label), sim_c, sim_d in bad:
        print(f"  MISMATCH {eid} / {label}: "
              f"cohort={sim_c!r} des={sim_d!r}")
    if run is not None:
        run.write_report(payload={
            "mode": "verify",
            "rows_verified": len(cohort_rows),
            "experiments": len(EXPERIMENT_IDS),
            "mismatches": [
                {"experiment": eid, "label": label,
                 "cohort": sim_c, "des": sim_d}
                for (eid, label), sim_c, sim_d in bad
            ],
            "cohort_walk_s": round(t1 - t0, 3),
            "des_walk_s": round(t2 - t1, 3),
        })
    return 1 if bad else 0
