"""Serialization of experiment results and the persistent result cache.

Two layers live here:

* A JSON round trip for :class:`ExperimentResult` -- lets CI pipelines
  and notebooks consume reproduced tables without re-running the
  simulations, and lets the CLI emit machine-readable output
  (``python -m repro run table5 --json out.json``).
* A content-addressed on-disk cache for *simulation runs* (the
  expensive part of every experiment).  A run is keyed by the sha-256
  fingerprint of everything that determines its outcome: the machine
  spec, the job (down to every op count), the simulation options, the
  scenario parameters (scale/seed), and an *epoch* hash of the model
  source code plus the package version.  Identical keys therefore mean
  bit-identical simulated seconds, and any model or calibration change
  invalidates the cache automatically.

  Entries are one JSON file per key under ``.repro_cache/`` (override
  with ``REPRO_CACHE_DIR``); writes are atomic (tempfile +
  ``os.replace``) so concurrent processes can share a directory.
  Corrupt or stale entries are discarded, never trusted.  Set
  ``REPRO_NO_CACHE=1`` to bypass the cache entirely.
"""

from __future__ import annotations

import contextvars
import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from functools import lru_cache
from typing import Iterable, Iterator, Optional

from repro.harness.experiment import ExperimentResult, Row, ShapeCheck

#: bumped on any schema change
SCHEMA_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "notes": result.notes,
        "rows": [
            {"label": r.label, "paper": r.paper,
             "simulated": r.simulated, "unit": r.unit}
            for r in result.rows
        ],
        "checks": [
            {"description": c.description, "passed": c.passed,
             "detail": c.detail}
            for c in result.checks
        ],
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported result schema {schema!r} "
            f"(this build reads {SCHEMA_VERSION})")
    rows = tuple(
        Row(label=r["label"], paper=r["paper"],
            simulated=r["simulated"], unit=r["unit"])
        for r in payload["rows"]
    )
    checks = tuple(
        ShapeCheck(description=c["description"], passed=c["passed"],
                   detail=c.get("detail", ""))
        for c in payload["checks"]
    )
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        rows=rows,
        checks=checks,
        notes=payload.get("notes", ""),
    )


def atomic_write_json(path: str, payload, *, indent: Optional[int] = 2,
                      sort_keys: bool = False) -> None:
    """Serialize ``payload`` to ``path`` via tempfile + ``os.replace``.

    A crash (or a watchdog interrupt) mid-write must never leave a
    truncated JSON file behind: the document is written to a temporary
    file in the destination directory and moved into place atomically,
    the same pattern :meth:`ResultCache.put` uses.  Unlike the cache's
    best-effort writes, errors propagate -- the caller asked for this
    file.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=".write-", suffix=".tmp",
                               dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=indent, sort_keys=sort_keys)
        # mkstemp creates 0600; give the artifact normal umask perms
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp, 0o666 & ~umask)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def dump_results(results: Iterable[ExperimentResult], path: str) -> None:
    """Write results as a JSON array (atomically)."""
    atomic_write_json(path, [result_to_dict(r) for r in results])


def load_results(path: str) -> list[ExperimentResult]:
    """Read back results written by :func:`dump_results`."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, list):
        raise ValueError("expected a JSON array of results")
    return [result_from_dict(p) for p in payload]


# ----------------------------------------------------------------------
# content-addressed simulation-result cache
# ----------------------------------------------------------------------

#: bumped on any change to the cache entry layout
CACHE_SCHEMA_VERSION = 1


def entry_to_record(key: str, entry: dict, seed_offset: int,
                    kind: Optional[str] = None) -> dict:
    """A simulation *record* rebuilt from a cache entry.

    Records (``BenchmarkData.metrics_log`` entries -- key/kind/machine/
    job/seconds/seed_offset/stats) are the currency of the metrics
    rollups, the run directory's ``cells.jsonl`` and the service's
    per-cell result stream.  Three consumers reconstruct them from
    cache entries (the runner's hit path, the parallel harness's cell
    dedupe, the service batcher); one constructor keeps their shape
    identical.  ``kind`` overrides the entry's stored kind (the runner
    passes the request's, which always matches what :meth:`ResultCache.put`
    embedded).
    """
    return {
        "key": key,
        "kind": kind if kind is not None else entry.get("kind", ""),
        "machine": entry.get("machine", ""),
        "job": entry.get("job", ""),
        "seconds": float(entry["seconds"]),
        "seed_offset": seed_offset,
        "stats": entry.get("stats") or {},
    }

#: set (non-empty, not "0") to bypass the cache entirely
NO_CACHE_ENV = "REPRO_NO_CACHE"

#: overrides the cache directory (default ``./.repro_cache``)
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

DEFAULT_CACHE_DIR = ".repro_cache"


def _str_token(s: str) -> bytes:
    raw = s.encode("utf-8")
    return b"s%d:" % len(raw) + raw


#: per-dataclass encoding cache: (header bytes, field name tokens+names)
_DC_ENC: dict[type, tuple[bytes, tuple[tuple[bytes, str], ...]]] = {}

#: per-enum-member encoding cache (members are singletons)
_ENUM_ENC: dict[enum.Enum, bytes] = {}


def _encode(out: bytearray, obj) -> None:
    """Append the canonical byte encoding of ``obj`` to ``out``.

    Every value that can appear in a machine spec or job tree is
    covered: primitives, enums, (frozen) dataclasses, dicts, sequences.
    Floats are encoded via ``float.hex`` so distinct bit patterns never
    collide and equal values always agree.  Job trees run to hundreds
    of thousands of nodes, so the encoder dispatches on exact type
    first and caches per-dataclass field layouts; the byte stream is
    unchanged by these shortcuts (cache keys survive them).
    """
    t = obj.__class__
    if t is float:
        out += b"f"
        out += float.hex(obj).encode("ascii")
        out += b";"
    elif t is str:
        raw = obj.encode("utf-8")
        out += b"s%d:" % len(raw)
        out += raw
    elif t is int:
        out += b"i%d;" % obj
    elif t is tuple or t is list:
        out += b"l%d:" % len(obj)
        for item in obj:
            _encode(out, item)
    elif obj is None:
        out += b"N;"
    elif obj is True:
        out += b"T;"
    elif obj is False:
        out += b"F;"
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out += b"s%d:" % len(raw)
        out += raw
    elif isinstance(obj, float):
        out += b"f"
        out += float.hex(obj).encode("ascii")
        out += b";"
    elif isinstance(obj, enum.Enum):
        enc = _ENUM_ENC.get(obj)
        if enc is None:
            buf = bytearray(b"e" + _str_token(type(obj).__qualname__))
            _encode(buf, obj.value)
            enc = _ENUM_ENC[obj] = bytes(buf)
        out += enc
    elif isinstance(obj, int):
        out += b"i%d;" % obj
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        enc = _DC_ENC.get(t)
        if enc is None:
            enc = _DC_ENC[t] = (
                b"d" + _str_token(t.__qualname__),
                tuple((_str_token(f.name), f.name)
                      for f in dataclasses.fields(t)),
            )
        head, fields = enc
        out += head
        for token, name in fields:
            out += token
            _encode(out, getattr(obj, name))
        out += b";"
    elif isinstance(obj, dict):
        out += b"m%d:" % len(obj)
        for key in sorted(obj, key=repr):
            _encode(out, key)
            _encode(out, obj[key])
    elif isinstance(obj, (list, tuple)):
        out += b"l%d:" % len(obj)
        for item in obj:
            _encode(out, item)
    elif isinstance(obj, (set, frozenset)):
        out += b"S%d:" % len(obj)
        for item in sorted(obj, key=repr):
            _encode(out, item)
    elif hasattr(obj, "item"):  # numpy scalar
        _encode(out, obj.item())
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__qualname__}: {obj!r}")


def _feed(h, obj) -> None:
    """Feed the canonical byte encoding of ``obj`` into hasher ``h``."""
    out = bytearray()
    _encode(out, obj)
    h.update(out)


def fingerprint(obj) -> str:
    """sha-256 hex digest of the canonical encoding of ``obj``."""
    out = bytearray()
    _encode(out, obj)
    return hashlib.sha256(out).hexdigest()


#: packages whose source determines simulation output for a given
#: (spec, job) pair -- including every calibration constant.  The c3i
#: kernels are deliberately absent: they only shape the *job content*,
#: which is fingerprinted directly.  ``obs`` is included because the
#: machine models import it for metrics rollups (and the equivalence
#: arithmetic for lock summaries lives there).
_MODEL_PACKAGES = ("des", "machines", "mta", "obs", "workload", "threads")


def _model_source_files(root: str) -> Iterator[str]:
    """Every source file whose content feeds the epoch hash, in a
    deterministic order.  Paths are absolute; ``root`` is the ``repro``
    package directory.

    Exposed separately from the hashing so tests can assert that a
    given file *is* covered (e.g. the cohort compilers, whose output
    the DES path never checks at runtime).

    The walk recurses into nested subpackages: a model package that
    grows a subdirectory must feed the epoch hash too, or entries
    cached before the subpackage changed would be trusted forever.
    ``__pycache__`` trees are skipped.
    """
    for pkg in _MODEL_PACKAGES:
        pkg_dir = os.path.join(root, pkg)
        if not os.path.isdir(pkg_dir):
            continue
        for dirpath, dirnames, filenames in os.walk(pkg_dir):
            dirnames[:] = sorted(d for d in dirnames
                                 if d != "__pycache__")
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def _compute_epoch(root: str, version: str) -> str:
    """The epoch digest for a package tree (uncached; see
    :func:`model_epoch`)."""
    h = hashlib.sha256()
    h.update(version.encode("utf-8"))
    for path in _model_source_files(root):
        # the package-relative path, not the basename: nested modules
        # may share a basename, and moving a module between packages
        # must change the epoch
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        h.update(rel.encode("utf-8"))
        with open(path, "rb") as fh:
            h.update(fh.read())
    return h.hexdigest()[:16]


@lru_cache(maxsize=1)
def model_epoch() -> str:
    """Hash of the simulation-model source code and package version.

    Part of every cache key: editing any model module or calibration
    constant (they live in the model packages) changes the epoch and
    orphans -- i.e. invalidates -- every existing entry.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    return _compute_epoch(root, getattr(repro, "__version__", ""))


class CacheScope:
    """Hit/miss counts attributed to one unit of work (see
    :func:`cache_scope`)."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0


_scope_var: contextvars.ContextVar[Optional[CacheScope]] = \
    contextvars.ContextVar("repro_cache_scope", default=None)


@contextmanager
def cache_scope() -> Iterator[CacheScope]:
    """Attribute cache hits/misses to the enclosed work, exactly.

    The process-wide :class:`ResultCache` counters are cumulative;
    subtracting snapshots taken around a task is only correct when
    tasks never interleave in one process.  A scope instead counts via
    a :class:`contextvars.ContextVar`, so it sees precisely the lookups
    made in the current context -- concurrent scopes (e.g. experiment
    runners on different threads) never bleed into each other::

        with store.cache_scope() as sc:
            run_experiment(...)
        profile = (sc.hits, sc.misses)

    Scopes nest: only the innermost active scope counts a lookup.
    """
    scope = CacheScope()
    token = _scope_var.set(scope)
    try:
        yield scope
    finally:
        _scope_var.reset(token)


class ResultCache:
    """One-JSON-file-per-entry store under a cache directory.

    Safe for concurrent use from multiple processes: reads tolerate
    missing/corrupt/partial files (treated as misses, corrupt files are
    removed), writes go through a tempfile in the same directory
    followed by an atomic ``os.replace``.
    """

    def __init__(self, directory: str):
        self.directory = directory
        self.hits = 0
        self.misses = 0
        #: entries discarded because their checksum or shape failed
        self.corrupt = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + ".json")

    @staticmethod
    def payload_checksum(payload: dict) -> str:
        """sha-256 over the canonical JSON form, checksum field
        excluded.  Written by :meth:`put`, verified by :meth:`get`."""
        body = {k: v for k, v in payload.items() if k != "sha256"}
        raw = json.dumps(body, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(raw).hexdigest()

    def get(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or ``None`` on any problem.

        Every read verifies the entry's embedded sha-256 checksum, so
        silent on-disk corruption (bit rot, torn concurrent writes
        through a non-atomic filesystem, hand edits) surfaces as a
        cache miss -- the caller transparently recomputes and the
        corrupt file is removed.  Entries written before checksums
        existed fail the check and are rebuilt the same way.

        The entry's embedded ``key`` must also match the lookup key: a
        cache file copied or renamed to another key's path carries a
        checksum-consistent payload for the *wrong* simulation cell,
        and serving it would silently corrupt results.  Mismatches are
        treated exactly like corruption (discarded and counted).
        """
        path = self._path(key)
        corrupt = False
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except OSError:
            payload = None
        except ValueError:
            payload = None
            corrupt = True
        else:
            if (not isinstance(payload, dict)
                    or payload.get("schema") != CACHE_SCHEMA_VERSION
                    or payload.get("key") != key
                    or not isinstance(payload.get("seconds"),
                                      (int, float))
                    or payload.get("sha256")
                    != self.payload_checksum(payload)):
                payload = None
                corrupt = True
        if corrupt:
            self.corrupt += 1
            try:  # corrupt entry: discard so it is rebuilt
                os.remove(path)
            except OSError:
                pass
        scope = _scope_var.get()
        if payload is None:
            self.misses += 1
            if scope is not None:
                scope.misses += 1
            return None
        self.hits += 1
        if scope is not None:
            scope.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically store ``payload`` (best effort; errors ignored)."""
        payload = dict(payload, schema=CACHE_SCHEMA_VERSION, key=key)
        payload["sha256"] = self.payload_checksum(payload)
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".put-", suffix=".tmp", dir=self.directory)
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # a full/read-only disk must not break the run

    def _entries(self) -> list[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [os.path.join(self.directory, n) for n in names
                if n.endswith(".json")]

    def info(self) -> dict:
        """Entry count and total size (for ``repro cache info``)."""
        entries = self._entries()
        total = 0
        for path in entries:
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return {"directory": os.path.abspath(self.directory),
                "entries": len(entries), "bytes": total,
                "epoch": model_epoch(),
                "corrupt_discarded": self.corrupt}

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        return removed


_caches: dict[str, ResultCache] = {}


def cache_directory() -> str:
    """The configured cache directory (may not exist yet)."""
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


def cache_enabled() -> bool:
    return os.environ.get(NO_CACHE_ENV, "") in ("", "0")


def active_cache() -> Optional[ResultCache]:
    """The process-wide cache for the configured directory.

    ``None`` when ``REPRO_NO_CACHE`` is set.  One :class:`ResultCache`
    (with its hit/miss counters) is kept per directory, so repeated
    calls are cheap and counters accumulate across the process.
    """
    if not cache_enabled():
        return None
    directory = cache_directory()
    cache = _caches.get(directory)
    if cache is None:
        cache = _caches[directory] = ResultCache(directory)
    return cache
