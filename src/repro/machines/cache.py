"""Trace-level set-associative cache simulator.

This is the micro-fidelity companion to the macro locality model in
:mod:`repro.machines.locality`: unit tests replay address traces through
it and check that the macro model's traffic estimates agree with the
trace-exact miss counts on the reference patterns (streaming, in-cache
reuse, random).
"""

from __future__ import annotations

from collections import OrderedDict


class SetAssociativeCache:
    """An LRU set-associative cache over byte addresses."""

    def __init__(self, capacity_bytes: int, line_bytes: int = 64,
                 assoc: int = 4):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")
        if assoc < 1:
            raise ValueError("assoc must be >= 1")
        n_lines = capacity_bytes // line_bytes
        if n_lines < assoc or n_lines % assoc:
            raise ValueError(
                "capacity must hold a whole number of sets of `assoc` lines")
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = n_lines // assoc
        # each set: OrderedDict tag -> None, LRU at the front
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.n_sets)]
        #: ways disabled by fault injection (see :meth:`degrade_ways`)
        self.disabled_ways = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def effective_assoc(self) -> int:
        """Ways still usable per set after any injected degradation."""
        return max(1, self.assoc - self.disabled_ways)

    def degrade_ways(self, n_ways: int) -> None:
        """Disable ``n_ways`` ways per set (fault injection: partial
        cache-way failure).  Lines in the disabled ways are dropped
        immediately -- their next reference misses -- and every set is
        capped at the surviving associativity from now on.  At least
        one way always survives.
        """
        if n_ways < 0:
            raise ValueError("n_ways must be >= 0")
        self.disabled_ways = min(self.assoc - 1,
                                 self.disabled_ways + n_ways)
        cap = self.effective_assoc
        for s in self._sets:
            while len(s) > cap:
                s.popitem(last=False)

    def restore_ways(self) -> None:
        """Undo :meth:`degrade_ways` (repair)."""
        self.disabled_ways = 0

    # ------------------------------------------------------------------
    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def access(self, address: int) -> bool:
        """Reference one byte address; returns True on hit."""
        if address < 0:
            raise ValueError("negative address")
        set_idx, tag = self._locate(address)
        s = self._sets[set_idx]
        if tag in s:
            s.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        if len(s) >= self.effective_assoc:
            s.popitem(last=False)  # evict LRU
        s[tag] = None
        return False

    def access_range(self, start: int, n_bytes: int, stride: int = 8
                     ) -> int:
        """Reference ``n_bytes`` starting at ``start`` with the given
        stride; returns the number of misses incurred."""
        if stride <= 0:
            raise ValueError("stride must be positive")
        before = self.misses
        for addr in range(start, start + n_bytes, stride):
            self.access(addr)
        return self.misses - before

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        n = self.accesses
        return self.misses / n if n else 0.0

    @property
    def miss_traffic_bytes(self) -> int:
        return self.misses * self.line_bytes

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        for s in self._sets:
            s.clear()
        self.reset_stats()
