"""The ``repro serve`` asyncio job server (simulation-as-a-service).

One process, one event loop, one engine thread: connections speak the
newline-delimited JSON protocol of :mod:`repro.service.protocol`,
validated requests become cell descriptors, and the
:class:`~repro.service.batcher.CellBatcher` dedupes and batches them
into cohort engine runs.  Per-cell results stream back the moment they
land -- a request for N cells produces N ``cell`` lines in completion
order, then one ``done`` line.

Durability: the whole service session is one run-store run.  Every
record the engine produces lands in the session's ``cells.jsonl`` (via
the batcher's ``on_record`` hook, deduplicated by content-addressed
key exactly like a ``repro all`` run), and shutdown finalizes the
manifest with the service counters as the report payload -- so
``repro runs list/query`` sees served work the same way it sees CLI
sweeps.

Shutdown: SIGTERM/SIGINT (or a client ``shutdown`` op) stops
accepting connections, lets busy requests finish, drains the batcher,
finalizes the run directory and exits 0.

Startup: the run-artifact root is probed *before* the socket opens
(:func:`repro.harness.rundir.ensure_runs_root`) so a bad
``REPRO_RUNS_DIR`` rejects startup with an actionable error instead of
failing hours later; and with ``--port 0`` the actually-bound port is
printed to stdout (``repro serve: listening on HOST:PORT``) before the
first connection is accepted, which is what lets harnesses (CI, the
load generator, tests) start the server on an ephemeral port and
discover it from the output.
"""

from __future__ import annotations

import asyncio
import signal
import socket
import sys
from typing import Optional

from repro.harness.registry import EXPERIMENT_IDS
from repro.harness.rundir import RunWriter
from repro.obs.metrics import ServiceCounters
from repro.service import protocol
from repro.service.batcher import CellBatcher


def _set_nodelay(writer: asyncio.StreamWriter) -> None:
    """Disable Nagle on a stream connection.

    The protocol is small write / small read request-response; with
    Nagle on, its interaction with delayed ACKs stalls every exchange
    ~40ms -- dwarfing the sub-millisecond cached-cell service time.
    """
    sock = writer.get_extra_info("socket")
    if sock is not None and sock.family in (socket.AF_INET,
                                            socket.AF_INET6):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class ReproService:
    """Service state shared across connections."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 threat_scale: float = 0.02, terrain_scale: float = 0.05,
                 jobs: int = 1, batch_window: float = 0.05,
                 max_batch: int = 64, run: Optional[RunWriter] = None):
        self.host = host
        self.port = port
        self.threat_scale = threat_scale
        self.terrain_scale = terrain_scale
        self.jobs = jobs
        self.counters = ServiceCounters()
        self.run = run
        self.batcher = CellBatcher(
            jobs=jobs, batch_window=batch_window, max_batch=max_batch,
            counters=self.counters, on_record=self._persist)
        self._server: Optional[asyncio.Server] = None
        self._shutdown = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()
        self.bound_port: Optional[int] = None

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _persist(self, record: dict) -> None:
        if self.run is not None:
            self.run.record("service", record)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind + listen, announce the port, then begin accepting.

        The socket is created *listening* before the banner prints, so
        a client that connects the instant it reads the port queues in
        the accept backlog instead of being refused -- the contract CI
        and the load generator rely on: the actually-bound port (which
        matters with ``--port 0``) reaches stdout before the first
        connection is accepted, and connecting right after reading it
        always succeeds.
        """
        await self.batcher.start()
        sock = socket.create_server((self.host, self.port), backlog=128)
        sock.setblocking(False)
        self.bound_port = sock.getsockname()[1]
        print(f"repro serve: listening on {self.host}:{self.bound_port}",
              flush=True)
        self._server = await asyncio.start_server(
            self._on_connection, sock=sock,
            limit=protocol.MAX_LINE_BYTES)

    def request_shutdown(self, why: str = "signal") -> None:
        if not self._shutdown.is_set():
            print(f"repro serve: shutdown requested ({why}), draining",
                  file=sys.stderr, flush=True)
            self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Run until a shutdown request, then drain gracefully."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, self.request_shutdown, signal.Signals(sig).name)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix event loop
        try:
            await self._shutdown.wait()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(sig)
                except (NotImplementedError, RuntimeError):
                    pass
        # 1. stop accepting new connections
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        # 2. let busy requests finish (they stop admitting new work
        #    the moment the batcher closes below, so this converges)
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        # 3. drain the engine
        await self.batcher.drain()
        print(f"repro serve: drained "
              f"({self.counters.requests} requests, "
              f"{self.counters.cells} cells, "
              f"{self.counters.engine_cells} engine runs)",
              file=sys.stderr, flush=True)

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.counters.connections += 1
        _set_nodelay(writer)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            self.counters.disconnects += 1
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_or_shutdown(self,
                                reader: asyncio.StreamReader) -> bytes:
        """Next request line, or ``b""`` once shutdown is requested.

        Draining must not wait on idle keep-alive connections: a
        connection parked in ``readline`` has no request in flight, so
        shutdown closes it immediately, while a connection busy in a
        handler finishes its request first (this race only runs
        between requests).
        """
        line_task = asyncio.ensure_future(reader.readline())
        shut_task = asyncio.ensure_future(self._shutdown.wait())
        try:
            done, _ = await asyncio.wait(
                {line_task, shut_task},
                return_when=asyncio.FIRST_COMPLETED)
            if line_task in done:
                return line_task.result()
            return b""
        finally:
            for task in (line_task, shut_task):
                if not task.done():
                    task.cancel()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while not reader.at_eof():
            try:
                line = await self._read_or_shutdown(reader)
            except (ValueError, asyncio.LimitOverrunError):
                self.counters.errors += 1
                await self._send(writer, {
                    "type": "error", "id": None,
                    "error": "request line exceeds "
                             f"{protocol.MAX_LINE_BYTES} bytes"})
                return
            if not line:
                return
            if not line.strip():
                continue
            try:
                message = protocol.decode(line)
            except protocol.ProtocolError as exc:
                self.counters.errors += 1
                await self._send(writer, {"type": "error", "id": None,
                                          "error": str(exc)})
                continue
            if not await self._dispatch(message, writer):
                return

    async def _dispatch(self, message: dict,
                        writer: asyncio.StreamWriter) -> bool:
        """Handle one request; False ends the connection."""
        op = message.get("op")
        request_id = message.get("id")
        if op == "hello":
            await self._send(writer, protocol.hello_payload(
                threat_scale=self.threat_scale,
                terrain_scale=self.terrain_scale, jobs=self.jobs))
            return True
        if op == "stats":
            await self._send(writer, {"type": "stats",
                                      "stats": self.stats()})
            return True
        if op == "shutdown":
            await self._send(writer, {"type": "bye"})
            self.request_shutdown("client request")
            return False
        if op == "simulate":
            await self._handle_simulate(message, writer)
            return True
        if op == "sweep":
            await self._handle_sweep(message, writer)
            return True
        self.counters.errors += 1
        await self._send(writer, {
            "type": "error", "id": request_id,
            "error": f"unknown op {op!r}; known: hello, simulate, "
                     f"sweep, stats, shutdown"})
        return True

    # ------------------------------------------------------------------
    # simulate / sweep
    # ------------------------------------------------------------------
    def _request_scales(self, message: dict) -> tuple[float, float]:
        threat = message.get("threat_scale", self.threat_scale)
        terrain = message.get("terrain_scale", self.terrain_scale)
        for name, value in (("threat_scale", threat),
                            ("terrain_scale", terrain)):
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or not 0 < value <= 1:
                raise protocol.ProtocolError(
                    f"{name} must be a number in (0, 1], got {value!r}")
        return float(threat), float(terrain)

    async def _handle_simulate(self, message: dict,
                               writer: asyncio.StreamWriter) -> None:
        request_id = message.get("id")
        self.counters.requests += 1
        try:
            threat, terrain = self._request_scales(message)
            payloads = message.get("cells")
            if not isinstance(payloads, list) or not payloads:
                raise protocol.ProtocolError(
                    "simulate needs a non-empty 'cells' array")
            cells = [protocol.cell_from_payload(
                p, threat_scale=threat, terrain_scale=terrain)
                for p in payloads]
        except protocol.ProtocolError as exc:
            self.counters.errors += 1
            await self._send(writer, {"type": "error", "id": request_id,
                                      "error": str(exc)})
            return
        await self._stream_cells(request_id, cells, writer)

    async def _handle_sweep(self, message: dict,
                            writer: asyncio.StreamWriter) -> None:
        """Registry experiments or a named factorial sweep as a request.

        With ``"sweep": "<name>"`` the request expands one declarative
        grid from :data:`repro.c3i.sweeps.SWEEPS` -- the same
        :func:`~repro.c3i.sweeps.expand_cells` path `repro sweep`
        takes, so the served records are byte-identical per key to a
        local run, and the done line carries the expansion fingerprint.

        Otherwise ``"experiments"`` plans registry experiments exactly
        like ``repro all -j`` (the :class:`_PlanningData` probe) and
        streams every planned cell -- so a served full-registry sweep
        produces, per content-addressed key, the same records a local
        ``repro all`` writes.
        """
        from repro.harness.parallel import _plan_one, _PlanningData
        from repro.harness.runner import default_data

        request_id = message.get("id")
        self.counters.requests += 1
        named = message.get("sweep")
        if named is not None:
            try:
                threat, terrain = self._request_scales(message)
                if not isinstance(named, str):
                    raise protocol.ProtocolError(
                        f"sweep name must be a string, got {named!r}")
                from repro.c3i import sweeps as sweep_defs

                try:
                    sweep = sweep_defs.get_sweep(named)
                except KeyError as exc:
                    raise protocol.ProtocolError(str(exc.args[0]))
            except protocol.ProtocolError as exc:
                self.counters.errors += 1
                await self._send(writer, {"type": "error",
                                          "id": request_id,
                                          "error": str(exc)})
                return
            loop = asyncio.get_running_loop()
            cells = await loop.run_in_executor(
                self.batcher._engine,
                lambda: sweep_defs.expand_cells(
                    sweep, threat_scale=threat, terrain_scale=terrain))
            await self._stream_cells(
                request_id, cells, writer,
                extra={"sweep": sweep.name,
                       "fingerprint":
                           sweep_defs.expansion_fingerprint(sweep)})
            return
        try:
            threat, terrain = self._request_scales(message)
            wanted = message.get("experiments", "all")
            if wanted == "all":
                ids = list(EXPERIMENT_IDS)
            elif isinstance(wanted, list) and wanted \
                    and all(isinstance(e, str) for e in wanted):
                unknown = sorted(set(wanted) - set(EXPERIMENT_IDS))
                if unknown:
                    raise protocol.ProtocolError(
                        f"unknown experiments {unknown}; see "
                        f"'repro list'")
                ids = list(dict.fromkeys(wanted))
            else:
                raise protocol.ProtocolError(
                    "sweep needs experiments: \"all\" or a non-empty "
                    "array of experiment ids")
        except protocol.ProtocolError as exc:
            self.counters.errors += 1
            await self._send(writer, {"type": "error", "id": request_id,
                                      "error": str(exc)})
            return
        # plan on the engine thread -- planning runs the kernels once
        loop = asyncio.get_running_loop()

        def plan() -> list[dict]:
            planner = _PlanningData(
                threat_scale=threat, terrain_scale=terrain,
                donor=default_data(threat, terrain))
            cells: dict[str, dict] = {}
            for eid in ids:
                for key, cell in _plan_one(eid, planner)["cells"] \
                        .items():
                    if cell is not None and key not in cells:
                        cells[key] = dict(cell, threat_scale=threat,
                                          terrain_scale=terrain)
            return list(cells.values())

        cells = await loop.run_in_executor(self.batcher._engine, plan)
        await self._stream_cells(request_id, cells, writer,
                                 extra={"experiments": ids})

    async def _stream_cells(self, request_id, cells: list[dict],
                            writer: asyncio.StreamWriter,
                            extra: Optional[dict] = None) -> None:
        """Submit cells, stream each record as it lands, then 'done'.

        A subscriber disconnecting mid-stream only stops *its* writes:
        the futures are shared with the batch, which runs to completion
        for the cache, the run store and any other subscribers.
        """
        try:
            futures = [self.batcher.submit(cell) for cell in cells]
        except RuntimeError as exc:  # shutting down
            self.counters.errors += 1
            await self._send(writer, {"type": "error", "id": request_id,
                                      "error": str(exc)})
            return
        connected = True
        n_sent = 0
        failures: list[str] = []
        pending = {asyncio.ensure_future(asyncio.shield(f))
                   for f in futures}
        seen: set[str] = set()
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED)
            for fut in done:
                exc = fut.exception()
                if exc is not None:
                    failures.append(str(exc).splitlines()[0][:500])
                    continue
                record = fut.result()
                if record["key"] in seen:
                    continue  # two request cells deduped to one key
                seen.add(record["key"])
                if not connected:
                    continue  # keep draining for the shared batch
                schedule = record.get("fault_schedule")
                try:
                    await self._send(writer, protocol.record_response(
                        request_id, record, schedule))
                    n_sent += 1
                except (ConnectionError, OSError):
                    connected = False
                    self.counters.disconnects += 1
        if not connected:
            return
        done_line = {
            "type": "done", "id": request_id, "n_cells": len(cells),
            "n_sent": n_sent, "ok": not failures,
        }
        if failures:
            done_line["errors"] = failures[:10]
            self.counters.errors += len(failures)
        if extra:
            done_line.update(extra)
        await self._send(writer, done_line)

    # ------------------------------------------------------------------
    async def _send(self, writer: asyncio.StreamWriter,
                    message: dict) -> None:
        writer.write(protocol.encode(message))
        await writer.drain()

    def stats(self) -> dict:
        body = self.counters.snapshot()
        body["inflight"] = len(self.batcher._inflight)
        body["pending"] = self.batcher._pending_count()
        if self.run is not None:
            body["run_id"] = self.run.run_id
        return body


async def serve(*, host: str, port: int, threat_scale: float,
                terrain_scale: float, jobs: int, batch_window: float,
                max_batch: int, run: Optional[RunWriter]) -> int:
    """``repro serve`` body: start, run until shutdown, drain."""
    service = ReproService(
        host=host, port=port, threat_scale=threat_scale,
        terrain_scale=terrain_scale, jobs=jobs,
        batch_window=batch_window, max_batch=max_batch, run=run)
    await service.start()
    await service.serve_until_shutdown()
    if run is not None:
        run.write_report(payload={
            "schema": "repro-service-session/v1",
            "counters": service.counters.snapshot(),
        })
    return 0
