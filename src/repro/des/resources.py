"""Shared resources: FIFO k-server resources and fair-share servers.

Two contention models cover everything the machine simulators need:

* :class:`Resource` -- classic k-server with a FIFO queue.  Used for
  locks (k=1) and for exclusive hardware (e.g. an uncontended port).

* :class:`FairShareServer` -- generalized processor sharing (GPS): all
  active jobs progress simultaneously, each at rate
  ``min(per_customer_cap, capacity / n_active)``.  This is the natural
  model for a shared memory bus (jobs share total bandwidth) and for
  the Tera MTA's instruction issue slots (each hardware stream is
  capped at 1/21 of the clock; the processor aggregates to at most one
  instruction per cycle).  Completions are computed exactly -- no time
  slicing -- so the model is both fast and deterministic.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Optional

from repro.des.errors import DesError
from repro.des.events import Event, _internal_event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.simulator import Simulator

# Relative tolerance when deciding that a job's remaining work is zero.
_EPS = 1e-9

_INF = float("inf")


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Fires when the resource is granted.  Usable as a context manager so
    the resource is released even if the holder's code raises::

        with res.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource", "owner")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        #: the process that issued the request (None outside a process);
        #: lets deadlock diagnostics walk resource -> holder edges
        self.owner = resource.sim._active_process

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.resource.release(self)


class Resource:
    """A k-server resource with a FIFO wait queue."""

    __slots__ = ("sim", "capacity", "name", "_users", "_queue",
                 "total_waits", "total_wait_time", "_wait_started",
                 "max_queue_depth", "queue_depth_hist")

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._queue: list[Request] = []
        # simple contention statistics
        self.total_waits = 0
        self.total_wait_time = 0.0
        self._wait_started: dict[Request, float] = {}
        #: deepest the wait queue (lock convoy) ever got
        self.max_queue_depth = 0
        #: power-of-two histogram of queue depth seen by each
        #: contended request at enqueue time (depth 1, 2, 4, 8, ...)
        self.queue_depth_hist: dict[int, int] = {}

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self) -> Request:
        req = Request(self)
        tr = self.sim.trace
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(req)
            if tr is not None:
                tr.acquire(self._owner_tid(req), self.sim.now, self.name)
        else:
            self.total_waits += 1
            depth = len(self._queue) + 1
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth
            bucket = 1 << (depth.bit_length() - 1)
            self.queue_depth_hist[bucket] = (
                self.queue_depth_hist.get(bucket, 0) + 1)
            self._wait_started[req] = self.sim.now
            self._queue.append(req)
            if tr is not None:
                tr.enqueue(self._owner_tid(req), self.sim.now, self.name,
                           depth)
        return req

    @staticmethod
    def _owner_tid(req: Request) -> int:
        return req.owner.tid if req.owner is not None else -1

    def release(self, req: Request) -> None:
        if req in self._users:
            self._users.discard(req)
            tr = self.sim.trace
            if tr is not None:
                tr.release(self._owner_tid(req), self.sim.now, self.name)
        elif req in self._queue:  # cancelled before being granted
            self._queue.remove(req)
            self._wait_started.pop(req, None)
            return
        else:
            raise DesError(f"{self.name}: releasing a request never granted")
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.pop(0)
            self.total_wait_time += self.sim.now - self._wait_started.pop(nxt)
            self._users.add(nxt)
            nxt.succeed(nxt)
            tr = self.sim.trace
            if tr is not None:
                tr.acquire(self._owner_tid(nxt), self.sim.now, self.name)


class _Job:
    __slots__ = ("remaining", "done", "enter_time", "cap", "ecap", "rate")

    def __init__(self, remaining: float, done: Event, enter_time: float,
                 cap: Optional[float], ecap: float):
        self.remaining = remaining
        self.done = done
        self.enter_time = enter_time
        self.cap = cap       # per-job rate limit (None -> server default)
        self.ecap = ecap     # effective cap as a float (inf if uncapped)
        self.rate = 0.0      # current allocation, set by _allocate()


class FairShareServer:
    """Generalized-processor-sharing server with per-customer rate cap.

    ``capacity`` is the aggregate service rate (work units per simulated
    time unit).  Rates are allocated by *water-filling*: capacity is
    shared equally, except that no job exceeds its rate cap, and the
    share a capped job cannot use is redistributed to the others.  With
    equal caps this reduces to ``min(cap, capacity / n_active)``.
    Allocations are recomputed exactly at every arrival and departure --
    no time slicing -- and ``submit(demand)`` returns an event that
    fires when the demand has been fully served.

    ``per_customer_cap`` is the default cap; ``submit(..., cap=...)``
    overrides it per job.  The MTA issue model uses ``capacity = clock``
    and a per-stream cap of ``clock / 21``, so a lone stream gets 1/21
    of the clock and ~21+ streams saturate the processor -- which is
    precisely the paper's single-thread utilization story.  A job
    representing a phase with internal parallelism ``p`` simply submits
    with ``cap = p * stream_rate``.
    """

    __slots__ = ("sim", "capacity", "per_customer_cap", "name", "_jobs",
                 "_last_update", "_wakeup", "_wakeup_valid",
                 "_flush_pending", "_flush_callbacks", "total_served",
                 "busy_time")

    def __init__(self, sim: "Simulator", capacity: float,
                 per_customer_cap: Optional[float] = None,
                 name: str = "fairshare"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if per_customer_cap is not None and per_customer_cap <= 0:
            raise ValueError("per_customer_cap must be positive")
        self.sim = sim
        self.capacity = float(capacity)
        self.per_customer_cap = (
            float(per_customer_cap) if per_customer_cap is not None else None)
        self.name = name
        self._jobs: list[_Job] = []
        self._last_update = sim.now
        self._wakeup: Optional[Event] = None
        self._wakeup_valid = False
        self._flush_pending = False
        # One shared callback list for every flush event: step() swaps
        # the list out of the event without mutating it, so it is safe
        # to hand the same list to each one-shot flush.
        self._flush_callbacks = [self._flush]
        # statistics: integral of served work and of busy time
        self.total_served = 0.0
        self.busy_time = 0.0

    # ------------------------------------------------------------------
    @property
    def n_active(self) -> int:
        return len(self._jobs)

    def current_rate(self) -> float:
        """Equal-share per-job rate right now (0 if idle).

        With heterogeneous per-job caps the true allocation is computed
        by :meth:`_allocate`; this method reports the uncapped equal
        share and is kept for symmetric-job inspection.
        """
        n = len(self._jobs)
        if n == 0:
            return 0.0
        rate = self.capacity / n
        if self.per_customer_cap is not None:
            rate = min(rate, self.per_customer_cap)
        return rate

    def submit(self, demand: float, cap: Optional[float] = None) -> Event:
        """Enter a job with ``demand`` work units; returns its done-event.

        ``cap`` limits this job's service rate (defaults to the server's
        ``per_customer_cap``).
        """
        if demand < 0:
            raise ValueError("demand must be >= 0")
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive")
        done = Event(self.sim)
        if demand == 0:
            done.succeed(None)
            return done
        tr = self.sim.trace
        if tr is not None:
            ap = self.sim._active_process
            tr.serve(ap.tid if ap is not None else -1, self.sim.now,
                     self.name, demand)
        if self.sim.now != self._last_update:
            self._advance()
        if cap is not None:
            ecap = cap
        elif self.per_customer_cap is not None:
            ecap = self.per_customer_cap
        else:
            ecap = _INF
        self._jobs.append(_Job(float(demand), done, self.sim.now, cap,
                               ecap))
        self._request_reschedule()
        return done

    def serve_batch(self, demands: list[float],
                    cap: Optional[float] = None) -> list[Event]:
        """Enter many jobs at the current instant; returns their events.

        Semantically identical to ``[self.submit(d, cap) for d in
        demands]`` -- same job order, same single deferred reallocation
        flush -- but does the bookkeeping in one pass: one time
        advance, one cap resolution, one reschedule request for the
        whole batch.  This is the arrival-side primitive of the cohort
        fast path (a homogeneous region dumps a whole wavefront of
        per-thread demands on a server at one timestamp).
        """
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive")
        if cap is not None:
            ecap = cap
        elif self.per_customer_cap is not None:
            ecap = self.per_customer_cap
        else:
            ecap = _INF
        sim = self.sim
        now = sim.now
        jobs = self._jobs
        events = []
        advanced = now == self._last_update
        added = False
        for demand in demands:
            if demand < 0:
                raise ValueError("demand must be >= 0")
            done = Event(sim)
            events.append(done)
            if demand == 0:
                done.succeed(None)
                continue
            if not advanced:
                self._advance()
                advanced = True
            jobs.append(_Job(float(demand), done, now, cap, ecap))
            added = True
        if added:
            self._request_reschedule()
        return events

    def _request_reschedule(self) -> None:
        """Defer (re)allocation to a single flush event at the current
        timestamp, so a burst of arrivals/departures costs one O(n)
        pass instead of one per change."""
        self._wakeup_valid = False  # outstanding wakeup is stale
        if self._flush_pending:
            return
        self._flush_pending = True
        flush = Event.__new__(Event)
        sim = self.sim
        flush.sim = sim
        flush.callbacks = self._flush_callbacks
        flush._value = None  # trigger directly; not via succeed()
        flush._exc = None
        flush._defused = False
        # priority 2: after every same-time completion and submission.
        # sim._enqueue inlined (hot path, zero delay).
        _heappush(sim._heap, (sim.now, 2, sim._seq, flush))
        sim._seq += 1

    def _flush(self, _event: Event) -> None:
        self._flush_pending = False
        if self.sim.now != self._last_update:  # usually dt == 0 here
            self._advance()
        self._reschedule()

    # ------------------------------------------------------------------
    def _allocate(self) -> float:
        """Water-filling rate allocation across the active jobs.

        Jobs are filled in ascending cap order; each takes the smaller
        of its cap and an equal share of what remains, and whatever a
        capped job leaves on the table is redistributed to the rest.

        Returns the delay until the earliest job completion at the new
        rates (``inf`` if no job has a positive rate), computed in the
        same pass: ``min(remaining / rate)`` equals the per-job formula
        exactly because IEEE division by a positive rate is monotone.
        """
        jobs = self._jobs
        if not jobs:
            return _INF

        # Fast path: all jobs share one cap (the overwhelmingly common
        # case -- symmetric thread regions).  Equal caps make
        # water-filling collapse to min(cap, capacity / n).
        first_cap = jobs[0].ecap
        uniform = True
        for job in jobs:
            if job.ecap != first_cap:
                uniform = False
                break
        if uniform:
            share = self.capacity / len(jobs)
            rate = first_cap if first_cap <= share else share
            min_remaining = _INF
            for job in jobs:
                job.rate = rate
                if job.remaining < min_remaining:
                    min_remaining = job.remaining
            return min_remaining / rate if rate > 0 else _INF

        # Group jobs by cap: the fill order of a stable sort on cap is
        # "distinct caps ascending, insertion order within each", and
        # there are typically only a handful of distinct caps, so
        # grouping beats sorting all the jobs.  The per-job arithmetic
        # (share = left / n_left, then the capped min) is kept exactly
        # as in the one-pass formulation so allocations stay
        # bit-identical.
        groups: dict[float, list[_Job]] = {}
        for job in jobs:
            ecap = job.ecap
            grp = groups.get(ecap)
            if grp is None:
                groups[ecap] = [job]
            else:
                grp.append(job)
        left = self.capacity
        n_left = len(jobs)
        delay = _INF
        for ecap in sorted(groups):
            for job in groups[ecap]:
                share = left / n_left
                rate = ecap if ecap <= share else share
                job.rate = rate
                left -= rate
                n_left -= 1
                if rate > 0:
                    d = job.remaining / rate
                    if d < delay:
                        delay = d
        return delay

    def _advance(self) -> None:
        """Credit service performed since the last state change."""
        now = self.sim.now
        if now == self._last_update:  # same-timestamp burst: nothing served
            return
        dt = now - self._last_update
        self._last_update = now
        jobs = self._jobs
        if dt <= 0 or not jobs:
            return
        served_total = 0.0
        for job in jobs:
            served = job.rate * dt
            job.remaining -= served
            served_total += served
        self.total_served += served_total
        self.busy_time += dt

    def _reschedule(self) -> None:
        """Recompute rates and schedule the next job completion."""
        self._wakeup_valid = False  # invalidate any outstanding wakeup
        if not self._jobs:
            return
        delay = self._allocate()
        if delay < 0.0:
            delay = 0.0
        sim = self.sim
        wakeup = _internal_event(sim, self._on_wakeup)
        self._wakeup = wakeup
        self._wakeup_valid = True
        # sim._enqueue inlined (hot path, delay already clamped >= 0)
        _heappush(sim._heap, (sim.now + delay, 1, sim._seq, wakeup))
        sim._seq += 1

    def _on_wakeup(self, event: Event) -> None:
        if event is not self._wakeup or not self._wakeup_valid:
            return  # stale wakeup superseded by a later arrival
        # Inlined _advance() fused with the min-remaining scan: one pass
        # over the jobs instead of two.  The arithmetic and accumulation
        # order match _advance() exactly.
        jobs = self._jobs
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        min_remaining = _INF
        if dt > 0 and jobs:
            served_total = 0.0
            for job in jobs:
                served = job.rate * dt
                remaining = job.remaining - served
                job.remaining = remaining
                served_total += served
                if remaining < min_remaining:
                    min_remaining = remaining
            self.total_served += served_total
            self.busy_time += dt
        else:
            for job in jobs:
                if job.remaining < min_remaining:
                    min_remaining = job.remaining
        # A job is done when its remaining work is zero up to float
        # noise (relative to what has been served so far).
        threshold = min_remaining * (1.0 + _EPS)
        if threshold < _EPS:
            threshold = _EPS
        keep, finished = [], []
        for j in jobs:
            if j.remaining <= threshold:
                finished.append(j)
            else:
                keep.append(j)
        self._jobs = keep
        for job in finished:
            job.remaining = 0.0
            job.done.succeed(None)
        self._request_reschedule()

    def utilization(self, total_time: Optional[float] = None) -> float:
        """Fraction of aggregate capacity actually used so far."""
        t = total_time if total_time is not None else self.sim.now
        if t <= 0:
            return 0.0
        return self.total_served / (self.capacity * t)
