"""Property-based and monotonicity tests on the machine models.

These pin down the qualitative laws the reproduction leans on: more
CPUs never hurt, bigger caches never hurt, more work never takes less
time, traffic estimates behave monotonically.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.machines import (
    CacheSpec,
    ConventionalMachine,
    exemplar,
    miss_traffic_bytes,
)
from repro.mta import MtaMachine, mta
from repro.workload import (
    AccessPattern,
    JobBuilder,
    OpCounts,
    ThreadProgramBuilder,
    make_phase,
    single_thread_job,
)


def chunked_job(n_ops, n_threads, unique=0.0):
    phase = make_phase("w", OpCounts(ialu=n_ops * 0.7, load=n_ops * 0.3),
                       unique_bytes=unique)
    threads = [ThreadProgramBuilder(f"t{i}").phase(p).build()
               for i, p in enumerate(phase.split(n_threads))]
    return JobBuilder("j").parallel(threads).build()


# ----------------------------------------------------------------------
# locality model properties
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=1e3, max_value=1e9),    # touched refs
       st.floats(min_value=64.0, max_value=1e8))   # footprint
def test_traffic_bounded_by_footprint_and_line_ceiling(n_refs, unique):
    cache = CacheSpec(capacity_bytes=1 << 20, line_bytes=64, assoc=4)
    p = make_phase("p", OpCounts(load=n_refs), unique_bytes=unique)
    t = miss_traffic_bytes(p, cache)
    assert t >= 0.0
    assert t <= n_refs * cache.line_bytes  # ceiling: line per reference


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=1e4, max_value=1e8))
def test_bigger_cache_never_more_traffic(n_refs):
    p = make_phase("p", OpCounts(load=n_refs), unique_bytes=8 * n_refs)
    prev = float("inf")
    for kb in (16, 64, 256, 1024, 8192):
        cache = CacheSpec(capacity_bytes=kb * 1024, line_bytes=64,
                          assoc=4)
        t = miss_traffic_bytes(p, cache)
        assert t <= prev + 1e-6
        prev = t


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=1e4, max_value=1e8),
       st.floats(min_value=1e3, max_value=1e7))
def test_traffic_monotone_in_touched(n_refs, unique):
    cache = CacheSpec(capacity_bytes=256 * 1024, line_bytes=64, assoc=4)
    small = make_phase("p", OpCounts(load=n_refs), unique_bytes=unique)
    big = make_phase("p", OpCounts(load=n_refs * 2), unique_bytes=unique)
    assert (miss_traffic_bytes(big, cache)
            >= miss_traffic_bytes(small, cache) - 1e-6)


def test_random_never_cheaper_than_sequential():
    cache = CacheSpec(capacity_bytes=256 * 1024, line_bytes=64, assoc=4)
    for unique in (1e4, 1e6, 1e8):
        seq = make_phase("p", OpCounts(load=1e6), unique_bytes=unique,
                         pattern=AccessPattern.SEQUENTIAL)
        rnd = make_phase("p", OpCounts(load=1e6), unique_bytes=unique,
                         pattern=AccessPattern.RANDOM)
        assert (miss_traffic_bytes(rnd, cache)
                >= miss_traffic_bytes(seq, cache))


# ----------------------------------------------------------------------
# machine monotonicity
# ----------------------------------------------------------------------

@pytest.mark.parametrize("unique", [0.0, 64e6])
def test_more_cpus_never_slower(unique):
    times = []
    for n in (1, 2, 4, 8, 16):
        m = ConventionalMachine(exemplar(n))
        times.append(m.run(chunked_job(4e8, n, unique=unique)).seconds)
    for a, b in zip(times, times[1:]):
        assert b <= a * 1.001


def test_more_work_takes_longer_conventional():
    m = ConventionalMachine(exemplar(4))
    prev = 0.0
    for ops in (1e7, 1e8, 1e9):
        t = m.run(chunked_job(ops, 4)).seconds
        assert t > prev
        prev = t


def test_more_mta_processors_never_slower():
    job = chunked_job(4.2e8, 256)
    prev = float("inf")
    for p in (1, 2, 4, 8):
        t = MtaMachine(mta(p)).run(job).seconds
        assert t <= prev * 1.001
        prev = t


def test_more_mta_streams_never_slower():
    prev = float("inf")
    for chunks in (4, 16, 64, 256):
        t = MtaMachine(mta(1)).run(chunked_job(4.2e8, chunks)).seconds
        assert t <= prev * 1.001
        prev = t


def test_mta_deterministic():
    job = chunked_job(1e8, 64, unique=1e7)
    a = MtaMachine(mta(2)).run(job).seconds
    b = MtaMachine(mta(2)).run(job).seconds
    assert a == b


def test_conventional_deterministic():
    job = chunked_job(1e8, 16, unique=64e6)
    a = ConventionalMachine(exemplar(16)).run(job).seconds
    b = ConventionalMachine(exemplar(16)).run(job).seconds
    assert a == b


def test_faster_clock_is_faster():
    spec = exemplar(4)
    fast = dataclasses.replace(
        spec, core=dataclasses.replace(spec.core,
                                       clock_hz=spec.core.clock_hz * 2))
    job = chunked_job(4e8, 4)
    t_norm = ConventionalMachine(spec).run(job).seconds
    t_fast = ConventionalMachine(fast).run(job).seconds
    assert t_fast < t_norm


def test_sequential_job_ignores_extra_cpus():
    job = single_thread_job("s", [make_phase("p", OpCounts(ialu=1e8))])
    t1 = ConventionalMachine(exemplar(1)).run(job).seconds
    t16 = ConventionalMachine(exemplar(16)).run(job).seconds
    assert t1 == pytest.approx(t16, rel=1e-9)
