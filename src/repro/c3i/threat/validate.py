"""Correctness tests for the Threat Analysis outputs.

The C3IPBS ships a correctness test per problem; these play that role.
The sequential program is the reference; every parallel variant must
produce the same set of interception windows (and for the chunked
variant, the same *order* after the canonical chunk-order merge).
"""

from __future__ import annotations

from repro.c3i.threat.chunked import ChunkedResult
from repro.c3i.threat.finegrained import FineGrainedResult
from repro.c3i.threat.model import Interval
from repro.c3i.threat.scenarios import Scenario
from repro.c3i.threat.sequential import ThreatAnalysisResult


class ValidationError(AssertionError):
    """A parallel variant disagreed with the reference output."""


def check_intervals(scenario: Scenario,
                    intervals: list[Interval]) -> None:
    """Structural sanity of an interval list against its scenario."""
    for iv in intervals:
        if not 0 <= iv.threat < scenario.n_threats:
            raise ValidationError(f"interval references threat {iv.threat}")
        if not 0 <= iv.weapon < scenario.n_weapons:
            raise ValidationError(f"interval references weapon {iv.weapon}")
        threat = scenario.threats[iv.threat]
        if iv.t_first < threat.detection_time - 1e-9:
            raise ValidationError(
                f"interception before detection for threat {iv.threat}")
        if iv.t_last > threat.impact_time + 1e-9:
            raise ValidationError(
                f"interception after impact for threat {iv.threat}")


def check_chunked(reference: ThreatAnalysisResult,
                  chunked: ChunkedResult) -> None:
    """The chunk-order merge must equal the sequential output exactly."""
    merged = chunked.merged_intervals
    if merged != reference.intervals:
        raise ValidationError(
            f"chunked output differs: {len(merged)} vs "
            f"{len(reference.intervals)} intervals (or order mismatch)")
    if sum(chunked.steps_per_chunk) != reference.n_steps_total:
        raise ValidationError("chunked step accounting diverged")


def check_finegrained(reference: ThreatAnalysisResult,
                      fine: FineGrainedResult) -> None:
    """The sync-variable variant must produce the same *set* of
    intervals (order is nondeterministic by design)."""
    if sorted(fine.intervals, key=_key) != sorted(reference.intervals,
                                                  key=_key):
        raise ValidationError("fine-grained output set differs")


def _key(iv: Interval) -> tuple:
    return (iv.threat, iv.weapon, iv.t_first, iv.t_last)
