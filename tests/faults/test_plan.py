"""FaultPlan parsing, validation and schedule determinism."""

import json

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    derive_unit,
)


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------

def test_parse_full_spec():
    plan = FaultPlan.parse("streams:0.5:0.8,cache-ways", seed=3)
    assert plan.seed == 3
    assert plan.specs[0] == FaultSpec("streams", 0.5, 0.8)
    assert plan.specs[1] == FaultSpec("cache-ways", None, None)


def test_parse_open_fields():
    plan = FaultPlan.parse("mem-latency:~:0.5")
    assert plan.specs[0].when is None
    assert plan.specs[0].severity == 0.5


@pytest.mark.parametrize("bad", [
    "", "unknown-kind", "streams:1.5", "streams:0.5:0",
    "streams:0.5:1.5", "streams:abc", "streams:0.1:0.2:0.3:0.4",
])
def test_parse_rejects(bad):
    with pytest.raises(ValueError):
        FaultPlan.parse(bad)


def test_plan_needs_a_fault():
    with pytest.raises(ValueError):
        FaultPlan(specs=())


# ----------------------------------------------------------------------
# derivation / schedules
# ----------------------------------------------------------------------

def test_derive_unit_is_deterministic_and_uniformish():
    a = derive_unit(7, 0, "streams", "job", "m", "when")
    b = derive_unit(7, 0, "streams", "job", "m", "when")
    assert a == b
    assert 0.0 <= a < 1.0
    assert derive_unit(8, 0, "streams", "job", "m", "when") != a


def test_schedule_is_deterministic():
    plan = FaultPlan.parse(",".join(FAULT_KINDS), seed=11)
    s1 = plan.schedule("threat-sequential", 10, "mta")
    s2 = plan.schedule("threat-sequential", 10, "mta")
    assert s1 == s2
    # byte-identical through the JSON payload form
    assert (json.dumps([f.to_payload() for f in s1], sort_keys=True)
            == json.dumps([f.to_payload() for f in s2], sort_keys=True))


def test_schedule_varies_with_seed_and_job():
    plan_a = FaultPlan.parse("streams", seed=1)
    plan_b = FaultPlan.parse("streams", seed=2)
    sa = plan_a.schedule("j", 100, "m")
    sb = plan_b.schedule("j", 100, "m")
    assert sa != sb
    assert plan_a.schedule("other-job", 100, "m") != sa


def test_schedule_respects_explicit_fields():
    plan = FaultPlan.parse("streams:0.5:0.8", seed=99)
    (f,) = plan.schedule("j", 10, "m")
    assert f.step == 5
    assert f.severity == 0.8


def test_schedule_clamps_step():
    plan = FaultPlan.parse("streams:0.99:0.5")
    (f,) = plan.schedule("j", 1, "m")
    assert f.step == 0


def test_schedule_severity_floor():
    plan = FaultPlan.parse("streams", seed=0)
    for job in ("a", "b", "c", "d"):
        (f,) = plan.schedule(job, 4, "m")
        assert 0.25 <= f.severity <= 1.0
