"""Tests for the live sync monitor and the buggy fixtures."""

import pytest

from repro.analysis import SyncMonitor, monitoring
from repro.analysis.fixtures import FIXTURES, fixture_by_name
from repro.des import FullEmptyCell, SimBarrier, Simulator


# ----------------------------------------------------------------------
# SyncMonitor hooks
# ----------------------------------------------------------------------

def test_monitor_registers_primitives():
    sim = Simulator()
    with monitoring(sim) as mon:
        FullEmptyCell(sim, name="c")
        SimBarrier(sim, parties=2, name="b")
    assert [c.name for c in mon.cells] == ["c"]
    assert [b.name for b in mon.barriers] == ["b"]
    assert sim.monitor is None  # restored on exit


def test_no_monitor_by_default():
    sim = Simulator()
    FullEmptyCell(sim)
    SimBarrier(sim, parties=1)
    assert sim.monitor is None


def test_monitor_sees_overwrite_of_full_cell():
    sim = Simulator()
    with monitoring(sim) as mon:
        cell = FullEmptyCell(sim, value=1, full=True)
        cell.write_ff(2)
        assert mon.overwrite_count == 1
        findings = mon.finish(job="j")
    assert [f.hazard for f in findings] == ["write-to-full"]


def test_writeff_on_empty_cell_is_not_flagged():
    sim = Simulator()
    with monitoring(sim) as mon:
        cell = FullEmptyCell(sim)
        cell.write_ff(1)
        assert mon.overwrite_count == 0
        assert mon.finish() == []
    assert cell.is_full


def test_monitor_reports_stuck_reader_and_waiting_barrier():
    sim = Simulator()
    with monitoring(sim) as mon:
        cell = FullEmptyCell(sim, name="never-filled")
        bar = SimBarrier(sim, parties=3, name="short")

        def reader():
            yield cell.read_fe()

        def waiter():
            yield bar.wait()

        sim.process(reader())
        sim.process(waiter())
        sim.run()
        findings = mon.finish(job="j")
    hazards = sorted(f.hazard for f in findings)
    assert hazards == ["barrier-mismatch", "read-from-empty"]
    locations = {f.hazard: f.location for f in findings}
    assert locations["read-from-empty"] == "never-filled"
    assert locations["barrier-mismatch"] == "short"


def test_monitor_clean_run_has_no_findings():
    sim = Simulator()
    with monitoring(sim) as mon:
        cell = FullEmptyCell(sim)
        bar = SimBarrier(sim, parties=2)

        def producer():
            yield cell.write_ef(42)
            yield bar.wait()

        def consumer():
            yield cell.read_fe()
            yield bar.wait()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert mon.finish() == []


def test_monitoring_restores_previous_monitor():
    sim = Simulator()
    outer = SyncMonitor()
    sim.monitor = outer
    with monitoring(sim):
        assert sim.monitor is not outer
    assert sim.monitor is outer


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------

@pytest.mark.parametrize("engine", ["des", "cohort"])
@pytest.mark.parametrize("fx", FIXTURES, ids=lambda f: f.name)
def test_every_fixture_is_flagged_with_expected_hazards(fx, engine):
    flagged, findings = fx.check(engine)
    assert flagged, (
        f"{fx.name} expected {sorted(fx.expected)}, got "
        f"{[f.render() for f in findings]}")
    assert findings  # never flagged vacuously


def test_fixture_verdicts_identical_across_engines():
    for fx in FIXTURES:
        des = fx.findings("des")
        cohort = fx.findings("cohort")
        assert [f.key for f in des] == [f.key for f in cohort], fx.name


def test_fixture_lookup():
    assert fixture_by_name("dropped-lock").expected == {"lock-discipline"}
    with pytest.raises(KeyError):
        fixture_by_name("no-such-fixture")


def test_skipped_writeef_names_the_stuck_cell():
    findings = fixture_by_name("skipped-writeef").run()
    by_hazard = {f.hazard: f for f in findings}
    assert by_hazard["read-from-empty"].location == "pipe[3]"


def test_barrier_mismatch_reports_party_shortfall():
    findings = fixture_by_name("barrier-mismatch").run()
    bm = next(f for f in findings if f.hazard == "barrier-mismatch")
    assert "3 of 4" in bm.detail
