"""Scale invariance: the pipeline's most important correctness property.

The harness runs the real kernels at a *reduced* scale and extrapolates
to paper scale.  If the extrapolation is right, the simulated times
must be (nearly) independent of the kernel scale used.  Residual drift
comes only from scenario statistics (different threat subsets, grid
quantization), so small tolerances apply.
"""

import pytest

from repro.harness import BenchmarkData


@pytest.fixture(scope="module")
def coarse():
    return BenchmarkData(threat_scale=0.01, terrain_scale=0.025)


@pytest.fixture(scope="module")
def fine():
    return BenchmarkData(threat_scale=0.03, terrain_scale=0.06)


def test_threat_sequential_time_scale_invariant(coarse, fine):
    t_c = coarse.alpha(coarse.threat_sequential_job())
    t_f = fine.alpha(fine.threat_sequential_job())
    assert t_c == pytest.approx(t_f, rel=0.06)


def test_threat_mta_time_scale_invariant(coarse, fine):
    t_c = coarse.run_mta(1, coarse.threat_chunked_job(256, "hw"))
    t_f = fine.run_mta(1, fine.threat_chunked_job(256, "hw"))
    assert t_c == pytest.approx(t_f, rel=0.06)


def test_terrain_sequential_time_scale_invariant(coarse, fine):
    t_c = coarse.exemplar(1, coarse.terrain_sequential_job())
    t_f = fine.exemplar(1, fine.terrain_sequential_job())
    assert t_c == pytest.approx(t_f, rel=0.12)


def test_terrain_mta_time_scale_invariant(coarse, fine):
    t_c = coarse.run_mta(2, coarse.terrain_finegrained_job())
    t_f = fine.run_mta(2, fine.terrain_finegrained_job())
    assert t_c == pytest.approx(t_f, rel=0.12)


def test_speedup_curves_scale_invariant(coarse, fine):
    """Not just totals: the *shape* (4-CPU PPro terrain speedup) must
    be stable under kernel scale."""
    def s4(data):
        t1 = data.ppro(1, data.terrain_blocked_job(1))
        t4 = data.ppro(4, data.terrain_blocked_job(4))
        return t1 / t4
    assert s4(coarse) == pytest.approx(s4(fine), rel=0.10)
