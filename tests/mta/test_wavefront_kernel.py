"""A miniature Terrain-Masking wavefront at cycle fidelity.

Bottom-up validation of the fine-grained Tera variant: the ring
recurrence (each cell reads its parent one ring in) is expressed with
real full/empty synchronization on the cycle-accurate simulator --
each cell's stream sync-reads its parent's cell and sync-writes its
own.  The test checks (a) the dataflow is correct whatever order the
hardware interleaves the streams, and (b) adding streams genuinely
overlaps rings, which is the mechanism behind Table 11.
"""

import pytest

from repro.mta import Instruction, MtaSpec, MtaSystem


def build_wavefront(n_rings: int, width: int, one_stream_per_cell: bool):
    """A synthetic wavefront: cell (r, w) depends on cell (r-1, w).

    Each cell's work: sync-read the parent value, 3 ALU ops, sync-write
    its own value (parent value + 1).  Address of cell (r, w) is
    ``(r * width + w) * 8``.  Ring 0 is pre-filled.
    """
    spec = MtaSpec(n_processors=1, lookahead=4, mem_latency_cycles=60.0)
    sys = MtaSystem(spec)
    for w in range(width):
        sys.memory.poke(w * 8, 0, full=True)

    def cell_program(r, w):
        parent_addr = ((r - 1) * width + w) * 8
        my_addr = (r * width + w) * 8
        return [
            Instruction("sync_load", addr=parent_addr),
            Instruction("alu", depends_on=0),
            Instruction("alu"),
            Instruction("alu"),
            # the parent's value is consumed; re-publish it for any
            # sibling readers, then publish our own cell
            Instruction("sync_store", addr=parent_addr, value=r - 1),
            Instruction("sync_store", addr=my_addr, value=r),
        ]

    streams = []
    if one_stream_per_cell:
        for r in range(1, n_rings):
            for w in range(width):
                streams.append(sys.add_stream(cell_program(r, w)))
    else:
        # one stream walks all cells in order (the sequential program)
        prog = []
        for r in range(1, n_rings):
            for w in range(width):
                prog.extend(cell_program(r, w))
        streams.append(sys.add_stream(prog))
    return sys, streams


@pytest.mark.parametrize("one_stream_per_cell", [False, True])
def test_wavefront_dataflow_correct(one_stream_per_cell):
    n_rings, width = 5, 6
    sys, _streams = build_wavefront(n_rings, width, one_stream_per_cell)
    stats = sys.run(max_cycles=2_000_000)
    assert stats.completed
    # every cell holds its ring index and is full again
    for r in range(n_rings):
        for w in range(width):
            addr = (r * width + w) * 8
            assert sys.memory.peek(addr) == r, (r, w)
            assert sys.memory.is_full(addr)


def test_wavefront_parallel_beats_sequential():
    n_rings, width = 5, 8
    seq_sys, _ = build_wavefront(n_rings, width, False)
    par_sys, _ = build_wavefront(n_rings, width, True)
    t_seq = seq_sys.run(max_cycles=5_000_000).cycles
    t_par = par_sys.run(max_cycles=5_000_000).cycles
    # within a ring all cells run concurrently: at least ~3x here
    assert t_par < t_seq / 3, (t_par, t_seq)


def test_wavefront_blocked_streams_cost_no_issue_slots():
    """Streams waiting on empty cells retry in the memory system, not
    in the issue pipeline: useful instructions still flow."""
    sys, _ = build_wavefront(6, 4, True)
    stats = sys.run(max_cycles=2_000_000)
    assert stats.completed
    assert stats.memory_retries > 0  # outer rings really did block
