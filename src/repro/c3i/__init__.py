"""The C3I Parallel Benchmark Suite subset used by the paper.

Two of the eight C3IPBS problems, implemented from their descriptions
in the paper (the original Rome Laboratory distribution is not
available):

* :mod:`repro.c3i.threat` -- **Threat Analysis**: a time-stepped
  simulation of incoming ballistic threats with computation of
  interception windows for each (threat, weapon) pair.
* :mod:`repro.c3i.terrain` -- **Terrain Masking**: maximum safe flight
  altitude over a terrain containing ground-based threats, via
  line-of-sight shadow propagation.

Each problem provides, mirroring the suite's structure: synthetic input
scenarios (five per problem, deterministic), an efficient sequential
program, the parallelized variants measured in the paper, a correctness
test, and workload extraction for the machine models.

Beyond the paper's two problems, :mod:`repro.c3i.sweeps` defines the
declarative factorial sweep grids (taskbench topology x size x machine
x seed) that scale the registry past hand-listed cells.
"""

__all__ = ["sweeps", "terrain", "threat"]
