"""Cycle-level MTA tests: the Section 2 / Section 7 micro-claims.

These validate the mechanisms the paper attributes its results to:
one instruction per 21 cycles per stream, saturation with tens of
streams, full/empty synchronization, bank conflicts.
"""

import pytest

from repro.mta import (
    Instruction,
    InterleavedMemory,
    MtaSpec,
    MtaSystem,
    alu_kernel,
    dependent_load_kernel,
    independent_load_kernel,
    load_use_kernel,
)
from repro.mta.memory import MemRequest


def small_spec(n_processors=1, lookahead=5, latency=140.0):
    return MtaSpec(n_processors=n_processors, lookahead=lookahead,
                   mem_latency_cycles=latency)


# ----------------------------------------------------------------------
# Instruction / Stream validation
# ----------------------------------------------------------------------

def test_instruction_validation():
    with pytest.raises(ValueError):
        Instruction("mul")
    with pytest.raises(ValueError):
        Instruction("load", addr=-4)
    with pytest.raises(ValueError):
        Instruction("alu", depends_on=-1)


def test_forward_dependence_rejected():
    sys = MtaSystem(small_spec())
    with pytest.raises(ValueError):
        sys.add_stream([Instruction("alu", depends_on=0)])


def test_stream_capacity_enforced():
    spec = MtaSpec(n_processors=1, streams_per_processor=2)
    sys = MtaSystem(spec)
    sys.add_stream(alu_kernel(1))
    sys.add_stream(alu_kernel(1))
    with pytest.raises(ValueError):
        sys.add_stream(alu_kernel(1))


# ----------------------------------------------------------------------
# The 21-cycle issue interval (the 5%-utilization claim)
# ----------------------------------------------------------------------

def test_single_stream_issues_one_per_21_cycles():
    sys = MtaSystem(small_spec())
    n = 100
    sys.add_stream(alu_kernel(n))
    stats = sys.run()
    assert stats.completed
    # n instructions, one per 21 cycles: ~21*(n-1)+1 cycles
    assert stats.cycles == pytest.approx(21 * (n - 1) + 1, abs=2)
    assert stats.utilization == pytest.approx(1 / 21, rel=0.05)


def test_two_streams_double_throughput():
    sys = MtaSystem(small_spec())
    n = 100
    sys.add_stream(alu_kernel(n))
    sys.add_stream(alu_kernel(n))
    stats = sys.run()
    assert stats.utilization == pytest.approx(2 / 21, rel=0.05)


def test_21_streams_saturate_alu_processor():
    sys = MtaSystem(small_spec())
    for _ in range(21):
        sys.add_stream(alu_kernel(50))
    stats = sys.run()
    assert stats.utilization > 0.95


def test_utilization_monotonic_in_streams():
    utils = []
    for n_streams in (1, 4, 8, 16, 32):
        sys = MtaSystem(small_spec())
        for _ in range(n_streams):
            sys.add_stream(alu_kernel(40))
        utils.append(sys.run().utilization)
    assert utils == sorted(utils)
    assert utils[-1] > 0.9


# ----------------------------------------------------------------------
# Memory latency, lookahead, and the ~80-streams claim
# ----------------------------------------------------------------------

def test_independent_loads_hidden_by_lookahead():
    """With lookahead, independent loads issue at the 21-cycle pace."""
    sys = MtaSystem(small_spec(lookahead=8))
    n = 50
    # spread addresses across banks to avoid conflicts
    sys.add_stream(independent_load_kernel(n, stride=8))
    stats = sys.run()
    # issue-bound: ~21 cycles/instr, plus the final load's latency tail
    assert stats.cycles < 21 * n + 200


def test_dependent_loads_pay_full_latency():
    """A pointer chase cannot be overlapped: latency per load."""
    latency = 140.0
    sys = MtaSystem(small_spec(latency=latency))
    n = 20
    sys.add_stream(dependent_load_kernel(n, stride=8))
    stats = sys.run()
    # each load waits for the previous completion: >= n * latency
    assert stats.cycles >= n * latency * 0.95


def test_load_use_stream_is_slower_than_alu_stream():
    sys_alu = MtaSystem(small_spec())
    sys_alu.add_stream(alu_kernel(40))
    t_alu = sys_alu.run().cycles

    sys_mem = MtaSystem(small_spec(lookahead=1, latency=140))
    sys_mem.add_stream(load_use_kernel(20))  # also 40 instructions
    t_mem = sys_mem.run().cycles
    assert t_mem > t_alu


def test_memory_bound_kernel_needs_about_80_streams():
    """Section 7: ~80 concurrent threads for full utilization of one
    processor on typical (load-use) code."""
    def util(n_streams):
        sys = MtaSystem(small_spec(lookahead=1, latency=80.0))
        for s in range(n_streams):
            # distinct address ranges: no bank conflicts between streams
            sys.add_stream(load_use_kernel(30, base=s * 100_000))
        return sys.run().utilization

    u20 = util(20)
    u80 = util(80)
    assert u20 < 0.55          # far from saturated at 20 streams
    assert u80 > 0.90          # ~saturated at 80


# ----------------------------------------------------------------------
# Multi-processor issue independence
# ----------------------------------------------------------------------

def test_two_processors_issue_independently():
    sys = MtaSystem(small_spec(n_processors=2))
    for p in (0, 1):
        for _ in range(21):
            sys.add_stream(alu_kernel(50), processor=p)
    stats = sys.run()
    assert stats.per_processor_utilization[0] > 0.9
    assert stats.per_processor_utilization[1] > 0.9
    assert stats.total_issued == 2 * 21 * 50


# ----------------------------------------------------------------------
# Full/empty memory semantics
# ----------------------------------------------------------------------

def test_store_then_load_round_trip():
    sys = MtaSystem(small_spec())
    sys.add_stream([
        Instruction("store", addr=64, value=123),
        Instruction("load", addr=64, depends_on=0),
    ])
    stats = sys.run()
    assert stats.completed
    stream = sys._streams[0][0]
    assert stream.results[1] == 123


def test_sync_load_blocks_until_sync_store():
    """Producer/consumer through a full/empty word."""
    sys = MtaSystem(small_spec())
    consumer = sys.add_stream([Instruction("sync_load", addr=8)])
    # producer does some work first, then writes
    producer_prog = alu_kernel(10) + [
        Instruction("sync_store", addr=8, value="payload")]
    sys.add_stream(producer_prog)
    stats = sys.run()
    assert stats.completed
    assert consumer.results[0] == "payload"
    assert stats.memory_retries > 0  # the consumer had to retry
    assert not sys.memory.is_full(8)  # sync_load emptied the cell


def test_sync_store_blocks_until_empty():
    mem = InterleavedMemory(n_banks=4, latency_cycles=10)
    mem.poke(0, "old", full=True)
    sys = MtaSystem(small_spec(), memory=mem)
    writer = sys.add_stream([Instruction("sync_store", addr=0, value="new")])
    reader_prog = alu_kernel(5) + [Instruction("sync_load", addr=0,
                                               depends_on=None)]
    reader = sys.add_stream(reader_prog)
    stats = sys.run()
    assert stats.completed
    assert reader.results[5] == "old"
    assert mem.peek(0) == "new"
    assert writer.done


def test_bank_conflicts_serialize():
    """Two processors hammering one bank queue up; spreading the
    references across banks removes the conflicts.

    A single processor can never conflict (it issues at most one memory
    reference per cycle and a bank turns around in one cycle), which is
    the point of 64-way interleaving.
    """
    def run(spread_banks):
        sys = MtaSystem(small_spec(n_processors=2, lookahead=8))
        for s in range(32):
            addr = s if spread_banks else 0  # bank = addr % 64
            sys.add_stream([Instruction("load", addr=addr)
                            for _ in range(10)],
                           processor=s % 2)
        return sys.run()

    conflicted = run(spread_banks=False)
    spread = run(spread_banks=True)
    assert conflicted.stats["bank_conflict_cycles"] > 0
    assert spread.stats["bank_conflict_cycles"] == 0
    assert conflicted.cycles >= spread.cycles


def test_max_cycles_cutoff_reports_incomplete():
    sys = MtaSystem(small_spec())
    sys.add_stream(alu_kernel(1000))
    stats = sys.run(max_cycles=100)
    assert not stats.completed


# ----------------------------------------------------------------------
# InterleavedMemory direct tests
# ----------------------------------------------------------------------

def test_memory_validation():
    with pytest.raises(ValueError):
        InterleavedMemory(n_banks=0)
    with pytest.raises(ValueError):
        InterleavedMemory(latency_cycles=0)
    with pytest.raises(ValueError):
        InterleavedMemory(retry_interval_cycles=0)
    mem = InterleavedMemory()
    with pytest.raises(ValueError):
        mem.word(-1)


def test_memory_plain_ops():
    mem = InterleavedMemory(n_banks=4, latency_cycles=10)
    got = []
    done = mem.issue(MemRequest("store", addr=4, value=7), cycle=0)
    assert done == pytest.approx(10.0)
    done2 = mem.issue(
        MemRequest("load", addr=4,
                   on_complete=lambda t, v: got.append((t, v))),
        cycle=20)
    assert done2 == pytest.approx(30.0)
    assert got == [(30.0, 7)]
    assert mem.is_full(4)  # store set the tag


def test_memory_rejects_non_memory_kind():
    mem = InterleavedMemory()
    with pytest.raises(ValueError):
        mem.issue(MemRequest("alu", addr=0), cycle=0)
