"""Behavioural tests for the ConventionalMachine model.

These check the *mechanisms* (compute scaling, bus saturation, lock
serialization, thread-creation overhead) on synthetic workloads; the
paper-shape integration tests live in tests/integration/.
"""

import pytest

from repro.machines import (
    CacheSpec,
    ConventionalMachine,
    CoreSpec,
    MachineSpec,
    MemSpec,
    ThreadCosts,
)
from repro.workload import (
    JobBuilder,
    OpCounts,
    ThreadProgramBuilder,
    make_phase,
    single_thread_job,
)


def toy_spec(n_cpus=4, bandwidth=100e6, clock=100e6, latency=320e-9):
    return MachineSpec(
        name=f"toy-{n_cpus}",
        n_cpus=n_cpus,
        core=CoreSpec(clock_hz=clock,
                      op_cycles={"ialu": 1.0, "falu": 1.0, "load": 1.0,
                                 "store": 1.0, "branch": 1.0, "sync": 10.0}),
        cache=CacheSpec(capacity_bytes=64 * 1024, line_bytes=64, assoc=4),
        mem=MemSpec(bandwidth_bytes_per_s=bandwidth, miss_latency_s=latency),
        thread_costs={
            "os": ThreadCosts(create_cycles=10_000.0, sync_cycles=100.0),
            "sw": ThreadCosts(create_cycles=1_000.0, sync_cycles=50.0),
        },
    )


def compute_phase(name, cycles, clock=100e6):
    """A pure-compute phase costing `cycles` cycles."""
    return make_phase(name, OpCounts(ialu=cycles))


def memory_phase(name, mbytes):
    """A streaming phase touching `mbytes` MB with no reuse."""
    n = mbytes * 1024 * 1024 / 8
    return make_phase(name, OpCounts(load=n),
                      unique_bytes=mbytes * 1024 * 1024)


def chunked_job(phase, n_threads):
    threads = [
        ThreadProgramBuilder(f"t{i}").phase(p).build()
        for i, p in enumerate(phase.split(n_threads))
    ]
    return JobBuilder("job").parallel(threads).build()


# ----------------------------------------------------------------------
# Sequential execution
# ----------------------------------------------------------------------

def test_sequential_compute_time():
    m = ConventionalMachine(toy_spec())
    job = single_thread_job("seq", [compute_phase("p", 200e6)])
    res = m.run(job)
    # 200e6 cycles at 100 MHz = 2.0 s
    assert res.seconds == pytest.approx(2.0, rel=1e-6)
    assert res.n_threads_peak == 1


def test_sequential_memory_time_latency_bound():
    spec = toy_spec(bandwidth=1e9, latency=640e-9)  # bus not a limit
    m = ConventionalMachine(spec)
    job = single_thread_job("seq", [memory_phase("p", 10)])
    res = m.run(job)
    # per-CPU ceiling = 64B / 640ns = 100 MB/s -> 10 MB takes 0.1048576 s
    expected_mem = 10 * 1024 * 1024 / (64 / 640e-9)
    compute = (10 * 1024 * 1024 / 8) / 100e6
    assert res.seconds == pytest.approx(expected_mem + compute, rel=0.01)


def test_seconds_scale_linearly_with_work():
    m = ConventionalMachine(toy_spec())
    t1 = m.run(single_thread_job("a", [compute_phase("p", 100e6)])).seconds
    t2 = m.run(single_thread_job("b", [compute_phase("p", 300e6)])).seconds
    assert t2 == pytest.approx(3 * t1, rel=1e-6)


# ----------------------------------------------------------------------
# Parallel compute scaling
# ----------------------------------------------------------------------

def test_compute_bound_scales_linearly():
    phase = compute_phase("work", 400e6)
    times = {}
    for n in (1, 2, 4):
        m = ConventionalMachine(toy_spec(n_cpus=4))
        times[n] = m.run(chunked_job(phase, n)).seconds
    assert times[1] / times[2] == pytest.approx(2.0, rel=0.02)
    assert times[1] / times[4] == pytest.approx(4.0, rel=0.02)


def test_more_threads_than_cpus_timeslice():
    phase = compute_phase("work", 400e6)
    m = ConventionalMachine(toy_spec(n_cpus=2))
    t2 = m.run(chunked_job(phase, 2)).seconds
    t8 = m.run(chunked_job(phase, 8)).seconds
    # 8 threads on 2 CPUs is no faster than 2 threads on 2 CPUs
    assert t8 >= t2 * 0.999


def test_thread_creation_overhead_visible():
    # tiny work, many threads: creation dominates
    phase = compute_phase("work", 1e4)
    m = ConventionalMachine(toy_spec(n_cpus=4))
    t64 = m.run(chunked_job(phase, 64)).seconds
    t4 = m.run(chunked_job(phase, 4)).seconds
    assert t64 > t4 * 3  # 64 x 10k create cycles swamp the work


# ----------------------------------------------------------------------
# Bus saturation (the Terrain Masking effect)
# ----------------------------------------------------------------------

def test_memory_bound_saturates_on_shared_bus():
    # per-CPU ceiling 64B/320ns = 200 MB/s; shared bus only 300 MB/s.
    phase = memory_phase("stream", 64)
    times = {}
    for n in (1, 2, 4):
        m = ConventionalMachine(toy_spec(n_cpus=4, bandwidth=300e6))
        times[n] = m.run(chunked_job(phase, n)).seconds
    s2 = times[1] / times[2]
    s4 = times[1] / times[4]
    assert s2 < 2.0
    assert s4 < 2.6          # nowhere near ideal 4.0
    assert s4 >= s2          # but not *worse* with more CPUs


def test_compute_bound_ignores_weak_bus():
    phase = compute_phase("work", 400e6)
    m_weak = ConventionalMachine(toy_spec(n_cpus=4, bandwidth=50e6))
    m_strong = ConventionalMachine(toy_spec(n_cpus=4, bandwidth=1e9))
    t_weak = m_weak.run(chunked_job(phase, 4)).seconds
    t_strong = m_strong.run(chunked_job(phase, 4)).seconds
    assert t_weak == pytest.approx(t_strong, rel=0.01)


def test_bus_utilization_reported():
    phase = memory_phase("stream", 64)
    m = ConventionalMachine(toy_spec(n_cpus=4, bandwidth=300e6))
    res = m.run(chunked_job(phase, 4))
    assert res.bus_utilization > 0.8  # saturated
    res2 = ConventionalMachine(toy_spec(n_cpus=4)).run(
        single_thread_job("s", [compute_phase("p", 1e6)]))
    assert res2.bus_utilization == 0.0


# ----------------------------------------------------------------------
# Locks
# ----------------------------------------------------------------------

def test_critical_sections_serialize():
    spec = toy_spec(n_cpus=4)
    inner = make_phase("cs", OpCounts(ialu=100e6))
    threads = [
        ThreadProgramBuilder(f"t{i}")
        .critical_phase("the-lock", inner)
        .build()
        for i in range(4)
    ]
    job = JobBuilder("locked").parallel(threads).build()
    res = ConventionalMachine(spec).run(job)
    # 4 x 1s critical sections on one lock: fully serialized ~4s
    assert res.seconds == pytest.approx(4.0, rel=0.05)
    assert res.lock_wait_seconds > 5.0  # 1+2+3 seconds of waiting


def test_disjoint_locks_do_not_serialize():
    spec = toy_spec(n_cpus=4)
    inner = make_phase("cs", OpCounts(ialu=100e6))
    threads = [
        ThreadProgramBuilder(f"t{i}")
        .critical_phase(f"lock-{i}", inner)
        .build()
        for i in range(4)
    ]
    job = JobBuilder("disjoint").parallel(threads).build()
    res = ConventionalMachine(spec).run(job)
    assert res.seconds == pytest.approx(1.0, rel=0.05)
    assert res.lock_wait_seconds == 0.0


# ----------------------------------------------------------------------
# Work queue regions
# ----------------------------------------------------------------------

def test_work_queue_dynamic_balancing():
    spec = toy_spec(n_cpus=4)
    # 16 items of uneven size: dynamic scheduling balances them
    items = [
        ThreadProgramBuilder(f"item{i}")
        .phase(compute_phase("w", 25e6 * (1 + (i % 3))))
        .build_work_item()
        for i in range(16)
    ]
    job = JobBuilder("queue").work_queue(items, n_threads=4).build()
    res = ConventionalMachine(spec).run(job)
    total_cycles = sum(25e6 * (1 + (i % 3)) for i in range(16))
    ideal = total_cycles / (4 * 100e6)
    assert res.seconds < ideal * 1.25
    assert res.n_threads_peak == 4


def test_work_queue_single_thread_processes_all():
    spec = toy_spec(n_cpus=4)
    items = [
        ThreadProgramBuilder(f"item{i}")
        .phase(compute_phase("w", 50e6))
        .build_work_item()
        for i in range(4)
    ]
    job = JobBuilder("queue1").work_queue(items, n_threads=1).build()
    res = ConventionalMachine(spec).run(job)
    assert res.seconds == pytest.approx(4 * 0.5, rel=0.02)


# ----------------------------------------------------------------------
# Fine-grained parallelism on a conventional machine
# ----------------------------------------------------------------------

def test_fine_grained_ignored_by_default():
    spec = toy_spec(n_cpus=4)
    p = make_phase("fg", OpCounts(ialu=400e6), parallelism=100)
    res = ConventionalMachine(spec).run(single_thread_job("fg", [p]))
    assert res.seconds == pytest.approx(4.0, rel=0.01)  # one CPU


def test_fine_grained_exploited_pays_creation():
    spec = toy_spec(n_cpus=4)
    p = make_phase("fg", OpCounts(ialu=400e6), parallelism=100)
    res = ConventionalMachine(spec, exploit_fine_grained=True).run(
        single_thread_job("fg", [p]))
    # work spreads over 4 CPUs (1s) but pays 100 x 1000 create cycles
    assert res.seconds < 4.0
    assert res.seconds > 1.0


def test_fine_grained_tiny_work_is_a_disaster_on_smp():
    """The paper's point: inner-loop threading on an SMP loses badly.

    1e5 cycles of work split 1000 ways: each strand's work (100 cycles)
    is dwarfed by its creation cost (1000 cycles), and the parent pays
    the creation serially.
    """
    spec = toy_spec(n_cpus=4)
    p = make_phase("fg", OpCounts(ialu=1e5), parallelism=1000)
    serial = ConventionalMachine(spec).run(
        single_thread_job("s", [make_phase("s", OpCounts(ialu=1e5))]))
    fine = ConventionalMachine(spec, exploit_fine_grained=True).run(
        single_thread_job("fg", [p]))
    assert fine.seconds > 5 * serial.seconds


# ----------------------------------------------------------------------
# serial_cycles
# ----------------------------------------------------------------------

def test_serial_cycles_add_unoverlapped_latency():
    spec = toy_spec()
    p = make_phase("p", OpCounts(ialu=100e6), serial_cycles=50e6)
    res = ConventionalMachine(spec).run(single_thread_job("s", [p]))
    assert res.seconds == pytest.approx(1.5, rel=0.01)


def test_invalid_slices_rejected():
    with pytest.raises(ValueError):
        ConventionalMachine(toy_spec(), slices_per_phase=0)
