"""Parallel experiment execution.

The registry's experiments are independent of each other (they share
only the read-only :class:`BenchmarkData` kernels and the persistent
result cache), so ``python -m repro all`` / ``report`` can fan them out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker
process builds its own ``BenchmarkData`` (the kernels are cheap; the
simulations are not) and shares simulation results with every other
worker through the on-disk cache, so even a cold parallel run does not
duplicate the expensive work that experiments have in common.

``run_experiments`` also collects a per-experiment profile (wall time
and cache hit/miss counts) for the CLI's ``--profile`` flag.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.harness import store
from repro.harness.experiment import ExperimentResult
from repro.harness.registry import EXPERIMENT_IDS, run_experiment
from repro.harness.runner import BenchmarkData, default_data


@dataclass(frozen=True)
class ExperimentProfile:
    """Cost accounting for one experiment run."""

    experiment_id: str
    wall_seconds: float
    cache_hits: int
    cache_misses: int


def _cache_counters() -> tuple[int, int]:
    cache = store.active_cache()
    if cache is None:
        return (0, 0)
    return (cache.hits, cache.misses)


def _run_one(experiment_id: str, threat_scale: float,
             terrain_scale: float) -> tuple[ExperimentResult,
                                            ExperimentProfile]:
    """Worker body: run one experiment and account for it.

    Top-level (picklable) for ProcessPoolExecutor.  ``default_data`` is
    lru-cached per process, so a worker reuses its kernels across every
    experiment it is handed.  Tasks run sequentially within a worker,
    so counter deltas around the run are that experiment's hits/misses.
    """
    h0, m0 = _cache_counters()
    t0 = time.perf_counter()
    result = run_experiment(
        experiment_id, default_data(threat_scale, terrain_scale))
    wall = time.perf_counter() - t0
    h1, m1 = _cache_counters()
    return result, ExperimentProfile(
        experiment_id=experiment_id, wall_seconds=wall,
        cache_hits=h1 - h0, cache_misses=m1 - m0)


def run_experiments(
    experiment_ids: Optional[Iterable[str]] = None,
    *,
    threat_scale: float,
    terrain_scale: float,
    jobs: Optional[int] = None,
    data: Optional[BenchmarkData] = None,
) -> tuple[dict[str, ExperimentResult], list[ExperimentProfile]]:
    """Run experiments, in parallel when ``jobs > 1``.

    Results come back keyed by id in the requested order regardless of
    completion order.  ``jobs=None`` uses the CPU count; ``jobs=1``
    runs serially in-process (sharing ``data`` when given, so tests and
    the single-core path pay no pickling or re-kerneling cost).
    """
    ids: Sequence[str] = tuple(experiment_ids or EXPERIMENT_IDS)
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(ids)))

    if jobs == 1:
        if data is None:
            data = default_data(threat_scale, terrain_scale)
        results: dict[str, ExperimentResult] = {}
        profiles: list[ExperimentProfile] = []
        for eid in ids:
            h0, m0 = _cache_counters()
            t0 = time.perf_counter()
            results[eid] = run_experiment(eid, data)
            wall = time.perf_counter() - t0
            h1, m1 = _cache_counters()
            profiles.append(ExperimentProfile(
                experiment_id=eid, wall_seconds=wall,
                cache_hits=h1 - h0, cache_misses=m1 - m0))
        return results, profiles

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {eid: pool.submit(_run_one, eid, threat_scale,
                                    terrain_scale)
                   for eid in ids}
        pairs = {eid: fut.result() for eid, fut in futures.items()}
    return ({eid: pairs[eid][0] for eid in ids},
            [pairs[eid][1] for eid in ids])


def render_profile(profiles: list[ExperimentProfile]) -> str:
    """The ``--profile`` table (per-experiment wall + cache traffic)."""
    lines = [
        f"{'experiment':<26} {'wall (s)':>9} {'cache hits':>11} "
        f"{'misses':>7}",
        "-" * 56,
    ]
    for p in profiles:
        lines.append(f"{p.experiment_id:<26} {p.wall_seconds:>9.2f} "
                     f"{p.cache_hits:>11d} {p.cache_misses:>7d}")
    lines.append("-" * 56)
    lines.append(
        f"{'total':<26} {sum(p.wall_seconds for p in profiles):>9.2f} "
        f"{sum(p.cache_hits for p in profiles):>11d} "
        f"{sum(p.cache_misses for p in profiles):>7d}")
    return "\n".join(lines)
