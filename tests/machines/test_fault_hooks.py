"""Micro-level fault hooks on the conventional machines: cache-way
degradation and memory-latency inflation."""

import pytest

from repro.machines.cache import SetAssociativeCache
from repro.machines.catalog import get_machine_spec
from repro.machines.cycle import InOrderCore, resident_kernel


def small_cache(assoc=4):
    return SetAssociativeCache(capacity_bytes=assoc * 16 * 64,
                               line_bytes=64, assoc=assoc)


# ----------------------------------------------------------------------
# Cache-way degradation
# ----------------------------------------------------------------------

def test_degrade_ways_caps_associativity():
    c = small_cache(assoc=4)
    c.degrade_ways(2)
    assert c.effective_assoc == 2
    # fill one set with 4 distinct lines mapping to set 0
    span = c.n_sets * c.line_bytes
    for i in range(4):
        c.access(i * span)
    # only 2 can be resident
    assert len(c._sets[0]) == 2


def test_degrade_ways_drops_resident_lines():
    c = small_cache(assoc=4)
    span = c.n_sets * c.line_bytes
    for i in range(4):
        c.access(i * span)
    c.degrade_ways(3)
    # the 3 least-recently-used lines were dropped; only the MRU
    # survives
    c.reset_stats()
    c.access(3 * span)
    assert c.hits == 1
    c.access(0)
    assert c.misses == 1


def test_degrade_ways_keeps_one_way():
    c = small_cache(assoc=4)
    c.degrade_ways(99)
    assert c.effective_assoc == 1
    c.restore_ways()
    assert c.effective_assoc == 4


def test_degrade_ways_increases_miss_rate():
    def misses(degraded):
        c = small_cache(assoc=4)
        if degraded:
            c.degrade_ways(3)
        span = c.n_sets * c.line_bytes
        # round-robin over 3 lines of one set: fits in 4 ways, not in 1
        for i in range(60):
            c.access((i % 3) * span)
        return c.misses

    assert misses(True) > misses(False)


def test_degrade_ways_validation():
    c = small_cache()
    with pytest.raises(ValueError):
        c.degrade_ways(-1)


# ----------------------------------------------------------------------
# Memory-latency inflation
# ----------------------------------------------------------------------

def test_latency_factor_inflates_miss_penalty():
    spec = get_machine_spec("exemplar")
    healthy = InOrderCore(spec)
    faulted = InOrderCore(spec, latency_factor=3.0)
    assert faulted.miss_penalty == pytest.approx(3 * healthy.miss_penalty)


def test_inflate_latency_slows_misses_only():
    spec = get_machine_spec("exemplar")
    # footprint larger than the cache => every pass misses
    big = int(spec.cache.capacity_bytes * 4)
    trace = resident_kernel(2000, footprint_bytes=big, stride=64)
    healthy = InOrderCore(spec).run(trace)
    faulted_core = InOrderCore(spec)
    faulted_core.inflate_latency(2.0)
    faulted = faulted_core.run(trace)
    assert faulted.cache_misses == healthy.cache_misses
    assert faulted.stall_cycles == pytest.approx(2 * healthy.stall_cycles)
    assert faulted.cycles > healthy.cycles


def test_latency_factor_validation():
    spec = get_machine_spec("exemplar")
    with pytest.raises(ValueError):
        InOrderCore(spec, latency_factor=0.5)
    core = InOrderCore(spec)
    with pytest.raises(ValueError):
        core.inflate_latency(0.9)
