"""Program 2: the chunked multithreaded Threat Analysis program.

The outer loop over threats becomes a multithreaded loop over chunks
(contiguous threat subranges, first/last per the paper's formula); each
chunk appends to its own section of the (oversized) intervals array
with its own counter, so the chunks are completely independent.

Run here as a deterministic semantic execution: each chunk's work is
computed independently (in any order -- we do it chunk by chunk) and
the per-chunk outputs are kept separate exactly as the restructured
program keeps them.  Timing comes from the machine models via
:mod:`repro.c3i.threat.workload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.c3i.threat.model import (
    Interval,
    pair_intervals,
    precheck_in_range,
    threat_positions,
)
from repro.c3i.threat.scenarios import Scenario


@dataclass
class ChunkedResult:
    """Per-chunk outputs and statistics for one scenario."""

    scenario: int
    n_chunks: int
    #: intervals[chunk] -- each chunk's private output section
    intervals_per_chunk: list[list[Interval]] = field(default_factory=list)
    #: per-chunk structural work (drives simulated imbalance)
    steps_per_chunk: list[int] = field(default_factory=list)
    pairs_per_chunk: list[int] = field(default_factory=list)

    @property
    def merged_intervals(self) -> list[Interval]:
        """Chunk sections concatenated in chunk order.  Because chunks
        are contiguous threat ranges, this equals the sequential order."""
        out: list[Interval] = []
        for sec in self.intervals_per_chunk:
            out.extend(sec)
        return out

    @property
    def n_intervals(self) -> int:
        return sum(len(s) for s in self.intervals_per_chunk)

    @property
    def imbalance(self) -> float:
        """max/mean of per-chunk work (1.0 = perfectly balanced)."""
        work = [s for s in self.steps_per_chunk]
        nonzero = [w for w in work if w > 0]
        if not nonzero:
            return 1.0
        mean = sum(work) / len(work)
        return max(work) / mean if mean > 0 else 1.0


def chunk_bounds(n_threats: int, n_chunks: int, chunk: int
                 ) -> tuple[int, int]:
    """Program 2's subrange: [first_threat, last_threat] inclusive."""
    first = (chunk * n_threats) // n_chunks
    last = ((chunk + 1) * n_threats) // n_chunks - 1
    return first, last


def run_chunked(scenario: Scenario, n_chunks: int) -> ChunkedResult:
    """Execute Program 2 on one scenario."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    result = ChunkedResult(scenario=scenario.index, n_chunks=n_chunks)
    for chunk in range(n_chunks):
        first, last = chunk_bounds(scenario.n_threats, n_chunks, chunk)
        section: list[Interval] = []
        steps = 0
        pairs = 0
        for t_idx in range(first, last + 1):
            threat = scenario.threats[t_idx]
            times, positions = threat_positions(threat, scenario.n_steps)
            for w_idx, weapon in enumerate(scenario.weapons):
                if not precheck_in_range(threat, weapon):
                    continue
                section.extend(
                    pair_intervals(times, positions, weapon, t_idx, w_idx))
                pairs += 1
                steps += scenario.n_steps
        result.intervals_per_chunk.append(section)
        result.steps_per_chunk.append(steps)
        result.pairs_per_chunk.append(pairs)
    return result
