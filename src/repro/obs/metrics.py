"""Per-region and per-resource metric rollups.

The machine models record one :class:`RegionMetric` per job step via a
:class:`MachineMetrics` collector, plus aggregated lock-contention
summaries, and fold the result into ``RunResult.stats``.  Both
execution engines feed the same fields through the same arithmetic --
the cohort fast path from :class:`~repro.des.batch.CohortEngine` lock
states, the DES path from :class:`~repro.des.resources.Resource`
counters -- so for a homogeneous region the two report identical
numbers (within the engines' 1e-9 equivalence tolerance).

Lock *convoy* statistics follow one formula in both engines: at each
contended acquire, the queue depth seen by the arriving thread
(``len(queue) + 1``) updates a running maximum and a power-of-two
histogram bucketed by ``1 << (depth.bit_length() - 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.batch import CohortEngine
    from repro.des.resources import Resource
    from repro.obs.trace import TraceRecorder


@dataclass(frozen=True)
class RegionMetric:
    """Wall-clock span of one job step on one engine."""

    label: str
    kind: str        # "serial" | "parallel"
    engine: str      # "cohort" | "des"
    start: float
    end: float
    n_threads: int = 1

    @property
    def wall(self) -> float:
        return self.end - self.start


class MachineMetrics:
    """Collects region spans during one machine run.

    When a tracer is attached, every recorded region is also emitted
    as a trace record, so the metrics rollup and the Chrome trace
    always agree on region boundaries.
    """

    __slots__ = ("regions", "tracer")

    def __init__(self, tracer: Optional["TraceRecorder"] = None):
        self.regions: list[RegionMetric] = []
        self.tracer = tracer

    def region(self, kind: str, engine: str, label: str, start: float,
               end: float, n_threads: int = 1) -> None:
        self.regions.append(
            RegionMetric(label, kind, engine, start, end, n_threads))
        tr = self.tracer
        if tr is not None:
            tr.region(start, end, label, engine, n_threads)

    def rollup(self) -> dict[str, float]:
        """Aggregate step spans into ``RunResult.stats`` fields."""
        serial = 0.0
        parallel = 0.0
        for r in self.regions:
            if r.kind == "serial":
                serial += r.end - r.start
            else:
                parallel += r.end - r.start
        return {
            "serial_wall_seconds": serial,
            "region_wall_seconds": parallel,
        }


# ----------------------------------------------------------------------
# lock contention summaries
# ----------------------------------------------------------------------
def lock_summary_from_engine(engine: "CohortEngine") -> dict:
    """Aggregate a cohort engine's per-lock states into one summary."""
    waits = 0
    wait_time = 0.0
    convoy = 0
    hist: dict[int, int] = {}
    for lk in engine.locks.values():
        waits += lk.waits
        wait_time += lk.wait_time
        if lk.max_depth > convoy:
            convoy = lk.max_depth
        for b, c in lk.hist.items():
            hist[b] = hist.get(b, 0) + c
    return {"waits": waits, "wait_time": wait_time, "convoy_max": convoy,
            "hist": hist}


def lock_summary_from_resources(resources: Iterable["Resource"]) -> dict:
    """Aggregate DES :class:`Resource` contention counters likewise."""
    waits = 0
    wait_time = 0.0
    convoy = 0
    hist: dict[int, int] = {}
    for res in resources:
        waits += res.total_waits
        wait_time += res.total_wait_time
        if res.max_queue_depth > convoy:
            convoy = res.max_queue_depth
        for b, c in res.queue_depth_hist.items():
            hist[b] = hist.get(b, 0) + c
    return {"waits": waits, "wait_time": wait_time, "convoy_max": convoy,
            "hist": hist}


def merge_lock_summaries(into: dict, other: dict) -> dict:
    """Accumulate ``other`` into ``into`` (in place) and return it."""
    into["waits"] = into.get("waits", 0) + other["waits"]
    into["wait_time"] = into.get("wait_time", 0.0) + other["wait_time"]
    if other["convoy_max"] > into.get("convoy_max", 0):
        into["convoy_max"] = other["convoy_max"]
    hist = into.setdefault("hist", {})
    for b, c in other.get("hist", {}).items():
        hist[b] = hist.get(b, 0) + c
    return into


def hist_fields(hist: dict[int, int],
                prefix: str = "lock_convoy_hist_") -> dict[str, float]:
    """Flatten a depth histogram into float-valued stats keys."""
    return {f"{prefix}{b}": float(c) for b, c in sorted(hist.items())}


# ----------------------------------------------------------------------
# simulation-record rollups
# ----------------------------------------------------------------------

#: ``RunResult.stats`` keys summed by :func:`rollup_records`, mapped to
#: their rollup field names.  ``lock_convoy_max`` is maxed, not summed.
_SUMMED_STATS = (
    ("cohort_regions", "cohort_regions"),
    ("des_regions", "des_regions"),
    ("closed_form_regions", "closed_form_regions"),
    ("queue_solver_regions", "queue_solver_regions"),
    ("cohort_drained_grants", "drained_grants"),
    ("cohort_stepped_grants", "stepped_grants"),
    ("region_wall_seconds", "region_wall_seconds"),
    ("serial_wall_seconds", "serial_wall_seconds"),
    ("lock_wait_time", "lock_wait_seconds"),
)


def new_rollup() -> dict:
    """A zeroed engine-choice totals dict (see :func:`rollup_add`)."""
    totals: dict = {"sim_runs": 0, "simulated_seconds": 0.0}
    totals.update((out, 0.0) for _, out in _SUMMED_STATS)
    totals["lock_convoy_max"] = 0.0
    return totals


def rollup_add(totals: dict, rec: dict) -> dict:
    """Fold one simulation record into ``totals`` (in place).

    Exposed separately from :func:`rollup_records` so long-lived
    consumers -- the run-directory writer under a service session that
    streams millions of cells -- can keep a running rollup instead of
    retaining every record in memory.
    """
    stats = rec.get("stats") or {}
    totals["sim_runs"] += 1
    totals["simulated_seconds"] += float(rec.get("seconds") or 0.0)
    for key, out in _SUMMED_STATS:
        totals[out] += stats.get(key, 0.0)
    convoy = stats.get("lock_convoy_max", 0.0)
    if convoy > totals["lock_convoy_max"]:
        totals["lock_convoy_max"] = convoy
    return totals


def rollup_records(records: Iterable[dict]) -> dict:
    """Aggregate simulation records into engine-choice totals.

    A *record* is one ``BenchmarkData.metrics_log`` entry
    (kind/machine/job/seconds/stats).  One arithmetic serves every
    consumer -- the ``repro all --metrics`` table, the per-experiment
    rollups stored in ``report.json``, and the run manifest's
    ``engine_stats`` -- so the stored trajectory and the live CLI can
    never drift apart.
    """
    totals = new_rollup()
    for rec in records:
        rollup_add(totals, rec)
    return totals


# ----------------------------------------------------------------------
# service request-level counters and latency quantiles
# ----------------------------------------------------------------------

@dataclass
class ServiceCounters:
    """Request-level counters for the simulation service.

    Incremented by the job server (:mod:`repro.service.server`) and its
    batcher as traffic flows; snapshotted into ``stats`` protocol
    responses, the service run manifest, and the load generator's
    ``BENCH_service.json``.  ``dedupe_cached`` counts cells answered
    from the content-addressed result cache, ``dedupe_inflight`` cells
    coalesced onto an identical cell already executing, and
    ``engine_cells`` the cells that actually reached an engine run --
    ``cells == dedupe_cached + dedupe_inflight + engine_cells`` holds
    at every quiescent point.
    """

    connections: int = 0
    requests: int = 0
    cells: int = 0
    dedupe_cached: int = 0
    dedupe_inflight: int = 0
    batches: int = 0
    batched_cells: int = 0
    engine_cells: int = 0
    faulted_cells: int = 0
    errors: int = 0
    disconnects: int = 0

    def snapshot(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


def quantile(samples: Iterable[float], q: float) -> float:
    """Linear-interpolated ``q``-quantile (``q`` in [0, 1]).

    The load generator's p50/p95/p99 arithmetic; matches
    ``numpy.quantile``'s default (linear) method without requiring the
    samples as an array.  Raises :class:`ValueError` on empty input.
    """
    data = sorted(samples)
    if not data:
        raise ValueError("quantile of empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q!r}")
    pos = q * (len(data) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac
