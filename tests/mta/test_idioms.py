"""Tests for the full/empty programming idioms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mta import (
    AtomicCounter,
    BoundedBuffer,
    ReductionTree,
    TeraRuntime,
    fork_join_map,
)


# ----------------------------------------------------------------------
# AtomicCounter
# ----------------------------------------------------------------------

def test_counter_fetch_add_returns_old_value():
    rt = TeraRuntime()
    counter = AtomicCounter(rt, initial=10)

    def body(rt):
        old = yield from counter.add(5)
        return old

    f = rt.future(body)
    rt.run()
    assert f.value() == 10
    assert counter.value() == 15


def test_counter_concurrent_adds_never_lost():
    rt = TeraRuntime()
    counter = AtomicCounter(rt)
    claimed = []

    def body(rt, times):
        for _ in range(times):
            old = yield from counter.add(1)
            claimed.append(old)
            yield rt.cycles(3)

    for _ in range(8):
        rt.future(body, 25)
    rt.run()
    assert counter.value() == 200
    # every claimed ticket is unique: true fetch-and-add semantics
    assert sorted(claimed) == list(range(200))


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1,
                max_size=20))
def test_counter_sums_arbitrary_increments(increments):
    rt = TeraRuntime()
    counter = AtomicCounter(rt)

    def body(rt, k):
        yield from counter.add(k)

    for k in increments:
        rt.future(body, k)
    rt.run()
    assert counter.value() == sum(increments)


# ----------------------------------------------------------------------
# BoundedBuffer
# ----------------------------------------------------------------------

def test_buffer_validation():
    rt = TeraRuntime()
    with pytest.raises(ValueError):
        BoundedBuffer(rt, capacity=0)


def test_buffer_single_producer_consumer_order():
    rt = TeraRuntime()
    buf = BoundedBuffer(rt, capacity=3)
    got = []

    def producer(rt):
        for i in range(10):
            yield from buf.put(i)

    def consumer(rt):
        for _ in range(10):
            item = yield from buf.get()
            got.append(item)

    rt.future(producer)
    rt.future(consumer)
    rt.run()
    assert got == list(range(10))


def test_buffer_backpressure():
    """A capacity-2 buffer stalls the producer until space appears."""
    rt = TeraRuntime()
    buf = BoundedBuffer(rt, capacity=2)
    timeline = {}

    def producer(rt):
        for i in range(4):
            yield from buf.put(i)
            timeline[f"put{i}"] = rt.now_cycles

    def consumer(rt):
        yield rt.cycles(10_000)
        for _ in range(4):
            yield from buf.get()

    rt.future(producer)
    rt.future(consumer)
    rt.run()
    # the first two puts are immediate; the third waits for the consumer
    assert timeline["put1"] < 1_000
    assert timeline["put2"] > 9_000


def test_buffer_many_producers_many_consumers():
    rt = TeraRuntime()
    buf = BoundedBuffer(rt, capacity=4)
    got = []

    def producer(rt, base):
        for i in range(10):
            yield from buf.put(base + i)
            yield rt.cycles(7)

    def consumer(rt, n):
        for _ in range(n):
            item = yield from buf.get()
            got.append(item)
            yield rt.cycles(3)

    for p in range(4):
        rt.future(producer, p * 100)
    for _ in range(2):
        rt.future(consumer, 20)
    rt.run()
    assert sorted(got) == sorted(p * 100 + i
                                 for p in range(4) for i in range(10))


# ----------------------------------------------------------------------
# ReductionTree / fork_join_map
# ----------------------------------------------------------------------

@pytest.mark.parametrize("n", [1, 2, 3, 8, 13, 32])
def test_reduction_tree_sums(n):
    rt = TeraRuntime()
    tree = ReductionTree(rt)
    values = list(range(1, n + 1))

    def body(rt):
        total = yield from tree.reduce(values, lambda a, b: a + b)
        return total

    f = rt.future(body)
    rt.run()
    assert f.value() == sum(values)


def test_reduction_tree_is_logarithmic():
    """64 leaves in ~log2(64)=6 combine rounds, not 63 serial ones."""
    combine = 1000.0

    def elapsed(n):
        rt = TeraRuntime()
        tree = ReductionTree(rt, combine_cycles=combine)

        def body(rt):
            yield from tree.reduce(list(range(n)), lambda a, b: a + b)

        rt.future(body)
        return rt.run()

    t64 = elapsed(64)
    # 6 rounds x ~1000 cycles + thread creation; far below 63 x 1000
    assert t64 < 12_000


def test_fork_join_map_preserves_order():
    rt = TeraRuntime()

    def body(rt):
        out = yield from fork_join_map(rt, lambda x: x * x, range(10))
        return out

    f = rt.future(body)
    rt.run()
    assert f.value() == [x * x for x in range(10)]


def test_fork_join_map_overlaps_work():
    rt = TeraRuntime()

    def body(rt):
        yield from fork_join_map(rt, lambda x: x, range(100),
                                 work_cycles=1000.0)

    rt.future(body)
    cycles = rt.run()
    assert cycles < 5_000  # 100 x 1000 cycles, overlapped
