"""Structured observability for the simulation engines.

Three cooperating pieces, all opt-in and all outside the kernel's hot
path:

* :mod:`~repro.obs.trace` -- an event-trace recorder the DES kernel
  primitives feed (thread start/block/unblock, resource
  acquire/queue/release, server submissions, machine-level region
  enter/exit) plus a Chrome-trace (``chrome://tracing`` / Perfetto)
  exporter.  A :class:`~repro.obs.trace.TraceRecorder` is attached to a
  :class:`~repro.des.Simulator` via ``sim.trace``; when it is ``None``
  (the default) the kernel pays one ``is not None`` check per
  instrumented operation and nothing else.

* :mod:`~repro.obs.metrics` -- per-region / per-resource rollups
  (busy vs. wait vs. queue time, contention histograms, lock convoy
  depth) computed identically for the DES path and the cohort fast
  path, so the two engines surface comparable numbers on
  ``RunResult.stats``.

* :mod:`~repro.obs.watchdog` -- post-mortem deadlock diagnosis: when
  the event heap drains with live waiters (or the stall watchdog
  trips), the simulator raises a
  :class:`~repro.des.errors.DeadlockDiagnostic` naming every blocked
  thread, what it waits on, and the wait-for cycle if there is one.

Import direction: ``obs`` imports ``des``; the kernel itself only
reaches back lazily (inside the deadlock failure path), so simulations
that never enable observability never import this package.
"""

from repro.obs.metrics import (
    MachineMetrics,
    RegionMetric,
    hist_fields,
    lock_summary_from_engine,
    lock_summary_from_resources,
    merge_lock_summaries,
)
from repro.obs.trace import (
    TraceRecorder,
    active_tracer,
    describe_event,
    tracing,
    validate_chrome_trace,
)
from repro.obs.watchdog import diagnose_deadlock

__all__ = [
    "MachineMetrics",
    "RegionMetric",
    "TraceRecorder",
    "active_tracer",
    "describe_event",
    "diagnose_deadlock",
    "hist_fields",
    "lock_summary_from_engine",
    "lock_summary_from_resources",
    "merge_lock_summaries",
    "tracing",
    "validate_chrome_trace",
]
