"""Experiment harness: regenerate every table and figure of the paper.

Usage::

    from repro.harness import list_experiments, run_experiment

    print(list_experiments())
    result = run_experiment("table5")
    print(result.render())
    assert result.all_checks_pass()

Experiment ids: ``table2`` .. ``table12`` (with ``fig1`` .. ``fig4``
aliasing their tables), ``autopar``, and ``micro`` (the Section 7
micro-claims).  Each result carries the paper's value and the
simulated value for every row, plus the *shape checks* that define
reproduction success (who wins, by what factor, where saturation
falls).
"""

from repro.harness.experiment import ExperimentResult, Row, ShapeCheck
from repro.harness.registry import (
    EXPERIMENT_IDS,
    list_experiments,
    run_all_experiments,
    run_experiment,
)
from repro.harness.runner import BenchmarkData, default_data
from repro.harness.tables import render_comparison_table
from repro.harness.figures import render_speedup_figure

__all__ = [
    "BenchmarkData",
    "EXPERIMENT_IDS",
    "ExperimentResult",
    "Row",
    "ShapeCheck",
    "default_data",
    "list_experiments",
    "render_comparison_table",
    "render_speedup_figure",
    "run_all_experiments",
    "run_experiment",
]
