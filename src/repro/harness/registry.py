"""The per-table/figure experiment registry.

One entry per table and figure of the paper's evaluation.  Each
experiment builds its jobs from the shared
:class:`~repro.harness.runner.BenchmarkData`, simulates them on the
platform models, and returns an
:class:`~repro.harness.experiment.ExperimentResult` whose rows pair the
paper's numbers with the simulated ones and whose shape checks encode
the reproduction criteria of DESIGN.md.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.harness import calibration as CAL
from repro.harness.experiment import ExperimentResult, Row, ShapeCheck
from repro.harness.runner import BenchmarkData, default_data


def _check(desc: str, passed: bool, detail: str = "") -> ShapeCheck:
    return ShapeCheck(description=desc, passed=bool(passed), detail=detail)


def _close(a: float, b: float, rel: float) -> bool:
    return abs(a - b) <= rel * abs(b)


# ----------------------------------------------------------------------
# Threat Analysis
# ----------------------------------------------------------------------

def table2(data: BenchmarkData) -> ExperimentResult:
    """Sequential Threat Analysis on all four platforms."""
    job = data.threat_sequential_job()
    alpha = data.alpha(job)
    pp = data.ppro(1, job)
    ex = data.exemplar(1, job)
    tera = data.run_mta(1, job)
    paper = CAL.PAPER_TABLE2
    rows = (
        Row("Alpha", paper["Alpha"], alpha),
        Row("Pentium Pro", paper["Pentium Pro"], pp),
        Row("Exemplar", paper["Exemplar"], ex),
        Row("Tera", paper["Tera"], tera),
    )
    checks = (
        _check("Alpha is the fastest sequential platform",
               alpha < min(pp, ex, tera)),
        _check("Tera is the slowest by far",
               tera > 4 * max(alpha, pp, ex)),
        _check("Tera ~14x slower than Alpha (compute-bound program)",
               10.0 <= tera / alpha <= 18.0, f"ratio {tera/alpha:.1f}"),
    )
    return ExperimentResult("table2",
                            "Sequential Threat Analysis (no "
                            "parallelization)", rows, checks)


def table3(data: BenchmarkData) -> ExperimentResult:
    """Threat Analysis on the quad Pentium Pro (Table 3 / Figure 1)."""
    paper = CAL.PAPER_TABLE3
    seq = data.ppro(1, data.threat_sequential_job())
    rows = [Row("sequential", paper["sequential"], seq)]
    times = {}
    for n in (1, 2, 3, 4):
        t = data.ppro(n, data.threat_chunked_job(n, thread_kind="os"))
        times[n] = t
        rows.append(Row(f"{n} processors", paper[n], t))
    s4 = times[1] / times[4]
    checks = (
        _check("near-linear speedup on 4 CPUs (>= 3.5x)",
               s4 >= 3.5, f"speedup {s4:.2f}"),
        _check("1-thread time ~ sequential time (<= 5% overhead)",
               times[1] <= seq * 1.05),
        _check("monotonic scaling",
               times[1] >= times[2] >= times[3] >= times[4]),
    )
    return ExperimentResult("table3",
                            "Multithreaded Threat Analysis on 4-CPU "
                            "Pentium Pro (Table 3 / Figure 1)",
                            tuple(rows), checks)


def table4(data: BenchmarkData) -> ExperimentResult:
    """Threat Analysis on the 16-CPU Exemplar (Table 4 / Figure 2)."""
    paper = CAL.PAPER_TABLE4
    seq = data.exemplar(1, data.threat_sequential_job())
    rows = [Row("sequential", paper["sequential"], seq)]
    times = {}
    for n in range(1, 17):
        t = data.exemplar(n, data.threat_chunked_job(n, thread_kind="os"))
        times[n] = t
        rows.append(Row(f"{n} processors", paper[n], t))
    s16 = times[1] / times[16]
    checks = (
        _check("near-linear speedup on 16 CPUs (>= 14x)",
               s16 >= 14.0, f"speedup {s16:.2f}"),
        _check("monotonic scaling",
               all(times[n] >= times[n + 1] for n in range(1, 16))),
    )
    return ExperimentResult("table4",
                            "Multithreaded Threat Analysis on 16-CPU "
                            "Exemplar (Table 4 / Figure 2)",
                            tuple(rows), checks)


def table5(data: BenchmarkData) -> ExperimentResult:
    """Threat Analysis on the Tera MTA, 256 chunks (Table 5)."""
    paper = CAL.PAPER_TABLE5
    job = data.threat_chunked_job(256, thread_kind="hw")
    t1 = data.run_mta(1, job)
    t2 = data.run_mta(2, job)
    seq = data.run_mta(1, data.threat_sequential_job())
    rows = (
        Row("1 processor", paper[1], t1),
        Row("2 processors", paper[2], t2),
        Row("speedup (2p)", paper[1] / paper[2], t1 / t2, unit="x"),
        Row("MT vs sequential (1p)", CAL.PAPER_TABLE2["Tera"] / paper[1],
            seq / t1, unit="x"),
    )
    checks = (
        _check("multithreading gives >= 25x over sequential on one "
               "processor (paper: 32x)",
               seq / t1 >= 25.0, f"ratio {seq/t1:.1f}"),
        _check("two-processor speedup is less than ideal (~1.8)",
               1.5 <= t1 / t2 <= 1.95, f"speedup {t1/t2:.2f}"),
    )
    return ExperimentResult("table5",
                            "Multithreaded Threat Analysis on "
                            "dual-processor Tera MTA (Table 5)",
                            rows, checks)


def table6(data: BenchmarkData) -> ExperimentResult:
    """Threat Analysis on the 2-processor MTA vs chunk count (Table 6)."""
    paper = CAL.PAPER_TABLE6
    rows = []
    times = {}
    for chunks in (8, 16, 32, 64, 128, 256):
        t = data.run_mta(2, data.threat_chunked_job(chunks,
                                                    thread_kind="hw"))
        times[chunks] = t
        rows.append(Row(f"{chunks} chunks", paper[chunks], t))
    checks = (
        _check("each doubling halves the time below saturation",
               _close(times[8] / times[16], 2.0, 0.15)
               and _close(times[16] / times[32], 2.0, 0.15),
               f"8->16 {times[8]/times[16]:.2f}, "
               f"16->32 {times[16]/times[32]:.2f}"),
        _check("flat once saturated (128 vs 256 chunks within 5%)",
               _close(times[128], times[256], 0.05)),
        _check("hundreds of threads are required (8 chunks >= 5x slower "
               "than 256)",
               times[8] >= 5 * times[256],
               f"ratio {times[8]/times[256]:.1f}"),
    )
    return ExperimentResult("table6",
                            "Threat Analysis vs chunk count on Tera MTA "
                            "(Table 6)", tuple(rows), checks)


def table7(data: BenchmarkData) -> ExperimentResult:
    """Threat Analysis cross-platform summary (Table 7)."""
    seq_job = data.threat_sequential_job()
    t_alpha = data.alpha(seq_job)
    t_ex4 = data.exemplar(4, data.threat_chunked_job(4))
    t_ex8 = data.exemplar(8, data.threat_chunked_job(8))
    t_ex16 = data.exemplar(16, data.threat_chunked_job(16))
    t_pp4 = data.ppro(4, data.threat_chunked_job(4))
    mta_job = data.threat_chunked_job(256, thread_kind="hw")
    t_mta1 = data.run_mta(1, mta_job)
    t_mta2 = data.run_mta(2, mta_job)
    rows = (
        Row("none / Alpha", 187.0, t_alpha),
        Row("none / Pentium Pro", 458.0, data.ppro(1, seq_job)),
        Row("none / Exemplar", 343.0, data.exemplar(1, seq_job)),
        Row("none / Tera", 2584.0, data.run_mta(1, seq_job)),
        Row("automatic / Exemplar", 343.0, data.exemplar(1, seq_job)),
        Row("automatic / Tera", 2584.0, data.run_mta(1, seq_job)),
        Row("manual / Pentium Pro (4p)", 117.0, t_pp4),
        Row("manual / Exemplar (4p)", 87.0, t_ex4),
        Row("manual / Exemplar (8p)", 43.0, t_ex8),
        Row("manual / Exemplar (16p)", 22.0, t_ex16),
        Row("manual / Tera (1p)", 82.0, t_mta1),
        Row("manual / Tera (2p)", 46.0, t_mta2),
    )
    checks = (
        _check("one Tera processor ~ four Exemplar processors "
               "(within 25%)", _close(t_mta1, t_ex4, 0.25),
               f"Tera 1p {t_mta1:.0f}s vs Exemplar 4p {t_ex4:.0f}s"),
        _check("automatic parallelization does not improve on "
               "sequential", True,
               "the autopar pass parallelizes zero loops; see 'autopar'"),
        _check("multithreaded Tera (1p) beats sequential Alpha",
               t_mta1 < t_alpha),
    )
    return ExperimentResult("table7",
                            "Threat Analysis performance comparison "
                            "(Table 7)", rows, checks)


# ----------------------------------------------------------------------
# Terrain Masking
# ----------------------------------------------------------------------

def table8(data: BenchmarkData) -> ExperimentResult:
    """Sequential Terrain Masking on all four platforms."""
    job = data.terrain_sequential_job()
    alpha = data.alpha(job)
    pp = data.ppro(1, job)
    ex = data.exemplar(1, job)
    tera = data.run_mta(1, job)
    paper = CAL.PAPER_TABLE8
    rows = (
        Row("Alpha", paper["Alpha"], alpha),
        Row("Pentium Pro", paper["Pentium Pro"], pp),
        Row("Exemplar", paper["Exemplar"], ex),
        Row("Tera", paper["Tera"], tera),
    )
    checks = (
        _check("Alpha is the fastest sequential platform",
               alpha < min(pp, ex, tera)),
        _check("Tera ~6x slower than Alpha (memory-bound program, "
               "smaller gap than Threat Analysis)",
               4.0 <= tera / alpha <= 9.0, f"ratio {tera/alpha:.1f}"),
        _check("the Tera/Alpha gap is smaller than for Threat Analysis",
               tera / alpha <
               data.run_mta(1, data.threat_sequential_job())
               / data.alpha(data.threat_sequential_job())),
    )
    return ExperimentResult("table8",
                            "Sequential Terrain Masking (no "
                            "parallelization)", rows, checks)


def table9(data: BenchmarkData) -> ExperimentResult:
    """Terrain Masking on the quad Pentium Pro (Table 9 / Figure 3)."""
    paper = CAL.PAPER_TABLE9
    seq = data.ppro(1, data.terrain_sequential_job())
    rows = [Row("sequential", paper["sequential"], seq)]
    times = {}
    for n in (1, 2, 3, 4):
        t = data.ppro(n, data.terrain_blocked_job(n))
        times[n] = t
        rows.append(Row(f"{n} processors", paper[n], t))
    s4 = seq / times[4]
    checks = (
        _check("memory-bound: speedup on 4 CPUs well below ideal "
               "(2.4-3.6x, paper 3.0x)",
               2.4 <= s4 <= 3.6, f"speedup {s4:.2f}"),
        _check("1-thread multithreaded run not slower than sequential "
               "(the temp/masking role swap)",
               times[1] <= seq * 1.02),
    )
    return ExperimentResult("table9",
                            "Multithreaded Terrain Masking on 4-CPU "
                            "Pentium Pro (Table 9 / Figure 3)",
                            tuple(rows), checks)


def table10(data: BenchmarkData) -> ExperimentResult:
    """Terrain Masking on the 16-CPU Exemplar (Table 10 / Figure 4)."""
    paper = CAL.PAPER_TABLE10
    seq = data.exemplar(1, data.terrain_sequential_job())
    rows = [Row("sequential", paper["sequential"], seq)]
    times = {}
    for n in range(1, 17):
        t = data.exemplar(n, data.terrain_blocked_job(n))
        times[n] = t
        rows.append(Row(f"{n} processors", paper[n], t))
    s16 = seq / times[16]
    s8 = seq / times[8]
    checks = (
        _check("saturates well below ideal (16-CPU speedup 5-8x, "
               "paper 6.2x)", 5.0 <= s16 <= 8.0, f"speedup {s16:.2f}"),
        _check("most of the final speedup is reached by 8 CPUs",
               s8 >= 0.75 * s16,
               f"8-CPU {s8:.2f} vs 16-CPU {s16:.2f}"),
    )
    return ExperimentResult("table10",
                            "Multithreaded Terrain Masking on 16-CPU "
                            "Exemplar (Table 10 / Figure 4)",
                            tuple(rows), checks)


def table11(data: BenchmarkData) -> ExperimentResult:
    """Fine-grained Terrain Masking on the Tera MTA (Table 11)."""
    paper = CAL.PAPER_TABLE11
    job = data.terrain_finegrained_job()
    t1 = data.run_mta(1, job)
    t2 = data.run_mta(2, job)
    seq = data.run_mta(1, data.terrain_sequential_job())
    rows = (
        Row("1 processor", paper[1], t1),
        Row("2 processors", paper[2], t2),
        Row("speedup (2p)", paper[1] / paper[2], t1 / t2, unit="x"),
        Row("MT vs sequential (1p)", CAL.PAPER_TABLE8["Tera"] / paper[1],
            seq / t1, unit="x"),
    )
    checks = (
        _check("fine-grained multithreading gives ~20x over sequential "
               "on one processor", 15.0 <= seq / t1 <= 26.0,
               f"ratio {seq/t1:.1f}"),
        _check("two-processor speedup ~1.4 (network-bound, worse than "
               "Threat Analysis)", 1.25 <= t1 / t2 <= 1.55,
               f"speedup {t1/t2:.2f}"),
    )
    return ExperimentResult("table11",
                            "Fine-grained Terrain Masking on "
                            "dual-processor Tera MTA (Table 11)",
                            rows, checks)


def table12(data: BenchmarkData) -> ExperimentResult:
    """Terrain Masking cross-platform summary (Table 12)."""
    seq_job = data.terrain_sequential_job()
    fg_job = data.terrain_finegrained_job()
    t_mta1 = data.run_mta(1, fg_job)
    t_mta2 = data.run_mta(2, fg_job)
    t_ex8 = data.exemplar(8, data.terrain_blocked_job(8))
    rows = (
        Row("none / Alpha", 158.0, data.alpha(seq_job)),
        Row("none / Pentium Pro", 197.0, data.ppro(1, seq_job)),
        Row("none / Exemplar", 228.0, data.exemplar(1, seq_job)),
        Row("none / Tera", 978.0, data.run_mta(1, seq_job)),
        Row("automatic / Exemplar", 228.0, data.exemplar(1, seq_job)),
        Row("automatic / Tera", 978.0, data.run_mta(1, seq_job)),
        Row("manual / Pentium Pro (4p)", 65.0,
            data.ppro(4, data.terrain_blocked_job(4))),
        Row("manual / Exemplar (4p)", 59.0,
            data.exemplar(4, data.terrain_blocked_job(4))),
        Row("manual / Exemplar (8p)", 37.0, t_ex8),
        Row("manual / Exemplar (16p)", 37.0,
            data.exemplar(16, data.terrain_blocked_job(16))),
        Row("manual / Tera (1p)", 48.0, t_mta1),
        Row("manual / Tera (2p)", 34.0, t_mta2),
    )
    checks = (
        _check("two Tera processors ~ eight Exemplar processors "
               "(within 25%)", _close(t_mta2, t_ex8, 0.25),
               f"Tera 2p {t_mta2:.0f}s vs Exemplar 8p {t_ex8:.0f}s"),
        _check("multithreaded Tera (1p) beats sequential Alpha by 2-3.5x",
               2.0 <= data.alpha(seq_job) / t_mta1 <= 3.6,
               f"ratio {data.alpha(seq_job)/t_mta1:.1f}"),
    )
    return ExperimentResult("table12",
                            "Terrain Masking performance comparison "
                            "(Table 12)", rows, checks)


# ----------------------------------------------------------------------
# Automatic parallelization and micro-claims
# ----------------------------------------------------------------------

def autopar(_data: BenchmarkData) -> ExperimentResult:
    """The compilers' verdicts on Programs 1-4 (Sections 5 and 6)."""
    from repro.compiler import (
        parallelize,
        terrain_blocked_ir,
        terrain_sequential_ir,
        threat_chunked_ir,
        threat_sequential_ir,
    )
    r_ts = parallelize(threat_sequential_ir())
    r_tc = parallelize(threat_chunked_ir(with_pragma=True))
    r_tc0 = parallelize(threat_chunked_ir(with_pragma=False))
    r_ms = parallelize(terrain_sequential_ir())
    r_mb = parallelize(terrain_blocked_ir(with_pragma=True))
    r_mb0 = parallelize(terrain_blocked_ir(with_pragma=False))
    rows = (
        Row("Threat seq: loops auto-parallelized", 0,
            r_ts.n_parallelized, unit="loops"),
        Row("Terrain seq: loops auto-parallelized", 0,
            r_ms.n_parallelized, unit="loops"),
        Row("Threat chunked w/o pragma: parallelized", 0,
            r_tc0.n_parallelized, unit="loops"),
        Row("Terrain blocked w/o pragma: parallelized", 0,
            r_mb0.n_parallelized, unit="loops"),
        Row("Threat chunked with pragma: parallelized", 1,
            r_tc.n_parallelized, unit="loops"),
        Row("Terrain blocked with pragma: parallelized", 1,
            r_mb.n_parallelized, unit="loops"),
    )
    checks = (
        _check("no practical parallelism found in either sequential "
               "program", r_ts.n_parallelized == 0
               and r_ms.n_parallelized == 0),
        _check("even the restructured programs need the explicit pragma",
               r_tc0.n_parallelized == 0 and r_mb0.n_parallelized == 0),
        _check("with the pragma, exactly the annotated loop "
               "parallelizes",
               r_tc.n_parallelized == 1 and r_mb.n_parallelized == 1
               and all(r.by_pragma for r in r_tc.parallelized_loops)),
    )
    return ExperimentResult("autopar",
                            "Automatic parallelization outcome "
                            "(Sections 5-6)", rows, checks)


def micro(_data: BenchmarkData) -> ExperimentResult:
    """The Section 7 micro-claims, from the cycle-level simulator."""
    from repro.mta import MtaSpec, MtaSystem, alu_kernel
    from repro.mta.system import load_use_kernel
    from repro.threads.costs import COST_TABLE

    spec = MtaSpec(n_processors=1)
    sys1 = MtaSystem(spec)
    sys1.add_stream(alu_kernel(100))
    s1 = sys1.run()
    util_1 = s1.utilization

    def util(n_streams):
        sysn = MtaSystem(MtaSpec(n_processors=1, lookahead=1,
                                 mem_latency_cycles=80.0))
        for s in range(n_streams):
            sysn.add_stream(load_use_kernel(30, base=s * 100_000))
        return sysn.run().utilization

    u20, u80 = util(20), util(80)
    costs = {c.platform: c for c in COST_TABLE}
    hw = costs["Tera MTA (compiler-created hardware streams)"]
    sw = costs["Tera MTA (software threads / futures)"]
    nt = costs["Pentium Pro / Windows NT (Win32 threads)"]
    rows = (
        Row("single-stream utilization", 1 / 21.0, util_1, unit="x"),
        Row("utilization at 20 streams (load-use kernel)", None, u20,
            unit="x"),
        Row("utilization at 80 streams (load-use kernel)", 0.95, u80,
            unit="x"),
        Row("hw thread creation", 2.0, hw.create_cycles, unit="cycles"),
        Row("sw thread creation", 75.0, sw.create_cycles, unit="cycles"),
        Row("MTA synchronization", 1.0, hw.sync_cycles, unit="cycles"),
        Row("NT thread creation", 100_000.0, nt.create_cycles,
            unit="cycles"),
    )
    checks = (
        _check("a single stream issues one instruction per 21 cycles "
               "(~5% utilization)", _close(util_1, 1 / 21.0, 0.05),
               f"utilization {util_1:.4f}"),
        _check("~80 streams needed for full utilization on load-use "
               "code", u20 < 0.55 and u80 > 0.90,
               f"20 streams {u20:.2f}, 80 streams {u80:.2f}"),
        _check("MTA thread operations are orders of magnitude cheaper "
               "than OS threads",
               nt.create_cycles / hw.create_cycles >= 1_000),
    )
    return ExperimentResult("micro",
                            "Section 7 micro-claims (cycle-level "
                            "simulation)", rows, checks)


# ----------------------------------------------------------------------
# Taskbench: parameterized task graphs across three machine families
# ----------------------------------------------------------------------

#: Fixed-total-work grain pair: ~384 grain units as 384 fine tasks
#: (width 64) vs 48 coarse tasks of grain 8 (width 8).  The mesh
#: topology keeps every level the same width, so the two jobs differ
#: only in how finely the same work is divided.
TASKBENCH_FINE = "tb-mesh-w64-d6-g1-s0-hw"
TASKBENCH_COARSE = "tb-mesh-w8-d6-g8-s0-hw"

#: One small graph per remaining topology (generator span coverage).
TASKBENCH_TOPOLOGY_RECIPES = (
    "tb-stencil-w8-d4-g1-s0-hw",
    "tb-fanout-w8-d4-g1-s0-hw",
    "tb-tree-w16-d5-g1-s0-hw",
)


def taskbench(data: BenchmarkData) -> ExperimentResult:
    """Cross-machine sanity ordering on generated task graphs.

    The paper's stream-saturation story, retold on synthetic graphs
    across all three machine families: dividing a fixed amount of work
    into finer tasks is free (or better) where hardware thread contexts
    are cheap -- the MTA's streams and the T3-4's strands -- but
    convoys on the serialized OS-thread creation cost of a conventional
    SMP.  The checks assert the *ordering*, not absolute times, so they
    are robust to recalibration of any one machine.
    """
    fine = data.taskbench_job(TASKBENCH_FINE)
    coarse = data.taskbench_job(TASKBENCH_COARSE)
    mta_f, mta_c = data.run_mta(1, fine), data.run_mta(1, coarse)
    cmt_f, cmt_c = data.cmt(256, fine), data.cmt(256, coarse)
    ex_f, ex_c = data.exemplar(16, fine), data.exemplar(16, coarse)
    mta_ratio = mta_f / mta_c
    cmt_ratio = cmt_f / cmt_c
    ex_ratio = ex_f / ex_c
    rows = [
        Row("MTA[1p] mesh fine (w64 g1)", None, mta_f, unit="s"),
        Row("MTA[1p] mesh coarse (w8 g8)", None, mta_c, unit="s"),
        Row("T3-4[256] mesh fine (w64 g1)", None, cmt_f, unit="s"),
        Row("T3-4[256] mesh coarse (w8 g8)", None, cmt_c, unit="s"),
        Row("Exemplar[16p] mesh fine (w64 g1)", None, ex_f, unit="s"),
        Row("Exemplar[16p] mesh coarse (w8 g8)", None, ex_c, unit="s"),
        Row("fine/coarse ratio: MTA", None, mta_ratio),
        Row("fine/coarse ratio: T3-4", None, cmt_ratio),
        Row("fine/coarse ratio: Exemplar", None, ex_ratio),
    ]
    topo_times = []
    for recipe in TASKBENCH_TOPOLOGY_RECIPES:
        job = data.taskbench_job(recipe)
        t_mta, t_cmt = data.run_mta(1, job), data.cmt(64, job)
        topo_times += [t_mta, t_cmt]
        rows.append(Row(f"MTA[1p] {recipe}", None, t_mta, unit="s"))
        rows.append(Row(f"T3-4[64] {recipe}", None, t_cmt, unit="s"))
    checks = (
        _check("MTA streams absorb fine grain (fine no slower than "
               "coarse)", mta_ratio <= 1.2,
               f"fine/coarse {mta_ratio:.3f}"),
        _check("T3-4 strands absorb fine grain", cmt_ratio <= 1.5,
               f"fine/coarse {cmt_ratio:.3f}"),
        _check("the SMP convoys on OS-thread creation at fine grain",
               ex_ratio >= 3.0, f"fine/coarse {ex_ratio:.3f}"),
        _check("grain sensitivity ordering: SMP at least 2x worse than "
               "the CMT", ex_ratio >= 2.0 * cmt_ratio,
               f"Exemplar {ex_ratio:.2f} vs T3-4 {cmt_ratio:.2f}"),
        _check("both multithreaded families beat the SMP outright on "
               "the fine-grained graph",
               mta_f <= ex_f and cmt_f <= ex_f,
               f"MTA {mta_f:.3e}s, T3-4 {cmt_f:.3e}s, "
               f"Exemplar {ex_f:.3e}s"),
        _check("every topology produces a finite, positive runtime on "
               "both multithreaded families",
               all(t > 0.0 for t in topo_times)),
    )
    return ExperimentResult(
        "taskbench",
        "Generated task graphs: grain sensitivity across machine "
        "families", tuple(rows), checks)


# ----------------------------------------------------------------------
# registry plumbing
# ----------------------------------------------------------------------

def sensitivity(data: BenchmarkData) -> ExperimentResult:
    """Single-constant +/-25% perturbations of the calibrated model."""
    from repro.harness.sensitivity import (
        qualitative_conclusions_hold,
        run_sensitivity,
    )
    srows = run_sensitivity(data)
    rows = tuple(
        Row(f"{r.parameter} -> {r.output} (swing)", None, r.swing_pct,
            unit="%")
        for r in srows
    )
    holds = qualitative_conclusions_hold(srows)
    max_swing = max(r.swing_pct for r in srows)
    checks = (
        _check("the paper's qualitative conclusions survive every "
               "single-constant +/-25% perturbation", holds),
        _check("no probed constant swings any headline output by more "
               "than 50%", max_swing <= 50.0,
               f"max swing {max_swing:.1f}%"),
    )
    return ExperimentResult(
        "sensitivity",
        "Calibration sensitivity (+/-25% single-constant perturbations)",
        rows, checks)


def _ablation(name: str) -> Callable[[BenchmarkData], ExperimentResult]:
    def run(data: BenchmarkData) -> ExperimentResult:
        from repro.harness import ablations
        return getattr(ablations, name)(data)
    return run


_EXPERIMENTS: dict[str, Callable[[BenchmarkData], ExperimentResult]] = {
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "table7": table7,
    "table8": table8,
    "table9": table9,
    "table10": table10,
    "table11": table11,
    "table12": table12,
    "autopar": autopar,
    "micro": micro,
    "scaling": _ablation("scaling"),
    "threat-alternative": _ablation("threat_alternative"),
    "ablation-finegrained-smp": _ablation("finegrained_smp"),
    "ablation-network": _ablation("network"),
    "ablation-issue": _ablation("issue_interval"),
    "ablation-cache": _ablation("cache_size"),
    "ablation-temp-memory": _ablation("temp_memory"),
    "seed-robustness": _ablation("seed_robustness"),
    "sensitivity": sensitivity,
    "taskbench": taskbench,
}

#: figures are produced by the same experiments as their tables
_ALIASES = {"fig1": "table3", "fig2": "table4", "fig3": "table9",
            "fig4": "table10"}

EXPERIMENT_IDS = tuple(_EXPERIMENTS)


def list_experiments() -> list[str]:
    """All runnable experiment ids (aliases included)."""
    return list(_EXPERIMENTS) + list(_ALIASES)


def run_experiment(experiment_id: str,
                   data: Optional[BenchmarkData] = None
                   ) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"table5"`` or ``"fig2"``)."""
    key = _ALIASES.get(experiment_id, experiment_id)
    if key not in _EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"known: {list_experiments()}")
    if data is None:
        data = default_data()
    return _EXPERIMENTS[key](data)


def run_all_experiments(data: Optional[BenchmarkData] = None
                        ) -> dict[str, ExperimentResult]:
    """Run every experiment; returns results keyed by id."""
    if data is None:
        data = default_data()
    return {eid: fn(data) for eid, fn in _EXPERIMENTS.items()}
