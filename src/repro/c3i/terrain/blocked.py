"""Program 4: the coarse-grained multithreaded Terrain Masking program.

Threads dynamically pull threats from a shared queue; each computes the
maximum safe altitudes into its *private* temp array, then minimizes it
into the shared masking array block by block, locking each block of a
``num_blocks x num_blocks`` partition around the write -- the paper's
locking scheme, verbatim.

The semantic execution here is deterministic (threats processed in
queue order); since min-merging is commutative and associative, any
interleaving produces the identical masking array, which
``check_blocked`` verifies.  Lock-contention *timing* is produced by
the machine models from the block-overlap statistics recorded here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.c3i.terrain.model import masking_for_threat_cached
from repro.c3i.terrain.scenarios import TerrainScenario


@dataclass
class BlockedResult:
    """Output and lock/overlap statistics of one scenario run."""

    scenario: int
    num_blocks: int
    n_threads: int
    masking: Optional[np.ndarray] = None
    #: per threat: (region cells, ring cells, [(block_id, overlap cells)])
    per_threat_blocks: list[tuple[int, int, list[tuple[int, int]]]] = (
        field(default_factory=list))
    n_lock_acquisitions: int = 0
    n_region_cells_total: int = 0
    n_rings_total: int = 0
    ring_cells_total: int = 0

    @property
    def max_block_sharing(self) -> int:
        """How many threats touch the most contended block."""
        counts: dict[int, int] = {}
        for _cells, _rc, blocks in self.per_threat_blocks:
            for bid, _bc in blocks:
                counts[bid] = counts.get(bid, 0) + 1
        return max(counts.values()) if counts else 0


def block_of(x: int, y: int, n: int, num_blocks: int) -> int:
    """Block id of cell (x, y) in a num_blocks x num_blocks partition."""
    bx = min(num_blocks - 1, x * num_blocks // n)
    by = min(num_blocks - 1, y * num_blocks // n)
    return bx * num_blocks + by


def _block_start(b: int, n: int, num_blocks: int) -> int:
    """First cell of block ``b``: smallest x with x*num_blocks >= b*n.

    Integer arithmetic throughout -- float block widths (n/num_blocks)
    round inconsistently at block edges (e.g. n=64, num_blocks=10:
    5*6.4 rounds to exactly 32.0 while 32//6.4 floors to 4), which
    silently dropped boundary rows/columns from the merge.
    """
    return (b * n + num_blocks - 1) // num_blocks


def blocks_overlapping(window, n: int, num_blocks: int
                       ) -> list[tuple[int, tuple[slice, slice]]]:
    """Blocks intersecting a region window, with the overlap slices.

    Consistent with :func:`block_of`: cell x lies in block
    ``x * num_blocks // n``, so block b covers
    ``[_block_start(b), _block_start(b + 1))``.
    """
    out = []
    bx0 = window.x0 * num_blocks // n
    bx1 = (window.x1 - 1) * num_blocks // n
    by0 = window.y0 * num_blocks // n
    by1 = (window.y1 - 1) * num_blocks // n
    for bx in range(bx0, min(bx1, num_blocks - 1) + 1):
        for by in range(by0, min(by1, num_blocks - 1) + 1):
            x_lo = max(window.x0, _block_start(bx, n, num_blocks))
            x_hi = min(window.x1, _block_start(bx + 1, n, num_blocks))
            y_lo = max(window.y0, _block_start(by, n, num_blocks))
            y_hi = min(window.y1, _block_start(by + 1, n, num_blocks))
            if x_lo < x_hi and y_lo < y_hi:
                out.append((bx * num_blocks + by,
                            (slice(x_lo, x_hi), slice(y_lo, y_hi))))
    return out


def run_blocked(scenario: TerrainScenario, n_threads: int = 4,
                num_blocks: int = 10) -> BlockedResult:
    """Execute Program 4 on one scenario."""
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    if num_blocks < 1:
        raise ValueError("num_blocks must be >= 1")
    n = scenario.grid_n
    result = BlockedResult(scenario=scenario.index, num_blocks=num_blocks,
                           n_threads=n_threads)
    masking = np.full((n, n), np.inf)

    # dynamic queue order == input order (any order gives the same min)
    for threat in scenario.threats:
        window, alt, stats = masking_for_threat_cached(
            scenario.terrain, threat)
        blocks = blocks_overlapping(window, n, num_blocks)
        per_block = []
        for bid, (sx, sy) in blocks:
            # lock(locks[bid]); min-merge the overlap; unlock
            lx = slice(sx.start - window.x0, sx.stop - window.x0)
            ly = slice(sy.start - window.y0, sy.stop - window.y0)
            masking[sx, sy] = np.minimum(masking[sx, sy], alt[lx, ly])
            cells = (sx.stop - sx.start) * (sy.stop - sy.start)
            per_block.append((bid, cells))
            result.n_lock_acquisitions += 1
        result.per_threat_blocks.append(
            (window.n_cells, stats.n_ring_cells, per_block))
        result.n_region_cells_total += window.n_cells
        result.n_rings_total += stats.n_rings
        result.ring_cells_total += stats.n_ring_cells

    result.masking = masking
    return result
