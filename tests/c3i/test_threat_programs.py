"""Tests for the Threat Analysis program variants and scenarios."""

import pytest

from repro.c3i.threat import (
    benchmark_scenarios,
    check_chunked,
    check_finegrained,
    check_intervals,
    make_scenario,
    run_chunked,
    run_finegrained,
    run_sequential,
)
from repro.c3i.threat.chunked import chunk_bounds
from repro.c3i.threat.validate import ValidationError


SCALE = 0.03  # 30 threats, ~480 steps: fast but non-trivial


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(0, scale=SCALE)


@pytest.fixture(scope="module")
def reference(scenario):
    return run_sequential(scenario)


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------

def test_scenarios_are_deterministic():
    a = make_scenario(2, scale=SCALE)
    b = make_scenario(2, scale=SCALE)
    assert a.threats == b.threats
    assert a.weapons == b.weapons


def test_scenarios_are_distinct():
    a = make_scenario(0, scale=SCALE)
    b = make_scenario(1, scale=SCALE)
    assert a.threats != b.threats


def test_five_benchmark_scenarios():
    scenarios = benchmark_scenarios(scale=SCALE)
    assert len(scenarios) == 5
    assert [s.index for s in scenarios] == [0, 1, 2, 3, 4]


def test_full_scale_parameters_match_paper():
    """1000 threats per scenario (Section 5)."""
    from repro.c3i.threat.scenarios import FULL_SCALE
    assert FULL_SCALE.n_threats == 1000


def test_scale_validation():
    with pytest.raises(ValueError):
        make_scenario(0, scale=0.0)
    with pytest.raises(ValueError):
        make_scenario(0, scale=1.5)


def test_extrapolation_factor(scenario):
    from repro.c3i.threat.scenarios import FULL_SCALE
    full = FULL_SCALE.n_threats * FULL_SCALE.n_weapons * FULL_SCALE.n_steps
    here = scenario.n_threats * scenario.n_weapons * scenario.n_steps
    assert scenario.extrapolation_factor == pytest.approx(full / here)


# ----------------------------------------------------------------------
# sequential program
# ----------------------------------------------------------------------

def test_sequential_produces_intervals(scenario, reference):
    assert reference.n_intervals > 0
    check_intervals(scenario, reference.intervals)


def test_sequential_structural_counts(scenario, reference):
    assert reference.n_pairs == scenario.n_threats * scenario.n_weapons
    assert reference.n_pairs_scanned > 0
    assert reference.n_pairs_skipped > 0  # the range screen does work
    assert reference.n_steps_total == (reference.n_pairs_scanned
                                       * scenario.n_steps)
    assert len(reference.steps_per_threat) == scenario.n_threats
    assert len(reference.intervals_per_threat) == scenario.n_threats
    assert sum(reference.intervals_per_threat) == reference.n_intervals


def test_sequential_interval_order_is_threat_major(reference):
    keys = [(iv.threat, iv.weapon, iv.t_first) for iv in reference.intervals]
    assert keys == sorted(keys)


def test_some_pair_has_multiple_intervals():
    """The benchmark's 'zero, one, or more intervals' property should
    actually occur in the synthetic scenarios."""
    counts = {}
    for idx in range(5):
        sc = make_scenario(idx, scale=SCALE)
        res = run_sequential(sc)
        for iv in res.intervals:
            counts[(idx, iv.threat, iv.weapon)] = counts.get(
                (idx, iv.threat, iv.weapon), 0) + 1
    assert max(counts.values()) >= 2


# ----------------------------------------------------------------------
# chunked program
# ----------------------------------------------------------------------

def test_chunk_bounds_cover_exactly():
    for n, k in ((10, 3), (1000, 256), (5, 8), (7, 7)):
        seen = []
        for c in range(k):
            first, last = chunk_bounds(n, k, c)
            seen.extend(range(first, last + 1))
        assert seen == list(range(n))


@pytest.mark.parametrize("n_chunks", [1, 2, 5, 16])
def test_chunked_matches_sequential(scenario, reference, n_chunks):
    chunked = run_chunked(scenario, n_chunks)
    check_chunked(reference, chunked)


def test_chunked_imbalance_reported(scenario, reference):
    res = run_chunked(scenario, 8)
    assert res.imbalance >= 1.0
    # only pairs that pass the range screen are scanned
    assert sum(res.pairs_per_chunk) == reference.n_pairs_scanned


def test_chunked_validation_catches_corruption(scenario, reference):
    chunked = run_chunked(scenario, 4)
    chunked.intervals_per_chunk[0] = chunked.intervals_per_chunk[0][1:]
    with pytest.raises(ValidationError):
        check_chunked(reference, chunked)


def test_chunked_invalid_chunks(scenario):
    with pytest.raises(ValueError):
        run_chunked(scenario, 0)


# ----------------------------------------------------------------------
# fine-grained program
# ----------------------------------------------------------------------

def test_finegrained_same_set_different_order(scenario, reference):
    fine = run_finegrained(scenario, schedule_seed=7)
    check_finegrained(reference, fine)
    assert fine.order_differs  # nondeterministic ordering, as the paper
    assert fine.n_sync_ops == 2 * fine.n_intervals


def test_finegrained_schedules_differ_but_agree(scenario, reference):
    a = run_finegrained(scenario, schedule_seed=1)
    b = run_finegrained(scenario, schedule_seed=2)
    check_finegrained(reference, a)
    check_finegrained(reference, b)
    assert a.intervals != b.intervals  # different interleavings


def test_finegrained_validation_catches_loss(scenario, reference):
    fine = run_finegrained(scenario)
    fine.intervals.pop()
    with pytest.raises(ValidationError):
        check_finegrained(reference, fine)
