"""Hardware streams and their instructions (cycle-level model).

A :class:`Stream` is one of the 128 per-processor instruction streams:
a program counter, an issue-interval constraint (one instruction per
pipeline pass -- 21 cycles), a bounded window of outstanding memory
references (the explicit-dependence lookahead), and dependence tracking
so an instruction that consumes a load result cannot issue until the
load completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Instruction kinds understood by the cycle simulator.
KINDS = ("alu", "load", "store", "sync_load", "sync_store", "nop")


@dataclass(frozen=True)
class Instruction:
    """One (LIW-bundle) instruction of a stream's program.

    ``depends_on`` is the index of an earlier instruction in the same
    stream whose *completion* gates this one's issue (e.g. an ALU op
    consuming a load's result, or a pointer-chasing load).  ``value``
    is written by stores; loads deposit the memory value into the
    stream's ``results`` for inspection by tests.
    """

    kind: str
    addr: int = 0
    depends_on: Optional[int] = None
    value: object = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown instruction kind {self.kind!r}")
        if self.addr < 0:
            raise ValueError("negative address")
        if self.depends_on is not None and self.depends_on < 0:
            raise ValueError("depends_on must be a prior index")

    @property
    def is_memory(self) -> bool:
        return self.kind in ("load", "store", "sync_load", "sync_store")


@dataclass
class Stream:
    """Cycle-level state of one hardware stream."""

    sid: int
    program: list[Instruction]
    pc: int = 0
    last_issue: float = float("-inf")
    #: instruction index -> completion cycle (or None while in flight)
    completion: dict[int, Optional[float]] = field(default_factory=dict)
    #: values returned by loads, by instruction index
    results: dict[int, object] = field(default_factory=dict)
    issued: int = 0
    #: cycle at which the runtime revoked this hardware stream (fault
    #: injection); a revoked stream issues nothing more, and its
    #: unissued instructions are migrated by the system driver once
    #: in-flight references drain
    revoked_at: Optional[float] = None

    def __post_init__(self) -> None:
        for i, ins in enumerate(self.program):
            if ins.depends_on is not None and ins.depends_on >= i:
                raise ValueError(
                    f"stream {self.sid}: instruction {i} depends on a "
                    f"later or same instruction {ins.depends_on}")

    # ------------------------------------------------------------------
    @property
    def revoked(self) -> bool:
        return self.revoked_at is not None

    @property
    def done(self) -> bool:
        if self.revoked:
            # a revoked stream is finished once its in-flight references
            # drain; the driver owns its residual program
            return not self.in_flight
        return self.pc >= len(self.program) and not self.in_flight

    def revoke(self, cycle: float) -> None:
        """Revoke the stream at ``cycle``: it issues nothing more.

        The program counter freezes; :meth:`residual_program` hands the
        unissued tail to whoever inherits the work.
        """
        if self.revoked:
            raise ValueError(f"stream {self.sid} already revoked")
        self.revoked_at = cycle

    def residual_program(self) -> list[Instruction]:
        """The unissued instructions, dependence indices rebased to a
        fresh program.

        A dependence on an already-issued instruction is dropped: the
        driver migrates residual work only after every in-flight
        reference of this stream has completed, so those dependences
        are satisfied by construction.
        """
        residual = []
        for i in range(self.pc, len(self.program)):
            ins = self.program[i]
            dep = ins.depends_on
            if dep is not None:
                dep = dep - self.pc if dep >= self.pc else None
            residual.append(Instruction(kind=ins.kind, addr=ins.addr,
                                        depends_on=dep, value=ins.value))
        return residual

    @property
    def in_flight(self) -> int:
        """Number of memory references currently outstanding."""
        return sum(1 for c in self.completion.values() if c is None)

    def next_instruction(self) -> Optional[Instruction]:
        if self.pc < len(self.program):
            return self.program[self.pc]
        return None

    def can_issue_at(self, cycle: float, issue_interval: float,
                     lookahead: int) -> tuple[bool, Optional[float]]:
        """Whether the next instruction can issue at ``cycle``.

        Returns ``(ready, earliest)``: if not ready, ``earliest`` is the
        cycle at which to re-check, or ``None`` if blocked on an
        in-flight completion whose time is not yet known (the caller
        re-evaluates on completion events).
        """
        ins = self.next_instruction()
        if ins is None or self.revoked:
            return False, None
        earliest = self.last_issue + issue_interval
        if ins.depends_on is not None:
            dep = self.completion.get(ins.depends_on)
            if dep is None:
                if ins.depends_on in self.completion:
                    return False, None  # in flight, unknown finish
                raise RuntimeError(
                    f"stream {self.sid}: dependence on an instruction "
                    f"that never issued")
            earliest = max(earliest, dep)
        if ins.is_memory and self.in_flight >= lookahead:
            return False, None  # window full; re-check on a completion
        if cycle >= earliest:
            return True, earliest
        return False, earliest

    def note_issue(self, cycle: float) -> int:
        """Record the issue of the next instruction; returns its index."""
        idx = self.pc
        ins = self.program[idx]
        self.last_issue = cycle
        self.pc += 1
        self.issued += 1
        if ins.is_memory:
            self.completion[idx] = None          # in flight
        else:
            self.completion[idx] = cycle + 1.0   # ALU completes next cycle
        return idx

    def note_completion(self, idx: int, cycle: float,
                        value: object = None) -> None:
        self.completion[idx] = cycle
        if self.program[idx].kind in ("load", "sync_load"):
            self.results[idx] = value
