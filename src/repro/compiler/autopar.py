"""The automatic parallelization pass.

Walks a program's loop nests outermost-first.  For each ``for`` loop it
runs dependence analysis; a loop with no dependences is marked
parallelizable.  A loop carrying an explicit ``#pragma multithreaded``
is accepted on the programmer's authority (the pragma *asserts*
independence -- exactly how the Tera and Exemplar compilers treated
the manual annotations; the paper notes the compilers could not even
parallelize the restructured programs without them).

The pass mirrors the paper's outcome mechanically: both sequential
benchmark programs analyze to zero parallelizable loops, and the
restructured programs parallelize only at their pragma.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.compiler.dependence import Dependence, analyze_loop
from repro.compiler.loopir import ForLoop, Program, WhileLoop


@dataclass(frozen=True)
class LoopReport:
    """The compiler's verdict on one loop."""

    loop: Union[ForLoop, WhileLoop]
    depth: int
    parallelized: bool
    by_pragma: bool
    dependences: tuple[Dependence, ...] = ()

    @property
    def label(self) -> str:
        lbl = getattr(self.loop, "label", "")
        if lbl:
            return lbl
        if isinstance(self.loop, ForLoop):
            return f"for {self.loop.var}"
        return "while"

    @property
    def reasons(self) -> list[str]:
        return [str(d) for d in self.dependences]


@dataclass(frozen=True)
class AutoParResult:
    """Outcome of running the auto-parallelizer on a program."""

    program: Program
    reports: tuple[LoopReport, ...]

    @property
    def n_loops(self) -> int:
        return len(self.reports)

    @property
    def n_parallelized(self) -> int:
        return sum(1 for r in self.reports if r.parallelized)

    @property
    def n_auto_parallelized(self) -> int:
        return sum(1 for r in self.reports
                   if r.parallelized and not r.by_pragma)

    @property
    def parallelized_loops(self) -> list[LoopReport]:
        return [r for r in self.reports if r.parallelized]

    @property
    def found_any_parallelism(self) -> bool:
        return self.n_parallelized > 0


def _walk(stmts, depth, out) -> None:
    from repro.compiler.loopir import IfStmt  # local to avoid cycle noise

    for s in stmts:
        if isinstance(s, (ForLoop, WhileLoop)):
            if isinstance(s, ForLoop) and s.pragma_parallel:
                report = LoopReport(loop=s, depth=depth, parallelized=True,
                                    by_pragma=True, dependences=())
            else:
                deps = tuple(analyze_loop(s))
                report = LoopReport(loop=s, depth=depth,
                                    parallelized=not deps,
                                    by_pragma=False, dependences=deps)
            out.append(report)
            _walk(s.body, depth + 1, out)
        elif isinstance(s, IfStmt):
            _walk(s.then, depth, out)
            _walk(s.orelse, depth, out)


def parallelize(program: Program) -> AutoParResult:
    """Run the auto-parallelizer over every loop in ``program``."""
    reports: list[LoopReport] = []
    _walk(program.body, 0, reports)
    return AutoParResult(program=program, reports=tuple(reports))
