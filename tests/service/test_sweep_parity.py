"""The acceptance contract: served results == ``repro all`` results.

Two runs over the same seed universe and scales, one through the CLI
harness and one through the service, must agree *byte for byte* per
simulation cell -- same content-addressed keys, same seconds, same
stats.  Both directions are exercised:

* cold: the service computes into an empty cache; a CLI-style
  ``run_experiments`` then computes the same registry subset into a
  *different* empty cache, so every number is recomputed independently.
* warm: a served sweep over the cache the CLI run populated answers
  entirely from dedupe, returning identical records without touching
  the engine.
"""

import json

import pytest

from repro.harness import store
from repro.harness.parallel import run_experiments
from repro.harness.runner import default_data
from repro.service.loadgen import ServiceClient

from tests.service.conftest import run_async, serve_ctx

pytestmark = pytest.mark.slow  # two full pipeline passes

SCALES = dict(threat_scale=0.01, terrain_scale=0.02)
#: a registry subset spanning both benchmarks, all machine families,
#: parameterized recipes and alternative seed universes
EXPERIMENTS = ["table3", "table5", "table11", "seed-robustness"]


def _normalize(record):
    """One cell record as JSON-comparable bytes-equivalent data."""
    body = {k: record[k] for k in ("key", "kind", "machine", "job",
                                   "seconds", "seed_offset", "stats")}
    return json.loads(json.dumps(body, sort_keys=True))


def _local_records(keys_with_offsets):
    """Run the subset CLI-style; read back the cells it computed.

    The comparison reads the persistent cache rather than the serial
    ``cell_sink`` because sibling seed universes log their records on
    the sibling ``BenchmarkData`` -- the cache is where *every*
    computed cell lands, byte-for-byte as the runner produced it.
    """
    run_experiments(EXPERIMENTS, jobs=1, **SCALES)
    cache = store.active_cache()
    out = {}
    for key, seed_offset in keys_with_offsets.items():
        entry = cache.get(key)
        if entry is not None:
            out[key] = _normalize(
                store.entry_to_record(key, entry, seed_offset))
    return out


async def _served_records():
    async with serve_ctx(**SCALES) as svc:
        client = await ServiceClient.connect("127.0.0.1",
                                             svc.bound_port)
        lines = await client.request({
            "op": "sweep", "id": "sweep",
            "experiments": EXPERIMENTS})
        await client.close()
        assert lines[-1]["type"] == "done" and lines[-1]["ok"]
        counters = svc.counters.snapshot()
    return ({ln["cell"]["key"]: _normalize(ln["cell"])
             for ln in lines[:-1]}, counters)


def test_served_sweep_is_byte_identical_to_repro_all(tmp_path,
                                                     monkeypatch):
    # cold service run, cache A (cleared memos: compute for real)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-a"))
    default_data.cache_clear()
    served, cold_counters = run_async(_served_records(), timeout=600)
    assert cold_counters["engine_cells"] == len(served) > 10

    # independent CLI-style run, cache B: fresh kernels and memos, so
    # every number is recomputed, not replayed
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-b"))
    default_data.cache_clear()
    local = _local_records({key: rec["seed_offset"]
                            for key, rec in served.items()})

    # every served cell was also computed by the CLI run, with an
    # identical record -- same key, same seconds, same stats
    assert set(served) == set(local)
    assert len(served) > 10
    for key in served:
        assert served[key] == local[key], key

    # warm pass against cache B: answered without any engine work
    served_warm, warm_counters = run_async(_served_records(),
                                           timeout=600)
    assert served_warm == served
    assert warm_counters["engine_cells"] == 0
    assert warm_counters["dedupe_cached"] == len(served)


# ----------------------------------------------------------------------
# named factorial sweeps (repro.c3i.sweeps) through the same op
# ----------------------------------------------------------------------

async def _served_named_sweep(name):
    async with serve_ctx(**SCALES) as svc:
        client = await ServiceClient.connect("127.0.0.1",
                                             svc.bound_port)
        lines = await client.request({
            "op": "sweep", "id": "named", "sweep": name})
        await client.close()
    return lines


def test_served_named_sweep_matches_local_repro_sweep(tmp_path,
                                                      monkeypatch):
    from repro.c3i import sweeps as sweep_defs

    sweep = sweep_defs.get_sweep("smoke")

    # cold served run, cache A
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-a"))
    default_data.cache_clear()
    lines = run_async(_served_named_sweep("smoke"), timeout=600)
    done = lines[-1]
    assert done["type"] == "done" and done["ok"]
    assert done["sweep"] == "smoke"
    assert done["n_cells"] == sweep.n_cells
    assert done["fingerprint"] == \
        sweep_defs.expansion_fingerprint(sweep)
    served = {ln["cell"]["key"]: _normalize(ln["cell"])
              for ln in lines[:-1]}
    assert len(served) == sweep.n_cells  # smoke cells are all unique

    # independent local `repro sweep`, cache B: every cell recomputed
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-b"))
    default_data.cache_clear()
    local = {}
    outcome = sweep_defs.run_sweep(
        "smoke", jobs=1,
        on_record=lambda rec: local.update({rec["key"]:
                                            _normalize(rec)}),
        **SCALES)
    assert outcome.n_computed == sweep.n_cells
    assert outcome.fingerprint == done["fingerprint"]

    # byte-identical per content-addressed key
    assert set(served) == set(local)
    for key in served:
        assert served[key] == local[key], key


def test_named_sweep_unknown_name_is_one_error_line(tmp_path,
                                                    monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    default_data.cache_clear()
    lines = run_async(_served_named_sweep("nope"), timeout=120)
    assert len(lines) == 1
    assert lines[0]["type"] == "error"
    assert "unknown sweep" in lines[0]["error"]
