"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table5" in out and "autopar" in out and "fig2" in out


def test_run_single_experiment(capsys):
    code = main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                 "run", "autopar"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Automatic parallelization" in out
    assert "PASS" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_table_with_small_kernels(capsys):
    code = main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                 "run", "table2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Alpha" in out and "Tera" in out


def test_trace_command_writes_valid_chrome_json(tmp_path, capsys):
    import json

    from repro.obs.trace import validate_chrome_trace

    out = str(tmp_path / "trace.json")
    code = main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                 "trace", "table2", "-o", out])
    stdout = capsys.readouterr().out
    assert code == 0
    assert "wrote" in stdout and "trace events" in stdout
    with open(out) as fh:
        obj = json.load(fh)
    assert validate_chrome_trace(obj) > 0
    # one trace process per simulated machine run, each named
    names = [e["args"]["name"] for e in obj["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"]
    assert len(names) == 4 and any("Alpha" in n for n in names)


def test_trace_unknown_experiment(capsys):
    assert main(["trace", "table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_feedback_command(capsys):
    assert main(["feedback"]) == 0
    out = capsys.readouterr().out
    assert "ThreatAnalysis" in out
    assert "no practical opportunities" in out
    assert "Advisories" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
