"""Tests for machine spec dataclasses and the platform catalog."""

import pytest

from repro.machines import (
    ALPHASTATION_500,
    CacheSpec,
    CoreSpec,
    EXEMPLAR_16,
    MachineSpec,
    MemSpec,
    PPRO_SMP_4,
    ThreadCosts,
    exemplar,
    get_machine_spec,
    ppro,
)
from repro.workload import OpCounts


def test_core_spec_validation():
    with pytest.raises(ValueError):
        CoreSpec(clock_hz=0)
    with pytest.raises(ValueError):
        CoreSpec(clock_hz=1e6, op_cycles={"ialu": -1})


def test_core_compute_cycles():
    core = CoreSpec(clock_hz=1e6, op_cycles={"ialu": 0.5, "falu": 2.0})
    assert core.compute_cycles(OpCounts(ialu=10, falu=3)) == 11.0


def test_cache_spec_validation():
    with pytest.raises(ValueError):
        CacheSpec(capacity_bytes=0)
    with pytest.raises(ValueError):
        CacheSpec(capacity_bytes=1024, line_bytes=33)
    with pytest.raises(ValueError):
        CacheSpec(capacity_bytes=1024, assoc=0)


def test_mem_spec_validation():
    with pytest.raises(ValueError):
        MemSpec(bandwidth_bytes_per_s=0, miss_latency_s=1e-9)
    with pytest.raises(ValueError):
        MemSpec(bandwidth_bytes_per_s=1e9, miss_latency_s=0)


def test_thread_costs_validation():
    with pytest.raises(ValueError):
        ThreadCosts(create_cycles=-1, sync_cycles=0)


def test_machine_spec_validation():
    with pytest.raises(ValueError):
        MachineSpec("bad", 0, ALPHASTATION_500.core,
                    ALPHASTATION_500.cache, ALPHASTATION_500.mem)


def test_with_cpus():
    sub = EXEMPLAR_16.with_cpus(4)
    assert sub.n_cpus == 4
    assert sub.core == EXEMPLAR_16.core
    assert "4p" in sub.name
    assert EXEMPLAR_16.n_cpus == 16  # original untouched


def test_costs_for_fallback():
    assert EXEMPLAR_16.costs_for("os").create_cycles >= 10_000
    # "hw" threads do not exist on a conventional machine: fall back
    assert EXEMPLAR_16.costs_for("hw") == EXEMPLAR_16.costs_for("os")


def test_costs_for_missing_table():
    spec = MachineSpec("bare", 1, ALPHASTATION_500.core,
                       ALPHASTATION_500.cache, ALPHASTATION_500.mem,
                       thread_costs={})
    with pytest.raises(KeyError):
        spec.costs_for("os")


def test_per_cpu_mem_bandwidth():
    bw = PPRO_SMP_4.per_cpu_mem_bandwidth
    assert bw == pytest.approx(
        PPRO_SMP_4.cache.line_bytes / PPRO_SMP_4.mem.miss_latency_s)


# ----------------------------------------------------------------------
# Catalog sanity (Table 1 of the paper)
# ----------------------------------------------------------------------

def test_catalog_matches_table1():
    assert ALPHASTATION_500.n_cpus == 1
    assert ALPHASTATION_500.core.clock_hz == 500e6
    assert PPRO_SMP_4.n_cpus == 4
    assert PPRO_SMP_4.core.clock_hz == 200e6
    assert EXEMPLAR_16.n_cpus == 16
    assert EXEMPLAR_16.core.clock_hz == 180e6


def test_get_machine_spec_lookup():
    assert get_machine_spec("alpha") is ALPHASTATION_500
    assert get_machine_spec("Pentium Pro") is PPRO_SMP_4
    assert get_machine_spec("EXEMPLAR") is EXEMPLAR_16
    with pytest.raises(KeyError):
        get_machine_spec("cray")


def test_exemplar_subsets():
    for n in (1, 8, 16):
        assert exemplar(n).n_cpus == n
    with pytest.raises(ValueError):
        exemplar(17)
    with pytest.raises(ValueError):
        exemplar(0)


def test_ppro_subsets():
    for n in (1, 4):
        assert ppro(n).n_cpus == n
    with pytest.raises(ValueError):
        ppro(5)


def test_thread_creation_costs_match_paper_magnitudes():
    """Section 7: conventional thread creation costs tens of thousands
    to hundreds of thousands of cycles; sync hundreds to thousands."""
    for spec in (PPRO_SMP_4, EXEMPLAR_16):
        os_costs = spec.costs_for("os")
        assert 10_000 <= os_costs.create_cycles <= 500_000
        assert 100 <= os_costs.sync_cycles <= 5_000
