"""Unit and property tests for the Terrain Masking model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.c3i.terrain import (
    GroundThreat,
    generate_terrain,
    masking_for_threat,
    ring_offsets,
)
from repro.c3i.terrain.model import region_window


RNG = np.random.default_rng(42)


def flat_terrain(n=64, height=100.0):
    return np.full((n, n), height)


# ----------------------------------------------------------------------
# terrain generation
# ----------------------------------------------------------------------

def test_terrain_shape_and_determinism():
    a = generate_terrain(128, np.random.default_rng(7))
    b = generate_terrain(128, np.random.default_rng(7))
    assert a.shape == (128, 128)
    assert np.array_equal(a, b)
    assert a.min() >= 0.0


def test_terrain_has_relief():
    t = generate_terrain(256, np.random.default_rng(3), relief=300.0)
    assert t.max() - t.min() > 50.0
    assert t.max() <= 300.0 * 1.1


def test_terrain_too_small_rejected():
    with pytest.raises(ValueError):
        generate_terrain(4, RNG)


def test_terrain_is_smooth():
    """Neighbouring cells differ far less than the total relief."""
    t = generate_terrain(256, np.random.default_rng(5), relief=300.0)
    grad = np.abs(np.diff(t, axis=0)).max()
    assert grad < 100.0


# ----------------------------------------------------------------------
# threats / ring geometry
# ----------------------------------------------------------------------

def test_threat_validation():
    with pytest.raises(ValueError):
        GroundThreat(x=0, y=0, range_cells=0)
    with pytest.raises(ValueError):
        GroundThreat(x=0, y=0, range_cells=5, sensor_height=-1)


def test_ring_offsets_structure():
    rings = ring_offsets(5)
    assert len(rings) == 5
    for k, (dx, dy, pdx, pdy) in enumerate(rings, start=1):
        assert (np.maximum(np.abs(dx), np.abs(dy)) == k).all()
        assert (dx * dx + dy * dy <= 25).all()
        # parents are exactly one Chebyshev ring in
        assert (np.maximum(np.abs(pdx), np.abs(pdy)) == k - 1).all()


def test_ring_offsets_cover_disc():
    r = 7
    rings = ring_offsets(r)
    cells = {(0, 0)}
    for dx, dy, _p, _q in rings:
        cells.update(zip(dx.tolist(), dy.tolist()))
    expect = {(i, j) for i in range(-r, r + 1) for j in range(-r, r + 1)
              if i * i + j * j <= r * r}
    assert cells == expect


def test_ring_offsets_validation():
    with pytest.raises(ValueError):
        ring_offsets(0)


def test_region_window_clipping():
    t = GroundThreat(x=2, y=60, range_cells=10)
    w = region_window(t, 64)
    assert (w.x0, w.x1) == (0, 13)
    assert (w.y0, w.y1) == (50, 64)
    assert w.n_cells == 13 * 14


# ----------------------------------------------------------------------
# masking physics
# ----------------------------------------------------------------------

def test_flat_terrain_fully_exposed():
    """On a flat plain nothing shadows anything: the safe altitude is
    the terrain itself everywhere in range."""
    terrain = flat_terrain(64, height=100.0)
    t = GroundThreat(x=32, y=32, range_cells=10, sensor_height=15.0)
    window, alt, stats = masking_for_threat(terrain, t)
    in_disc = np.isfinite(alt)
    assert np.allclose(alt[in_disc], 100.0)
    assert stats.n_rings == 10


def test_wall_casts_a_shadow():
    """A ridge between the threat and a cell raises the safe altitude
    behind it (you can hide below the grazing ray)."""
    terrain = flat_terrain(64, height=0.0)
    terrain[36, 32] = 200.0  # a spike 4 cells east of the threat
    t = GroundThreat(x=32, y=32, range_cells=20, sensor_height=10.0)
    _w, alt, _s = masking_for_threat(terrain, t)
    # behind the spike (x > 36, same y) the shadow grows with distance
    behind_near = alt[36 + 2 - 12, 32 - 12]  # window coords: x0=12,y0=12
    behind_far = alt[36 + 10 - 12, 32 - 12]
    assert behind_near > 0.0
    assert behind_far > behind_near
    # in front of the spike, still exposed at ground level
    assert alt[34 - 12, 32 - 12] == pytest.approx(0.0)


def test_shadow_altitude_is_grazing_ray():
    """The safe altitude behind an obstruction equals the ray through
    its top, by similar triangles."""
    terrain = flat_terrain(64, height=0.0)
    terrain[36, 32] = 100.0
    t = GroundThreat(x=32, y=32, range_cells=20, sensor_height=0.0)
    _w, alt, _s = masking_for_threat(terrain, t)
    # obstruction at distance 4, height 100 -> at distance 8 the ray is
    # at 200
    got = alt[40 - 12, 32 - 12]
    assert got == pytest.approx(200.0, rel=0.1)


def test_masking_never_below_terrain():
    rng = np.random.default_rng(11)
    terrain = generate_terrain(96, rng)
    t = GroundThreat(x=48, y=48, range_cells=30)
    window, alt, _s = masking_for_threat(terrain, t)
    sx, sy = window.slices()
    local = terrain[sx, sy]
    finite = np.isfinite(alt)
    assert (alt[finite] >= local[finite] - 1e-9).all()


def test_threat_cell_is_grazed():
    terrain = flat_terrain(32, height=50.0)
    t = GroundThreat(x=16, y=16, range_cells=5)
    window, alt, _s = masking_for_threat(terrain, t)
    assert alt[16 - window.x0, 16 - window.y0] == pytest.approx(50.0)


def test_outside_disc_is_unconstrained():
    terrain = flat_terrain(64)
    t = GroundThreat(x=32, y=32, range_cells=10)
    _w, alt, _s = masking_for_threat(terrain, t)
    # the window corner is sqrt(200) > 10 away: outside the disc
    assert np.isinf(alt[0, 0])


def test_threat_off_terrain_rejected():
    with pytest.raises(ValueError):
        masking_for_threat(flat_terrain(32),
                           GroundThreat(x=40, y=0, range_cells=3))
    with pytest.raises(ValueError):
        masking_for_threat(np.zeros((4, 8)),
                           GroundThreat(x=1, y=1, range_cells=2))


def test_clipped_region_at_edge():
    terrain = flat_terrain(64, height=10.0)
    t = GroundThreat(x=1, y=1, range_cells=10)
    window, alt, stats = masking_for_threat(terrain, t)
    assert window.x0 == 0 and window.y0 == 0
    assert stats.n_ring_cells < sum(
        len(r[0]) for r in ring_offsets(10))  # some cells clipped


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=3, max_value=12),
       st.integers(min_value=0, max_value=63),
       st.integers(min_value=0, max_value=63))
def test_masking_bounds_property(r, x, y):
    """For any threat placement: finite values only inside the disc,
    all values >= local terrain, threat cell grazed."""
    rng = np.random.default_rng(r * 64 + x)
    terrain = generate_terrain(64, rng)
    t = GroundThreat(x=x, y=y, range_cells=r)
    window, alt, _s = masking_for_threat(terrain, t)
    sx, sy = window.slices()
    local = terrain[sx, sy]
    finite = np.isfinite(alt)
    assert (alt[finite] >= local[finite] - 1e-9).all()
    assert alt[t.x - window.x0, t.y - window.y0] == pytest.approx(
        float(terrain[t.x, t.y]))


# ----------------------------------------------------------------------
# cached ray/ring geometry
# ----------------------------------------------------------------------

def test_ring_geometry_matches_offsets():
    from repro.c3i.terrain.model import ring_geometry

    radius = 9
    rings = ring_offsets(radius)
    geo = ring_geometry(radius)
    assert len(geo) == len(rings)
    for (dxa, dya, pdx, pdy), entry in zip(rings, geo):
        gdx, gdy, gpdx, gpdy, dist, pdist = entry
        assert (gdx == dxa).all() and (gdy == dya).all()
        assert (gpdx == pdx).all() and (gpdy == pdy).all()
        # the exact expressions masking_for_threat historically used
        assert (dist == np.sqrt(dxa ** 2.0 + dya ** 2.0)).all()
        assert (pdist == np.sqrt(pdx ** 2.0 + pdy ** 2.0)).all()


def test_ring_geometry_arrays_are_immutable():
    from repro.c3i.terrain.model import ring_geometry

    for entry in ring_geometry(5):
        dist, pdist = entry[4], entry[5]
        with pytest.raises(ValueError):
            dist[0] = 1.0
        with pytest.raises(ValueError):
            pdist[0] = 1.0


def test_masking_independent_of_threat_position():
    """The cached geometry is position-independent: two threats far
    from every edge see bit-identical masking surfaces over flat
    terrain."""
    terrain = flat_terrain(96, height=50.0)
    a = GroundThreat(x=30, y=30, range_cells=12)
    b = GroundThreat(x=60, y=55, range_cells=12)
    _wa, alt_a, _sa = masking_for_threat(terrain, a)
    _wb, alt_b, _sb = masking_for_threat(terrain, b)
    assert (alt_a == alt_b).all()
