"""Shared DES-vs-cohort parity helpers.

The engine-parity contract, in one place: for any job, simulated
``seconds`` on the cohort fast path agree with the pure-DES path to
within ``REL_TOL`` relative, and ``lock_wait_seconds`` agree to 1e-6
relative (or 1e-9 absolute when near zero).  Scheduling diagnostics
(``issue_busy_time_total``, ``lock_convoy_hist_*``, ``des_*`` /
``cohort_*`` region counters) are engine attribution and sit *outside*
this contract.

Import these from every parity test instead of redefining them; the
registry-wide sweep in ``tests/test_parity_sweep.py`` applies the same
contract to every experiment's jobs at smoke scale, under both
positions of the cohort engine's ``REPRO_FORCE_CLOSED_FORM`` escape
hatch (closed-form layers on and off).
"""

from repro.machines import ConventionalMachine, cmt, exemplar
from repro.mta import MtaMachine, mta

REL_TOL = 1e-9


def rel_err(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b), 1e-300)


def run_both_mta(job, n_proc=2):
    """Run a job on the MTA model under both engines."""
    des = MtaMachine(mta(n_proc), use_cohort=False).run(job)
    coh = MtaMachine(mta(n_proc), use_cohort=True).run(job)
    return des, coh


def run_both_conventional(job, n_cpus=4, fine_grained=False):
    """Run a job on the conventional model under both engines."""
    des = ConventionalMachine(exemplar(n_cpus), use_cohort=False,
                              exploit_fine_grained=fine_grained).run(job)
    coh = ConventionalMachine(exemplar(n_cpus), use_cohort=True,
                              exploit_fine_grained=fine_grained).run(job)
    return des, coh


def run_both_cmt(job, n_strands=64):
    """Run a job on the CMT (SPARC T3-4) model under both engines."""
    des = ConventionalMachine(cmt(n_strands), use_cohort=False).run(job)
    coh = ConventionalMachine(cmt(n_strands), use_cohort=True).run(job)
    return des, coh


def assert_equivalent(des, coh):
    """Assert the engine-parity contract for one job's pair of runs."""
    assert rel_err(coh.seconds, des.seconds) <= REL_TOL, \
        (des.seconds, coh.seconds)
    assert abs(coh.lock_wait_seconds - des.lock_wait_seconds) \
        <= max(1e-6 * abs(des.lock_wait_seconds), 1e-9), \
        (des.lock_wait_seconds, coh.lock_wait_seconds)
