"""Event-trace recording and Chrome-trace export.

A :class:`TraceRecorder` collects typed records from the DES kernel
primitives (and region records from the machine models) into a flat
list of tuples.  Recording is enabled by attaching the recorder to a
simulator (``sim.trace = recorder``); every kernel hook is guarded by
``if sim.trace is not None``, so the disabled cost is one attribute
load and identity test per instrumented operation.

Record tuples are ``(kind, pid, tid, t, a, b)``:

====================  ======================================  =========
kind                  a                                       b
====================  ======================================  =========
``"start"``           thread name                             --
``"end"``             error repr or ``None``                  --
``"block"``           wait description (str)                  --
``"unblock"``         --                                      --
``"acquire"``         resource name                           --
``"release"``         resource name                           --
``"queue"``           resource name                           depth
``"serve"``           server name                             demand
``"region"``          ``(label, engine, n_threads)``          end time
``"run-end"``         --                                      --
====================  ======================================  =========

``pid`` groups records by machine run (see :meth:`TraceRecorder
.begin_run`); ``tid`` is the process's creation index within its
simulator (``Process.tid``), or ``-1`` for submissions made outside
any process (the cohort fast path's parent-side bookkeeping).

:meth:`TraceRecorder.to_chrome` converts the record list to the Chrome
trace-event JSON format (the ``chrome://tracing`` / Perfetto "JSON
Array with metadata" flavor): thread lifetimes, wait intervals and
lock-hold intervals become complete (``"X"``) slices, queue/serve
records become instants, and machine regions land on a dedicated
virtual thread row per run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.des.events import AllOf, AnyOf, Event, Timeout, WaitEvent
from repro.des.process import Process
from repro.des.resources import Request

#: virtual thread row carrying machine-level region slices
REGION_TID = 1_000_000

#: simulated seconds -> trace microseconds
_US = 1e6


def describe_event(ev: object) -> str:
    """A short human label for whatever a process is waiting on."""
    if isinstance(ev, Timeout):
        return f"timeout({ev.delay:g})"
    if isinstance(ev, WaitEvent):
        return f"{ev.kind} '{ev.source_name}'"
    if isinstance(ev, Request):
        return f"resource '{ev.resource.name}'"
    if isinstance(ev, Process):
        return f"join '{ev.name}'"
    if isinstance(ev, AllOf):
        return f"all-of({len(ev.events)})"
    if isinstance(ev, AnyOf):
        return f"any-of({len(ev.events)})"
    if isinstance(ev, Event):
        return "event"
    return repr(ev)


class TraceRecorder:
    """Collects typed records; exports Chrome trace JSON.

    ``max_events`` bounds memory: past it, new records are counted in
    ``dropped`` instead of stored (the exporter reports the count), so
    a runaway simulation cannot OOM the tracer.
    """

    __slots__ = ("records", "dropped", "max_events", "pid", "run_labels",
                 "thread_names")

    def __init__(self, max_events: int = 1_000_000):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.records: list[tuple] = []
        self.dropped = 0
        self.max_events = max_events
        #: current run id; 0 until the first begin_run()
        self.pid = 0
        self.run_labels: dict[int, str] = {}
        self.thread_names: dict[tuple[int, int], str] = {}

    # ------------------------------------------------------------------
    # run grouping (called by the machine models)
    # ------------------------------------------------------------------
    def begin_run(self, label: str) -> int:
        """Start a new record group (one machine run); returns its pid."""
        self.pid += 1
        self.run_labels[self.pid] = label
        return self.pid

    def end_run(self, t: float) -> None:
        self._rec(("run-end", self.pid, 0, t, None, None))

    # ------------------------------------------------------------------
    # kernel hooks (called with sim.trace already known non-None)
    # ------------------------------------------------------------------
    def _rec(self, rec: tuple) -> None:
        records = self.records
        if len(records) >= self.max_events:
            self.dropped += 1
            return
        records.append(rec)

    def thread_start(self, tid: int, t: float, name: str) -> None:
        self.thread_names[(self.pid, tid)] = name
        self._rec(("start", self.pid, tid, t, name, None))

    def thread_end(self, tid: int, t: float,
                   error: Optional[str] = None) -> None:
        self._rec(("end", self.pid, tid, t, error, None))

    def block(self, tid: int, t: float, target: object) -> None:
        # described eagerly: the record must not keep the event alive
        self._rec(("block", self.pid, tid, t, describe_event(target), None))

    def unblock(self, tid: int, t: float) -> None:
        self._rec(("unblock", self.pid, tid, t, None, None))

    def acquire(self, tid: int, t: float, name: str) -> None:
        self._rec(("acquire", self.pid, tid, t, name, None))

    def release(self, tid: int, t: float, name: str) -> None:
        self._rec(("release", self.pid, tid, t, name, None))

    def enqueue(self, tid: int, t: float, name: str, depth: int) -> None:
        self._rec(("queue", self.pid, tid, t, name, depth))

    def serve(self, tid: int, t: float, name: str, demand: float) -> None:
        self._rec(("serve", self.pid, tid, t, name, demand))

    def region(self, t0: float, t1: float, label: str, engine: str,
               n_threads: int) -> None:
        self._rec(("region", self.pid, REGION_TID, t0,
                   (label, engine, n_threads), t1))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome(self) -> dict:
        """The records as a Chrome trace-event JSON object.

        Load the serialized result in ``chrome://tracing`` or
        https://ui.perfetto.dev.  Timestamps are simulated seconds
        scaled to microseconds.
        """
        events: list[dict] = []
        for pid, label in sorted(self.run_labels.items()):
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": label}})
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": REGION_TID, "args": {"name": "regions"}})
        for (pid, tid), name in sorted(self.thread_names.items()):
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "args": {"name": name}})

        # open interval state, keyed by (pid, tid)
        alive: dict[tuple[int, int], tuple[float, str]] = {}
        waiting: dict[tuple[int, int], tuple[float, str]] = {}
        holding: dict[tuple[int, int, str], float] = {}
        last_t: dict[int, float] = {}

        def slice_(pid: int, tid: int, name: str, t0: float, t1: float,
                   args: Optional[dict] = None) -> None:
            ev = {"ph": "X", "name": name, "pid": pid, "tid": tid,
                  "ts": t0 * _US, "dur": (t1 - t0) * _US}
            if args:
                ev["args"] = args
            events.append(ev)

        def instant(pid: int, tid: int, name: str, t: float,
                    args: Optional[dict] = None) -> None:
            ev = {"ph": "i", "name": name, "pid": pid, "tid": tid,
                  "ts": t * _US, "s": "t"}
            if args:
                ev["args"] = args
            events.append(ev)

        def close_run(pid: int, t: float) -> None:
            for key in [k for k in alive if k[0] == pid]:
                t0, name = alive.pop(key)
                slice_(pid, key[1], name, t0, t)
            for key in [k for k in waiting if k[0] == pid]:
                t0, desc = waiting.pop(key)
                slice_(pid, key[1], f"wait {desc}", t0, t)
            for key in [k for k in holding if k[0] == pid]:
                t0 = holding.pop(key)
                slice_(pid, key[1], f"hold {key[2]}", t0, t)

        for kind, pid, tid, t, a, b in self.records:
            if t > last_t.get(pid, 0.0):
                last_t[pid] = t
            key = (pid, tid)
            if kind == "start":
                alive[key] = (t, a)
            elif kind == "end":
                opened = alive.pop(key, None)
                if opened is not None:
                    args = {"error": a} if a else None
                    slice_(pid, tid, opened[1], opened[0], t, args)
            elif kind == "block":
                waiting[key] = (t, a)
            elif kind == "unblock":
                opened = waiting.pop(key, None)
                if opened is not None:
                    slice_(pid, tid, f"wait {opened[1]}", opened[0], t)
            elif kind == "acquire":
                holding[(pid, tid, a)] = t
            elif kind == "release":
                t0 = holding.pop((pid, tid, a), None)
                if t0 is not None:
                    slice_(pid, tid, f"hold {a}", t0, t)
            elif kind == "queue":
                instant(pid, tid, f"queue {a}", t, {"depth": b})
            elif kind == "serve":
                instant(pid, tid, f"serve {a}", t, {"demand": b})
            elif kind == "region":
                label, engine, n_threads = a
                slice_(pid, REGION_TID, label, t, b,
                       {"engine": engine, "n_threads": n_threads})
            elif kind == "run-end":
                close_run(pid, t)
        # close anything a run never explicitly ended
        for pid, t in sorted(last_t.items()):
            close_run(pid, t)

        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "tool": "repro trace",
                "dropped_records": self.dropped,
            },
        }


def validate_chrome_trace(obj: object) -> int:
    """Check an object against the Chrome trace-event schema subset
    this exporter emits; returns the event count or raises ValueError.

    Used by the tests and the CI ``obs`` job to guarantee the emitted
    JSON stays loadable by ``chrome://tracing`` / Perfetto.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace must be a JSON object, got {type(obj)}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            raise ValueError(f"traceEvents[{i}]: unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str):
            raise ValueError(f"traceEvents[{i}]: missing name")
        if not isinstance(ev.get("pid"), int) or not isinstance(
                ev.get("tid"), int):
            raise ValueError(f"traceEvents[{i}]: missing pid/tid")
        if ph == "M":
            if not isinstance(ev.get("args"), dict):
                raise ValueError(f"traceEvents[{i}]: metadata needs args")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"traceEvents[{i}]: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"traceEvents[{i}]: bad dur {dur!r}")
    return len(events)


# ----------------------------------------------------------------------
# process-wide active tracer
# ----------------------------------------------------------------------
# The harness runs machines several layers below the CLI; rather than
# threading a recorder through every call signature, the CLI activates
# one here and the machine models pick it up at run() time.
_active: Optional[TraceRecorder] = None


def active_tracer() -> Optional[TraceRecorder]:
    """The tracer machine runs should attach, or None when tracing is off."""
    return _active


@contextmanager
def tracing(tracer: Optional[TraceRecorder] = None
            ) -> Iterator[TraceRecorder]:
    """Activate a tracer for the duration of the with-block::

        with tracing() as tr:
            machine.run(job)
        json.dump(tr.to_chrome(), fh)
    """
    global _active
    tr = tracer if tracer is not None else TraceRecorder()
    prev = _active
    _active = tr
    try:
        yield tr
    finally:
        _active = prev
