"""Cycle-level in-order core tests + macro/micro cross-validation."""

import pytest

from repro.machines import (
    ConventionalMachine,
    CoreInstruction,
    InOrderCore,
    PPRO_SMP_4,
    compute_kernel,
    exemplar,
    random_kernel,
    resident_kernel,
    streaming_kernel,
)
from repro.workload import OpCounts, make_phase, single_thread_job
from repro.workload.phase import AccessPattern


SPEC = exemplar(1)


def test_instruction_validation():
    with pytest.raises(ValueError):
        CoreInstruction("simd")
    with pytest.raises(ValueError):
        CoreInstruction("load", addr=-8)


def test_pure_compute_cpi_matches_weights():
    core = InOrderCore(SPEC)
    trace = compute_kernel(1000, falu_ratio=0.5)
    stats = core.run(trace)
    expected = (500 * SPEC.core.op_cycles["falu"]
                + 500 * SPEC.core.op_cycles["ialu"]) / 1000
    assert stats.cpi == pytest.approx(expected)
    assert stats.cache_misses == 0
    assert stats.stall_cycles == 0


def test_resident_kernel_hits_after_warmup():
    core = InOrderCore(SPEC)
    footprint = 64 * 1024  # well inside the 1 MB cache
    stats = core.run(resident_kernel(50_000, footprint))
    assert stats.miss_rate < 0.05


def test_streaming_kernel_misses_once_per_line():
    core = InOrderCore(SPEC)
    n = 40_000
    stats = core.run(streaming_kernel(n, stride=8))
    # one miss per 64B line = per 8 references
    assert stats.cache_misses == pytest.approx(n / 8, rel=0.01)
    assert stats.stall_cycles > 0


def test_random_kernel_mostly_misses():
    core = InOrderCore(SPEC)
    stats = core.run(random_kernel(5_000, span_bytes=256 << 20))
    assert stats.miss_rate > 0.95


def test_miss_penalty_magnitude():
    core = InOrderCore(SPEC)
    assert core.miss_penalty == pytest.approx(
        SPEC.mem.miss_latency_s * SPEC.core.clock_hz)


# ----------------------------------------------------------------------
# macro/micro cross-validation
# ----------------------------------------------------------------------

def macro_seconds(ops: OpCounts, unique_bytes: float,
                  pattern=AccessPattern.SEQUENTIAL) -> float:
    phase = make_phase("p", ops, unique_bytes=unique_bytes,
                       pattern=pattern)
    job = single_thread_job("j", [phase])
    return ConventionalMachine(SPEC).run(job).seconds


def test_macro_matches_micro_pure_compute():
    n = 200_000
    trace = compute_kernel(n, falu_ratio=0.4)
    core = InOrderCore(SPEC)
    t_micro = core.seconds(core.run(trace))
    t_macro = macro_seconds(OpCounts(falu=0.4 * n, ialu=0.6 * n), 0.0)
    assert t_macro == pytest.approx(t_micro, rel=0.02)


def test_macro_matches_micro_in_cache_reuse():
    n = 120_000
    footprint = 64 * 1024
    trace = resident_kernel(n, footprint)
    core = InOrderCore(SPEC)
    t_micro = core.seconds(core.run(trace))
    t_macro = macro_seconds(OpCounts(load=n, ialu=n), float(footprint))
    # macro charges compulsory traffic once; micro warms up once: close
    assert t_macro == pytest.approx(t_micro, rel=0.10)


def test_macro_matches_micro_streaming():
    """The critical case: a memory-bound streaming sweep.

    Macro: traffic = touched bytes, served at line/miss-latency per
    CPU.  Micro: one full miss penalty per line.  Identical by
    construction of the calibration -- verify it holds end to end.
    """
    n = 120_000
    trace = streaming_kernel(n, stride=8, alu_per_ref=2)
    core = InOrderCore(SPEC)
    t_micro = core.seconds(core.run(trace))
    t_macro = macro_seconds(OpCounts(load=n, ialu=2 * n),
                            unique_bytes=n * 8.0)
    assert t_macro == pytest.approx(t_micro, rel=0.10)


def test_macro_micro_agree_on_machine_ordering():
    """Both fidelity levels must rank PPro vs Exemplar the same way on
    a streaming workload."""
    n = 60_000
    trace = streaming_kernel(n, stride=8, alu_per_ref=2)
    micro, macro = {}, {}
    for spec in (exemplar(1), PPRO_SMP_4.with_cpus(1)):
        core = InOrderCore(spec)
        micro[spec.name] = core.seconds(core.run(trace))
        phase = make_phase("p", OpCounts(load=n, ialu=2 * n),
                           unique_bytes=n * 8.0)
        macro[spec.name] = ConventionalMachine(spec).run(
            single_thread_job("j", [phase])).seconds
    m_names = sorted(micro, key=micro.get)
    M_names = sorted(macro, key=macro.get)
    assert m_names == M_names
