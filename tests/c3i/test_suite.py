"""Tests for the C3IPBS suite framework."""

import pytest

from repro.c3i.suite import (
    SuiteProblem,
    get_problem,
    list_problems,
    register_problem,
    run_problem,
)


def test_builtin_problems_registered():
    names = list_problems()
    assert "threat-analysis" in names
    assert "terrain-masking" in names


def test_get_problem():
    p = get_problem("threat-analysis")
    assert "ballistic" in p.description
    assert len(p.variants) == 3
    with pytest.raises(KeyError):
        get_problem("sar-imaging")


def test_run_threat_analysis_problem():
    report = run_problem("threat-analysis", scale=0.01)
    assert report.correct
    assert report.n_scenarios == 5
    names = [v.name for v in report.variants]
    assert names[0] == "sequential (reference)"
    assert any("256 chunks" in n for n in names)
    assert all(v.kernel_seconds >= 0 for v in report.variants)


def test_run_terrain_masking_problem():
    report = run_problem("terrain-masking", scale=0.025)
    assert report.correct
    assert report.n_scenarios == 5
    assert any("Tera variant" in v.name for v in report.variants)


def test_run_problem_alternative_universe():
    report = run_problem("threat-analysis", scale=0.01, seed_offset=3)
    assert report.correct


def test_register_rejects_duplicates():
    with pytest.raises(ValueError):
        register_problem(SuiteProblem(
            name="threat-analysis", description="dup",
            make_scenarios=lambda **kw: [],
            reference=lambda sc: None))


def test_custom_problem_with_failing_variant():
    """The suite driver reports validation failures per variant."""
    register_problem(SuiteProblem(
        name="toy-problem",
        description="a toy",
        make_scenarios=lambda scale=1.0, seed_offset=0: [1, 2, 3],
        reference=lambda sc: sc * 10,
        variants={
            "good": lambda sc: sc * 10,
            "bad": lambda sc: sc * 10 + 1,
        },
        validate=lambda sc, ref, vname, res: (
            None if res == ref else (_ for _ in ()).throw(
                AssertionError(f"{vname} mismatch"))),
    ))
    try:
        report = run_problem("toy-problem")
        by_name = {v.name: v for v in report.variants}
        assert by_name["good"].correct
        assert not by_name["bad"].correct
        assert "mismatch" in by_name["bad"].detail
        assert not report.correct
    finally:
        from repro.c3i import suite
        suite._REGISTRY.pop("toy-problem", None)
